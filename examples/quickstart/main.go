// Quickstart: two replicated views of a key/value component kept coherent
// by Flecc, demonstrating the public API end to end — weak-mode sharing,
// a push/pull round trip, the data-quality metric, and a run-time switch
// to strong mode with invalidation.
package main

import (
	"fmt"
	"log"

	"flecc"
)

func main() {
	// The original component: a key/value bag playing the primary copy.
	db := flecc.NewMapCodec()
	db.SetString("motd", "welcome")

	sys, err := flecc.New("db", db, flecc.WithMessageStats())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Two views share the property P={x}: Flecc computes from the
	// properties that they must be kept coherent.
	mk := func(name string) (*flecc.View, *flecc.MapCodec) {
		replica := flecc.NewMapCodec()
		v, err := sys.NewView(flecc.ViewConfig{
			Name:  name,
			View:  replica,
			Props: flecc.MustProps("P={x}"),
			Mode:  flecc.Weak,
		})
		if err != nil {
			log.Fatal(err)
		}
		return v, replica
	}
	v1, r1 := mk("view-1")
	v2, r2 := mk("view-2")

	fmt.Printf("view-1 initialized with motd=%q\n", r1.GetString("motd"))

	// view-1 updates inside a use window and publishes.
	if err := v1.Use(func() error {
		r1.SetString("motd", "hello from view-1")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := v1.Push(); err != nil {
		log.Fatal(err)
	}

	// Before pulling, view-2 is stale — the quality metric says by how
	// many updates.
	fmt.Printf("view-2 unseen updates before pull: %d\n", sys.Unseen("view-2"))
	if err := v2.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view-2 now sees motd=%q (unseen: %d)\n",
		r2.GetString("motd"), sys.Unseen("view-2"))

	// Switch view-2 to strong mode: its next pull invalidates view-1.
	if err := v2.SetMode(flecc.Strong); err != nil {
		log.Fatal(err)
	}
	if err := v2.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after strong pull: view-1 valid=%v (must pull before next use)\n", v1.Valid())
	if err := v1.StartUse(); err != nil {
		fmt.Printf("view-1 StartUse: %v\n", err)
	}
	if err := v1.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after re-pull: view-1 valid=%v, view-2 valid=%v (one active view)\n",
		v1.Valid(), v2.Valid())

	v1.Close()
	v2.Close()
	fmt.Printf("total protocol messages: %d\n", sys.Messages())
}
