// Modeswitch: the full PSF adaptation loop from the paper's §3 — a
// declarative application/environment specification, the planning module
// deciding where views go (with encryptor insertion on insecure links),
// the deployment module instantiating Flecc-coherent travel agents on a
// simulated WAN, and the monitoring module triggering replanning when a
// link degrades.
package main

import (
	"fmt"
	"io"
	"log"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/netsim"
	"flecc/internal/psf"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

const spec = `
# the paper's airline deployment
component flightdb implements FlightDB(Flights={100..119}) methods browse,reserve
component agent implements Reservation(Flights={100..119}) requires FlightDB methods browse,reserve replicable
node hub secure
node edge1
node edge2
link hub edge1 latency=40
link hub edge2 latency=8 secure
place flightdb hub
place agent hub
client alice at edge1 requires Reservation maxlatency=10 privacy buying
client bob at edge2 requires Reservation maxlatency=20
`

func main() {
	s, err := psf.ParseSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := psf.PlanDeployment(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial plan:")
	fmt.Print(plan)

	// Build the simulated WAN and the Flecc system on it.
	clock := vclock.NewSim()
	topo := psf.BuildTopology(s)
	net := netsim.New(clock, topo)
	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 20, 50)
	topo.Place("flightdb", "hub")
	dm, err := directory.New("flightdb", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dm.Close()

	// The deployment module instantiates planned views as travel agents.
	agents := map[string]*airline.TravelAgent{}
	factory := func(a psf.Action) (io.Closer, error) {
		if a.Kind == "insert-encryptor" {
			fmt.Printf("  [deploy] %s on %s (%s)\n", a.Instance, a.Node, a.Detail)
			return nopCloser{}, nil
		}
		mode := wire.Weak
		if a.Strong {
			mode = wire.Strong
		}
		topo.Place(a.Instance, a.Node)
		ag, err := airline.NewTravelAgent(airline.AgentConfig{
			Name: a.Instance, Directory: "flightdb", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 119, Mode: mode,
		})
		if err != nil {
			return nil, err
		}
		agents[a.Client] = ag
		fmt.Printf("  [deploy] %s on %s for %s (%s mode)\n", a.Instance, a.Node, a.Client, mode)
		return closerFunc(func() error { return ag.Close() }), nil
	}
	dep, err := psf.Deploy(s, plan, topo, factory)
	if err != nil {
		log.Fatal(err)
	}

	// Alice (buyer, strong view on her own node) purchases: local hop,
	// strong consistency.
	alice := agents["alice"]
	t0 := clock.Now()
	if err := alice.ReserveTickets(2, 100); err != nil {
		log.Fatal(err)
	}
	if err := alice.CM.PushImage(); err != nil {
		log.Fatal(err)
	}
	f, _ := db.Flight(100)
	fmt.Printf("alice bought 2 seats (strong, %dms simulated): db shows %d reserved\n",
		int64(clock.Now()-t0), f.Reserved)

	// The monitoring module notices edge2's link degrading; replanning
	// now deploys a view for bob too.
	mon := psf.NewMonitor(s)
	psf.Replanner(mon, s, func(e psf.Event, p *psf.Plan, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("environment change (%s) -> replanned:\n", e)
		for _, a := range p.ViewInstances() {
			fmt.Printf("  deploy-view %s on %s for %s\n", a.Instance, a.Node, a.Client)
		}
	})
	if err := mon.ObserveLatency("hub", "edge2", 60); err != nil {
		log.Fatal(err)
	}

	if err := dep.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployment torn down")
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

type closerFunc func() error

func (f closerFunc) Close() error { return f() }
