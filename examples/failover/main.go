// Failover: the fail-safe mechanism the paper's §4.1 leaves as an
// exercise — the directory manager's protocol metadata (version counter,
// per-key shadow, update log) is checkpointed, the primary directory
// manager dies, and a standby restores the checkpoint and takes over under
// the same node name. Views re-register and continue with full version
// continuity: post-failover commits extend the original version sequence,
// and the data-quality accounting survives.
package main

import (
	"fmt"
	"log"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func main() {
	net := transport.NewInproc()
	clock := vclock.NewSim()

	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 10, 50)
	dm1, err := directory.New("db", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		log.Fatal(err)
	}

	agent, err := airline.NewTravelAgent(airline.AgentConfig{
		Name: "agent-1", Directory: "db", Net: net, Clock: clock,
		FlightsFrom: 100, FlightsTo: 109, Mode: wire.Weak,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := agent.ReserveTickets(1, 104); err != nil {
			log.Fatal(err)
		}
		if err := agent.CM.PushImage(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("before failure: primary at v%d, flight 104 has %d reserved\n",
		dm1.CurrentVersion(), mustFlight(db, 104).Reserved)

	// Checkpoint the protocol metadata (in production this would be
	// written periodically to stable storage).
	blob, err := directory.EncodeSnapshot(dm1.Store().Snapshot())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint taken (%d bytes)\n", len(blob))

	// The directory manager fails.
	dm1.Close()
	if err := agent.CM.PullImage(); err != nil {
		fmt.Printf("during outage, the view's pull fails: %v\n", err)
	}

	// A standby restores the checkpoint and takes over the node name.
	snap, err := directory.DecodeSnapshot(blob)
	if err != nil {
		log.Fatal(err)
	}
	dm2, err := directory.New("db", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
		Snapshot: snap,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dm2.Close()
	fmt.Printf("standby up at v%d (version continuity preserved)\n", dm2.CurrentVersion())

	// The view reconnects (new cache manager, same replica) and keeps
	// selling; the version sequence continues where it left off.
	agent.CM.KillImage() // best-effort; the old endpoint is already dead
	agent2, err := airline.NewTravelAgent(airline.AgentConfig{
		Name: "agent-1b", Directory: "db", Net: net, Clock: clock,
		FlightsFrom: 100, FlightsTo: 109, Mode: wire.Weak,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := agent2.ReserveTickets(1, 104); err != nil {
		log.Fatal(err)
	}
	if err := agent2.CM.PushImage(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failover: primary at v%d, flight 104 has %d reserved\n",
		dm2.CurrentVersion(), mustFlight(db, 104).Reserved)
	agent2.Close()
}

func mustFlight(db *airline.ReservationSystem, n int) airline.Flight {
	f, ok := db.Flight(n)
	if !ok {
		log.Fatalf("flight %d missing", n)
	}
	return f
}
