// Airline: the paper's case study (§5.1) and the Go translation of its
// Figure 3 travel-agent pseudo-code.
//
// A main flight database is deployed with a directory manager; two travel
// agents (views over overlapping flight ranges) assist clients. The demo
// walks through the exact Figure 3 flow — create cache manager with
// property list, mode and "(t > 1500)"-style triggers; initImage; loops of
// pullImage/startUseImage/confirmTickets/endUseImage; killImage — and then
// shows a viewer client upgrading to a buyer (weak → strong).
package main

import (
	"fmt"
	"log"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/netsim"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func main() {
	clock := vclock.NewSim()
	topo := netsim.LAN(2) // 2ms LAN links
	topo.Place("db", "server")
	net := netsim.New(clock, topo)
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)

	// The main flight database: 20 flights, 100 seats each.
	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 20, 100)
	dm, err := directory.New("db", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dm.Close()

	// Figure 3, lines 7–17: create the cache manager with the property
	// list, mode of operation, and the three triggers; then initImage.
	newAgent := func(name string, from, to int, mode wire.Mode) *airline.TravelAgent {
		topo.Place(name, "branch/"+name)
		a, err := airline.NewTravelAgent(airline.AgentConfig{
			Name:        name,
			Directory:   "db",
			Net:         net,
			Clock:       clock,
			FlightsFrom: from,
			FlightsTo:   to,
			Mode:        mode,
			PushTrigger: "(t > 1500) && pending > 0",
			PullTrigger: "every(1000)",
		})
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	agent1 := newAgent("agent-1", 100, 109, wire.Weak)
	agent2 := newAgent("agent-2", 105, 114, wire.Weak) // overlaps 105–109

	fmt.Printf("agent-1 serves %d flights, agent-2 serves %d flights (overlap: 105-109)\n",
		agent1.ARS.Len(), agent2.ARS.Len())

	// Figure 3, lines 18–23: the reservation loop.
	for i := 0; i < 10; i++ {
		if err := agent1.ReserveTickets(1, 105); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("agent-1 reserved 10 seats on flight 105 (pending ops: %d)\n",
		agent1.CM.PendingOps())

	// The push trigger "(t > 1500) && pending > 0" fires once virtual time
	// passes 1500ms.
	agent1.CM.ScheduleTriggers(250)
	clock.RunUntil(2000)
	f, _ := db.Flight(105)
	fmt.Printf("after t=2000ms the push trigger has fired: db shows %d reserved on flight 105\n",
		f.Reserved)

	// agent-2's explicit pull sees the sales (overlapping property).
	if err := agent2.CM.PullImage(); err != nil {
		log.Fatal(err)
	}
	f2, _ := agent2.ARS.Flight(105)
	fmt.Printf("agent-2 pulled: flight 105 has %d/%d seats free\n", f2.Available(), f2.Capacity)

	// §5.1: a viewer becomes a buyer — the client upgrades its agent to
	// strong mode so purchases always see fresh data.
	client := &airline.Client{Agent: agent2}
	if flights, err := client.View("", ""); err == nil {
		fmt.Printf("client browses %d flights as a viewer\n", len(flights))
	}
	if err := client.BecomeBuyer(); err != nil {
		log.Fatal(err)
	}
	if err := client.Buy(2, 105); err != nil {
		log.Fatal(err)
	}
	f, _ = db.Flight(105)
	fmt.Printf("buyer purchased 2 seats in strong mode: db shows %d reserved\n", f.Reserved)
	fmt.Printf("strong pull invalidated agent-1: valid=%v\n", agent1.CM.Valid())

	// Figure 3, line 30: killImage.
	if err := agent1.Close(); err != nil {
		log.Fatal(err)
	}
	if err := agent2.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d protocol messages, %d conflicts resolved, final version v%d\n",
		stats.Total(), dm.Store().ConflictsSeen(), dm.CurrentVersion())
}
