// Collab: a collaborative document editor built on the Flecc public API.
//
// A document is a set of sections; each editor view declares which
// sections it works on through a "Sections" property, so Flecc only
// synchronizes editors whose sections overlap. Two editors share a
// section and race on it — the application's merge resolver (longest
// revision wins) reconciles; a third editor works on disjoint sections
// and is never disturbed (no false conflicts).
package main

import (
	"fmt"
	"log"

	"flecc"
)

func main() {
	doc := flecc.NewMapCodec()
	doc.SetString("sec/intro", "An introduction.")
	doc.SetString("sec/body", "The body.")
	doc.SetString("sec/appendix", "An appendix.")

	// Resolver: for concurrent edits of the same section, the longer
	// revision wins (a crude but deterministic "most work" rule).
	resolver := func(c flecc.Conflict) (flecc.Entry, error) {
		if len(c.Ours.Value) >= len(c.Theirs.Value) {
			return c.Ours, nil
		}
		return c.Theirs, nil
	}

	sys, err := flecc.New("doc", doc, flecc.WithResolver(resolver), flecc.WithMessageStats())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	mk := func(name, sections string) (*flecc.View, *flecc.MapCodec) {
		replica := flecc.NewMapCodec()
		v, err := sys.NewView(flecc.ViewConfig{
			Name:  name,
			View:  replica,
			Props: flecc.MustProps("Sections={" + sections + "}"),
			Mode:  flecc.Weak,
			// Freshness policy: accept the primary while fewer than 2
			// remote edits are unseen, otherwise gather from co-editors.
			ValidityTrigger: "staleness < 2",
		})
		if err != nil {
			log.Fatal(err)
		}
		return v, replica
	}
	alice, aDoc := mk("alice", "intro,body")
	bob, bDoc := mk("bob", "body,appendix")
	carol, cDoc := mk("carol", "references") // disjoint

	fmt.Printf("alice starts with body=%q\n", aDoc.GetString("sec/body"))

	// Alice and Bob both edit the body from the same snapshot — a real
	// concurrent conflict on push.
	edit := func(v *flecc.View, r *flecc.MapCodec, key, text string) {
		if err := v.StartUse(); err != nil {
			log.Fatal(err)
		}
		r.SetString(key, text)
		v.EndUse()
		if err := v.Push(); err != nil {
			log.Fatal(err)
		}
	}
	edit(alice, aDoc, "sec/body", "The body, thoroughly rewritten by Alice with much detail.")
	edit(bob, bDoc, "sec/body", "Bob's body edit.")

	// The resolver kept Alice's longer revision.
	if err := bob.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the race, bob sees body=%q\n", bDoc.GetString("sec/body"))

	// Carol edits her disjoint section; nobody else is contacted.
	before := sys.Messages()
	edit(carol, cDoc, "sec/references", "[1] Flecc, IPPS 2004.")
	if err := carol.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol's disjoint edit+pull cost %d messages (no false conflicts)\n",
		sys.Messages()-before)

	// Alice re-targets her property set to include the appendix at run
	// time — from now on she and Bob also share that section.
	if err := alice.SetProps(flecc.MustProps("Sections={intro,body,appendix}")); err != nil {
		log.Fatal(err)
	}
	edit(bob, bDoc, "sec/appendix", "An appendix, expanded by Bob.")
	if err := alice.Pull(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after SetProps, alice sees appendix=%q\n", aDoc.GetString("sec/appendix"))

	for _, v := range []*flecc.View{alice, bob, carol} {
		if err := v.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("final body at the primary: %q\n", doc.GetString("sec/body"))
	fmt.Printf("total protocol messages: %d\n", sys.Messages())
}
