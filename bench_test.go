// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per figure (the -v output of each prints the same rows/series the paper
// reports) plus micro-benchmarks for the wire codec (ablation E8) and the
// protocol hot paths. Run with:
//
//	go test -bench=. -benchmem
package flecc_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"flecc"
	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/experiments"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/trace"
	"flecc/internal/transport"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// BenchmarkFig4Efficiency regenerates Figure 4: the number of messages
// between cache managers and the directory manager for Flecc vs the
// time-sharing and multicast baselines, as the conflict-group size sweeps
// 10..100 over 100 agents.
func BenchmarkFig4Efficiency(b *testing.B) {
	cfg := experiments.DefaultFig4()
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	first := res.Rows[0]
	b.ReportMetric(float64(first.Flecc), "flecc-msgs@g10")
	b.ReportMetric(float64(last.Flecc), "flecc-msgs@g100")
	b.ReportMetric(float64(first.TimeSharing), "timesharing-msgs")
	b.ReportMetric(float64(first.Multicast), "multicast-msgs")
	if testing.Verbose() {
		res.WriteTo(logWriter{b})
	}
}

// BenchmarkFig5Adaptability regenerates Figure 5: per-operation execution
// time and data quality across the WEAK → STRONG → WEAK timeline for ten
// conflicting agents.
func BenchmarkFig5Adaptability(b *testing.B) {
	cfg := experiments.DefaultFig5()
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	s := res.Summaries()
	b.ReportMetric(s[0].MeanExec, "weak-exec-ms")
	b.ReportMetric(s[1].MeanExec, "strong-exec-ms")
	b.ReportMetric(s[0].MeanQuality, "weak-unseen")
	b.ReportMetric(s[1].MeanQuality, "strong-unseen")
	if testing.Verbose() {
		res.WriteTo(logWriter{b})
	}
}

// BenchmarkFig6Flexibility regenerates Figure 6: data quality and message
// counts with and without a time-based pull trigger, ten conflicting weak
// agents.
func BenchmarkFig6Flexibility(b *testing.B) {
	cfg := experiments.DefaultFig6()
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.NoTriggers.Messages), "msgs-no-trigger")
	b.ReportMetric(float64(res.WithTrigger.Messages), "msgs-with-trigger")
	b.ReportMetric(res.NoTriggers.MeanQuality(), "unseen-no-trigger")
	b.ReportMetric(res.WithTrigger.MeanQuality(), "unseen-with-trigger")
	if testing.Verbose() {
		res.WriteTo(logWriter{b})
	}
}

// BenchmarkAblationConflict regenerates ablation E5 (conflict-decision
// policy: worst-case vs static map vs dynamic properties).
func BenchmarkAblationConflict(b *testing.B) {
	var res *experiments.AblationConflictResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationConflict(40, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.Messages), string(row.Policy)+"-msgs")
	}
}

// BenchmarkAblationRW regenerates ablation E6 (read/write semantics).
func BenchmarkAblationRW(b *testing.B) {
	var res *experiments.AblationRWResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationRW(10, 5)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MessagesBase), "base-msgs")
	b.ReportMetric(float64(res.MessagesAware), "read-aware-msgs")
}

// BenchmarkAblationPeer regenerates ablation E7 (centralized O(n) vs
// decentralized O(n²) pairings and anti-entropy traffic).
func BenchmarkAblationPeer(b *testing.B) {
	var res *experiments.AblationPeerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationPeer([]int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.PairingsDecentralized), "pairings@n16")
	b.ReportMetric(float64(last.SyncMessagesPerAntiEntropyRound), "msgs@n16")
}

// BenchmarkAblationPropagation regenerates ablation E10 (pull-based vs
// push-based update distribution across a write-rate sweep).
func BenchmarkAblationPropagation(b *testing.B) {
	var res *experiments.PropagationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunPropagation(experiments.DefaultPropagation())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(first.MessagesPush), "push-msgs@w1")
	b.ReportMetric(float64(last.MessagesPush), "push-msgs@wmax")
	b.ReportMetric(float64(last.MessagesPull), "pull-msgs@wmax")
}

// BenchmarkBuyerMix regenerates experiment E9 (adaptive mode switching vs
// fixed all-strong / all-weak policies under a browse/buy workload).
func BenchmarkBuyerMix(b *testing.B) {
	var res *experiments.BuyerMixResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunBuyerMix(experiments.DefaultBuyerMix())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.MessagesAdaptive), "adaptive-msgs@frac1")
	b.ReportMetric(float64(last.MessagesAllStrong), "strong-msgs@frac1")
	b.ReportMetric(float64(last.OversoldAllWeak), "weak-oversold@frac1")
}

// --- E8: wire codec micro-benchmarks --------------------------------------

func benchMessage(entries int) *wire.Message {
	img := image.New(property.MustSet("Flights={100..139}"))
	for i := 0; i < entries; i++ {
		img.Put(image.Entry{
			Key:     fmt.Sprintf("flight/%03d", i),
			Value:   []byte("NYC|SFO|200|57|19900"),
			Version: vclock.Version(i),
			Writer:  "agent-042",
		})
	}
	img.Version = vclock.Version(entries)
	return &wire.Message{
		Type: wire.TPush, Seq: 42, From: "agent-042", View: "agent-042",
		Ops: 7, Img: img,
	}
}

// BenchmarkCodecEncode measures the hand-written binary encoder.
func BenchmarkCodecEncode(b *testing.B) {
	m := benchMessage(40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = wire.Encode(m)
	}
}

// BenchmarkCodecDecode measures the decoder.
func BenchmarkCodecDecode(b *testing.B) {
	buf := wire.Encode(benchMessage(40))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// gobMessage mirrors wire.Message for the stdlib-gob comparison.
type gobMessage struct {
	Type    uint8
	Seq     uint64
	From    string
	View    string
	Ops     uint32
	Entries map[string][]byte
}

// BenchmarkCodecGobBaseline measures encoding/gob on an equivalent
// payload, the comparison point for the custom codec.
func BenchmarkCodecGobBaseline(b *testing.B) {
	m := benchMessage(40)
	g := gobMessage{Type: uint8(m.Type), Seq: m.Seq, From: m.From, View: m.View, Ops: m.Ops, Entries: map[string][]byte{}}
	for k, e := range m.Img.Entries {
		g.Entries[k] = e.Value
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanoutEncodeOnce measures the serialization cost of one
// DM-initiated propagate round — the same 64-entry TUpdate body to N
// targets — under the two strategies: "per-target" re-encodes the whole
// message for every recipient (the pre-change path), "encode-once"
// serializes the body a single time via wire.Preencode and stamps only the
// per-link header per recipient. The acceptance bar: the encode-once round
// at 8 targets costs within 1.5x of a single-target round, because only
// the tiny headers scale with N.
func BenchmarkFanoutEncodeOnce(b *testing.B) {
	base := benchMessage(64)
	base.Type = wire.TUpdate
	for _, targets := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("per-target/targets=%d", targets), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for t := 0; t < targets; t++ {
					m := *base
					m.View = "v"
					m.Seq = uint64(t)
					if err := wire.WriteFrame(io.Discard, &m); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("encode-once/targets=%d", targets), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := *base
				m.Pre = wire.Preencode(&m)
				for t := 0; t < targets; t++ {
					mm := m
					mm.View = "v"
					mm.Seq = uint64(t)
					if err := wire.WriteFrame(io.Discard, &mm); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- protocol hot paths ----------------------------------------------------

// BenchmarkPullWeak measures one relaxed weak-mode pull round trip through
// the full stack (public API, in-proc transport).
func BenchmarkPullWeak(b *testing.B) {
	db := flecc.NewMapCodec()
	db.SetString("k", "v")
	sys, err := flecc.New("db", db)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	v, err := sys.NewView(flecc.ViewConfig{
		Name: "v1", View: flecc.NewMapCodec(), Props: flecc.MustProps("P={x}"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Pull(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushPullCycle measures a full write-publish-observe cycle
// between two views.
func BenchmarkPushPullCycle(b *testing.B) {
	db := flecc.NewMapCodec()
	sys, err := flecc.New("db", db)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	r1 := flecc.NewMapCodec()
	v1, err := sys.NewView(flecc.ViewConfig{Name: "v1", View: r1, Props: flecc.MustProps("P={x}")})
	if err != nil {
		b.Fatal(err)
	}
	v2, err := sys.NewView(flecc.ViewConfig{Name: "v2", View: flecc.NewMapCodec(), Props: flecc.MustProps("P={x}")})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v1.Use(func() error {
			r1.SetString("k", fmt.Sprint(i))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if err := v1.Push(); err != nil {
			b.Fatal(err)
		}
		if err := v2.Pull(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCommit measures one primary-copy commit (conflict
// detection + shadow update + merge) of a 10-entry delta.
func BenchmarkStoreCommit(b *testing.B) {
	db := flecc.NewMapCodec()
	st := directory.NewStore(db, vclock.NewSim())
	props := property.MustSet("F={1..10}")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := image.New(props)
		for k := 0; k < 10; k++ {
			delta.Put(image.Entry{
				Key:     fmt.Sprintf("k%d", k),
				Value:   []byte(fmt.Sprintf("v%d", i)),
				Version: vclock.Version(i), // always current: no conflicts
			})
		}
		if _, _, _, err := st.Commit("w", delta, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreExtract measures a delta extraction from a 100-key
// primary.
func BenchmarkStoreExtract(b *testing.B) {
	db := flecc.NewMapCodec()
	st := directory.NewStore(db, vclock.NewSim())
	props := property.MustSet("F={1..10}")
	delta := image.New(props)
	for k := 0; k < 100; k++ {
		delta.Put(image.Entry{Key: fmt.Sprintf("k%03d", k), Value: []byte("value")})
	}
	if _, _, _, err := st.Commit("w", delta, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Extract(props, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreExtractDelta measures a delta pull from a 1000-key
// primary after a 10-key commit — the hot shape in steady state, where a
// puller is nearly caught up. "keyed" serves it from the dirty-key index
// via the codec's ExtractKeys; "full" hides the keyed extension, forcing
// the classic full-extract + DeltaSince walk over all 1000 keys.
func BenchmarkStoreExtractDelta(b *testing.B) {
	build := func(hide bool) (*directory.Store, vclock.Version, property.Set) {
		db := flecc.NewMapCodec()
		var codec image.Codec = db
		if hide {
			codec = image.FuncCodec{ExtractFn: db.Extract, MergeFn: db.Merge}
		}
		st := directory.NewStore(codec, vclock.NewSim())
		props := property.MustSet("F={1..10}")
		seed := image.New(props)
		for k := 0; k < 1000; k++ {
			seed.Put(image.Entry{Key: fmt.Sprintf("k%04d", k), Value: []byte("value")})
		}
		if _, _, _, err := st.Commit("w", seed, 1); err != nil {
			b.Fatal(err)
		}
		since := st.Current()
		tail := image.New(props)
		for k := 0; k < 10; k++ {
			tail.Put(image.Entry{Key: fmt.Sprintf("k%04d", k), Value: []byte("fresh"), Version: since})
		}
		if _, _, _, err := st.Commit("w", tail, 1); err != nil {
			b.Fatal(err)
		}
		return st, since, props
	}
	for _, tc := range []struct {
		name string
		hide bool
	}{{"keyed", false}, {"full", true}} {
		b.Run(tc.name, func(b *testing.B) {
			st, since, props := build(tc.hide)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img, err := st.Extract(props, since)
				if err != nil {
					b.Fatal(err)
				}
				if img.Len() != 10 {
					b.Fatalf("delta has %d entries, want 10", img.Len())
				}
			}
		})
	}
}

// benchFakeView attaches an endpoint that answers DM-initiated calls with
// empty success replies and registers it as an active weak view.
func benchFakeView(b *testing.B, net transport.Network, name string, props property.Set) transport.Endpoint {
	b.Helper()
	ep, err := net.Attach(name, func(req *wire.Message) *wire.Message {
		switch req.Type {
		case wire.TInvalidate, wire.TPull:
			return &wire.Message{Type: wire.TImage}
		default:
			return &wire.Message{Type: wire.TAck}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TRegister, View: name, Mode: wire.Weak, Props: props}); err != nil || reply.Type == wire.TErr {
		b.Fatalf("register %s: %v %v", name, err, reply)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TInit}); err != nil || reply.Type == wire.TErr {
		b.Fatalf("init %s: %v %v", name, err, reply)
	}
	return ep
}

// benchContentionNet wires the contention topology both contention
// benchmarks share: a DM whose links to seven conflicting members cost
// 500µs each, plus one slow member at 2ms — the "one slow sharer in the
// conflict group" scenario from the scalability discussion (§4.2).
func benchContentionNet(b *testing.B, members int) (*transport.Faulty, property.Set) {
	f := transport.NewFaulty(transport.NewInproc(), 1)
	props := property.MustSet("P={x}")
	for i := 0; i < members; i++ {
		delay := 500 * time.Microsecond
		if i == members-1 {
			delay = 2 * time.Millisecond // the slow member
		}
		f.SetEdgeDelay("dm", fmt.Sprintf("v%d", i), delay)
	}
	return f, props
}

// BenchmarkPullContention measures one pull that must gather from 8
// conflicting weak views, one of them slow. At FanOut=1 the pull pays the
// sum of all link delays; at FanOut>=4 it pays roughly the slow member
// alone, which is where the >=2x throughput gain comes from.
func BenchmarkPullContention(b *testing.B) {
	const members = 8
	for _, fanout := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			f, props := benchContentionNet(b, members)
			dm, err := directory.New("dm", flecc.NewMapCodec(), vclock.NewSim(), f, directory.Options{
				AlwaysGather: true,
				FanOut:       fanout,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dm.Close()
			for i := 0; i < members; i++ {
				benchFakeView(b, f, fmt.Sprintf("v%d", i), props)
			}
			puller := benchFakeView(b, f, "puller", props)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reply, err := puller.Call("dm", &wire.Message{Type: wire.TPull})
				if err != nil || reply.Type != wire.TImage {
					b.Fatalf("pull: %v %v", err, reply)
				}
			}
		})
	}
}

// BenchmarkPullContentionObserved reruns the fanout=8 contention pull
// with the full observability stack attached — wire counters, the raw
// message trace ring, and span reconstruction all fanned out by
// transport.Observers — against a detached control. The acceptance bar
// for the observer path is that "observed" stays within 5% of
// "detached"; compare with:
//
//	go test -bench=PullContentionObserved -benchtime=2s
func BenchmarkPullContentionObserved(b *testing.B) {
	const members = 8
	for _, observed := range []bool{false, true} {
		label := "detached"
		if observed {
			label = "observed"
		}
		b.Run(label, func(b *testing.B) {
			f, props := benchContentionNet(b, members)
			if observed {
				f.AddObserver(metrics.NewMessageStats(false))
				f.AddObserver(trace.NewRecorder(2048))
				f.AddObserver(trace.NewSpanRecorder("dm", 256))
			}
			dm, err := directory.New("dm", flecc.NewMapCodec(), vclock.NewSim(), f, directory.Options{
				AlwaysGather: true,
				FanOut:       8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dm.Close()
			for i := 0; i < members; i++ {
				benchFakeView(b, f, fmt.Sprintf("v%d", i), props)
			}
			puller := benchFakeView(b, f, "puller", props)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reply, err := puller.Call("dm", &wire.Message{Type: wire.TPull})
				if err != nil || reply.Type != wire.TImage {
					b.Fatalf("pull: %v %v", err, reply)
				}
			}
		})
	}
}

// BenchmarkPropagateFanout measures one push under PropagateOnPush with 8
// conflicting active recipients, one slow: the TUpdate distribution round
// fans out concurrently at FanOut>1.
func BenchmarkPropagateFanout(b *testing.B) {
	const members = 8
	for _, fanout := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			f, props := benchContentionNet(b, members)
			dm, err := directory.New("dm", flecc.NewMapCodec(), vclock.NewSim(), f, directory.Options{
				PropagateOnPush: true,
				FanOut:          fanout,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dm.Close()
			for i := 0; i < members; i++ {
				benchFakeView(b, f, fmt.Sprintf("v%d", i), props)
			}
			writer := benchFakeView(b, f, "writer", props)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := image.New(props)
				delta.Put(image.Entry{Key: "k", Value: []byte(fmt.Sprint(i)), Version: dm.CurrentVersion()})
				reply, err := writer.Call("dm", &wire.Message{Type: wire.TPush, Img: delta, Ops: 1})
				if err != nil || reply.Type != wire.TAck {
					b.Fatalf("push: %v %v", err, reply)
				}
			}
		})
	}
}

// BenchmarkDynConfl measures the dynamic conflict decision (Definition 1)
// on realistic property sets.
func BenchmarkDynConfl(b *testing.B) {
	p := property.MustSet("Flights={100..149}; Seats=[0,400]")
	q := property.MustSet("Flights={140..189}; Fare=[0,1000]")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = property.DynConfl(p, q)
	}
}

// BenchmarkTriggerEval measures one compiled trigger evaluation — the
// per-tick cost of delegating synchronization decisions to the system.
func BenchmarkTriggerEval(b *testing.B) {
	trig := trigger.MustCompile("(t > 1500) && pending > 0 || every(500)")
	env := benchEnv{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trig.Fire(float64(i), env); err != nil {
			b.Fatal(err)
		}
	}
}

type benchEnv struct{}

func (benchEnv) Lookup(name string) (float64, bool) { return 3, true }

// logWriter routes table output through b.Log.
type logWriter struct{ b *testing.B }

func (w logWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkShardedAirline compares the airline workload against a single
// directory manager and against a 4-shard directory service
// (internal/shard). Both configurations go through the router, so the
// delta isolates the effect of partitioning: four agent groups serve
// disjoint flight ranges (pinned one group per shard), and each group's
// agents reserve seats on distinct flights and push concurrently. One
// benchmark iteration is one reserve+push round per agent.
func BenchmarkShardedAirline(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedAirline(b, shards)
		})
	}
}

func benchShardedAirline(b *testing.B, shards int) {
	const (
		groups         = 4
		agentsPerGroup = 2
		flightsPerGrp  = 25
		firstFlight    = 100
	)
	net := transport.NewInproc()
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)
	clock := vclock.NewSim()
	svc, err := shard.NewService(shard.ServiceConfig{
		Name:   "dm",
		Net:    net,
		Clock:  clock,
		Shards: shards,
		// Each shard extracts from its own seeded replica of the flight
		// database; the groups are pinned to disjoint shards, so the
		// shards never serve overlapping flights. A single shared codec
		// would serialize every shard on one lock and defeat the point.
		Primary: func(int) image.Codec {
			rs := airline.NewReservationSystem()
			airline.SeedFlights(rs, firstFlight, groups*flightsPerGrp, 1<<20)
			return rs
		},
		Opts: directory.Options{Resolver: airline.SeatResolver},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	for g := 0; g < groups; g++ {
		lo := firstFlight + g*flightsPerGrp
		pin := property.New(airline.PropFlights, property.DiscreteRange(lo, lo+flightsPerGrp-1))
		if err := svc.Map().Pin(pin, shard.Node("dm", g%shards)); err != nil {
			b.Fatal(err)
		}
	}

	type worker struct {
		agent  *airline.TravelAgent
		flight int
	}
	var workers []worker
	for g := 0; g < groups; g++ {
		lo := firstFlight + g*flightsPerGrp
		for a := 0; a < agentsPerGroup; a++ {
			ag, err := airline.NewTravelAgent(airline.AgentConfig{
				Name:        fmt.Sprintf("agent-g%d-%d", g, a),
				Directory:   "dm",
				Net:         net,
				Clock:       clock,
				FlightsFrom: lo,
				FlightsTo:   lo + flightsPerGrp - 1,
				Mode:        wire.Weak,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ag.Close()
			// Distinct flights per agent: no seat conflicts to resolve,
			// so the measurement is pure protocol throughput.
			workers = append(workers, worker{agent: ag, flight: lo + a})
		}
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := w.agent.ReserveTickets(1, w.flight); err != nil {
					b.Error(err)
					return
				}
				if err := w.agent.CM.PushImage(); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	// Aggregate protocol operations per iteration: each agent's round is
	// one pull and one push.
	b.ReportMetric(float64(len(workers)*2), "protocol-ops/iter")
	// Each directory manager serves its requests serially, so the service's
	// aggregate throughput capacity is bounded by its busiest shard:
	// capacity-x = total shard messages / max per-shard messages. A single
	// shard is 1.0 by construction; 4 balanced shards approach 4.0. (Wall
	// time above only shows the same scaling when the host has spare cores;
	// this metric is the machine-independent statement of it.)
	per := stats.PerShard()
	var total, max int64
	for _, n := range per {
		total += n
		if n > max {
			max = n
		}
	}
	if max > 0 {
		b.ReportMetric(float64(total)/float64(max), "capacity-x")
	}
}
