package flecc_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"flecc"
)

func newSystem(t *testing.T, opts ...flecc.Option) (*flecc.System, *flecc.MapCodec) {
	t.Helper()
	db := flecc.NewMapCodec()
	db.SetString("greeting", "hello")
	sys, err := flecc.New("db", db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, db
}

func newView(t *testing.T, sys *flecc.System, name, props string, mode flecc.Mode) (*flecc.View, *flecc.MapCodec) {
	t.Helper()
	replica := flecc.NewMapCodec()
	v, err := sys.NewView(flecc.ViewConfig{
		Name:  name,
		View:  replica,
		Props: flecc.MustProps(props),
		Mode:  mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v, replica
}

func TestQuickstartFlow(t *testing.T) {
	sys, db := newSystem(t)
	v, replica := newView(t, sys, "replica-1", "Data={greeting}", flecc.Weak)
	if replica.GetString("greeting") != "hello" {
		t.Fatal("init should deliver primary data")
	}
	err := v.Use(func() error {
		replica.SetString("greeting", "bonjour")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Push(); err != nil {
		t.Fatal(err)
	}
	if db.GetString("greeting") != "bonjour" {
		t.Fatal("push should reach the primary")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Views()) != 0 {
		t.Fatal("view should be unregistered")
	}
}

func TestTwoViewsShareData(t *testing.T) {
	sys, _ := newSystem(t)
	v1, r1 := newView(t, sys, "v1", "P={x}", flecc.Weak)
	v2, r2 := newView(t, sys, "v2", "P={x}", flecc.Weak)
	if err := v1.Use(func() error { r1.SetString("k", "from-v1"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := v1.Push(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Pull(); err != nil {
		t.Fatal(err)
	}
	if r2.GetString("k") != "from-v1" {
		t.Fatal("update should flow through the primary")
	}
	if v2.Seen() != sys.CurrentVersion() {
		t.Fatal("seen should advance")
	}
}

func TestStrongModePublicAPI(t *testing.T) {
	sys, _ := newSystem(t)
	v1, _ := newView(t, sys, "v1", "P={x}", flecc.Strong)
	v2, _ := newView(t, sys, "v2", "P={x}", flecc.Strong)
	if err := v1.Pull(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Pull(); err != nil {
		t.Fatal(err)
	}
	if v1.Valid() {
		t.Fatal("v1 should be invalidated by v2's strong pull")
	}
	if err := v1.StartUse(); !errors.Is(err, flecc.ErrInvalidated) {
		t.Fatalf("err = %v", err)
	}
}

func TestModeAndPropsSwitch(t *testing.T) {
	sys, _ := newSystem(t)
	v, _ := newView(t, sys, "v1", "P={x}", flecc.Weak)
	if v.Mode() != flecc.Weak {
		t.Fatal("initial mode")
	}
	if err := v.SetMode(flecc.Strong); err != nil {
		t.Fatal(err)
	}
	if v.Mode() != flecc.Strong {
		t.Fatal("mode switch")
	}
	if err := v.SetProps(flecc.MustProps("P={y}")); err != nil {
		t.Fatal(err)
	}
	_ = sys
}

func TestUnseenMetric(t *testing.T) {
	sys, _ := newSystem(t)
	v1, r1 := newView(t, sys, "v1", "P={x}", flecc.Weak)
	v2, _ := newView(t, sys, "v2", "P={x}", flecc.Weak)
	for i := 0; i < 3; i++ {
		if err := v1.Use(func() error { r1.SetString("k", fmt.Sprint(i)); return nil }); err != nil {
			t.Fatal(err)
		}
		if err := v1.Push(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Unseen("v2"); got != 3 {
		t.Fatalf("unseen = %d, want 3", got)
	}
	if err := v2.Pull(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Unseen("v2"); got != 0 {
		t.Fatalf("unseen after pull = %d", got)
	}
	if v1.PendingOps() != 0 {
		t.Fatal("pushed view should have no pending ops")
	}
}

func TestMessageStatsOption(t *testing.T) {
	sys, _ := newSystem(t, flecc.WithMessageStats())
	before := sys.Messages()
	v, _ := newView(t, sys, "v1", "P={x}", flecc.Weak)
	if sys.Messages() <= before {
		t.Fatal("registration should be counted")
	}
	_ = v
	// Without the option, Messages reports 0.
	sys2, _ := newSystem(t)
	if sys2.Messages() != 0 {
		t.Fatal("stats disabled should report 0")
	}
}

func TestLatencyOptionAndClock(t *testing.T) {
	sys, _ := newSystem(t, flecc.WithLatency(7))
	v, err := sys.NewView(flecc.ViewConfig{
		Name:  "far",
		View:  flecc.NewMapCodec(),
		Props: flecc.MustProps("P={x}"),
		Host:  "edge-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := sys.Now()
	if err := v.Pull(); err != nil {
		t.Fatal(err)
	}
	if sys.Now()-t0 != 14 {
		t.Fatalf("pull should cost one RTT (14ms), took %v", sys.Now()-t0)
	}
	sys.AdvanceTo(sys.Now() + 100)
}

func TestTriggersThroughPublicAPI(t *testing.T) {
	sys, db := newSystem(t)
	v1, r1 := newView(t, sys, "v1", "P={x}", flecc.Weak)
	v2, r2 := newView(t, sys, "v2", "P={x}", flecc.Weak)
	_ = r2
	v2b, err := sys.NewView(flecc.ViewConfig{
		Name:  "v3",
		View:  flecc.NewMapCodec(),
		Props: flecc.MustProps("P={x}"),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = v2b
	// v1 publishes; v2 has a periodic pull trigger.
	if err := v1.Use(func() error { r1.SetString("fresh", "yes"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := v1.Push(); err != nil {
		t.Fatal(err)
	}
	if db.GetString("fresh") != "yes" {
		t.Fatal("push failed")
	}
	// Recreate v2 with trigger (ViewConfig trigger path).
	v2.Close()
	replica := flecc.NewMapCodec()
	v2t, err := sys.NewView(flecc.ViewConfig{
		Name:        "v2t",
		View:        replica,
		Props:       flecc.MustProps("P={x}"),
		PullTrigger: "every(50)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v2t.ScheduleTriggers(50) {
		t.Fatal("scheduler should start")
	}
	// Another publish after v2t's init.
	if err := v1.Use(func() error { r1.SetString("fresh2", "also"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := v1.Push(); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceTo(sys.Now() + 200)
	if replica.GetString("fresh2") != "also" {
		t.Fatal("periodic trigger should have pulled the update")
	}
	v2t.StopTriggers()
}

func TestReadAwareOption(t *testing.T) {
	sys, _ := newSystem(t, flecc.WithReadAware())
	mk := func(name string) *flecc.View {
		v, err := sys.NewView(flecc.ViewConfig{
			Name: name, View: flecc.NewMapCodec(),
			Props: flecc.MustProps("P={x}"), Mode: flecc.Strong, ReadOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	r1, r2 := mk("r1"), mk("r2")
	if err := r1.Pull(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Pull(); err != nil {
		t.Fatal(err)
	}
	if !r1.Valid() || !r2.Valid() {
		t.Fatal("read-aware strong readers should coexist")
	}
}

func TestStaticSeed(t *testing.T) {
	sys, _ := newSystem(t)
	sys.SetStatic("v1", "v2", flecc.NoConflict)
	v1, _ := newView(t, sys, "v1", "P={x}", flecc.Strong)
	v2, _ := newView(t, sys, "v2", "P={x}", flecc.Strong)
	v1.Pull()
	if err := v2.Pull(); err != nil {
		t.Fatal(err)
	}
	if !v1.Valid() {
		t.Fatal("static no-conflict should suppress invalidation")
	}
}

func TestMapCodecBasics(t *testing.T) {
	m := flecc.NewMapCodec()
	m.SetString("a", "1")
	m.Set("b", []byte{2})
	if m.Len() != 2 || m.GetString("a") != "1" || m.Get("b")[0] != 2 {
		t.Fatal("map ops")
	}
	if m.Get("missing") != nil {
		t.Fatal("missing key should be nil")
	}
	m.Delete("a")
	if m.Len() != 1 {
		t.Fatal("delete")
	}
	// Mutation isolation.
	val := []byte("orig")
	m.Set("c", val)
	val[0] = 'X'
	if m.GetString("c") != "orig" {
		t.Fatal("Set should copy")
	}
	got := m.Get("c")
	got[0] = 'Y'
	if m.GetString("c") != "orig" {
		t.Fatal("Get should copy")
	}
}

func TestTraceOption(t *testing.T) {
	sys, _ := newSystem(t, flecc.WithTrace(100), flecc.WithMessageStats())
	v1, _ := newView(t, sys, "v1", "P={x}", flecc.Strong)
	v2, _ := newView(t, sys, "v2", "P={x}", flecc.Strong)
	v1.Pull()
	v2.Pull() // invalidates v1
	out := sys.Trace()
	for _, want := range []string{"register", "pull", "invalidate", "v1", "v2", "db"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	// Stats and trace compose.
	if sys.Messages() == 0 {
		t.Fatal("stats should still count")
	}
	// Without the option, Trace is empty.
	sys2, _ := newSystem(t)
	if sys2.Trace() != "" {
		t.Fatal("trace should be empty without WithTrace")
	}
}

func TestParseProps(t *testing.T) {
	p, err := flecc.ParseProps("A={1,2}; B=[0,5]")
	if err != nil || p.Len() != 2 {
		t.Fatalf("p=%v err=%v", p, err)
	}
	if _, err := flecc.ParseProps("!!!"); err == nil {
		t.Fatal("bad props should fail")
	}
}
