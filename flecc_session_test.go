package flecc_test

import (
	"fmt"
	"testing"

	"flecc"
)

// The public async session API: PushAsync coalesces adjacent writes into
// one round, Flush drains, and the synchronized state reaches the primary.
func TestViewPushAsyncCoalesces(t *testing.T) {
	sys, db := newSystem(t, flecc.WithMessageStats())
	replica := flecc.NewMapCodec()
	v, err := sys.NewView(flecc.ViewConfig{
		Name:        "r1",
		View:        replica,
		Props:       flecc.MustProps("P={x}"),
		Mode:        flecc.Weak,
		ManualFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	var fut *flecc.PushFuture
	for i := 0; i < n; i++ {
		if err := v.StartUse(); err != nil {
			t.Fatal(err)
		}
		replica.SetString(fmt.Sprintf("k%d", i), fmt.Sprintf("val%d", i))
		v.EndUse()
		f := v.PushAsync()
		if fut != nil && f != fut {
			t.Fatalf("write %d started a new round; adjacent pushes must coalesce", i)
		}
		fut = f
	}
	if !v.PushPending() {
		t.Fatal("a round should be pending before Flush")
	}
	before := sys.Messages()
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if v.PushPending() {
		t.Fatal("no round should remain after Flush")
	}
	// One coalesced round = one request/reply pair on the wire.
	if got := sys.Messages() - before; got != 2 {
		t.Fatalf("%d writes cost %d messages, want 2 (one TPush round)", n, got)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if got, want := db.GetString(k), fmt.Sprintf("val%d", i); got != want {
			t.Fatalf("primary %s = %q, want %q", k, got, want)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

// Close (killImage) must drain a buffered async round and deliver its
// writes before unregistering.
func TestViewCloseDrainsAsyncPushes(t *testing.T) {
	sys, db := newSystem(t)
	v, replica := newView(t, sys, "r1", "P={x}", flecc.Weak)
	if err := v.StartUse(); err != nil {
		t.Fatal(err)
	}
	replica.SetString("parting", "gift")
	v.EndUse()
	fut := v.PushAsync()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatalf("future after draining close: %v", err)
	}
	if got := db.GetString("parting"); got != "gift" {
		t.Fatalf("primary parting = %q, want %q", got, "gift")
	}
}
