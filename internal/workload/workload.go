// Package workload generates the synthetic client behaviour the paper's
// introduction motivates: "an airline reservation system might allow users
// to browse flights, buy tickets, and switch between the two modes of
// operation. In general, users accept stale data during browsing (weak
// consistency), but require most current data when buying tickets (strong
// consistency)."
//
// A Generator produces a deterministic (seeded) stream of client sessions:
// each session is a run of browse operations followed, with probability
// BuyFraction, by an upgrade to buying and a purchase. The buyer-mix
// experiment (experiments.RunBuyerMix) sweeps BuyFraction to show how the
// cost of coherence scales with the share of clients that actually need
// strong consistency — Flecc's central value proposition.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is one client action.
type OpKind uint8

const (
	// OpBrowse is a read-only lookup (weak mode suffices).
	OpBrowse OpKind = iota
	// OpUpgrade switches the client's agent to strong mode.
	OpUpgrade
	// OpBuy purchases seats (requires strong mode).
	OpBuy
	// OpDowngrade returns the agent to weak mode after buying.
	OpDowngrade
)

func (k OpKind) String() string {
	switch k {
	case OpBrowse:
		return "browse"
	case OpUpgrade:
		return "upgrade"
	case OpBuy:
		return "buy"
	case OpDowngrade:
		return "downgrade"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated client action.
type Op struct {
	Kind OpKind
	// Client indexes the client performing the action.
	Client int
	// Flight is the target flight (browse filter origin or purchase
	// target).
	Flight int
	// Seats is the purchase size (OpBuy only).
	Seats int
}

// Config parameterizes the generator.
type Config struct {
	// Seed makes the stream reproducible.
	Seed int64
	// Clients is the number of concurrent client sessions.
	Clients int
	// Sessions is the number of sessions generated per client.
	Sessions int
	// BrowsesPerSession is the mean browse-run length (geometric-ish,
	// at least 1).
	BrowsesPerSession int
	// BuyFraction in [0,1] is the probability a session ends in a
	// purchase.
	BuyFraction float64
	// FlightsFrom/FlightsTo bound the flights clients look at.
	FlightsFrom, FlightsTo int
	// MaxSeats bounds purchase sizes (≥1).
	MaxSeats int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Clients <= 0 || c.Sessions <= 0 {
		return fmt.Errorf("workload: Clients and Sessions must be positive")
	}
	if c.BuyFraction < 0 || c.BuyFraction > 1 {
		return fmt.Errorf("workload: BuyFraction must be in [0,1], got %g", c.BuyFraction)
	}
	if c.FlightsTo < c.FlightsFrom {
		return fmt.Errorf("workload: empty flight range [%d,%d]", c.FlightsFrom, c.FlightsTo)
	}
	return nil
}

// Generate produces the full deterministic op stream. Client sessions are
// interleaved round-robin (client 0 session 0, client 1 session 0, ...),
// matching the round-robin drive of the experiment harnesses.
func Generate(cfg Config) ([]Op, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BrowsesPerSession < 1 {
		cfg.BrowsesPerSession = 1
	}
	if cfg.MaxSeats < 1 {
		cfg.MaxSeats = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	flight := func() int {
		return cfg.FlightsFrom + r.Intn(cfg.FlightsTo-cfg.FlightsFrom+1)
	}
	var ops []Op
	for s := 0; s < cfg.Sessions; s++ {
		for c := 0; c < cfg.Clients; c++ {
			nBrowse := 1 + r.Intn(2*cfg.BrowsesPerSession-1)
			for b := 0; b < nBrowse; b++ {
				ops = append(ops, Op{Kind: OpBrowse, Client: c, Flight: flight()})
			}
			if r.Float64() < cfg.BuyFraction {
				ops = append(ops, Op{Kind: OpUpgrade, Client: c})
				ops = append(ops, Op{
					Kind:   OpBuy,
					Client: c,
					Flight: flight(),
					Seats:  1 + r.Intn(cfg.MaxSeats),
				})
				ops = append(ops, Op{Kind: OpDowngrade, Client: c})
			}
		}
	}
	return ops, nil
}

// Stats summarizes a stream.
type Stats struct {
	Browses, Buys, Upgrades int
	SeatsSold               int
}

// Summarize tallies a stream.
func Summarize(ops []Op) Stats {
	var s Stats
	for _, op := range ops {
		switch op.Kind {
		case OpBrowse:
			s.Browses++
		case OpBuy:
			s.Buys++
			s.SeatsSold += op.Seats
		case OpUpgrade:
			s.Upgrades++
		}
	}
	return s
}
