package workload

import (
	"reflect"
	"testing"
	"testing/quick"
)

func validCfg() Config {
	return Config{
		Seed: 7, Clients: 4, Sessions: 5, BrowsesPerSession: 3,
		BuyFraction: 0.5, FlightsFrom: 100, FlightsTo: 109, MaxSeats: 3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield identical streams")
	}
	cfg := validCfg()
	cfg.Seed = 8
	c, _ := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateStructure(t *testing.T) {
	ops, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Every buy is bracketed by an upgrade and a downgrade for the same
	// client; flights and seats are in range.
	mode := map[int]bool{} // client -> strong?
	for i, op := range ops {
		switch op.Kind {
		case OpUpgrade:
			mode[op.Client] = true
		case OpDowngrade:
			mode[op.Client] = false
		case OpBuy:
			if !mode[op.Client] {
				t.Fatalf("op %d: buy without upgrade", i)
			}
			if op.Seats < 1 || op.Seats > 3 {
				t.Fatalf("op %d: seats = %d", i, op.Seats)
			}
			fallthrough
		case OpBrowse:
			if op.Flight < 100 || op.Flight > 109 {
				t.Fatalf("op %d: flight = %d", i, op.Flight)
			}
		}
		if op.Client < 0 || op.Client >= 4 {
			t.Fatalf("op %d: client = %d", i, op.Client)
		}
	}
	st := Summarize(ops)
	if st.Browses == 0 {
		t.Fatal("no browses generated")
	}
	if st.Buys != st.Upgrades {
		t.Fatalf("buys (%d) should equal upgrades (%d)", st.Buys, st.Upgrades)
	}
}

func TestBuyFractionExtremes(t *testing.T) {
	cfg := validCfg()
	cfg.BuyFraction = 0
	ops, _ := Generate(cfg)
	if Summarize(ops).Buys != 0 {
		t.Fatal("BuyFraction 0 should produce no buys")
	}
	cfg.BuyFraction = 1
	ops, _ = Generate(cfg)
	if got := Summarize(ops).Buys; got != cfg.Clients*cfg.Sessions {
		t.Fatalf("BuyFraction 1: buys = %d, want %d", got, cfg.Clients*cfg.Sessions)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Clients: 0, Sessions: 1, FlightsTo: 1},
		{Clients: 1, Sessions: 0, FlightsTo: 1},
		{Clients: 1, Sessions: 1, BuyFraction: -0.1, FlightsTo: 1},
		{Clients: 1, Sessions: 1, BuyFraction: 1.1, FlightsTo: 1},
		{Clients: 1, Sessions: 1, FlightsFrom: 5, FlightsTo: 4},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := validCfg()
	cfg.BrowsesPerSession = 0
	cfg.MaxSeats = 0
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBuyFractionMonotone(t *testing.T) {
	// More buyers -> at least as many buys (same seed, same session
	// structure randomness differs though; use statistical bound: compare
	// 0.1 vs 0.9 over many sessions).
	lo := validCfg()
	lo.Sessions = 200
	lo.BuyFraction = 0.1
	hi := lo
	hi.BuyFraction = 0.9
	opsLo, _ := Generate(lo)
	opsHi, _ := Generate(hi)
	if Summarize(opsLo).Buys >= Summarize(opsHi).Buys {
		t.Fatalf("buys: %d (10%%) vs %d (90%%)", Summarize(opsLo).Buys, Summarize(opsHi).Buys)
	}
}

func TestQuickAllOpsWellFormed(t *testing.T) {
	f := func(seed int64, clients, sessions uint8) bool {
		cfg := Config{
			Seed: seed, Clients: 1 + int(clients%5), Sessions: 1 + int(sessions%5),
			BuyFraction: 0.5, FlightsFrom: 10, FlightsTo: 12, MaxSeats: 2,
		}
		ops, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if op.Kind > OpDowngrade {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpBrowse: "browse", OpUpgrade: "upgrade", OpBuy: "buy", OpDowngrade: "downgrade",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
