// Package peer implements the decentralized replication protocol sketched
// in the paper's future work (§6): a high-level protocol that maintains
// consistency between multiple instances of the original component
// without a primary copy, while the low-level protocol (Flecc proper)
// keeps each instance's views coherent.
//
// The package also quantifies the paper's §4.1 argument for centralizing
// Flecc: a decentralized protocol needs application-specific merge/extract
// knowledge for every pair of peers — O(n²) relationships — whereas the
// centralized protocol needs only the view↔original component pairings —
// O(n).
//
// Peers synchronize by anti-entropy exchanges: a Sync(a, b) swaps the
// entries each side has not seen, using per-entry version vectors for
// causality. Concurrent updates to the same key are real conflicts and go
// to the application resolver (or last-writer-wins on peer name as a
// deterministic default).
package peer

import (
	"fmt"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// entryMeta is the causality metadata a peer keeps per key.
type entryMeta struct {
	vv vclock.Vector
}

// Peer is one replica of the shared component state in the decentralized
// high-level protocol.
type Peer struct {
	name string
	view image.Codec
	ep   transport.Endpoint

	mu       sync.Mutex
	meta     map[string]entryMeta
	base     *image.Image
	resolver image.Resolver
	// conflicts counts concurrent-update conflicts detected here.
	conflicts int
}

// New attaches a peer named name, replicating the given component state.
func New(name string, view image.Codec, net transport.Network, resolver image.Resolver) (*Peer, error) {
	p := &Peer{
		name:     name,
		view:     view,
		meta:     map[string]entryMeta{},
		base:     image.New(property.NewSet()),
		resolver: resolver,
	}
	ep, err := net.Attach(name, p.handle)
	if err != nil {
		return nil, fmt.Errorf("peer: attach %q: %w", name, err)
	}
	p.ep = ep
	return p, nil
}

// Name returns the peer's node name.
func (p *Peer) Name() string { return p.name }

// Close detaches the peer.
func (p *Peer) Close() error { return p.ep.Close() }

// Conflicts returns the number of concurrent-update conflicts this peer
// has resolved.
func (p *Peer) Conflicts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conflicts
}

// refreshLocked folds local mutations into the metadata: any key whose
// current value differs from the last snapshot gets this peer's vector
// component ticked. Caller holds mu.
func (p *Peer) refreshLocked() (*image.Image, error) {
	cur, err := p.view.Extract(property.NewSet())
	if err != nil {
		return nil, err
	}
	if cur == nil {
		cur = image.New(property.NewSet())
	}
	for k, e := range cur.Entries {
		be, ok := p.base.Get(k)
		if ok && e.Equal(be) {
			continue
		}
		m := p.meta[k]
		if m.vv == nil {
			m.vv = vclock.NewVector()
		}
		m.vv.Tick(p.name)
		p.meta[k] = m
	}
	// Deletions.
	for k, be := range p.base.Entries {
		if _, ok := cur.Get(k); ok || be.Deleted {
			continue
		}
		m := p.meta[k]
		if m.vv == nil {
			m.vv = vclock.NewVector()
		}
		m.vv.Tick(p.name)
		p.meta[k] = m
		cur.Put(image.Entry{Key: k, Deleted: true})
	}
	p.base = cur.Clone()
	return cur, nil
}

// snapshotLocked encodes the peer's current entries plus their vector
// metadata into an image whose entry Writer field carries the rendered
// vector (the wire format has no vector field; the rendering is
// deterministic and parsed back by the receiver — see parseVV).
func (p *Peer) snapshotLocked() (*image.Image, error) {
	cur, err := p.refreshLocked()
	if err != nil {
		return nil, err
	}
	out := image.New(property.NewSet())
	for k, e := range cur.Entries {
		ent := e.Clone()
		ent.Writer = renderVV(p.meta[k].vv)
		out.Put(ent)
	}
	return out, nil
}

// Sync performs one anti-entropy exchange with the named peer: it sends a
// snapshot and merges the snapshot the remote returns. After a Sync in
// each direction of a connected graph, all peers converge.
func (p *Peer) Sync(other string) error {
	p.mu.Lock()
	snap, err := p.snapshotLocked()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	reply, err := p.ep.Call(other, &wire.Message{Type: wire.TUpdate, Img: snap})
	if err != nil {
		return err
	}
	if reply.Img == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mergeRemoteLocked(reply.Img)
}

// handle serves incoming exchanges: merge the remote snapshot, reply with
// ours (computed before the merge so the exchange is symmetric).
func (p *Peer) handle(req *wire.Message) *wire.Message {
	if req.Type != wire.TUpdate {
		return &wire.Message{Type: wire.TErr, Err: fmt.Sprintf("peer %s: unexpected %s", p.name, req.Type)}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, err := p.snapshotLocked()
	if err != nil {
		return &wire.Message{Type: wire.TErr, Err: err.Error()}
	}
	if req.Img != nil {
		if err := p.mergeRemoteLocked(req.Img); err != nil {
			return &wire.Message{Type: wire.TErr, Err: err.Error()}
		}
	}
	return &wire.Message{Type: wire.TImage, Img: snap}
}

// mergeRemoteLocked folds a remote snapshot into this peer using vector
// causality. Caller holds mu.
func (p *Peer) mergeRemoteLocked(remote *image.Image) error {
	apply := image.New(property.NewSet())
	for k, re := range remote.Entries {
		rvv := parseVV(re.Writer)
		local := p.meta[k]
		switch {
		case local.vv == nil:
			// Unknown key: adopt.
			p.adoptLocked(apply, k, re, rvv)
		default:
			switch local.vv.Compare(rvv) {
			case vclock.Before:
				p.adoptLocked(apply, k, re, rvv)
			case vclock.After, vclock.Equal:
				// We dominate: keep ours.
			case vclock.Concurrent:
				p.conflicts++
				winner, err := p.resolveLocked(k, re)
				if err != nil {
					return err
				}
				merged := local.vv.Clone()
				merged.Merge(rvv)
				if winner {
					p.adoptLocked(apply, k, re, merged)
				} else {
					m := p.meta[k]
					m.vv = merged
					p.meta[k] = m
				}
			}
		}
	}
	if apply.Len() > 0 {
		if err := p.view.Merge(apply, property.NewSet()); err != nil {
			return err
		}
		for _, e := range apply.Entries {
			p.base.Put(e.Clone())
		}
	}
	return nil
}

// adoptLocked stages a remote entry for application and records its
// vector.
func (p *Peer) adoptLocked(apply *image.Image, k string, re image.Entry, vv vclock.Vector) {
	ent := re.Clone()
	ent.Writer = "" // strip the metadata rendering before handing to the app
	apply.Put(ent)
	p.meta[k] = entryMeta{vv: vv.Clone()}
}

// resolveLocked decides whether the remote entry wins a concurrent
// conflict. Without a resolver, the lexically larger rendered vector wins
// — an arbitrary but deterministic and symmetric rule.
func (p *Peer) resolveLocked(k string, re image.Entry) (remoteWins bool, err error) {
	var ours image.Entry
	if be, ok := p.base.Get(k); ok {
		ours = be
	}
	if p.resolver != nil {
		theirs := re.Clone()
		theirs.Writer = ""
		w, err := p.resolver(image.Conflict{Key: k, Ours: ours, Theirs: theirs})
		if err != nil {
			return false, err
		}
		return !w.Equal(ours), nil
	}
	return renderVV(parseVV(re.Writer)) > renderVV(p.meta[k].vv), nil
}

// renderVV/parseVV serialize a vector into the entry Writer field.
func renderVV(vv vclock.Vector) string {
	if vv == nil {
		return "{}"
	}
	return vv.String()
}

// parseVV parses the rendering produced by renderVV ("{a:1, b:3}").
func parseVV(s string) vclock.Vector {
	vv := vclock.NewVector()
	s = trimBraces(s)
	if s == "" {
		return vv
	}
	for _, part := range splitComma(s) {
		name, n, ok := splitColon(part)
		if !ok {
			continue
		}
		for i := uint64(0); i < n; i++ {
			vv.Tick(name)
		}
	}
	return vv
}

func trimBraces(s string) string {
	if len(s) >= 2 && s[0] == '{' && s[len(s)-1] == '}' {
		return s[1 : len(s)-1]
	}
	return ""
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := s[start:i]
			for len(part) > 0 && part[0] == ' ' {
				part = part[1:]
			}
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

func splitColon(s string) (string, uint64, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			var n uint64
			for _, c := range s[i+1:] {
				if c < '0' || c > '9' {
					return "", 0, false
				}
				n = n*10 + uint64(c-'0')
			}
			return s[:i], n, true
		}
	}
	return "", 0, false
}

// PairingsCentralized returns the number of application-specific
// merge/extract relationships the centralized protocol needs for n views:
// each view pairs only with the original component (paper §4.1, O(n)).
func PairingsCentralized(n int) int { return n }

// PairingsDecentralized returns the number of relationships the
// decentralized protocol needs: every unordered pair of peers
// (paper §4.1, O(n²)).
func PairingsDecentralized(n int) int { return n * (n - 1) / 2 }
