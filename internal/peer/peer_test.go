package peer

import (
	"sync"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// kv is the toy replica store.
type kv struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV() *kv { return &kv{data: map[string]string{}} }

func (v *kv) Set(k, val string) {
	v.mu.Lock()
	v.data[k] = val
	v.mu.Unlock()
}

func (v *kv) Get(k string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.data[k]
}

func (v *kv) Delete(k string) {
	v.mu.Lock()
	delete(v.data, k)
	v.mu.Unlock()
}

func (v *kv) Extract(props property.Set) (*image.Image, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	img := image.New(props.Clone())
	for k, val := range v.data {
		img.Put(image.Entry{Key: k, Value: []byte(val)})
	}
	return img, nil
}

func (v *kv) Merge(img *image.Image, props property.Set) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(v.data, k)
			continue
		}
		v.data[k] = string(e.Value)
	}
	return nil
}

func pair(t *testing.T) (*Peer, *kv, *Peer, *kv) {
	t.Helper()
	net := transport.NewInproc()
	va, vb := newKV(), newKV()
	a, err := New("a", va, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("b", vb, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a, va, b, vb
}

func TestSyncPropagatesBothWays(t *testing.T) {
	a, va, b, vb := pair(t)
	va.Set("x", "from-a")
	vb.Set("y", "from-b")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if vb.Get("x") != "from-a" {
		t.Fatal("b should receive a's entry")
	}
	if va.Get("y") != "from-b" {
		t.Fatal("a should receive b's entry (symmetric exchange)")
	}
	if a.Conflicts() != 0 || b.Conflicts() != 0 {
		t.Fatal("no conflicts expected")
	}
}

func TestCausalUpdateWins(t *testing.T) {
	a, va, b, vb := pair(t)
	va.Set("x", "v1")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	// b updates the value it received: causally after a's write.
	vb.Set("x", "v2")
	if err := b.Sync("a"); err != nil {
		t.Fatal(err)
	}
	if va.Get("x") != "v2" {
		t.Fatalf("a = %q, want v2", va.Get("x"))
	}
	// Syncing again changes nothing.
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if va.Get("x") != "v2" || vb.Get("x") != "v2" {
		t.Fatal("steady state should persist")
	}
	if a.Conflicts()+b.Conflicts() != 0 {
		t.Fatal("causal chain is not a conflict")
	}
}

func TestConcurrentConflictConverges(t *testing.T) {
	a, va, b, vb := pair(t)
	// Both write the same key with no sync in between: concurrent.
	va.Set("x", "a-wrote")
	vb.Set("x", "b-wrote")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if a.Conflicts()+b.Conflicts() == 0 {
		t.Fatal("concurrent writes should be detected as a conflict")
	}
	// Exchange once more to settle both sides, then verify convergence.
	if err := b.Sync("a"); err != nil {
		t.Fatal(err)
	}
	if va.Get("x") != vb.Get("x") {
		t.Fatalf("divergence: a=%q b=%q", va.Get("x"), vb.Get("x"))
	}
}

func TestResolverDecidesConflicts(t *testing.T) {
	net := transport.NewInproc()
	va, vb := newKV(), newKV()
	// Resolver: longer value wins.
	res := func(c image.Conflict) (image.Entry, error) {
		if len(c.Ours.Value) >= len(c.Theirs.Value) {
			return c.Ours, nil
		}
		return c.Theirs, nil
	}
	a, err := New("a", va, net, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("b", vb, net, res); err != nil {
		t.Fatal(err)
	}
	va.Set("x", "short")
	vb.Set("x", "much-longer-value")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if va.Get("x") != "much-longer-value" || vb.Get("x") != "much-longer-value" {
		t.Fatalf("resolver outcome: a=%q b=%q", va.Get("x"), vb.Get("x"))
	}
}

func TestDeletionPropagates(t *testing.T) {
	a, va, b, vb := pair(t)
	_ = b
	va.Set("x", "doomed")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if vb.Get("x") != "doomed" {
		t.Fatal("precondition: b has x")
	}
	va.Delete("x")
	if err := a.Sync("b"); err != nil {
		t.Fatal(err)
	}
	if vb.Get("x") != "" {
		t.Fatalf("deletion should propagate, b has %q", vb.Get("x"))
	}
}

func TestThreePeerConvergence(t *testing.T) {
	net := transport.NewInproc()
	stores := []*kv{newKV(), newKV(), newKV()}
	peers := make([]*Peer, 3)
	names := []string{"a", "b", "c"}
	for i := range peers {
		p, err := New(names[i], stores[i], net, nil)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	stores[0].Set("k0", "v0")
	stores[1].Set("k1", "v1")
	stores[2].Set("k2", "v2")
	// Ring anti-entropy, two rounds.
	for round := 0; round < 2; round++ {
		for i := range peers {
			if err := peers[i].Sync(names[(i+1)%3]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, s := range stores {
		for _, k := range []string{"k0", "k1", "k2"} {
			if s.Get(k) == "" {
				t.Fatalf("peer %d missing %s", i, k)
			}
		}
	}
}

func TestHandleRejectsUnknown(t *testing.T) {
	net := transport.NewInproc()
	a, err := New("a", newKV(), net, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	ep, _ := net.Attach("x", func(req *wire.Message) *wire.Message { return nil })
	if _, err := ep.Call("a", &wire.Message{Type: wire.TPush}); err == nil {
		t.Fatal("non-update message should be rejected")
	}
}

func TestVVRoundTrip(t *testing.T) {
	vv := vclock.NewVector()
	vv.Tick("a")
	vv.Tick("a")
	vv.Tick("b")
	back := parseVV(renderVV(vv))
	if back.Compare(vv) != vclock.Equal {
		t.Fatalf("round trip: %v vs %v", back, vv)
	}
	if parseVV("{}").Compare(vclock.NewVector()) != vclock.Equal {
		t.Fatal("empty round trip")
	}
	if len(parseVV("garbage")) != 0 {
		t.Fatal("garbage should parse to empty")
	}
	if len(parseVV("{a:x}")) != 0 {
		t.Fatal("bad count should be skipped")
	}
}

func TestPairingCounts(t *testing.T) {
	if PairingsCentralized(10) != 10 {
		t.Fatal("centralized O(n)")
	}
	if PairingsDecentralized(10) != 45 {
		t.Fatal("decentralized O(n^2)")
	}
	if PairingsDecentralized(2) != 1 || PairingsDecentralized(1) != 0 {
		t.Fatal("small cases")
	}
}
