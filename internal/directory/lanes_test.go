package directory

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// laneKV is a mutex-guarded keyed codec for the lane tests.
type laneKV struct {
	mu   sync.Mutex
	data map[string][]byte
}

func newLaneKV() *laneKV { return &laneKV{data: map[string][]byte{}} }

func (c *laneKV) Extract(props property.Set) (*image.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := image.New(props.Clone())
	for k, v := range c.data {
		img.Put(image.Entry{Key: k, Value: v})
	}
	return img, nil
}

func (c *laneKV) ExtractKeys(props property.Set, keys []string) (*image.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := image.New(props.Clone())
	for _, k := range keys {
		if v, ok := c.data[k]; ok {
			img.Put(image.Entry{Key: k, Value: v})
		}
	}
	return img, nil
}

func (c *laneKV) Merge(img *image.Image, props property.Set) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(c.data, k)
			continue
		}
		c.data[k] = e.Value
	}
	return nil
}

// laneHarness is one laned DM plus registered writer endpoints.
type laneHarness struct {
	t   *testing.T
	net *transport.Inproc
	dm  *Manager
}

func newLaneHarness(t *testing.T, opts Options) *laneHarness {
	t.Helper()
	net := transport.NewInproc()
	dm, err := New("dm", newLaneKV(), vclock.NewSim(), net, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dm.Close() })
	return &laneHarness{t: t, net: net, dm: dm}
}

func (h *laneHarness) register(name string, props string) transport.Endpoint {
	h.t.Helper()
	ep, err := h.net.Attach(name, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck}
	})
	if err != nil {
		h.t.Fatal(err)
	}
	reply, err := ep.Call("dm", &wire.Message{
		Type: wire.TRegister, From: name, Props: property.MustSet(props), Mode: wire.Weak,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	if reply.Type == wire.TErr {
		h.t.Fatalf("register %s: %s", name, reply.Err)
	}
	return ep
}

func lanePush(ep transport.Endpoint, from string, props property.Set, kv map[string]string) (*wire.Message, error) {
	delta := image.New(props.Clone())
	for k, v := range kv {
		delta.Put(image.Entry{Key: k, Value: []byte(v)})
	}
	reply, err := ep.Call("dm", &wire.Message{Type: wire.TPush, From: from, Img: delta, Ops: 1})
	if err != nil {
		return nil, err
	}
	if reply.Type == wire.TErr {
		return nil, fmt.Errorf("push %s: %s", from, reply.Err)
	}
	return reply, nil
}

// TestLaneHammerDisjoint hammers a laned DM with concurrent conflicting
// pushes across disjoint groups and checks the serialization guarantees:
// per-writer ack versions strictly increase, versions are globally unique,
// the final extract carries exactly each surviving writer's last value
// (no torn cross-lane state), and the store invariants hold at quiesce.
func TestLaneHammerDisjoint(t *testing.T) {
	const (
		groups  = 8
		writers = 2
		keys    = 16
		ops     = 60
	)
	h := newLaneHarness(t, Options{Lanes: 8, Resolver: func(c image.Conflict) (image.Entry, error) {
		return c.Theirs, nil
	}})

	type worker struct {
		name  string
		ep    transport.Endpoint
		props property.Set
		group int
		acks  []vclock.Version
		last  map[string]string
		err   error
	}
	var ws []*worker
	for g := 0; g < groups; g++ {
		props := property.MustSet(fmt.Sprintf("P%d={0..9}", g))
		for w := 0; w < writers; w++ {
			name := fmt.Sprintf("g%dw%d", g, w)
			ws = append(ws, &worker{
				name: name, ep: h.register(name, props.String()),
				props: props, group: g, last: map[string]string{},
			})
		}
	}

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				kv := map[string]string{}
				for k := 0; k < 4; k++ {
					key := fmt.Sprintf("g%d:k%02d", w.group, (i+k)%keys)
					kv[key] = fmt.Sprintf("%s-%d", w.name, i)
				}
				reply, err := lanePush(w.ep, w.name, w.props, kv)
				if err != nil {
					w.err = err
					return
				}
				w.acks = append(w.acks, reply.Version)
				for k, v := range kv {
					w.last[k] = v
				}
			}
		}(w)
	}
	wg.Wait()

	seen := map[vclock.Version]string{}
	lastByWriter := map[string]map[string]string{}
	for _, w := range ws {
		if w.err != nil {
			t.Fatal(w.err)
		}
		lastByWriter[w.name] = w.last
		prev := vclock.Version(0)
		for _, v := range w.acks {
			if v <= prev {
				t.Fatalf("%s: ack v%d not after v%d", w.name, v, prev)
			}
			if other, dup := seen[v]; dup {
				t.Fatalf("version v%d acked to both %s and %s", v, other, w.name)
			}
			seen[v] = w.name
			prev = v
		}
	}

	img, err := h.dm.ExtractPrimary(property.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	for k, e := range img.Entries {
		want, ok := lastByWriter[e.Writer][k]
		if !ok {
			t.Fatalf("key %s attributed to %s, which never pushed it", k, e.Writer)
		}
		if string(e.Value) != want {
			t.Fatalf("key %s: value %q is not %s's last push %q (torn cross-lane state)",
				k, e.Value, e.Writer, want)
		}
	}
	if err := h.dm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLaneHammerOverlapping mixes overlapping conflict groups with
// concurrent set-props (structural changes that rewire the lane map
// mid-flight) and checks the run completes without deadlock or invariant
// violations and versions stay unique.
func TestLaneHammerOverlapping(t *testing.T) {
	const ops = 50
	h := newLaneHarness(t, Options{Lanes: 4})

	props := []string{
		"A={0..9}",           // overlaps B via A
		"A={5..14};B={0..4}", // bridges A and B
		"B={0..9}",           // overlaps via B
		"C={0..9}",           // disjoint
	}
	type worker struct {
		name  string
		ep    transport.Endpoint
		props property.Set
		acks  []vclock.Version
		err   error
	}
	var ws []*worker
	for i, p := range props {
		name := fmt.Sprintf("v%d", i)
		ws = append(ws, &worker{name: name, ep: h.register(name, p), props: property.MustSet(p)})
	}

	var wg sync.WaitGroup
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if wi == 1 && i%10 == 5 {
					// Shrink and re-grow the bridge view's props mid-run.
					p := property.MustSet("A={5..14}")
					if i%20 == 5 {
						p = property.MustSet("A={5..14};B={0..4}")
					}
					reply, err := w.ep.Call("dm", &wire.Message{Type: wire.TSetProps, From: w.name, Props: p})
					if err != nil {
						w.err = err
						return
					}
					if reply.Type == wire.TErr {
						w.err = fmt.Errorf("set-props: %s", reply.Err)
						return
					}
				}
				reply, err := lanePush(w.ep, w.name, w.props, map[string]string{
					fmt.Sprintf("%s:k%02d", w.name, i%8): fmt.Sprintf("%s-%d", w.name, i),
				})
				if err != nil {
					w.err = err
					return
				}
				w.acks = append(w.acks, reply.Version)
			}
		}(wi, w)
	}
	wg.Wait()

	seen := map[vclock.Version]bool{}
	for _, w := range ws {
		if w.err != nil {
			t.Fatal(w.err)
		}
		prev := vclock.Version(0)
		for _, v := range w.acks {
			if v <= prev {
				t.Fatalf("%s: ack v%d not after v%d", w.name, v, prev)
			}
			if seen[v] {
				t.Fatalf("duplicate version v%d", v)
			}
			seen[v] = true
			prev = v
		}
	}
	if err := h.dm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// laneScript drives one deterministic single-threaded protocol run and
// returns the gob encoding of the full capture (metadata + view state).
func laneScript(t *testing.T, opts Options) []byte {
	t.Helper()
	h := newLaneHarness(t, opts)
	eps := map[string]transport.Endpoint{}
	propsOf := map[string]property.Set{}
	for g := 0; g < 3; g++ {
		for w := 0; w < 2; w++ {
			name := fmt.Sprintf("g%dw%d", g, w)
			p := fmt.Sprintf("P%d={0..9}", g)
			eps[name] = h.register(name, p)
			propsOf[name] = property.MustSet(p)
		}
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("g%dw%d", i%3, (i/3)%2)
		if _, err := lanePush(eps[name], name, propsOf[name], map[string]string{
			fmt.Sprintf("g%d:k%02d", i%3, i%7): fmt.Sprintf("%s-%d", name, i),
		}); err != nil {
			t.Fatal(err)
		}
		if i%11 == 10 {
			reply, err := eps[name].Call("dm", &wire.Message{
				Type: wire.TPull, From: name, Since: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if reply.Type == wire.TErr {
				t.Fatalf("pull: %s", reply.Err)
			}
		}
	}
	if err := h.dm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h.dm.CaptureSince(0)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLanesSerialByteIdentical pins the opt-in contract: Lanes=1 is the
// serial path, byte-identical to the default, and even Lanes>1 produces
// the identical capture under a sequential (single-client) script, since
// one-at-a-time commits leave no room for reordering.
func TestLanesSerialByteIdentical(t *testing.T) {
	base := laneScript(t, Options{})
	if got := laneScript(t, Options{Lanes: 1}); !bytes.Equal(base, got) {
		t.Fatal("Lanes=1 capture differs from the serial default")
	}
	if got := laneScript(t, Options{Lanes: 8}); !bytes.Equal(base, got) {
		t.Fatal("Lanes=8 sequential capture differs from the serial default")
	}
}

// TestLaneReplication runs concurrent laned pushes with an inline
// semi-sync standby attached and checks the barrier semantics survive
// striping: after the last ack the standby holds every committed version
// and the same shadow state.
func TestLaneReplication(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim, err := New("dm", newLaneKV(), clock, net, Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	sb, err := New("dmr", newLaneKV(), clock, net, Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	repl, err := prim.StartReplication(ReplConfig{Inline: true}, ReplTarget{Name: "dmr"})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	h := &laneHarness{t: t, net: net, dm: prim}
	type worker struct {
		name  string
		ep    transport.Endpoint
		props property.Set
		err   error
	}
	var ws []*worker
	for g := 0; g < 4; g++ {
		p := fmt.Sprintf("P%d={0..9}", g)
		name := fmt.Sprintf("g%dw0", g)
		ws = append(ws, &worker{name: name, ep: h.register(name, p), props: property.MustSet(p)})
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := lanePush(w.ep, w.name, w.props, map[string]string{
					fmt.Sprintf("%s:k%02d", w.name, i%6): fmt.Sprintf("%s-%d", w.name, i),
				}); err != nil {
					w.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, w := range ws {
		if w.err != nil {
			t.Fatal(w.err)
		}
	}

	if got, want := sb.CurrentVersion(), prim.CurrentVersion(); got != want {
		t.Fatalf("standby at v%d, primary at v%d after inline barriers", got, want)
	}
	psnap, ssnap := prim.Store().SnapshotSince(0), sb.Store().SnapshotSince(0)
	pb, err := EncodeSnapshot(&Snapshot{Version: psnap.Version, Shadow: psnap.Shadow})
	if err != nil {
		t.Fatal(err)
	}
	sbb, err := EncodeSnapshot(&Snapshot{Version: ssnap.Version, Shadow: ssnap.Shadow})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, sbb) {
		t.Fatal("standby shadow state diverged from primary")
	}
	if err := prim.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
