package directory

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"flecc/internal/property"
	"flecc/internal/vclock"
)

// TestSnapshotUnderConcurrentWriters hammers a store with parallel
// committers while snapshots are taken continuously. Every snapshot must
// be internally consistent — a torn capture (shadow or log entries newer
// than the captured counter, or an unsorted log) would poison both
// fail-over restores and live shard migrations.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())

	const writers = 4
	const commits = 200
	var stop atomic.Bool
	var writerWG, snapWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < commits; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%17)
				d := delta("F={1}", key, fmt.Sprintf("val%d", i))
				if _, _, _, err := st.Commit(fmt.Sprintf("v%d", w), d, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var lastVer vclock.Version
		for !stop.Load() {
			snap := st.Snapshot()
			if snap.Version < lastVer {
				t.Errorf("snapshot version regressed: %d -> %d", lastVer, snap.Version)
				return
			}
			lastVer = snap.Version
			for _, r := range snap.Shadow {
				if r.Version > snap.Version {
					t.Errorf("torn snapshot: shadow %s at v%d > counter v%d", r.Key, r.Version, snap.Version)
					return
				}
			}
			for i, rec := range snap.Log {
				if rec.Version > snap.Version {
					t.Errorf("torn snapshot: log entry v%d > counter v%d", rec.Version, snap.Version)
					return
				}
				if i > 0 && rec.Version < snap.Log[i-1].Version {
					t.Errorf("snapshot log out of order at %d: %d after %d", i, rec.Version, snap.Log[i-1].Version)
					return
				}
			}
			// The serialized form must round-trip even mid-traffic.
			b, err := EncodeSnapshot(snap)
			if err != nil {
				t.Error(err)
				return
			}
			back, err := DecodeSnapshot(b)
			if err != nil {
				t.Error(err)
				return
			}
			if back.Version != snap.Version || len(back.Shadow) != len(snap.Shadow) || len(back.Log) != len(snap.Log) {
				t.Errorf("round trip changed the snapshot: %d/%d/%d vs %d/%d/%d",
					back.Version, len(back.Shadow), len(back.Log),
					snap.Version, len(snap.Shadow), len(snap.Log))
				return
			}
		}
	}()

	writerWG.Wait()
	stop.Store(true)
	snapWG.Wait()
	if t.Failed() {
		return
	}

	// The final snapshot restores into a standby that picks up exactly
	// where the counter left off.
	final := st.Snapshot()
	if final.Version != vclock.Version(writers*commits) {
		t.Fatalf("final version %d, want %d", final.Version, writers*commits)
	}
	standby := NewStore(newMapStore(), vclock.NewSim())
	if err := standby.Restore(final); err != nil {
		t.Fatal(err)
	}
	if standby.Current() != final.Version {
		t.Fatalf("standby counter %d, want %d", standby.Current(), final.Version)
	}
	if got := standby.UnseenOps(0, "observer", property.MustSet("F={1}")); got == 0 {
		t.Fatal("restored log should report unseen ops")
	}
}

// TestStoreAbsorbMergeSemantics pins down the migration-side merge: the
// newer shadow version wins per key, logs interleave by version with the
// existing entry winning a version tie, and the counter only ever moves
// forward.
func TestStoreAbsorbMergeSemantics(t *testing.T) {
	a := NewStore(newMapStore(), vclock.NewSim())
	b := NewStore(newMapStore(), vclock.NewSim())

	// a commits k1 (v1) then k2 (v2); b commits k1 (v1, its own counter).
	if _, _, _, err := a.Commit("v1", delta("F={1}", "k1", "from-a"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Commit("v1", delta("F={1}", "k2", "from-a"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := b.Commit("v2", delta("F={1}", "k1", "from-b"), 1); err != nil {
		t.Fatal(err)
	}

	if err := b.Absorb(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Counter fast-forwarded to a's (2), never back.
	if b.Current() != 2 {
		t.Fatalf("absorbed counter = %d, want 2", b.Current())
	}
	snap := b.Snapshot()
	byKey := map[string]ShadowRec{}
	for _, r := range snap.Shadow {
		byKey[r.Key] = r
	}
	// k1: a's version 1 does not beat b's version 1 (not newer), so b's
	// writer is preserved; k2 arrives from a.
	if byKey["k1"].Writer != "v2" {
		t.Fatalf("k1 writer = %q, want v2 (equal versions must not be replaced)", byKey["k1"].Writer)
	}
	if byKey["k2"].Writer != "v1" {
		t.Fatalf("k2 writer = %q, want v1", byKey["k2"].Writer)
	}
	// Log merged in version order; a's v1 record lost the tie against b's
	// existing v1 record, so only a's v2 arrived.
	for i := 1; i < len(snap.Log); i++ {
		if snap.Log[i].Version <= snap.Log[i-1].Version {
			t.Fatalf("merged log out of order or duplicated: %v", snap.Log)
		}
	}
	if len(snap.Log) != 2 {
		t.Fatalf("merged log has %d entries, want 2", len(snap.Log))
	}
	// Absorbing the same snapshot again must not regress anything — and
	// must not grow the log with duplicate versions (the round-trip
	// migration case: moving views back to a shard that already holds a
	// superset of the snapshot's log).
	if err := b.Absorb(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Current() != 2 {
		t.Fatalf("re-absorb moved the counter to %d", b.Current())
	}
	if got := len(b.Snapshot().Log); got != 2 {
		t.Fatalf("re-absorb grew the log to %d entries, want 2", got)
	}
}
