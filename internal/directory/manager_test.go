package directory_test

import (
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func newDM(t *testing.T) (*directory.Manager, *transport.Inproc, *vclock.Sim, *kv) {
	t.Helper()
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim := newKV()
	dm, err := directory.New("dm", prim, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertInvariantsAtCleanup(t, dm)
	return dm, net, clock, prim
}

func newCM(t *testing.T, net transport.Network, clock vclock.Clock, name string) (*cache.Manager, *kv) {
	t.Helper()
	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: name, Directory: "dm", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	return cm, view
}

func TestCompactLogRespectsSlowestView(t *testing.T) {
	dm, net, clock, _ := newDM(t)
	cm1, v1 := newCM(t, net, clock, "v1")
	cm2, _ := newCM(t, net, clock, "v2")

	// Five committed updates by v1.
	for i := 0; i < 5; i++ {
		cm1.StartUse()
		v1.data["k"] = string(rune('a' + i))
		cm1.EndUse()
		if err := cm1.PushImage(); err != nil {
			t.Fatal(err)
		}
	}
	// v2 hasn't pulled: its seen is the init version (0), so nothing can
	// be compacted away.
	if dropped := dm.CompactLog(); dropped != 0 {
		t.Fatalf("dropped %d, want 0 (v2 still needs the log)", dropped)
	}
	if got := dm.UnseenCommitted("v2"); got != 5 {
		t.Fatalf("unseen = %d", got)
	}
	// After every view has pulled (v1's own pushes do not advance its
	// seen — see cache.PushImage), the whole log is observed and
	// compactable.
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if dropped := dm.CompactLog(); dropped != 5 {
		t.Fatalf("dropped %d, want 5", dropped)
	}
	// Quality accounting still exact.
	if got := dm.UnseenCommitted("v2"); got != 0 {
		t.Fatalf("unseen after compaction = %d", got)
	}
}

func TestCompactLogNoViews(t *testing.T) {
	dm, _, _, _ := newDM(t)
	d := image.New(property.MustSet("P={x}"))
	d.Put(image.Entry{Key: "k", Value: []byte("v")})
	if _, err := dm.CommitLocal(d, 1); err != nil {
		t.Fatal(err)
	}
	if dropped := dm.CompactLog(); dropped != 1 {
		t.Fatalf("dropped %d, want 1 (no views registered)", dropped)
	}
}

func TestSeenAccessor(t *testing.T) {
	dm, net, clock, _ := newDM(t)
	cm, _ := newCM(t, net, clock, "v1")
	if dm.Seen("ghost") != 0 {
		t.Fatal("unknown view should report 0")
	}
	d := image.New(property.MustSet("P={x}"))
	d.Put(image.Entry{Key: "k", Value: []byte("v")})
	if _, err := dm.CommitLocal(d, 1); err != nil {
		t.Fatal(err)
	}
	if err := cm.PullImage(); err != nil {
		t.Fatal(err)
	}
	if dm.Seen("v1") != dm.CurrentVersion() {
		t.Fatalf("seen = %d, current = %d", dm.Seen("v1"), dm.CurrentVersion())
	}
}

func TestUnexpectedMessageRejected(t *testing.T) {
	_, net, _, _ := newDM(t)
	ep, err := net.Attach("stranger", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// TImage is a reply type; a DM must reject it as a request.
	if _, err := ep.Call("dm", &wire.Message{Type: wire.TImage}); err == nil {
		t.Fatal("reply-typed request should be rejected")
	}
	if _, err := ep.Call("dm", &wire.Message{Type: wire.TAcquire}); err == nil {
		t.Fatal("token message without a token handler should be rejected")
	}
}

func TestRegisterWithExplicitViewName(t *testing.T) {
	dm, net, _, _ := newDM(t)
	ep, err := net.Attach("node-7", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// The View field overrides From for registry purposes.
	if _, err := ep.Call("dm", &wire.Message{Type: wire.TRegister, View: "logical-view"}); err != nil {
		t.Fatal(err)
	}
	views := dm.Views()
	if len(views) != 1 || views[0] != "logical-view" {
		t.Fatalf("views = %v", views)
	}
}

func TestUnseenCommittedUnknownView(t *testing.T) {
	dm, _, _, _ := newDM(t)
	if dm.UnseenCommitted("nope") != 0 {
		t.Fatal("unknown view should report 0")
	}
}
