package directory_test

import (
	"fmt"
	"testing"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// The incremental delta path (dirty-key index + KeyedExtractor) must be
// observationally identical to the classic full-extract + DeltaSince path.
// These tests run the same commit history through two stores over the same
// primary data — one seeing the keyed codec, one with the keyed extension
// hidden behind a FuncCodec — and compare every delta.

// hideKeyed wraps a codec so the store cannot see its ExtractKeys method.
func hideKeyed(c image.Codec) image.Codec {
	return image.FuncCodec{ExtractFn: c.Extract, MergeFn: c.Merge}
}

func sameImages(t *testing.T, label string, keyed, full *image.Image) {
	t.Helper()
	if keyed.Version != full.Version {
		t.Errorf("%s: image version %d vs %d", label, keyed.Version, full.Version)
	}
	if len(keyed.Entries) != len(full.Entries) {
		t.Errorf("%s: %d entries vs %d (%v vs %v)", label, len(keyed.Entries), len(full.Entries), keyed.Keys(), full.Keys())
		return
	}
	for k, fe := range full.Entries {
		ke, ok := keyed.Get(k)
		if !ok {
			t.Errorf("%s: key %s missing from keyed delta", label, k)
			continue
		}
		if ke.Version != fe.Version || ke.Writer != fe.Writer || ke.Deleted != fe.Deleted || string(ke.Value) != string(fe.Value) {
			t.Errorf("%s: key %s differs: keyed %+v vs full %+v", label, k, ke, fe)
		}
	}
}

// commitHistory drives an identical sequence of commits — inserts,
// overwrites (creating stale dirty records), and deletions — into both
// stores, returning the version after each step.
func commitHistory(t *testing.T, stores ...*directory.Store) []vclock.Version {
	t.Helper()
	flight := func(n, reserved int) image.Entry {
		return image.Entry{
			Key:   airline.FlightKey(n),
			Value: airline.Flight{Number: n, Origin: "NYC", Dest: "SFO", Capacity: 200, Reserved: reserved, Fare: 100}.Encode(),
		}
	}
	step := func(writer string, entries ...image.Entry) vclock.Version {
		var out vclock.Version
		for _, s := range stores {
			d := image.New(property.MustSet("Flights={100..160}"))
			for _, e := range entries {
				e.Version = s.Current() // based on the latest committed state
				d.Put(e)
			}
			v, _, _, err := s.Commit(writer, d, 1)
			if err != nil {
				t.Fatal(err)
			}
			out = v
		}
		return out
	}

	var versions []vclock.Version
	// 1: seed twenty flights.
	var seed []image.Entry
	for n := 100; n < 120; n++ {
		seed = append(seed, flight(n, 0))
	}
	versions = append(versions, step("a", seed...))
	// 2: overwrite five of them (their v1 dirty records go stale).
	var over []image.Entry
	for n := 105; n < 110; n++ {
		over = append(over, flight(n, 7))
	}
	versions = append(versions, step("b", over...))
	// 3: delete one.
	versions = append(versions, step("c", image.Entry{Key: airline.FlightKey(103), Deleted: true}))
	// 4: fresh keys.
	versions = append(versions, step("d", flight(140, 1), flight(141, 2)))
	return versions
}

func TestExtractDeltaMatchesFullPath(t *testing.T) {
	primary := airline.NewReservationSystem()
	keyedStore := directory.NewStore(primary, vclock.NewSim())
	fullStore := directory.NewStore(hideKeyed(primary), vclock.NewSim())
	versions := commitHistory(t, keyedStore, fullStore)

	propSets := []property.Set{
		property.MustSet("Flights={100..160}"), // everything
		property.MustSet("Flights={100..110}"), // restricted
		{},                                     // unrestricted
	}
	sinces := append([]vclock.Version{0}, versions...)
	for _, props := range propSets {
		for _, since := range sinces {
			ki, err := keyedStore.Extract(props, since)
			if err != nil {
				t.Fatal(err)
			}
			fi, err := fullStore.Extract(props, since)
			if err != nil {
				t.Fatal(err)
			}
			sameImages(t, fmt.Sprintf("props=%s since=%d", props, since), ki, fi)
		}
	}
}

// TestExtractDeltaAfterRestore: Restore replaces the shadow wholesale; the
// dirty index must be rebuilt so delta pulls keep working on the standby.
func TestExtractDeltaAfterRestore(t *testing.T) {
	primary := airline.NewReservationSystem()
	keyedStore := directory.NewStore(primary, vclock.NewSim())
	fullStore := directory.NewStore(hideKeyed(primary), vclock.NewSim())
	versions := commitHistory(t, keyedStore, fullStore)

	standby := directory.NewStore(primary, vclock.NewSim())
	if err := standby.Restore(keyedStore.Snapshot()); err != nil {
		t.Fatal(err)
	}
	props := property.MustSet("Flights={100..160}")
	for _, since := range versions {
		si, err := standby.Extract(props, since)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := fullStore.Extract(props, since)
		if err != nil {
			t.Fatal(err)
		}
		sameImages(t, fmt.Sprintf("restored since=%d", since), si, fi)
	}
}

// TestExtractDeltaEmpty: a puller already at the head gets an empty delta
// without the keyed path ever calling into the codec.
func TestExtractDeltaEmpty(t *testing.T) {
	primary := airline.NewReservationSystem()
	st := directory.NewStore(primary, vclock.NewSim())
	commitHistory(t, st)
	head := st.Current()
	img, err := st.Extract(property.MustSet("Flights={100..160}"), head)
	if err != nil {
		t.Fatal(err)
	}
	if img.Len() != 0 {
		t.Fatalf("delta at head has %d entries: %v", img.Len(), img.Keys())
	}
	if img.Version != head {
		t.Fatalf("delta version %d, want %d", img.Version, head)
	}
}
