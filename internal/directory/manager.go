package directory

import (
	"fmt"
	"sync"
	"time"

	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/registry"
	"flecc/internal/transport"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Options tunes the directory manager's policies. The zero value is the
// Flecc protocol as described in the paper; the baseline protocols in
// internal/baseline are expressed as option presets.
type Options struct {
	// GatherAll makes every pull gather updates from ALL active views
	// instead of only the conflicting ones — the multicast baseline
	// ("does not discriminate between cache managers and asks all of them
	// to send updates").
	GatherAll bool
	// AlwaysGather forces gathering on every pull even when the view's
	// validity trigger says the primary data is good enough (or when the
	// view registered no validity trigger).
	AlwaysGather bool
	// NeverGather disables gathering entirely; pulls serve whatever the
	// primary holds. Used by the time-sharing baseline, where serial
	// execution makes gathering unnecessary.
	NeverGather bool
	// PropagateOnPush switches weak-mode update distribution from
	// pull-based (peers learn of changes when they next pull) to
	// push-based: every committed push is immediately forwarded, as a
	// TUpdate restricted to the shared interest, to the conflicting
	// active views. Update protocols favor read-heavy sharing; the
	// propagation ablation (experiments E10) measures the trade-off.
	PropagateOnPush bool
	// ReadAware enables the read/write-semantics extension (paper §6
	// future work): pulls tagged OpRead by strong-mode views do not
	// invalidate other active readers, only writers are exclusive.
	ReadAware bool
	// Resolver is the application conflict resolver installed on the
	// store.
	Resolver image.Resolver
	// Handler, if non-nil, is consulted before the built-in dispatch; a
	// non-nil reply short-circuits. Protocol variants (e.g. the
	// time-sharing baseline's token grants) hook in here.
	Handler func(req *wire.Message) *wire.Message
	// Snapshot, if non-nil, restores a failed directory manager's
	// protocol metadata into this (standby) instance before it starts
	// serving — the fail-safe mechanism sketched in §4.1. A snapshot
	// carrying view-registration state (Manager.CaptureSnapshot) also
	// reinstalls the views, so cache managers resume without
	// re-register/re-pull.
	Snapshot *Snapshot
	// Standby starts the manager gating client traffic: it absorbs
	// replication batches (and migration handovers) but refuses CM
	// requests until promoted (replicate.go). Deployments run hot
	// standbys with this set; the shard router's serving replicas leave
	// it unset.
	Standby bool
	// Retry bounds the retry-with-backoff the manager applies to its own
	// outbound calls (invalidate, fetch, update) before declaring the
	// target view unreachable and evicting it. The zero value uses the
	// transport defaults.
	Retry transport.RetryPolicy
	// FanOut bounds how many views a DM-initiated round (invalidate,
	// gather, propagate) contacts concurrently. 0 means DefaultFanOut;
	// 1 preserves the serial, deterministic contact order the experiment
	// harness depends on (and what the paper describes). With FanOut > 1 a
	// slow or dying view costs its own retry budget, not everyone else's.
	FanOut int
	// InvalFilter, if non-nil, rewrites the invalidation target set of
	// each pull before the round runs (receiving the requesting view and
	// the computed targets). Production deployments leave it nil; it
	// exists for protocol verification — the model checker's mutation
	// self-test seeds a skipped-invalidation bug through it and proves
	// the checker renders the resulting violation.
	InvalFilter func(requester string, targets []string) []string
	// Lanes enables conflict-group-striped execution (lanes.go,
	// stripe.go): commits from disjoint conflict groups run through
	// separate execution lanes in parallel, with the store's per-key
	// metadata striped and codec calls moved outside global locks.
	// Requests within one conflict group keep today's arrival order.
	// 0 or 1 keeps the serial path — byte-identical behavior, which the
	// deterministic experiment harness and the model checker rely on.
	// Real deployments opt in via flecc.WithLanes / fleccd -lanes.
	Lanes int
}

// DefaultFanOut is the fan-out bound applied when Options.FanOut is 0.
const DefaultFanOut = 4

// viewState is the DM-side record for one registered view. Its mutable
// fields are guarded by its own mu, so two views' requests never contend
// on a shared manager lock; the map holding the states is guarded by
// Manager.vmu. Lock order: vmu before any vs.mu, never the reverse.
type viewState struct {
	mu       sync.Mutex
	name     string
	mode     wire.Mode
	seen     vclock.Version
	validity trigger.Trigger
	// lastOp is the op class of the view's most recent acquire/pull; the
	// read-aware extension uses it to decide whether an active view must
	// be invalidated by a reader.
	lastOp wire.OpClass
}

// Manager is the Flecc directory manager: one per original component.
type Manager struct {
	name  string
	store *Store
	reg   *registry.Registry
	clock vclock.Clock
	opts  Options

	ep transport.Endpoint

	// evictions counts views discarded after their cache manager stopped
	// answering DM-initiated calls (the ViewsEvicted metric).
	evictions *metrics.Counter

	// Hot-path latency accounting: whole pulls, whole pushes, and the
	// fan-out rounds inside them.
	latPull   *metrics.Latency
	latPush   *metrics.Latency
	latFanout *metrics.Latency

	// vmu guards the views map itself; each viewState carries its own
	// lock for its mutable fields. Replaces the old single Manager.mu
	// that serialized every request's state access.
	vmu   sync.RWMutex
	views map[string]*viewState

	// lanes is the conflict-group execution-lane table (lanes.go); nil
	// unless Options.Lanes > 1.
	lanes *laneSet

	// ha is the hot-standby replication state (replicate.go): role,
	// fencing epoch, attached replicator, and the batch-visible state
	// generation every mutating handler bumps.
	ha haState
}

// New creates a directory manager named name around the original
// component's codec and attaches it to the network. Initially only the
// directory manager is running in the system (paper §4.2).
func New(name string, primary image.Codec, clock vclock.Clock, net transport.Network, opts Options) (*Manager, error) {
	m := &Manager{
		name:      name,
		store:     NewStore(primary, clock),
		reg:       registry.New(),
		clock:     clock,
		opts:      opts,
		views:     map[string]*viewState{},
		evictions: metrics.NewCounter(name + ".views_evicted"),
		latPull:   metrics.NewLatency("pull"),
		latPush:   metrics.NewLatency("push"),
		latFanout: metrics.NewLatency("fanout"),
	}
	if opts.Resolver != nil {
		m.store.SetResolver(opts.Resolver)
	}
	if opts.Lanes > 1 {
		m.store.EnableStriping()
		m.lanes = newLaneSet(m, opts.Lanes)
	}
	if opts.Snapshot != nil {
		if err := m.store.Restore(opts.Snapshot); err != nil {
			return nil, err
		}
		if err := m.installViews(opts.Snapshot.Views); err != nil {
			return nil, err
		}
	}
	// A fresh standby's silence clock stays unarmed until the first
	// replication batch arrives: before it has heard from a primary there
	// is nothing to take over, and the pair boots standby-first (the
	// primary dials it), so counting from construction would self-promote
	// the standby right past the lease and depose the arriving primary.
	if opts.Standby {
		m.ha.standby = true
	}
	ep, err := net.Attach(name, m.handle)
	if err != nil {
		return nil, fmt.Errorf("directory: attach %q: %w", name, err)
	}
	m.ep = ep
	return m, nil
}

// Name returns the directory manager's node name.
func (m *Manager) Name() string { return m.name }

// Store exposes the primary store (for tools, tests, and the quality
// metric).
func (m *Manager) Store() *Store { return m.store }

// Registry exposes the conflict registry so deployments can install the
// static conflict map before views arrive.
func (m *Manager) Registry() *registry.Registry { return m.reg }

// Close detaches the manager from the network.
func (m *Manager) Close() error { return m.ep.Close() }

// CurrentVersion returns the primary's committed version.
func (m *Manager) CurrentVersion() vclock.Version { return m.store.Current() }

// Views returns the registered view names.
func (m *Manager) Views() []string { return m.reg.Views() }

// UnseenCommitted returns the committed part of the paper's quality metric
// for a view: ops committed to shared data by other writers that the view
// has not yet observed. Unknown views report 0.
func (m *Manager) UnseenCommitted(view string) int {
	vs, ok := m.viewState(view)
	if !ok {
		return 0
	}
	vs.mu.Lock()
	seen := vs.seen
	vs.mu.Unlock()
	props, _ := m.reg.Props(view)
	return m.store.UnseenOps(seen, view, props)
}

// ViewsEvicted returns how many views this manager has evicted because
// their cache manager stopped answering DM-initiated calls.
func (m *Manager) ViewsEvicted() int64 { return m.evictions.Value() }

// Latencies exposes the manager's hot-path latency accumulators: whole
// pulls, whole pushes, and the DM-initiated fan-out rounds inside them.
func (m *Manager) Latencies() (pull, push, fanout *metrics.Latency) {
	return m.latPull, m.latPush, m.latFanout
}

// LostViews returns the names of currently evicted (lost) views.
func (m *Manager) LostViews() []string { return m.reg.LostViews() }

// Seen returns the primary version a view last observed.
func (m *Manager) Seen(view string) vclock.Version {
	if vs, ok := m.viewState(view); ok {
		vs.mu.Lock()
		defer vs.mu.Unlock()
		return vs.seen
	}
	return 0
}

// handle is the DM protocol FSM entry point.
func (m *Manager) handle(req *wire.Message) *wire.Message {
	if m.opts.Handler != nil {
		if reply := m.opts.Handler(req); reply != nil {
			return reply
		}
	}
	if reply := m.haGate(req); reply != nil {
		return reply
	}
	// A message from a lost view proves its cache manager is alive again
	// (the eviction was a false positive, or the CM reconnected without
	// needing to re-register): clear the tombstone so the view rejoins
	// conflict accounting. Register has its own revival path; routed,
	// migration, and replication envelopes are not CM-originated.
	switch req.Type {
	case wire.TRegister, wire.TRouted, wire.TMigrateTake, wire.TMigrateApply, wire.TReplicate:
	default:
		if req.From != "" && m.reg.Lost(req.From) {
			// Revival adds conflict edges back; in laned mode it drains
			// the execution lanes like any structural change.
			m.structuralDo(func() { m.reg.SetLost(req.From, false) })
		}
	}
	switch req.Type {
	case wire.TRegister:
		return m.handleRegister(req)
	case wire.TUnregister:
		return m.handleUnregister(req)
	case wire.TInit:
		return m.handleInit(req)
	case wire.TPull:
		return m.handlePull(req)
	case wire.TPush:
		return m.handlePush(req)
	case wire.TSetMode:
		return m.handleSetMode(req)
	case wire.TSetProps:
		return m.handleSetProps(req)
	case wire.TRouted:
		return m.handleRouted(req)
	case wire.TMigrateTake:
		return m.handleMigrateTake(req)
	case wire.TMigrateApply:
		return m.handleMigrateApply(req)
	case wire.TReplicate:
		return m.handleReplicate(req)
	default:
		return errf("directory %s: unexpected message %s", m.name, req.Type)
	}
}

func errf(format string, args ...any) *wire.Message {
	return &wire.Message{Type: wire.TErr, Err: fmt.Sprintf(format, args...)}
}

func (m *Manager) handleRegister(req *wire.Message) *wire.Message {
	view := req.From
	if req.View != "" {
		view = req.View
	}
	val, err := trigger.Compile(req.Trig.Validity)
	if err != nil {
		return errf("bad validity trigger for %s: %v", view, err)
	}
	// Registration changes the conflict structure (it can add edges), so
	// in laned mode it drains the execution lanes first.
	return m.structural(func() *wire.Message {
		if m.reg.Has(view) {
			return m.reRegister(view, req, val)
		}
		if err := m.reg.Register(view, req.Props); err != nil {
			return errf("%v", err)
		}
		m.vmu.Lock()
		m.views[view] = &viewState{name: view, mode: req.Mode, validity: val, lastOp: req.Op}
		m.vmu.Unlock()
		return m.synced(&wire.Message{Type: wire.TAck, Version: m.store.Current()})
	})
}

// reRegister handles a register for a name that is already on the books.
// A reconnecting cache manager re-announces itself with the same property
// set; that must be idempotent — the recorded seen/mode survive so delta
// pulls resume where they left off — and it revives a lost tombstone. A
// registration with different properties is only accepted over a lost
// tombstone (the old holder is gone); against a live view it stays an
// error, as before.
func (m *Manager) reRegister(view string, req *wire.Message, val trigger.Trigger) *wire.Message {
	prev, _ := m.reg.Props(view)
	vs, ok := m.viewState(view)
	if ok && prev.Equal(req.Props) {
		// Keep seen and mode; refresh only what the CM re-announces.
		vs.mu.Lock()
		vs.validity = val
		vs.lastOp = req.Op
		vs.mu.Unlock()
		m.reg.SetLost(view, false)
		return m.synced(&wire.Message{Type: wire.TAck, Version: m.store.Current()})
	}
	if !m.reg.Lost(view) {
		return errf("registry: view %q already registered", view)
	}
	// A new holder claims a dead view's name with different properties:
	// start it fresh (seen resets; its first pull is a full image).
	if err := m.reg.SetProps(view, req.Props); err != nil {
		return errf("%v", err)
	}
	m.reg.SetLost(view, false)
	m.vmu.Lock()
	m.views[view] = &viewState{name: view, mode: req.Mode, validity: val, lastOp: req.Op}
	m.vmu.Unlock()
	return m.synced(&wire.Message{Type: wire.TAck, Version: m.store.Current()})
}

func (m *Manager) handleUnregister(req *wire.Message) *wire.Message {
	view := req.From
	return m.structural(func() *wire.Message {
		m.reg.Unregister(view)
		m.vmu.Lock()
		delete(m.views, view)
		m.vmu.Unlock()
		return m.synced(&wire.Message{Type: wire.TAck})
	})
}

func (m *Manager) viewState(view string) (*viewState, bool) {
	m.vmu.RLock()
	defer m.vmu.RUnlock()
	vs, ok := m.views[view]
	return vs, ok
}

func (m *Manager) handleInit(req *wire.Message) *wire.Message {
	view := req.From
	vs, ok := m.viewState(view)
	if !ok {
		return errf("init from unregistered view %s", view)
	}
	props, _ := m.reg.Props(view)
	img, err := m.store.Extract(props, 0)
	if err != nil {
		return errf("%v", err)
	}
	vs.mu.Lock()
	vs.seen = img.Version
	vs.mu.Unlock()
	m.reg.SetActive(view, true)
	return m.synced(&wire.Message{Type: wire.TImage, Img: img, Version: img.Version})
}

// handlePull is the heart of the protocol (paper Figure 2). Serving a pull
// may require invalidating conflicting active views (strong mode) or
// gathering their pending updates (weak mode with an unhappy validity
// trigger) before extracting the primary data for the requester.
func (m *Manager) handlePull(req *wire.Message) *wire.Message {
	start := time.Now()
	defer func() { m.latPull.Observe(time.Since(start)) }()
	view := req.From
	vs, ok := m.viewState(view)
	if !ok {
		return errf("pull from unregistered view %s", view)
	}
	vs.mu.Lock()
	mode := vs.mode
	vs.lastOp = req.Op
	vs.mu.Unlock()

	// 1. Invalidation set: a strong-mode pull stops every conflicting
	// active view; a weak-mode pull only stops conflicting active
	// strong-mode views (their one-copy guarantee would otherwise be
	// violated by a second active sharer). The whole set is built under
	// one views-map acquisition — not one lock round-trip per candidate —
	// with each candidate's mode/lastOp snapshotted via its own lock.
	conflicting := m.conflictSet(view, true)
	var inval []string
	m.vmu.RLock()
	for _, other := range conflicting {
		os, ok := m.views[other]
		if !ok {
			continue
		}
		os.mu.Lock()
		otherMode := os.mode
		otherOp := os.lastOp
		os.mu.Unlock()
		invalidate := mode == wire.Strong || otherMode == wire.Strong
		if m.opts.ReadAware && invalidate {
			// Readers coexist: only writer/writer and writer/reader pairs
			// are exclusive.
			if req.Op == wire.OpRead && otherOp == wire.OpRead {
				invalidate = false
			}
		}
		if invalidate {
			inval = append(inval, other)
		}
	}
	m.vmu.RUnlock()
	if m.opts.InvalFilter != nil {
		inval = m.opts.InvalFilter(view, inval)
	}
	// Every TInvalidate in the round shares one pre-encoded body; only the
	// per-link header (Seq/From/View) differs per target.
	if len(inval) > 0 {
		pre := wire.Preencode(&wire.Message{Type: wire.TInvalidate})
		if err := m.forEachTarget(inval, func(other string) error {
			if err := m.invalidateView(other, pre); err != nil {
				return fmt.Errorf("invalidate %s: %v", other, err)
			}
			return nil
		}); err != nil {
			return errf("%v", err)
		}
	}

	// 2. Gathering: when the primary's data is not "good enough" for this
	// view, fetch pending updates from the other active sharers first.
	if m.shouldGather(vs, req) {
		targets := m.gatherTargets(view)
		var pre *wire.Frame
		if len(targets) > 0 {
			pre = wire.Preencode(&wire.Message{Type: wire.TPull})
		}
		if err := m.forEachTarget(targets, func(other string) error {
			if err := m.fetchFrom(other, pre); err != nil {
				return fmt.Errorf("fetch from %s: %v", other, err)
			}
			return nil
		}); err != nil {
			return errf("%v", err)
		}
	}

	// 3. Serve the (now freshest-known) primary data.
	props, _ := m.reg.Props(view)
	img, err := m.store.Extract(props, req.Since)
	if err != nil {
		return errf("%v", err)
	}
	vs.mu.Lock()
	vs.seen = img.Version
	vs.mu.Unlock()
	m.reg.SetActive(view, true)
	// One barrier covers the whole pull: the gathered/invalidated commits
	// above and the registration-state changes land on the standbys
	// before the requester sees its image.
	return m.synced(&wire.Message{Type: wire.TImage, Img: img, Version: img.Version})
}

// conflictSet returns the views whose data overlaps the given view's,
// honoring the static map; with GatherAll it is simply everyone else.
// Both paths take one coherent registry snapshot: ConflictingWith runs
// the O(log n + matches) conflict index, and Others replaces the old
// Views+Active round-trip-per-candidate scan.
func (m *Manager) conflictSet(view string, activeOnly bool) []string {
	if m.opts.GatherAll {
		return m.reg.Others(view, activeOnly)
	}
	return m.reg.ConflictingWith(view, activeOnly)
}

func (m *Manager) shouldGather(vs *viewState, req *wire.Message) bool {
	if m.opts.NeverGather {
		return false
	}
	if m.opts.AlwaysGather {
		return true
	}
	vs.mu.Lock()
	val := vs.validity
	seen := vs.seen
	vs.mu.Unlock()
	if val.IsZero() {
		// No validity trigger: the view accepts the primary data as-is.
		return false
	}
	// The validity trigger answers "is the primary data good enough?".
	// Its environment exposes the discrete time t, the primary version,
	// and the view's committed staleness. Staleness is a log walk, so the
	// env computes it lazily — only for triggers that mention it, and only
	// once per evaluation however often they mention it.
	env := &validityEnv{m: m, view: vs.name, seen: seen}
	good, err := val.Fire(float64(m.clock.Now()), env)
	if err != nil {
		// A broken trigger must not stall the protocol; be conservative
		// and gather.
		return true
	}
	return !good
}

// validityEnv is the lazy, memoized trigger environment for shouldGather:
// "version" reads the counter, "staleness" walks the update log via
// UnseenOps at most once per trigger evaluation.
type validityEnv struct {
	m    *Manager
	view string
	seen vclock.Version

	staleness     float64
	haveStaleness bool
}

// Lookup implements trigger.Env.
func (e *validityEnv) Lookup(name string) (float64, bool) {
	switch name {
	case "version":
		return float64(e.m.store.Current()), true
	case "staleness":
		if !e.haveStaleness {
			props, _ := e.m.reg.Props(e.view)
			e.staleness = float64(e.m.store.UnseenOps(e.seen, e.view, props))
			e.haveStaleness = true
		}
		return e.staleness, true
	}
	return 0, false
}

func (m *Manager) gatherTargets(view string) []string {
	return m.conflictSet(view, true)
}

// fanOut resolves the effective fan-out bound.
func (m *Manager) fanOut() int {
	if m.opts.FanOut > 0 {
		return m.opts.FanOut
	}
	return DefaultFanOut
}

// forEachTarget runs one DM-initiated round — call once per target —
// bounded by the configured fan-out. At FanOut=1 (or a single target) the
// calls run serially in slice order and the round aborts on the first
// error, exactly the pre-concurrency behavior the deterministic experiment
// harness relies on. At FanOut>1 every target is contacted regardless of
// other targets' failures (each call carries its own eviction semantics),
// and the first error in slice order is reported afterwards.
func (m *Manager) forEachTarget(targets []string, call func(target string) error) error {
	if len(targets) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { m.latFanout.Observe(time.Since(start)) }()
	fo := m.fanOut()
	if fo <= 1 || len(targets) == 1 {
		for _, t := range targets {
			if err := call(t); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, fo)
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t string) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = call(t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// callView is every DM-initiated call: bounded retry-with-backoff under
// the configured policy, so a transient drop does not discard a live
// view's pending deltas. A final transport error means the view is
// unreachable and the caller should evict it; a remote (protocol) error
// means the view answered and is NOT evicted.
func (m *Manager) callView(target string, req *wire.Message) (*wire.Message, error) {
	return transport.CallRetry(m.ep, target, req, m.opts.Retry)
}

// evictView marks an unreachable view lost: deactivated and tombstoned in
// the registry, so it drops out of conflict sets, gathering, and log
// compaction. Its pending updates died with its cache manager — they are
// gone, which is exactly what "the component crashed" means; the protocol
// state (seen, mode, props) survives on the tombstone so a reconnecting
// manager resumes via the idempotent re-register, and any later message
// from the view revives it.
func (m *Manager) evictView(target string) {
	m.reg.SetLost(target, true)
	m.evictions.Inc()
}

// invalidateView sends TInvalidate, commits the returned pending delta,
// and deactivates the view (Figure 2, steps 12–14). An unreachable view
// is evicted and reported as nil — a dead component must not wedge every
// conflicting pull forever. pre is the round's shared pre-encoded body
// (nil to encode per call).
func (m *Manager) invalidateView(target string, pre *wire.Frame) error {
	reply, err := m.callView(target, &wire.Message{Type: wire.TInvalidate, View: target, Pre: pre})
	if err != nil {
		if transport.IsTransportError(err) {
			m.evictView(target)
			return nil
		}
		return err
	}
	m.reg.SetActive(target, false)
	return m.commitReply(target, reply)
}

// fetchFrom asks an active view for its pending updates without stopping
// it (weak-mode gathering). Like invalidateView, an unreachable view is
// evicted rather than failing the caller's pull. pre is the round's shared
// pre-encoded body (nil to encode per call).
func (m *Manager) fetchFrom(target string, pre *wire.Frame) error {
	reply, err := m.callView(target, &wire.Message{Type: wire.TPull, View: target, Pre: pre})
	if err != nil {
		if transport.IsTransportError(err) {
			m.evictView(target)
			return nil
		}
		return err
	}
	return m.commitReply(target, reply)
}

func (m *Manager) commitReply(writer string, reply *wire.Message) error {
	if reply.Img == nil || reply.Img.Len() == 0 {
		return nil
	}
	// Rejected winners are not pushed back here: invalidated views must
	// pull before their next use anyway, and fetched views will see the
	// winning values on their next pull.
	var err error
	m.withCommitLane(writer, func() {
		_, _, _, err = m.store.Commit(writer, reply.Img, int(reply.Ops))
	})
	return err
}

func (m *Manager) handlePush(req *wire.Message) *wire.Message {
	start := time.Now()
	defer func() { m.latPush.Observe(time.Since(start)) }()
	view := req.From
	if _, ok := m.viewState(view); !ok {
		return errf("push from unregistered view %s", view)
	}
	var (
		ver      vclock.Version
		rejected *image.Image
		err      error
	)
	// The pusher's execution lane serializes this commit against its own
	// conflict group only; disjoint groups commit in parallel.
	m.withCommitLane(view, func() {
		ver, _, rejected, err = m.store.Commit(view, req.Img, int(req.Ops))
	})
	if err != nil {
		return errf("%v", err)
	}
	if m.opts.PropagateOnPush {
		if err := m.propagate(view, ver); err != nil {
			return errf("propagate: %v", err)
		}
	}
	// The ack carries the winning values for any entries the resolver
	// rejected, so the pusher converges on the resolved state. The
	// replication barrier runs before the ack is released: an
	// acknowledged push is on every live standby (semi-sync commit).
	return m.synced(&wire.Message{Type: wire.TAck, Version: ver, Img: rejected})
}

// propagate forwards a freshly committed update to every conflicting
// active view (excluding the writer), restricted to each recipient's
// property set and trimmed to entries it has not seen.
//
// Encode-once fan-out: recipients sharing a property set and seen version
// receive byte-identical payloads, so the round extracts and pre-encodes
// each distinct (props, since) delta exactly once and the transport stamps
// only the per-link header per target. The prepared requests are built
// serially in conflict-set order, so FanOut=1 contacts the same targets in
// the same order (with the same empty-delta skips) as the per-target path
// did.
func (m *Manager) propagate(writer string, ver vclock.Version) error {
	type prepared struct {
		base *wire.Message // shared Img/Version/Pre; nil for an empty delta
	}
	payloads := map[string]*prepared{}
	var targets []string
	reqs := map[string]*wire.Message{}
	for _, other := range m.conflictSet(writer, true) {
		os, ok := m.viewState(other)
		if !ok {
			continue
		}
		props, _ := m.reg.Props(other)
		os.mu.Lock()
		since := os.seen
		os.mu.Unlock()
		key := fmt.Sprintf("%s@%d", props.String(), since)
		pl, ok := payloads[key]
		if !ok {
			img, err := m.store.Extract(props, since)
			if err != nil {
				return err
			}
			pl = &prepared{}
			if img.Len() > 0 {
				base := &wire.Message{Type: wire.TUpdate, Img: img, Version: ver}
				base.Pre = wire.Preencode(base)
				pl.base = base
			}
			payloads[key] = pl
		}
		if pl.base == nil {
			// Nothing this recipient hasn't already seen.
			continue
		}
		req := *pl.base // shallow clone shares Img and Pre; View differs
		req.View = other
		reqs[other] = &req
		targets = append(targets, other)
	}
	return m.forEachTarget(targets, func(other string) error {
		reply, err := m.callView(other, reqs[other])
		if err != nil {
			if transport.IsTransportError(err) {
				// An unreachable recipient is evicted, not allowed to fail
				// the writer's push; it will catch up on re-register.
				m.evictView(other)
				return nil
			}
			return fmt.Errorf("update %s: %w", other, err)
		}
		_ = reply
		if os, ok := m.viewState(other); ok {
			os.mu.Lock()
			if ver > os.seen {
				os.seen = ver
			}
			os.mu.Unlock()
		}
		return nil
	})
}

func (m *Manager) handleSetMode(req *wire.Message) *wire.Message {
	vs, ok := m.viewState(req.From)
	if !ok {
		return errf("set-mode from unregistered view %s", req.From)
	}
	vs.mu.Lock()
	vs.mode = req.Mode
	vs.mu.Unlock()
	return m.synced(&wire.Message{Type: wire.TAck})
}

func (m *Manager) handleSetProps(req *wire.Message) *wire.Message {
	// A property change rewires conflict groups; drain the lanes so no
	// commit runs under the group map it invalidates.
	return m.structural(func() *wire.Message {
		if err := m.reg.SetProps(req.From, req.Props); err != nil {
			return errf("%v", err)
		}
		return m.synced(&wire.Message{Type: wire.TAck})
	})
}

// CompactLog drops update-log records that every registered view has
// already observed (version ≤ min(seen)). It returns the number of
// records dropped. Deployments with long-lived views call this
// periodically to bound the quality-accounting log; records still needed
// by any view are never dropped, so UnseenCommitted stays exact.
func (m *Manager) CompactLog() int {
	m.vmu.RLock()
	min := vclock.Version(0)
	first := true
	for _, vs := range m.views {
		// A lost view's stale seen must not pin the log forever; if it
		// reappears with a gap, its delta pull still serves everything
		// newer than its seen from the shadow, so correctness holds.
		if m.reg.Lost(vs.name) {
			continue
		}
		vs.mu.Lock()
		seen := vs.seen
		vs.mu.Unlock()
		if first || seen < min {
			min = seen
			first = false
		}
	}
	m.vmu.RUnlock()
	if first {
		// No views: everything is droppable.
		min = m.store.Current()
	}
	return m.store.CompactLog(min)
}

// CheckInvariants verifies the manager's cross-structure bookkeeping —
// the registry, the per-view protocol state, and the store — and returns
// the first violation found (nil when consistent). The model checker runs
// it after every explored transition; existing tests assert it behind
// FLECC_TEST_INVARIANTS=1. Checked, beyond Store.CheckInvariants:
//
//   - every registered view has a viewState and vice versa;
//   - no view's seen version exceeds the primary's committed version;
//   - lost (evicted) views are never active.
func (m *Manager) CheckInvariants() error {
	cur := m.store.Current()
	reg := map[string]bool{}
	for _, name := range m.reg.Views() {
		reg[name] = true
		if m.reg.Lost(name) && m.reg.Active(name) {
			return fmt.Errorf("directory %s: lost view %q is active", m.name, name)
		}
	}
	m.vmu.RLock()
	defer m.vmu.RUnlock()
	for name, vs := range m.views {
		if !reg[name] {
			return fmt.Errorf("directory %s: view state %q has no registry entry", m.name, name)
		}
		vs.mu.Lock()
		seen := vs.seen
		vs.mu.Unlock()
		if seen > cur {
			return fmt.Errorf("directory %s: view %q saw v%d beyond committed v%d", m.name, name, seen, cur)
		}
	}
	for name := range reg {
		if _, ok := m.views[name]; !ok {
			return fmt.Errorf("directory %s: registry entry %q has no view state", m.name, name)
		}
	}
	return m.store.CheckInvariants()
}

// Mode reports a view's current mode (Weak for unknown views).
func (m *Manager) Mode(view string) wire.Mode {
	if vs, ok := m.viewState(view); ok {
		vs.mu.Lock()
		defer vs.mu.Unlock()
		return vs.mode
	}
	return wire.Weak
}

// ActiveViews returns the names of currently active views.
func (m *Manager) ActiveViews() []string {
	var out []string
	for _, v := range m.reg.Views() {
		if m.reg.Active(v) {
			out = append(out, v)
		}
	}
	return out
}

// SeedStatic installs a static conflict-map entry (1/0/-1) before or after
// views register.
func (m *Manager) SeedStatic(a, b string, rel registry.Relation) {
	m.structuralDo(func() { m.reg.SetStatic(a, b, rel) })
}

// CommitLocal lets the original component itself commit an update (e.g. an
// administrative change to the primary data). It is also used by tests.
// Like pushed commits, it barriers on replication before returning.
func (m *Manager) CommitLocal(delta *image.Image, ops int) (vclock.Version, error) {
	var (
		v   vclock.Version
		err error
	)
	// A primary-local commit has no conflict group (it may touch any
	// keys), so in laned mode it runs exclusively — all lanes drained.
	m.structuralDo(func() { v, _, _, err = m.store.Commit("", delta, ops) })
	if err != nil {
		return v, err
	}
	return v, m.replBarrier()
}

// ExtractPrimary snapshots the primary for the given properties (tests and
// tools).
func (m *Manager) ExtractPrimary(props property.Set) (*image.Image, error) {
	return m.store.Extract(props, 0)
}
