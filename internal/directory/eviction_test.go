package directory_test

import (
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// newFaultyDM builds a DM behind a Faulty-wrapped Inproc with a fast retry
// policy so eviction tests do not sleep through real backoff.
func newFaultyDM(t *testing.T) (*directory.Manager, *transport.Faulty, *vclock.Sim) {
	t.Helper()
	f := transport.NewFaulty(transport.NewInproc(), 1)
	clock := vclock.NewSim()
	dm, err := directory.New("dm", newKV(), clock, f, directory.Options{
		Retry: transport.RetryPolicy{Attempts: 3, Base: time.Microsecond, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dm, f, clock
}

func newStrongEvictCM(t *testing.T, net transport.Network, clock vclock.Clock, name string) *cache.Manager {
	t.Helper()
	cm, err := cache.New(cache.Config{
		Name: name, Directory: "dm", Net: net, View: newKV(),
		Props: property.MustSet("P={x}"), Mode: wire.Strong, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestTransientFaultDoesNotEvict: a single dropped invalidation is absorbed
// by the DM's bounded retry; the view stays registered and reachable.
func TestTransientFaultDoesNotEvict(t *testing.T) {
	dm, f, clock := newFaultyDM(t)
	cm1 := newStrongEvictCM(t, f, clock, "v1")
	cm2 := newStrongEvictCM(t, f, clock, "v2")
	if err := cm1.PullImage(); err != nil { // v1 becomes the holder
		t.Fatal(err)
	}
	f.DisconnectNext("dm", "v1", 1)
	if err := cm2.PullImage(); err != nil {
		t.Fatalf("pull must succeed after one retry: %v", err)
	}
	if n := dm.ViewsEvicted(); n != 0 {
		t.Fatalf("transient blip evicted %d views", n)
	}
	if lost := dm.LostViews(); len(lost) != 0 {
		t.Fatalf("lost views = %v, want none", lost)
	}
}

// TestExhaustedRetriesEvict: when every retry fails (hard partition between
// the DM and the holder), the holder is evicted, the pull proceeds, and the
// metric and tombstone record it.
func TestExhaustedRetriesEvict(t *testing.T) {
	dm, f, clock := newFaultyDM(t)
	cm1 := newStrongEvictCM(t, f, clock, "v1")
	cm2 := newStrongEvictCM(t, f, clock, "v2")
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	f.Partition("dm", "v1")
	if err := cm2.PullImage(); err != nil {
		t.Fatalf("pull must proceed after evicting the dead holder: %v", err)
	}
	if n := dm.ViewsEvicted(); n != 1 {
		t.Fatalf("ViewsEvicted = %d, want 1", n)
	}
	if lost := dm.LostViews(); len(lost) != 1 || lost[0] != "v1" {
		t.Fatalf("lost views = %v, want [v1]", lost)
	}
	// A lost view is out of the conflict set: further strong pulls need no
	// invalidation round at all.
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}

	// Heal and let the lost view speak: contact revives the tombstone.
	f.Heal("dm", "v1")
	if err := cm1.PullImage(); err != nil {
		t.Fatalf("revived view pull: %v", err)
	}
	if lost := dm.LostViews(); len(lost) != 0 {
		t.Fatalf("still lost after contact: %v", lost)
	}
}

// TestReRegisterIdempotent: re-registering with unchanged properties is an
// ack, not an error, and preserves the view's seen version — the contract a
// reconnecting cache manager depends on.
func TestReRegisterIdempotent(t *testing.T) {
	dm, net, _, _ := newDM(t)
	ep, err := net.Attach("v1", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	props := property.MustSet("P={x}")
	reg := func() (*wire.Message, error) {
		return ep.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1", Mode: wire.Weak, Props: props})
	}
	if _, err := reg(); err != nil {
		t.Fatal(err)
	}
	// Advance the primary and let the view catch up so seen is non-zero.
	d := image.New(props)
	d.Put(image.Entry{Key: "k", Value: []byte("v")})
	if _, err := dm.CommitLocal(d, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	seen := dm.Seen("v1")
	if seen == 0 {
		t.Fatal("setup: seen should be non-zero after a pull")
	}

	reply, err := reg()
	if err != nil {
		t.Fatalf("idempotent re-register rejected: %v", err)
	}
	if reply.Version != dm.CurrentVersion() {
		t.Fatalf("re-register ack version = %d, want %d", reply.Version, dm.CurrentVersion())
	}
	if got := dm.Seen("v1"); got != seen {
		t.Fatalf("seen reset by re-register: %d -> %d", seen, got)
	}

	// Different properties from a live holder are still a conflict.
	_, err = ep.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1", Mode: wire.Weak,
		Props: property.MustSet("P={y}")})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("changed-props re-register: %v", err)
	}
}
