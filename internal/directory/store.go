// Package directory implements Flecc's directory manager (paper §4.2): the
// runtime component attached to the original component. It keeps track of
// which views are running, controls which views are allowed to be active,
// commits pushed updates into the primary copy, and uses the
// application-supplied information — data properties, validity triggers,
// extract/merge methods — to synchronize only the interested parties.
package directory

import (
	"fmt"
	"sort"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// UpdateRec is one committed update in the primary's log. The log is what
// lets Flecc answer the paper's quality question: "how many remote updates
// has this view not seen?"
type UpdateRec struct {
	// Version is the primary version assigned to the commit.
	Version vclock.Version
	// Writer is the view whose changes were committed ("" for updates
	// originating at the primary itself).
	Writer string
	// Props describes which shared data the update touched.
	Props property.Set
	// Ops is the number of logical operations (view use-windows) folded
	// into the commit.
	Ops int
	// At is the virtual time of the commit.
	At vclock.Time
}

type shadowEntry struct {
	version vclock.Version
	writer  string
	deleted bool
}

// dirtyRec is one record in the store's version-ordered dirty-key index:
// key changed at version. Commit appends records in version order, so the
// slice stays sorted without ever sorting on the hot path. When a key is
// committed again, its old record is not removed (that would be O(n)); it
// becomes stale — detectable because the shadow's version for the key has
// moved on — and is skipped on reads and dropped on the next rebuild.
type dirtyRec struct {
	version vclock.Version
	key     string
}

// storeStripe is one key-hash shard of the store's per-key metadata: a
// shadow map plus the version-ordered dirty index over its keys. In
// serial mode the store has exactly one stripe and every access runs
// under Store.mu, so stripe.mu is never touched and behavior is exactly
// the pre-striping store. In striped mode (EnableStriping) there are
// stripeCount stripes, each guarded by its own lock, so commits of
// disjoint conflict groups publish metadata without contending.
type storeStripe struct {
	mu     sync.RWMutex
	shadow map[string]shadowEntry
	// dirty is the version-ordered dirty-key index feeding incremental
	// extraction; stale counts its superseded records, driving rebuilds.
	dirty []dirtyRec
	stale int
}

func newStoreStripe() *storeStripe {
	return &storeStripe{shadow: map[string]shadowEntry{}}
}

// stripeCount is the fixed key-hash fan-out in striped mode. Keys hash to
// stripes independently of conflict groups: disjoint groups have disjoint
// keys, so their publishes never collide on an entry, and a shared stripe
// only costs a short map-update critical section (all codec work happens
// outside stripe locks).
const stripeCount = 16

// Store wraps the original component's extract/merge codec with the
// protocol metadata Flecc maintains around it: a monotonic version
// counter, a per-key shadow of (version, writer) used for conflict
// detection, and the update log used for quality accounting. Store is the
// application-neutral half of the directory manager: it never interprets
// entry payloads.
type Store struct {
	// mu is a reader/writer lock: commits take the write side, extracts and
	// quality queries the read side, so concurrent pulls of non-conflicting
	// views no longer serialize on the store. In striped mode it shrinks to
	// guarding the update log, gen, and conflictsSeen — per-key metadata
	// moves under the stripe locks.
	mu      sync.RWMutex
	primary image.Codec
	// keyed is primary's keyed-extraction extension when it has one; nil
	// means delta pulls fall back to full extract + DeltaSince.
	keyed   image.KeyedExtractor
	clock   vclock.Clock
	counter vclock.Counter
	// gen counts metadata mutations (commits, restores, absorbs). Extract
	// snapshots it, calls the primary codec *outside* the lock, and
	// revalidates: an unchanged gen proves nothing moved underneath the
	// unlocked codec call.
	gen uint64
	// stripes holds the per-key metadata: one stripe in serial mode,
	// stripeCount key-hash stripes in striped mode.
	stripes []*storeStripe
	log     []UpdateRec
	// resolver adjudicates concurrent-update conflicts; nil means
	// last-writer-wins in commit order (the incoming update wins, since it
	// is the latest).
	resolver image.Resolver
	// conflictsSeen counts conflicts detected across all commits.
	conflictsSeen int

	// striped marks the store as running the concurrent-commit paths
	// (stripe.go). gate is the striped-mode commit gate: commits and
	// extracts hold the read side, whole-store operations (snapshot,
	// restore, absorb, invariant checks) the write side — acquiring it
	// exclusively quiesces every in-flight commit, which is what keeps
	// replication batches complete. pub tracks the published watermark
	// striped extracts stamp images with.
	striped bool
	gate    sync.RWMutex
	pub     pubTracker
}

// NewStore builds a store around the original component's codec.
func NewStore(primary image.Codec, clock vclock.Clock) *Store {
	keyed, _ := primary.(image.KeyedExtractor)
	return &Store{
		primary: primary,
		keyed:   keyed,
		clock:   clock,
		stripes: []*storeStripe{newStoreStripe()},
	}
}

// stripeFor maps a key to its metadata stripe (the single stripe in
// serial mode).
func (s *Store) stripeFor(k string) *storeStripe {
	if len(s.stripes) == 1 {
		return s.stripes[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return s.stripes[h%uint32(len(s.stripes))]
}

// SetResolver installs the application's conflict resolver (nil restores
// incoming-wins).
func (s *Store) SetResolver(r image.Resolver) {
	s.mu.Lock()
	s.resolver = r
	s.mu.Unlock()
}

// Current returns the latest committed primary version.
func (s *Store) Current() vclock.Version { return s.counter.Current() }

// ConflictsSeen returns the number of concurrent-update conflicts detected
// so far.
func (s *Store) ConflictsSeen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.conflictsSeen
}

// Commit folds a view's delta into the primary copy. Each delta entry's
// Version field carries the version of the data the view based its change
// on; when the shadow shows a newer committed version by a different
// writer, the entries conflict and the resolver (or incoming-wins) decides.
// Commit assigns one new primary version to the whole delta, merges the
// winning entries into the original component, updates the shadow, and
// appends an update record with the given op count.
//
// The returned rejected image (nil when empty) contains, for every key
// where the resolver kept the primary's value, that winning entry — the
// caller sends it back to the pusher so the losing view converges instead
// of silently keeping its rejected value.
//
// An empty delta commits nothing and returns the current version.
func (s *Store) Commit(writer string, delta *image.Image, ops int) (vclock.Version, int, *image.Image, error) {
	if delta == nil || delta.Len() == 0 {
		return s.counter.Current(), 0, nil, nil
	}
	if s.striped {
		return s.commitStriped(writer, delta, ops)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stripes[0]

	// Detect conflicting keys via the shadow.
	var conflictKeys []string
	for _, k := range delta.Keys() {
		e := delta.Entries[k]
		if sh, ok := st.shadow[k]; ok && sh.version > e.Version && sh.writer != writer {
			conflictKeys = append(conflictKeys, k)
		}
	}

	apply := image.New(delta.Props.Clone())
	rejected := image.New(delta.Props.Clone())
	newVer := s.counter.Next()

	var current *image.Image
	if len(conflictKeys) > 0 {
		// We need the primary's current values to give the resolver both
		// sides.
		var err error
		current, err = s.primary.Extract(delta.Props)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("directory: extract for conflict resolution: %w", err)
		}
	}
	conflicts := 0
	isConflict := map[string]bool{}
	for _, k := range conflictKeys {
		isConflict[k] = true
	}
	for _, k := range delta.Keys() {
		theirs := delta.Entries[k].Clone()
		if isConflict[k] {
			conflicts++
			winner := theirs
			if s.resolver != nil {
				var ours image.Entry
				if current != nil {
					if ce, ok := current.Get(k); ok {
						ours = ce
						ours.Version = st.shadow[k].version
						ours.Writer = st.shadow[k].writer
					}
				}
				w, err := s.resolver(image.Conflict{Key: k, Ours: ours, Theirs: theirs})
				if err != nil {
					return 0, 0, nil, fmt.Errorf("directory: resolve %q: %w", k, err)
				}
				winner = w
				if winner.Equal(ours) {
					// The primary's value survives: keep the shadow as-is,
					// skip the merge for this key, and report the winning
					// value back to the pusher so it converges.
					rejected.Put(ours)
					continue
				}
			}
			theirs = winner
		}
		theirs.Version = newVer
		theirs.Writer = writer
		apply.Put(theirs)
		if _, existed := st.shadow[k]; existed {
			// The key's previous dirty record is now superseded.
			st.stale++
		}
		st.shadow[k] = shadowEntry{version: newVer, writer: writer, deleted: theirs.Deleted}
		st.dirty = append(st.dirty, dirtyRec{version: newVer, key: k})
	}
	s.conflictsSeen += conflicts
	if st.stale > len(st.shadow)+16 {
		st.rebuild()
	}

	apply.Version = newVer
	if apply.Len() > 0 {
		if err := s.primary.Merge(apply, delta.Props); err != nil {
			return 0, 0, nil, fmt.Errorf("directory: merge into primary: %w", err)
		}
	}
	s.log = append(s.log, UpdateRec{
		Version: newVer,
		Writer:  writer,
		Props:   delta.Props.Clone(),
		Ops:     ops,
		At:      s.clock.Now(),
	})
	s.gen++
	rejected.Version = newVer
	if rejected.Len() == 0 {
		return newVer, conflicts, nil, nil
	}
	return newVer, conflicts, rejected, nil
}

// rebuild regenerates the stripe's dirty index from its shadow: one
// record per key at its current version, sorted by (version, key). Called
// with the stripe exclusively held (under Store.mu in serial mode, the
// stripe lock or the commit gate in striped mode) when stale records pile
// up or when the shadow is replaced wholesale (Restore/Absorb).
func (st *storeStripe) rebuild() {
	st.dirty = st.dirty[:0]
	for k, sh := range st.shadow {
		st.dirty = append(st.dirty, dirtyRec{version: sh.version, key: k})
	}
	sort.Slice(st.dirty, func(i, j int) bool {
		if st.dirty[i].version != st.dirty[j].version {
			return st.dirty[i].version < st.dirty[j].version
		}
		return st.dirty[i].key < st.dirty[j].key
	})
	st.stale = 0
}

// Extract snapshots the primary copy restricted to props, stamps entries
// with their shadow metadata, and — when since > 0 — trims the result to
// entries committed after since (a delta). The image's Version is always
// the current primary version.
//
// Delta pulls of a keyed primary take the incremental path: the dirty-key
// index pinpoints exactly which keys changed after since, so only those
// keys are extracted instead of snapshotting everything and discarding
// most of it. Either way the primary codec is called outside the store
// lock — a generation check detects a racing commit and retries.
func (s *Store) Extract(props property.Set, since vclock.Version) (*image.Image, error) {
	if s.striped {
		return s.extractStriped(props, since)
	}
	if since > 0 && s.keyed != nil {
		img, ok, err := s.extractDelta(props, since)
		if ok {
			return img, err
		}
	}
	return s.extractFull(props, since)
}

// extractFull is the classic path: full primary snapshot, shadow overlay,
// tombstone synthesis, optional DeltaSince trim.
func (s *Store) extractFull(props property.Set, since vclock.Version) (*image.Image, error) {
	st := s.stripes[0]
	for attempt := 0; ; attempt++ {
		// After two generation-check failures, hold the read lock across the
		// codec call; progress beats parallelism under a commit storm.
		locked := attempt >= 2
		s.mu.RLock()
		gen := s.gen
		ver := s.counter.Current()
		if !locked {
			s.mu.RUnlock()
		}
		img, err := s.primary.Extract(props)
		if err != nil {
			if locked {
				s.mu.RUnlock()
			}
			return nil, fmt.Errorf("directory: extract from primary: %w", err)
		}
		if img == nil {
			img = image.New(props.Clone())
		}
		if !locked {
			s.mu.RLock()
			if s.gen != gen {
				s.mu.RUnlock()
				continue // a commit raced the unlocked snapshot; retry
			}
		}
		for k, e := range img.Entries {
			if sh, ok := st.shadow[k]; ok {
				e.Version = sh.version
				e.Writer = sh.writer
				img.Entries[k] = e
			}
		}
		// Deleted keys are gone from the primary extract, so a puller would
		// never learn about them; synthesize tombstones from the shadow.
		// (Merging a tombstone for a key a view never held is a harmless
		// no-op, so tombstones are not filtered by props.)
		for k, sh := range st.shadow {
			if !sh.deleted {
				continue
			}
			if _, present := img.Get(k); present {
				continue
			}
			img.Put(image.Entry{Key: k, Version: sh.version, Writer: sh.writer, Deleted: true})
		}
		s.mu.RUnlock()
		img.Version = ver
		if since > 0 {
			img = img.DeltaSince(since)
		}
		return img, nil
	}
}

// extractDelta serves Extract(props, since>0) from the dirty-key index:
// binary-search the index for the first change after since, partition the
// tail into live keys and tombstones, and ask the keyed primary for just
// the live keys. Returns ok=false to fall back to the full path when a
// commit races the unlocked codec call.
func (s *Store) extractDelta(props property.Set, since vclock.Version) (*image.Image, bool, error) {
	st := s.stripes[0]
	s.mu.RLock()
	gen := s.gen
	ver := s.counter.Current()
	start := sort.Search(len(st.dirty), func(i int) bool { return st.dirty[i].version > since })
	var liveKeys []string
	var tombs []image.Entry
	for i := start; i < len(st.dirty); i++ {
		rec := st.dirty[i]
		sh, ok := st.shadow[rec.key]
		if !ok || sh.version != rec.version {
			continue // superseded record; the key's current version has its own
		}
		if sh.deleted {
			// Tombstones are not filtered by props, mirroring the full path.
			tombs = append(tombs, image.Entry{Key: rec.key, Version: sh.version, Writer: sh.writer, Deleted: true})
		} else {
			liveKeys = append(liveKeys, rec.key)
		}
	}
	s.mu.RUnlock()

	var img *image.Image
	if len(liveKeys) == 0 {
		img = image.New(props.Clone())
	} else {
		var err error
		img, err = s.keyed.ExtractKeys(props, liveKeys)
		if err != nil {
			return nil, true, fmt.Errorf("directory: extract from primary: %w", err)
		}
		if img == nil {
			img = image.New(props.Clone())
		}
	}

	s.mu.RLock()
	if s.gen != gen {
		s.mu.RUnlock()
		return nil, false, nil // a commit raced; take the full path
	}
	for k, e := range img.Entries {
		if sh, ok := st.shadow[k]; ok {
			e.Version = sh.version
			e.Writer = sh.writer
			img.Entries[k] = e
		}
	}
	s.mu.RUnlock()
	for _, t := range tombs {
		if _, present := img.Get(t.Key); !present {
			img.Put(t)
		}
	}
	img.Version = ver
	return img, true, nil
}

// UnseenOps implements the paper's data-quality metric for the committed
// part of the system state: the total Ops of update records that (i) were
// committed after the given version, (ii) were written by someone other
// than viewer, and (iii) touch data overlapping the viewer's props.
func (s *Store) UnseenOps(since vclock.Version, viewer string, props property.Set) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for i := len(s.log) - 1; i >= 0; i-- {
		rec := s.log[i]
		if rec.Version <= since {
			break // log is version-ordered
		}
		if rec.Writer == viewer {
			continue
		}
		if !props.IsEmpty() && !rec.Props.IsEmpty() && !props.Overlaps(rec.Props) {
			continue
		}
		total += rec.Ops
	}
	return total
}

// CheckInvariants verifies the store's internal bookkeeping and returns
// the first violation found (nil when consistent). It is the exported
// self-check the model checker (internal/modelcheck) runs after every
// explored transition, and existing tests assert it behind
// FLECC_TEST_INVARIANTS=1. Checked:
//
//   - every shadow entry's version is positive and ≤ the counter;
//   - the update log is strictly version-ordered and bounded by the counter;
//   - every shadow entry's current version has a live dirty-index record,
//     and no dirty record claims a version newer than the counter;
//   - the stale count never exceeds the index length.
func (s *Store) CheckInvariants() error {
	if s.striped {
		// Quiesce in-flight commits so the cross-stripe view is coherent,
		// and check the published watermark caught up to the counter.
		s.gate.Lock()
		defer s.gate.Unlock()
		if pub, cur := s.pub.published(), s.counter.Current(); pub != cur {
			return fmt.Errorf("store: published watermark v%d behind counter v%d with no commit in flight", pub, cur)
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur := s.counter.Current()
	var prev vclock.Version
	for i, rec := range s.log {
		if rec.Version <= prev {
			return fmt.Errorf("store: log[%d] v%d not strictly after v%d", i, rec.Version, prev)
		}
		if rec.Version > cur {
			return fmt.Errorf("store: log[%d] v%d exceeds counter v%d", i, rec.Version, cur)
		}
		prev = rec.Version
	}
	for _, st := range s.stripes {
		for k, sh := range st.shadow {
			if sh.version == 0 {
				return fmt.Errorf("store: shadow %q has version 0", k)
			}
			if sh.version > cur {
				return fmt.Errorf("store: shadow %q at v%d exceeds counter v%d", k, sh.version, cur)
			}
		}
		live := map[string]vclock.Version{}
		var prevDirty vclock.Version
		for i, rec := range st.dirty {
			if rec.version > cur {
				return fmt.Errorf("store: dirty[%d] %q at v%d exceeds counter v%d", i, rec.key, rec.version, cur)
			}
			if rec.version < prevDirty {
				return fmt.Errorf("store: dirty[%d] %q at v%d out of order after v%d", i, rec.key, rec.version, prevDirty)
			}
			prevDirty = rec.version
			if sh, ok := st.shadow[rec.key]; ok && sh.version == rec.version {
				live[rec.key] = rec.version
			}
		}
		for k, sh := range st.shadow {
			if v, ok := live[k]; !ok || v != sh.version {
				return fmt.Errorf("store: shadow %q at v%d has no live dirty record", k, sh.version)
			}
		}
		if st.stale > len(st.dirty) {
			return fmt.Errorf("store: stale count %d exceeds dirty index length %d", st.stale, len(st.dirty))
		}
	}
	return nil
}

// Log returns a copy of the update log (for tests and tools).
func (s *Store) Log() []UpdateRec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]UpdateRec, len(s.log))
	copy(out, s.log)
	return out
}

// CompactLog drops log records at or below the given version; callers use
// it once every registered view has seen past that point.
func (s *Store) CompactLog(upTo vclock.Version) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.log) && s.log[i].Version <= upTo {
		i++
	}
	dropped := i
	s.log = append([]UpdateRec(nil), s.log[i:]...)
	return dropped
}
