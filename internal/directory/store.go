// Package directory implements Flecc's directory manager (paper §4.2): the
// runtime component attached to the original component. It keeps track of
// which views are running, controls which views are allowed to be active,
// commits pushed updates into the primary copy, and uses the
// application-supplied information — data properties, validity triggers,
// extract/merge methods — to synchronize only the interested parties.
package directory

import (
	"fmt"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// UpdateRec is one committed update in the primary's log. The log is what
// lets Flecc answer the paper's quality question: "how many remote updates
// has this view not seen?"
type UpdateRec struct {
	// Version is the primary version assigned to the commit.
	Version vclock.Version
	// Writer is the view whose changes were committed ("" for updates
	// originating at the primary itself).
	Writer string
	// Props describes which shared data the update touched.
	Props property.Set
	// Ops is the number of logical operations (view use-windows) folded
	// into the commit.
	Ops int
	// At is the virtual time of the commit.
	At vclock.Time
}

type shadowEntry struct {
	version vclock.Version
	writer  string
	deleted bool
}

// Store wraps the original component's extract/merge codec with the
// protocol metadata Flecc maintains around it: a monotonic version
// counter, a per-key shadow of (version, writer) used for conflict
// detection, and the update log used for quality accounting. Store is the
// application-neutral half of the directory manager: it never interprets
// entry payloads.
type Store struct {
	mu      sync.Mutex
	primary image.Codec
	clock   vclock.Clock
	counter vclock.Counter
	shadow  map[string]shadowEntry
	log     []UpdateRec
	// resolver adjudicates concurrent-update conflicts; nil means
	// last-writer-wins in commit order (the incoming update wins, since it
	// is the latest).
	resolver image.Resolver
	// conflictsSeen counts conflicts detected across all commits.
	conflictsSeen int
}

// NewStore builds a store around the original component's codec.
func NewStore(primary image.Codec, clock vclock.Clock) *Store {
	return &Store{
		primary: primary,
		clock:   clock,
		shadow:  map[string]shadowEntry{},
	}
}

// SetResolver installs the application's conflict resolver (nil restores
// incoming-wins).
func (s *Store) SetResolver(r image.Resolver) {
	s.mu.Lock()
	s.resolver = r
	s.mu.Unlock()
}

// Current returns the latest committed primary version.
func (s *Store) Current() vclock.Version { return s.counter.Current() }

// ConflictsSeen returns the number of concurrent-update conflicts detected
// so far.
func (s *Store) ConflictsSeen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conflictsSeen
}

// Commit folds a view's delta into the primary copy. Each delta entry's
// Version field carries the version of the data the view based its change
// on; when the shadow shows a newer committed version by a different
// writer, the entries conflict and the resolver (or incoming-wins) decides.
// Commit assigns one new primary version to the whole delta, merges the
// winning entries into the original component, updates the shadow, and
// appends an update record with the given op count.
//
// The returned rejected image (nil when empty) contains, for every key
// where the resolver kept the primary's value, that winning entry — the
// caller sends it back to the pusher so the losing view converges instead
// of silently keeping its rejected value.
//
// An empty delta commits nothing and returns the current version.
func (s *Store) Commit(writer string, delta *image.Image, ops int) (vclock.Version, int, *image.Image, error) {
	if delta == nil || delta.Len() == 0 {
		return s.counter.Current(), 0, nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Detect conflicting keys via the shadow.
	var conflictKeys []string
	for _, k := range delta.Keys() {
		e := delta.Entries[k]
		if sh, ok := s.shadow[k]; ok && sh.version > e.Version && sh.writer != writer {
			conflictKeys = append(conflictKeys, k)
		}
	}

	apply := image.New(delta.Props.Clone())
	rejected := image.New(delta.Props.Clone())
	newVer := s.counter.Next()

	var current *image.Image
	if len(conflictKeys) > 0 {
		// We need the primary's current values to give the resolver both
		// sides.
		var err error
		current, err = s.primary.Extract(delta.Props)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("directory: extract for conflict resolution: %w", err)
		}
	}
	conflicts := 0
	isConflict := map[string]bool{}
	for _, k := range conflictKeys {
		isConflict[k] = true
	}
	for _, k := range delta.Keys() {
		theirs := delta.Entries[k].Clone()
		if isConflict[k] {
			conflicts++
			winner := theirs
			if s.resolver != nil {
				var ours image.Entry
				if current != nil {
					if ce, ok := current.Get(k); ok {
						ours = ce
						ours.Version = s.shadow[k].version
						ours.Writer = s.shadow[k].writer
					}
				}
				w, err := s.resolver(image.Conflict{Key: k, Ours: ours, Theirs: theirs})
				if err != nil {
					return 0, 0, nil, fmt.Errorf("directory: resolve %q: %w", k, err)
				}
				winner = w
				if winner.Equal(ours) {
					// The primary's value survives: keep the shadow as-is,
					// skip the merge for this key, and report the winning
					// value back to the pusher so it converges.
					rejected.Put(ours)
					continue
				}
			}
			theirs = winner
		}
		theirs.Version = newVer
		theirs.Writer = writer
		apply.Put(theirs)
		s.shadow[k] = shadowEntry{version: newVer, writer: writer, deleted: theirs.Deleted}
	}
	s.conflictsSeen += conflicts

	apply.Version = newVer
	if apply.Len() > 0 {
		if err := s.primary.Merge(apply, delta.Props); err != nil {
			return 0, 0, nil, fmt.Errorf("directory: merge into primary: %w", err)
		}
	}
	s.log = append(s.log, UpdateRec{
		Version: newVer,
		Writer:  writer,
		Props:   delta.Props.Clone(),
		Ops:     ops,
		At:      s.clock.Now(),
	})
	rejected.Version = newVer
	if rejected.Len() == 0 {
		return newVer, conflicts, nil, nil
	}
	return newVer, conflicts, rejected, nil
}

// Extract snapshots the primary copy restricted to props, stamps entries
// with their shadow metadata, and — when since > 0 — trims the result to
// entries committed after since (a delta). The image's Version is always
// the current primary version.
func (s *Store) Extract(props property.Set, since vclock.Version) (*image.Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, err := s.primary.Extract(props)
	if err != nil {
		return nil, fmt.Errorf("directory: extract from primary: %w", err)
	}
	if img == nil {
		img = image.New(props.Clone())
	}
	for k, e := range img.Entries {
		if sh, ok := s.shadow[k]; ok {
			e.Version = sh.version
			e.Writer = sh.writer
			img.Entries[k] = e
		}
	}
	// Deleted keys are gone from the primary extract, so a puller would
	// never learn about them; synthesize tombstones from the shadow.
	// (Merging a tombstone for a key a view never held is a harmless
	// no-op, so tombstones are not filtered by props.)
	for k, sh := range s.shadow {
		if !sh.deleted {
			continue
		}
		if _, present := img.Get(k); present {
			continue
		}
		img.Put(image.Entry{Key: k, Version: sh.version, Writer: sh.writer, Deleted: true})
	}
	img.Version = s.counter.Current()
	if since > 0 {
		img = img.DeltaSince(since)
	}
	return img, nil
}

// UnseenOps implements the paper's data-quality metric for the committed
// part of the system state: the total Ops of update records that (i) were
// committed after the given version, (ii) were written by someone other
// than viewer, and (iii) touch data overlapping the viewer's props.
func (s *Store) UnseenOps(since vclock.Version, viewer string, props property.Set) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for i := len(s.log) - 1; i >= 0; i-- {
		rec := s.log[i]
		if rec.Version <= since {
			break // log is version-ordered
		}
		if rec.Writer == viewer {
			continue
		}
		if !props.IsEmpty() && !rec.Props.IsEmpty() && !props.Overlaps(rec.Props) {
			continue
		}
		total += rec.Ops
	}
	return total
}

// Log returns a copy of the update log (for tests and tools).
func (s *Store) Log() []UpdateRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]UpdateRec, len(s.log))
	copy(out, s.log)
	return out
}

// CompactLog drops log records at or below the given version; callers use
// it once every registered view has seen past that point.
func (s *Store) CompactLog(upTo vclock.Version) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.log) && s.log[i].Version <= upTo {
		i++
	}
	dropped := i
	s.log = append([]UpdateRec(nil), s.log[i:]...)
	return dropped
}
