package directory_test

import (
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/registry"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func newStrongCM(t *testing.T, net transport.Network, clock vclock.Clock, name string, view *kv) *cache.Manager {
	t.Helper()
	cm, err := cache.New(cache.Config{
		Name: name, Directory: "dm", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Strong, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestStrongFlowThroughManager(t *testing.T) {
	dm, net, clock, prim := newDM(t)
	v1, v2 := newKV(), newKV()
	cm1 := newStrongCM(t, net, clock, "v1", v1)
	cm2 := newStrongCM(t, net, clock, "v2", v2)

	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.data["k"] = "held"
	cm1.EndUse()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("v1 should be invalidated")
	}
	if v2.data["k"] != "held" {
		t.Fatal("pending update should ride the invalidation")
	}
	if prim.data["k"] != "held" {
		t.Fatal("primary should hold the update")
	}
	active := dm.ActiveViews()
	if len(active) != 1 || active[0] != "v2" {
		t.Fatalf("active = %v", active)
	}
	if dm.Mode("v1") != wire.Strong || dm.Mode("ghost") != wire.Weak {
		t.Fatal("Mode accessor")
	}
	if dm.Name() != "dm" {
		t.Fatal("Name accessor")
	}
	if dm.Registry() == nil {
		t.Fatal("Registry accessor")
	}
}

func TestGatherFlowThroughManager(t *testing.T) {
	_, net, clock, _ := newDM(t)
	v1 := newKV()
	cm1, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: net, View: v1,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm1.InitImage()
	v2 := newKV()
	cm2, err := cache.New(cache.Config{
		Name: "v2", Directory: "dm", Net: net, View: v2,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		ValidityTrigger: "false",
	})
	if err != nil {
		t.Fatal(err)
	}
	cm2.InitImage()
	cm1.StartUse()
	v1.data["k"] = "pending"
	cm1.EndUse()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.data["k"] != "pending" {
		t.Fatal("gather should fetch the peer's pending data")
	}
	if !cm1.Valid() {
		t.Fatal("gather must not invalidate")
	}
}

func TestSetModeAndPropsThroughManager(t *testing.T) {
	dm, net, clock, _ := newDM(t)
	cm, _ := newCM(t, net, clock, "v1")
	if err := cm.SetMode(wire.Strong); err != nil {
		t.Fatal(err)
	}
	if dm.Mode("v1") != wire.Strong {
		t.Fatal("set-mode not applied")
	}
	if err := cm.SetProps(property.MustSet("P={y,z}")); err != nil {
		t.Fatal(err)
	}
	props, ok := dm.Registry().Props("v1")
	if !ok || !props.Equal(property.MustSet("P={y,z}")) {
		t.Fatalf("props = %v", props)
	}
	// Unregister clears the view.
	if err := cm.KillImage(); err != nil {
		t.Fatal(err)
	}
	if dm.Registry().Has("v1") {
		t.Fatal("unregister should remove the view")
	}
}

func TestSeedStaticAndExtractPrimary(t *testing.T) {
	dm, net, clock, _ := newDM(t)
	dm.SeedStatic("v1", "v2", registry.NoConflict)
	cm1, v1 := newCM(t, net, clock, "v1")
	cm2, _ := newCM(t, net, clock, "v2")
	cm1.SetMode(wire.Strong)
	cm2.SetMode(wire.Strong)
	cm1.PullImage()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if !cm1.Valid() {
		t.Fatal("static no-conflict should suppress invalidation")
	}
	_ = v1
	img, err := dm.ExtractPrimary(property.MustSet("P={x}"))
	if err != nil {
		t.Fatal(err)
	}
	if img == nil {
		t.Fatal("extract primary")
	}
}

func TestPropagateThroughManager(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim := newKV()
	dm, err := directory.New("dm", prim, clock, net, directory.Options{PropagateOnPush: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = dm
	cm1, v1 := newCM(t, net, clock, "v1")
	_, v2 := newCM(t, net, clock, "v2")
	cm1.StartUse()
	v1.data["k"] = "forwarded"
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if v2.data["k"] != "forwarded" {
		t.Fatal("push propagation should reach the peer")
	}
}

func TestCommitLocalThroughManager(t *testing.T) {
	dm, net, clock, _ := newDM(t)
	cm, view := newCM(t, net, clock, "v1")
	d := image.New(property.MustSet("P={x}"))
	d.Put(image.Entry{Key: "admin", Value: []byte("change")})
	if _, err := dm.CommitLocal(d, 1); err != nil {
		t.Fatal(err)
	}
	if err := cm.PullImage(); err != nil {
		t.Fatal(err)
	}
	if view.data["admin"] != "change" {
		t.Fatal("local commit should reach views")
	}
}
