package directory

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// randDelta builds a random delta image over a small key space.
func randDelta(r *rand.Rand, writer string) *image.Image {
	img := image.New(property.MustSet("F={1..5}"))
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", r.Intn(5))
		if r.Intn(6) == 0 {
			img.Put(image.Entry{Key: k, Writer: writer, Deleted: true})
		} else {
			img.Put(image.Entry{
				Key:     k,
				Value:   []byte(fmt.Sprintf("%s-%d", writer, r.Intn(100))),
				Version: vclock.Version(r.Intn(10)),
				Writer:  writer,
			})
		}
	}
	return img
}

// TestQuickStoreVersionMonotonic: every non-empty commit strictly
// increases the version; the log stays version-ordered; ConflictsSeen
// never decreases.
func TestQuickStoreVersionMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	f := func() bool {
		st := NewStore(newMapStore(), vclock.NewSim())
		writers := []string{"a", "b", "c"}
		prevVer := vclock.Version(0)
		prevConf := 0
		for i := 0; i < 10; i++ {
			w := writers[r.Intn(len(writers))]
			ver, _, _, err := st.Commit(w, randDelta(r, w), 1)
			if err != nil {
				return false
			}
			if ver != prevVer+1 {
				return false
			}
			prevVer = ver
			if st.ConflictsSeen() < prevConf {
				return false
			}
			prevConf = st.ConflictsSeen()
		}
		log := st.Log()
		for i := 1; i < len(log); i++ {
			if log[i].Version <= log[i-1].Version {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStoreExtractReflectsCommits: after any commit sequence, a full
// extraction reflects exactly the primary's live keys plus tombstones for
// every deleted key, and the quality metric is consistent: a viewer that
// has seen the latest version has nothing unseen.
func TestQuickStoreExtractReflectsCommits(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := func() bool {
		ms := newMapStore()
		st := NewStore(ms, vclock.NewSim())
		for i := 0; i < 8; i++ {
			w := fmt.Sprintf("w%d", r.Intn(3))
			if _, _, _, err := st.Commit(w, randDelta(r, w), 1); err != nil {
				return false
			}
		}
		img, err := st.Extract(property.MustSet("F={1..5}"), 0)
		if err != nil {
			return false
		}
		// Every live key appears with its current value.
		for k, v := range ms.data {
			e, ok := img.Get(k)
			if !ok || e.Deleted || string(e.Value) != v {
				return false
			}
		}
		// Every extracted non-tombstone key is live.
		for k, e := range img.Entries {
			if e.Deleted {
				if _, live := ms.data[k]; live {
					return false
				}
				continue
			}
			if _, live := ms.data[k]; !live {
				return false
			}
		}
		// Fully caught-up viewers are fully fresh.
		return st.UnseenOps(st.Current(), "someone-else", property.MustSet("F={1..5}")) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeltaExtractIsSuffix: extracting with since=s returns exactly
// the entries whose shadow version exceeds s.
func TestQuickDeltaExtractIsSuffix(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	f := func() bool {
		st := NewStore(newMapStore(), vclock.NewSim())
		for i := 0; i < 6; i++ {
			w := fmt.Sprintf("w%d", r.Intn(2))
			if _, _, _, err := st.Commit(w, randDelta(r, w), 1); err != nil {
				return false
			}
		}
		full, err := st.Extract(property.MustSet("F={1..5}"), 0)
		if err != nil {
			return false
		}
		since := vclock.Version(r.Intn(7))
		delta, err := st.Extract(property.MustSet("F={1..5}"), since)
		if err != nil {
			return false
		}
		for k, e := range full.Entries {
			_, inDelta := delta.Get(k)
			if (e.Version > since) != inDelta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
