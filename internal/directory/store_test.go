package directory

import (
	"fmt"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// mapStore is a trivial primary component: a map of key->string with the
// image codec implemented over it.
type mapStore struct {
	data map[string]string
}

func newMapStore() *mapStore { return &mapStore{data: map[string]string{}} }

func (s *mapStore) Extract(props property.Set) (*image.Image, error) {
	img := image.New(props.Clone())
	for k, v := range s.data {
		img.Put(image.Entry{Key: k, Value: []byte(v)})
	}
	return img, nil
}

func (s *mapStore) Merge(img *image.Image, props property.Set) error {
	for k, e := range img.Entries {
		if e.Deleted {
			delete(s.data, k)
			continue
		}
		s.data[k] = string(e.Value)
	}
	return nil
}

func delta(props string, kv ...string) *image.Image {
	img := image.New(property.MustSet(props))
	for i := 0; i+1 < len(kv); i += 2 {
		img.Put(image.Entry{Key: kv[i], Value: []byte(kv[i+1])})
	}
	return img
}

func TestStoreCommitAndExtract(t *testing.T) {
	ms := newMapStore()
	st := NewStore(ms, vclock.NewSim())
	v, conflicts, _, err := st.Commit("v1", delta("F={1}", "k1", "a", "k2", "b"), 2)
	if err != nil || conflicts != 0 || v != 1 {
		t.Fatalf("commit: v=%d conflicts=%d err=%v", v, conflicts, err)
	}
	if ms.data["k1"] != "a" {
		t.Fatal("primary not updated")
	}
	img, err := st.Extract(property.MustSet("F={1}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := img.Get("k1")
	if !ok || e.Version != 1 || e.Writer != "v1" {
		t.Fatalf("extract entry = %+v", e)
	}
	if img.Version != 1 {
		t.Fatalf("img version = %d", img.Version)
	}
}

func TestStoreEmptyCommitIsNoop(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	v, _, _, err := st.Commit("v1", nil, 0)
	if err != nil || v != 0 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	v, _, _, err = st.Commit("v1", image.New(property.NewSet()), 0)
	if err != nil || v != 0 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if len(st.Log()) != 0 {
		t.Fatal("no log records expected")
	}
}

func TestStoreDeltaExtract(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	st.Commit("v1", delta("F={1}", "k1", "a"), 1)
	st.Commit("v2", delta("F={1}", "k2", "b"), 1)
	img, err := st.Extract(property.MustSet("F={1}"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if img.Len() != 1 {
		t.Fatalf("delta should contain only k2, got %v", img.Keys())
	}
	if _, ok := img.Get("k2"); !ok {
		t.Fatal("k2 missing from delta")
	}
}

func TestStoreConflictDetection(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	// v1 commits k at version 1.
	st.Commit("v1", delta("F={1}", "k", "from-v1"), 1)
	// v2 commits based on version 0 (stale): conflict.
	d := delta("F={1}", "k", "from-v2")
	e := d.Entries["k"]
	e.Version = 0
	d.Entries["k"] = e
	_, conflicts, _, err := st.Commit("v2", d, 1)
	if err != nil || conflicts != 1 {
		t.Fatalf("conflicts=%d err=%v", conflicts, err)
	}
	if st.ConflictsSeen() != 1 {
		t.Fatal("ConflictsSeen should be 1")
	}
	// Incoming wins by default.
	img, _ := st.Extract(property.MustSet("F={1}"), 0)
	ent, _ := img.Get("k")
	if string(ent.Value) != "from-v2" {
		t.Fatalf("winner = %q", ent.Value)
	}
}

func TestStoreSameWriterNoConflict(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	st.Commit("v1", delta("F={1}", "k", "a"), 1)
	// Same writer updating again with stale base version: not a conflict.
	d := delta("F={1}", "k", "a2")
	e := d.Entries["k"]
	e.Version = 0
	d.Entries["k"] = e
	_, conflicts, _, err := st.Commit("v1", d, 1)
	if err != nil || conflicts != 0 {
		t.Fatalf("conflicts=%d err=%v", conflicts, err)
	}
}

func TestStoreFreshBaseNoConflict(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	st.Commit("v1", delta("F={1}", "k", "a"), 1)
	// v2 based its change on version 1 (current): no conflict.
	d := delta("F={1}", "k", "b")
	e := d.Entries["k"]
	e.Version = 1
	d.Entries["k"] = e
	_, conflicts, _, err := st.Commit("v2", d, 1)
	if err != nil || conflicts != 0 {
		t.Fatalf("conflicts=%d err=%v", conflicts, err)
	}
}

func TestStoreResolverKeepsOurs(t *testing.T) {
	ms := newMapStore()
	st := NewStore(ms, vclock.NewSim())
	st.SetResolver(func(c image.Conflict) (image.Entry, error) {
		return c.Ours, nil // primary always wins
	})
	st.Commit("v1", delta("F={1}", "k", "ours"), 1)
	d := delta("F={1}", "k", "theirs")
	e := d.Entries["k"]
	e.Version = 0
	d.Entries["k"] = e
	_, conflicts, _, err := st.Commit("v2", d, 1)
	if err != nil || conflicts != 1 {
		t.Fatalf("conflicts=%d err=%v", conflicts, err)
	}
	if ms.data["k"] != "ours" {
		t.Fatalf("resolver should keep ours, got %q", ms.data["k"])
	}
	// Shadow must still attribute k to v1.
	img, _ := st.Extract(property.MustSet("F={1}"), 0)
	ent, _ := img.Get("k")
	if ent.Writer != "v1" {
		t.Fatalf("shadow writer = %q", ent.Writer)
	}
}

func TestStoreResolverError(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	st.SetResolver(func(c image.Conflict) (image.Entry, error) {
		return image.Entry{}, fmt.Errorf("cannot resolve")
	})
	st.Commit("v1", delta("F={1}", "k", "a"), 1)
	d := delta("F={1}", "k", "b")
	e := d.Entries["k"]
	e.Version = 0
	d.Entries["k"] = e
	if _, _, _, err := st.Commit("v2", d, 1); err == nil {
		t.Fatal("resolver error should propagate")
	}
}

func TestStoreUnseenOps(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	st.Commit("a", delta("F={1..3}", "k1", "x"), 2)
	st.Commit("b", delta("F={2..4}", "k2", "y"), 3)
	st.Commit("c", delta("F={9}", "k3", "z"), 5)

	// Viewer "a" with props F={1..3}, seen=0: sees b's 3 ops (overlap),
	// not its own 2, not c's disjoint 5.
	got := st.UnseenOps(0, "a", property.MustSet("F={1..3}"))
	if got != 3 {
		t.Fatalf("unseen = %d, want 3", got)
	}
	// After observing version 2 (b's commit), nothing unseen.
	if got := st.UnseenOps(2, "a", property.MustSet("F={1..3}")); got != 0 {
		t.Fatalf("unseen = %d, want 0", got)
	}
	// A viewer with empty props sees everything by others.
	if got := st.UnseenOps(0, "zz", property.NewSet()); got != 10 {
		t.Fatalf("unseen = %d, want 10", got)
	}
}

func TestStoreCompactLog(t *testing.T) {
	st := NewStore(newMapStore(), vclock.NewSim())
	for i := 0; i < 5; i++ {
		st.Commit("v", delta("F={1}", "k", fmt.Sprintf("x%d", i)), 1)
	}
	dropped := st.CompactLog(3)
	if dropped != 3 || len(st.Log()) != 2 {
		t.Fatalf("dropped=%d remaining=%d", dropped, len(st.Log()))
	}
	// Quality for seen>=3 still correct after compaction.
	if got := st.UnseenOps(3, "other", property.MustSet("F={1}")); got != 2 {
		t.Fatalf("unseen = %d, want 2", got)
	}
}

func TestStoreLogTimes(t *testing.T) {
	clk := vclock.NewSim()
	st := NewStore(newMapStore(), clk)
	clk.Advance(123)
	st.Commit("v", delta("F={1}", "k", "x"), 1)
	log := st.Log()
	if len(log) != 1 || log[0].At != 123 {
		t.Fatalf("log = %+v", log)
	}
}

func TestStoreDeletionCommit(t *testing.T) {
	ms := newMapStore()
	st := NewStore(ms, vclock.NewSim())
	st.Commit("v1", delta("F={1}", "k", "a"), 1)
	d := image.New(property.MustSet("F={1}"))
	d.Put(image.Entry{Key: "k", Version: 1, Writer: "v1", Deleted: true})
	if _, _, _, err := st.Commit("v1", d, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.data["k"]; ok {
		t.Fatal("deletion should remove key from primary")
	}
}
