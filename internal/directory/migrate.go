package directory

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"flecc/internal/property"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Live shard migration (internal/shard) moves a set of views — and the
// protocol metadata needed to keep serving them without version
// regressions — from one directory manager to another. The mechanism
// reuses the fail-over snapshot (snapshot.go): the source hands over its
// full store metadata plus per-view records, the target absorbs them with
// merge semantics, and the router re-points the views. Because the target
// fast-forwards its version counter to at least the source's, a migrated
// view can never observe a smaller primary version than it already saw.

// HandoverView is the per-view protocol state a migration carries: the
// registry entry plus the directory manager's viewState.
type HandoverView struct {
	// Name is the view's node name.
	Name string
	// Props is the view's current dynamic property set.
	Props property.Set
	// Mode is the view's consistency mode.
	Mode wire.Mode
	// Op is the op class of the view's most recent acquire/pull.
	Op wire.OpClass
	// Seen is the primary version the view last observed.
	Seen vclock.Version
	// Validity is the view's validity-trigger source text.
	Validity string
	// Active reports whether the view was active at handover.
	Active bool
}

// Handover is the unit of live shard migration: the source store's full
// metadata snapshot plus the records of the views being moved.
type Handover struct {
	// Snap is the source store's protocol-metadata snapshot. It may cover
	// more keys than the handed-over views touch; Absorb merges it
	// version-wise, so a superset is harmless.
	Snap *Snapshot
	// Views are the handed-over views.
	Views []HandoverView
}

// TakeHandover captures a handover for the named views (all registered
// views when names is empty) and stops serving them: the views are
// unregistered and their state removed. It fails — without removing
// anything — if any name is unknown.
func (m *Manager) TakeHandover(names []string) (*Handover, error) {
	if len(names) == 0 {
		names = m.reg.Views()
	}
	h := &Handover{Snap: m.store.Snapshot()}
	for _, n := range names {
		vs, ok := m.viewState(n)
		if !ok {
			return nil, fmt.Errorf("directory %s: handover of unknown view %s", m.name, n)
		}
		vs.mu.Lock()
		rec := HandoverView{
			Name:     n,
			Mode:     vs.mode,
			Op:       vs.lastOp,
			Seen:     vs.seen,
			Validity: vs.validity.Source(),
		}
		vs.mu.Unlock()
		props, _ := m.reg.Props(n)
		rec.Props = props
		rec.Active = m.reg.Active(n)
		h.Views = append(h.Views, rec)
	}
	m.structuralDo(func() {
		for _, n := range names {
			m.reg.Unregister(n)
			m.vmu.Lock()
			delete(m.views, n)
			m.vmu.Unlock()
		}
	})
	return h, nil
}

// AbsorbHandover merges a handover into this (target) directory manager:
// the store metadata is absorbed version-wise and every carried view is
// registered with its previous mode, seen version, and triggers.
func (m *Manager) AbsorbHandover(h *Handover) error {
	if h == nil || h.Snap == nil {
		return fmt.Errorf("directory %s: nil handover", m.name)
	}
	if err := m.store.Absorb(h.Snap); err != nil {
		return err
	}
	return m.installViews(h.Views)
}

// installViews registers the carried per-view records with their previous
// mode, seen version, and triggers. Shared by handover absorption,
// snapshot restore, and hot-standby replication.
func (m *Manager) installViews(views []HandoverView) error {
	var firstErr error
	m.structuralDo(func() {
		for _, hv := range views {
			val, err := trigger.Compile(hv.Validity)
			if err != nil {
				firstErr = fmt.Errorf("directory %s: handover validity trigger for %s: %v", m.name, hv.Name, err)
				return
			}
			if err := m.reg.Register(hv.Name, hv.Props); err != nil {
				// Already present (e.g. a replayed migration): refresh props.
				if err := m.reg.SetProps(hv.Name, hv.Props); err != nil {
					firstErr = fmt.Errorf("directory %s: absorb %s: %w", m.name, hv.Name, err)
					return
				}
			}
			m.reg.SetActive(hv.Name, hv.Active)
			m.vmu.Lock()
			m.views[hv.Name] = &viewState{
				name: hv.Name, mode: hv.Mode, seen: hv.Seen, validity: val, lastOp: hv.Op,
			}
			m.vmu.Unlock()
		}
	})
	return firstErr
}

// Absorb merges a snapshot into a live store, in contrast to Restore which
// replaces. Shadow entries keep the newer version per key, the
// version-ordered logs are merged with the existing entry winning on a
// version tie (so a round-trip migration does not duplicate records), and
// the counter only fast-forwards — it never goes back, which is what
// rules out version regressions across a migration.
func (s *Store) Absorb(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("directory: nil snapshot")
	}
	defer s.lockStore()()
	for _, r := range snap.Shadow {
		st := s.stripeFor(r.Key)
		if cur, ok := st.shadow[r.Key]; !ok || cur.version < r.Version {
			st.shadow[r.Key] = shadowEntry{version: r.Version, writer: r.Writer, deleted: r.Deleted}
		}
	}
	merged := make([]UpdateRec, 0, len(s.log)+len(snap.Log))
	i, j := 0, 0
	for i < len(s.log) && j < len(snap.Log) {
		switch {
		case s.log[i].Version == snap.Log[j].Version:
			merged = append(merged, s.log[i])
			i++
			j++
		case s.log[i].Version < snap.Log[j].Version:
			merged = append(merged, s.log[i])
			i++
		default:
			merged = append(merged, snap.Log[j])
			j++
		}
	}
	merged = append(merged, s.log[i:]...)
	merged = append(merged, snap.Log[j:]...)
	s.log = merged
	s.counter.AdvanceTo(snap.Version)
	for _, st := range s.stripes {
		st.rebuild()
	}
	s.gen++
	return nil
}

// EncodeHandover serializes a handover (gob).
func EncodeHandover(h *Handover) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, fmt.Errorf("directory: encode handover: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeHandover parses EncodeHandover's output.
func DecodeHandover(b []byte) (*Handover, error) {
	var h Handover
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&h); err != nil {
		return nil, fmt.Errorf("directory: decode handover: %w", err)
	}
	return &h, nil
}

// EncodeViewList serializes the view-name list a TMigrateTake carries.
func EncodeViewList(names []string) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(names); err != nil {
		return nil, fmt.Errorf("directory: encode view list: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeViewList parses EncodeViewList's output. A nil blob is the empty
// list ("all views").
func DecodeViewList(b []byte) ([]string, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var names []string
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&names); err != nil {
		return nil, fmt.Errorf("directory: decode view list: %w", err)
	}
	return names, nil
}

// handleRouted unwraps a router→shard envelope and dispatches the inner
// message as if the originating view had called directly.
func (m *Manager) handleRouted(req *wire.Message) *wire.Message {
	inner, err := wire.Decode(req.Blob)
	if err != nil {
		return errf("directory %s: bad routed payload: %v", m.name, err)
	}
	switch inner.Type {
	case wire.TRouted, wire.TMigrateTake, wire.TMigrateApply:
		return errf("directory %s: refusing nested %s inside routed envelope", m.name, inner.Type)
	}
	if req.View != "" {
		inner.From = req.View
	}
	return m.handle(inner)
}

func (m *Manager) handleMigrateTake(req *wire.Message) *wire.Message {
	names, err := DecodeViewList(req.Blob)
	if err != nil {
		return errf("%v", err)
	}
	h, err := m.TakeHandover(names)
	if err != nil {
		return errf("%v", err)
	}
	blob, err := EncodeHandover(h)
	if err != nil {
		return errf("%v", err)
	}
	return m.synced(&wire.Message{Type: wire.TAck, Version: m.store.Current(), Blob: blob})
}

func (m *Manager) handleMigrateApply(req *wire.Message) *wire.Message {
	h, err := DecodeHandover(req.Blob)
	if err != nil {
		return errf("%v", err)
	}
	if err := m.AbsorbHandover(h); err != nil {
		return errf("%v", err)
	}
	return m.synced(&wire.Message{Type: wire.TAck, Version: m.store.Current()})
}
