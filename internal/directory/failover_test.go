package directory_test

import (
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// kv is a minimal codec shared by the failover tests.
type kv struct{ data map[string]string }

func newKV() *kv { return &kv{data: map[string]string{}} }

func (v *kv) Extract(props property.Set) (*image.Image, error) {
	img := image.New(props.Clone())
	for k, val := range v.data {
		img.Put(image.Entry{Key: k, Value: []byte(val)})
	}
	return img, nil
}

func (v *kv) Merge(img *image.Image, props property.Set) error {
	for k, e := range img.Entries {
		if e.Deleted {
			delete(v.data, k)
			continue
		}
		v.data[k] = string(e.Value)
	}
	return nil
}

func TestSnapshotRoundTrip(t *testing.T) {
	prim := newKV()
	st := directory.NewStore(prim, vclock.NewSim())
	d := image.New(property.MustSet("F={1..3}"))
	d.Put(image.Entry{Key: "k1", Value: []byte("a")})
	if _, _, _, err := st.Commit("v1", d, 2); err != nil {
		t.Fatal(err)
	}
	d2 := image.New(property.MustSet("F={2..5}"))
	d2.Put(image.Entry{Key: "k2", Deleted: true})
	if _, _, _, err := st.Commit("v2", d2, 3); err != nil {
		t.Fatal(err)
	}

	snap := st.Snapshot()
	blob, err := directory.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := directory.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh store over the same primary.
	st2 := directory.NewStore(prim, vclock.NewSim())
	if err := st2.Restore(back); err != nil {
		t.Fatal(err)
	}
	if st2.Current() != st.Current() {
		t.Fatalf("version: %d vs %d", st2.Current(), st.Current())
	}
	// Shadow metadata survives: extraction stamps the same versions.
	img, err := st2.Extract(property.MustSet("F={1..3}"), 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := img.Get("k1")
	if !ok || e.Version != 1 || e.Writer != "v1" {
		t.Fatalf("shadow lost: %+v", e)
	}
	// Tombstones survive.
	if e, ok := img.Get("k2"); !ok || !e.Deleted {
		t.Fatalf("tombstone lost: %+v, %v", e, ok)
	}
	// Quality accounting survives (props filter included).
	if got := st2.UnseenOps(0, "v1", property.MustSet("F={2}")); got != 3 {
		t.Fatalf("unseen = %d, want 3", got)
	}
	if err := st2.Restore(nil); err == nil {
		t.Fatal("nil snapshot should fail")
	}
}

// TestDirectoryFailover walks the full fail-safe scenario: work happens at
// DM1, its metadata is snapshotted, DM1 dies, a standby DM2 restores the
// snapshot and takes over the same node name, views re-register and keep
// working — with version continuity (new commits extend, not reset, the
// version sequence).
func TestDirectoryFailover(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim := newKV()
	dm1, err := directory.New("dm", prim, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.data["k"] = "survives"
	cm.EndUse()
	if err := cm.PushImage(); err != nil {
		t.Fatal(err)
	}
	verBefore := dm1.CurrentVersion()

	// Checkpoint, then the primary DM fails.
	blob, err := directory.EncodeSnapshot(dm1.Store().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := dm1.Close(); err != nil {
		t.Fatal(err)
	}
	// Calls to the dead DM fail.
	if err := cm.PullImage(); err == nil {
		t.Fatal("pull against dead DM should fail")
	}

	// Standby takes over with the restored metadata.
	snap, err := directory.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	dm2, err := directory.New("dm", prim, clock, net, directory.Options{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer dm2.Close()
	if dm2.CurrentVersion() != verBefore {
		t.Fatalf("standby version = %d, want %d", dm2.CurrentVersion(), verBefore)
	}

	// The view re-registers (the one piece of client-side recovery) and
	// continues where it left off.
	cm2, err := cache.New(cache.Config{
		Name: "v1b", Directory: "dm", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if view.data["k"] != "survives" {
		t.Fatal("data continuity broken")
	}
	if err := cm2.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.data["k2"] = "after-failover"
	cm2.EndUse()
	if err := cm2.PushImage(); err != nil {
		t.Fatal(err)
	}
	if dm2.CurrentVersion() != verBefore+1 {
		t.Fatalf("version continuity broken: %d, want %d", dm2.CurrentVersion(), verBefore+1)
	}
	if prim.data["k2"] != "after-failover" {
		t.Fatal("post-failover push lost")
	}
}
