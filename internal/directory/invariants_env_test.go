package directory_test

import (
	"os"
	"testing"

	"flecc/internal/directory"
)

// invariantsEnabled reports whether FLECC_TEST_INVARIANTS=1 asked the
// suite to run the directory's invariant self-checks after every test.
// CI sets it; locally it is opt-in because the checks walk the whole
// store under a lock.
func invariantsEnabled() bool {
	return os.Getenv("FLECC_TEST_INVARIANTS") == "1"
}

// assertInvariantsAtCleanup registers a test cleanup that runs the
// manager's CheckInvariants when the env gate is on. Tests that already
// failed are left alone so the original failure stays the headline.
func assertInvariantsAtCleanup(t *testing.T, dm *directory.Manager) {
	t.Helper()
	if !invariantsEnabled() {
		return
	}
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if err := dm.CheckInvariants(); err != nil {
			t.Errorf("FLECC_TEST_INVARIANTS: post-test invariant check failed: %v", err)
		}
	})
}
