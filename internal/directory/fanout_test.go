package directory_test

import (
	"fmt"
	"testing"
	"time"

	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// fakeView attaches a raw endpoint that answers the DM-initiated protocol
// (TInvalidate/TPull/TUpdate) with empty success replies, then registers
// and activates it as a weak view with the given props.
func fakeView(t *testing.T, net transport.Network, name string, props property.Set) transport.Endpoint {
	t.Helper()
	ep, err := net.Attach(name, func(req *wire.Message) *wire.Message {
		switch req.Type {
		case wire.TInvalidate, wire.TPull:
			return &wire.Message{Type: wire.TImage}
		default:
			return &wire.Message{Type: wire.TAck}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TRegister, View: name, Mode: wire.Weak, Props: props}); err != nil || reply.Type == wire.TErr {
		t.Fatalf("register %s: %v %v", name, err, reply)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TInit}); err != nil || reply.Type == wire.TErr {
		t.Fatalf("init %s: %v %v", name, err, reply)
	}
	return ep
}

// TestParallelFanoutBoundsSlowMember: one of 8 conflicting weak views is
// isolated (a crashed process); with FanOut=8 the other seven — each
// behind a 15ms link — are gathered concurrently, so the puller pays
// roughly one link delay instead of seven plus the dead view's retry
// budget. The dead member is evicted off the critical path.
func TestParallelFanoutBoundsSlowMember(t *testing.T) {
	f := transport.NewFaulty(transport.NewInproc(), 42)
	clock := vclock.NewSim()
	dm, err := directory.New("dm", newKV(), clock, f, directory.Options{
		AlwaysGather: true,
		FanOut:       8,
		// The dead view's retries must not sleep through real backoff.
		Retry: transport.RetryPolicy{Attempts: 3, Base: time.Microsecond, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	props := property.MustSet("P={x}")
	const members = 8
	const linkDelay = 15 * time.Millisecond
	for i := 0; i < members; i++ {
		name := fmt.Sprintf("v%d", i)
		fakeView(t, f, name, props)
		f.SetEdgeDelay("dm", name, linkDelay)
	}
	puller := fakeView(t, f, "puller", props)
	f.Isolate("v3") // one crashed member

	start := time.Now()
	reply, err := puller.Call("dm", &wire.Message{Type: wire.TPull})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("pull: %v", err)
	}
	if reply.Type != wire.TImage {
		t.Fatalf("pull reply = %v", reply)
	}
	// Serial gathering would cost 7 live links x 15ms = 105ms (plus the
	// dead member's budget); concurrent gathering costs about one link.
	// The bound is generous for -race and loaded CI machines.
	if elapsed > 75*time.Millisecond {
		t.Fatalf("pull took %s; fan-out is not concurrent (serial would be ~%s)", elapsed, 7*linkDelay)
	}
	if n := dm.ViewsEvicted(); n != 1 {
		t.Fatalf("ViewsEvicted = %d, want 1", n)
	}
	if lost := dm.LostViews(); len(lost) != 1 || lost[0] != "v3" {
		t.Fatalf("lost views = %v, want [v3]", lost)
	}

	// The survivors are still active conflict-set members; a second pull
	// still gathers from all seven, again in one link delay.
	start = time.Now()
	if reply, err := puller.Call("dm", &wire.Message{Type: wire.TPull}); err != nil || reply.Type != wire.TImage {
		t.Fatalf("second pull: %v %v", err, reply)
	}
	if elapsed := time.Since(start); elapsed > 75*time.Millisecond {
		t.Fatalf("second pull took %s", elapsed)
	}
	if n := dm.ViewsEvicted(); n != 1 {
		t.Fatalf("eviction count moved to %d after healthy round", dm.ViewsEvicted())
	}
}

// TestFanoutSerialOrderAtOne: FanOut=1 must keep the serial early-abort
// contract — targets contacted one at a time in conflict-set order, and a
// remote error from one target stops the round before later targets are
// contacted.
func TestFanoutSerialOrderAtOne(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	dm, err := directory.New("dm", newKV(), clock, net, directory.Options{
		AlwaysGather: true,
		FanOut:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	props := property.MustSet("P={x}")
	var contacted []string
	for _, name := range []string{"v0", "v1", "v2"} {
		name := name
		ep, err := net.Attach(name, func(req *wire.Message) *wire.Message {
			if req.Type == wire.TPull {
				contacted = append(contacted, name)
				if name == "v1" {
					return &wire.Message{Type: wire.TErr, Err: "view busy"}
				}
			}
			return &wire.Message{Type: wire.TImage}
		})
		if err != nil {
			t.Fatal(err)
		}
		if reply, err := ep.Call("dm", &wire.Message{Type: wire.TRegister, View: name, Mode: wire.Weak, Props: props}); err != nil || reply.Type == wire.TErr {
			t.Fatalf("register %s: %v %v", name, err, reply)
		}
		if reply, err := ep.Call("dm", &wire.Message{Type: wire.TInit}); err != nil || reply.Type == wire.TErr {
			t.Fatalf("init %s: %v %v", name, err, reply)
		}
	}
	puller := fakeView(t, net, "puller", props)

	reply, err := puller.Call("dm", &wire.Message{Type: wire.TPull})
	if err == nil || reply == nil || reply.Type != wire.TErr {
		t.Fatalf("pull should surface the gather error, got reply=%v err=%v", reply, err)
	}
	// v1's remote error aborts the serial round: v2 is never contacted.
	if len(contacted) != 2 || contacted[0] != "v0" || contacted[1] != "v1" {
		t.Fatalf("contacted = %v, want [v0 v1]", contacted)
	}
}
