package directory

import (
	"sync"

	"flecc/internal/wire"
)

// Execution lanes (the request half of conflict-group striping): each
// commit is routed to the lane of its writer's conflict group, so commits
// within one group keep arrival order — exactly today's serialization —
// while commits of disjoint groups proceed in parallel. The group map is
// derived from the registry's conflict structure (the PR 8 property
// index) and cached per registry mutation epoch: repeated commits between
// structural changes never re-query the index.
//
// Two rules keep this safe:
//
//   - A lane lock is scoped to the Store.Commit call alone — never held
//     across a DM-initiated network round (invalidate, gather,
//     propagate). A cache manager answering an invalidation may itself be
//     waiting to push; holding a lane across the round would deadlock the
//     pair.
//   - Anything that can change the conflict structure — register,
//     unregister, set-props, revival, static-map seeding, migration
//     handover — takes the lane gate exclusively, draining every
//     in-flight commit before the structure moves. Commits started after
//     the change see the bumped registry epoch and rebuild the map.
//     Evictions (SetLost true) only remove conflict edges, so in-flight
//     commits running under the pre-eviction, coarser grouping stay
//     correct; the map catches up on its next lazy rebuild.

type laneSet struct {
	m *Manager
	// gate drains the lanes: commits hold the read side for the duration
	// of their store commit, structural changes the write side.
	gate  sync.RWMutex
	lanes []sync.Mutex

	// mu guards the lazily rebuilt group map below.
	mu    sync.Mutex
	epoch uint64
	built bool
	group map[string]uint32
}

func newLaneSet(m *Manager, n int) *laneSet {
	return &laneSet{m: m, lanes: make([]sync.Mutex, n)}
}

func fnvLane(s string, n int) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h % uint32(n)
}

// laneFor maps a view to its conflict group's lane. Caller holds gate.R,
// which pins the conflict structure: structural changes need gate.W.
func (ls *laneSet) laneFor(view string) *sync.Mutex {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if e := ls.m.reg.Epoch(); !ls.built || e != ls.epoch {
		ls.rebuildLocked(e)
	}
	if lane, ok := ls.group[view]; ok {
		return &ls.lanes[lane]
	}
	// Unknown to the map (e.g. registered after the epoch was read but
	// before the commit): name-hash fallback. Any fixed lane is safe —
	// the structural change that added the view drained the lanes, so its
	// group peers route through the same rebuilt map on their next commit.
	return &ls.lanes[fnvLane(view, len(ls.lanes))]
}

// rebuildLocked recomputes view → lane: union-find over the structural
// (activeOnly=false) conflict sets merges each conflict group to one
// root, and the root's name hash picks the lane. Views that transitively
// share data always land on the same lane; disjoint groups spread across
// lanes. Caller holds ls.mu.
func (ls *laneSet) rebuildLocked(epoch uint64) {
	views := ls.m.reg.Views()
	parent := make(map[string]string, len(views))
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, v := range views {
		parent[v] = v
	}
	for _, v := range views {
		for _, c := range ls.m.reg.ConflictingWith(v, false) {
			if _, ok := parent[c]; !ok {
				continue
			}
			ra, rb := find(v), find(c)
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	ls.group = make(map[string]uint32, len(views))
	for _, v := range views {
		ls.group[v] = fnvLane(find(v), len(ls.lanes))
	}
	ls.epoch = epoch
	ls.built = true
}

// withCommitLane runs fn (a Store.Commit call site) under the writer's
// conflict-group lane. Without lanes it is a plain call — the serial path
// stays untouched.
func (m *Manager) withCommitLane(writer string, fn func()) {
	if m.lanes == nil {
		fn()
		return
	}
	m.lanes.gate.RLock()
	defer m.lanes.gate.RUnlock()
	lane := m.lanes.laneFor(writer)
	lane.Lock()
	defer lane.Unlock()
	fn()
}

// structuralDo runs fn with the lanes drained (gate held exclusively) —
// for conflict-structure changes and whole-store commits. Without lanes
// it is a plain call.
func (m *Manager) structuralDo(fn func()) {
	if m.lanes == nil {
		fn()
		return
	}
	m.lanes.gate.Lock()
	defer m.lanes.gate.Unlock()
	fn()
}

// structural is structuralDo for handlers that produce a reply.
func (m *Manager) structural(fn func() *wire.Message) *wire.Message {
	var reply *wire.Message
	m.structuralDo(func() { reply = fn() })
	return reply
}
