package directory

import (
	"fmt"
	"sort"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// Striped-commit mode (the conflict-group execution engine): commits of
// disjoint conflict groups run concurrently through one store. The
// directory manager's lane table (lanes.go) guarantees that two commits
// in flight at once never touch the same conflict group — and therefore,
// by the conflict-group premise (overlapping data ⇒ same group), never
// the same keys. What is left for the store to coordinate:
//
//   - the per-key metadata maps themselves (key-hash stripes, each with
//     its own short-critical-section lock),
//   - the update log and counters (Store.mu, held only for an ordered
//     insert — never across codec calls),
//   - version allocation and visibility (pubTracker: extracts stamp
//     images with the published watermark, the highest version below
//     which every commit has fully landed, so a reader can never record
//     a seen version that silently skips a mid-flight commit), and
//   - whole-store operations (snapshot capture for replication and
//     checkpoints, restore, absorb): they take the commit gate
//     exclusively, quiescing in-flight commits, so a replication batch
//     closed at version V really contains everything ≤ V.
//
// Codec calls — the expensive part of a commit — run outside every lock.
// Conflict-resolution inputs come from a keyed extract of just the
// conflicting keys instead of the serial path's full primary snapshot
// under the store write lock, and the merge is ordered before the shadow
// publish so the only reachable read race is a value newer than its
// stamp, which the next delta pull heals.
//
// Lanes ≤ 1 never enters this file: the store stays on the serial
// single-stripe paths in store.go, byte-identical to the pre-striping
// behavior.

// pubTracker tracks the striped-mode published watermark: the highest
// version V such that every commit with a version ≤ V has fully landed
// (codec merged, shadow/dirty/log published). Versions are allocated
// under its lock so the in-flight set is gapless.
type pubTracker struct {
	mu       sync.Mutex
	pub      vclock.Version
	inflight map[vclock.Version]bool // false = running, true = landed above a running lower version
}

// begin atomically allocates the next version and marks it in flight.
func (p *pubTracker) begin(c *vclock.Counter) vclock.Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := c.Next()
	if p.inflight == nil {
		p.inflight = map[vclock.Version]bool{}
	}
	p.inflight[v] = false
	return v
}

// end marks a version landed and advances the watermark across every
// contiguously landed version.
func (p *pubTracker) end(v vclock.Version) {
	p.mu.Lock()
	p.inflight[v] = true
	for p.inflight[p.pub+1] {
		delete(p.inflight, p.pub+1)
		p.pub++
	}
	p.mu.Unlock()
}

// published returns the watermark.
func (p *pubTracker) published() vclock.Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pub
}

// reset fast-forwards the watermark after a quiesced counter jump
// (restore/absorb under the commit gate; nothing is in flight).
func (p *pubTracker) reset(v vclock.Version) {
	p.mu.Lock()
	if v > p.pub {
		p.pub = v
	}
	p.mu.Unlock()
}

// EnableStriping switches the store into striped-commit mode. Called once
// by the directory manager at construction (Options.Lanes > 1), before
// the store serves concurrent traffic; any metadata already present
// (e.g. a restored snapshot installed earlier) is re-sharded.
func (s *Store) EnableStriping() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.striped {
		return
	}
	old := s.stripes[0]
	s.stripes = make([]*storeStripe, stripeCount)
	for i := range s.stripes {
		s.stripes[i] = newStoreStripe()
	}
	for k, sh := range old.shadow {
		s.stripeFor(k).shadow[k] = sh
	}
	for _, st := range s.stripes {
		st.rebuild()
	}
	s.striped = true
	s.pub.reset(s.counter.Current())
}

// Striped reports whether the store runs the concurrent-commit paths.
func (s *Store) Striped() bool { return s.striped }

// lockStore acquires the store exclusively for a whole-store mutation
// (restore/absorb): serial mode takes Store.mu; striped mode first takes
// the commit gate, quiescing every in-flight commit and extract. The
// returned release fast-forwards the published watermark to the (possibly
// advanced) counter before letting commits back in.
func (s *Store) lockStore() func() {
	if !s.striped {
		s.mu.Lock()
		return s.mu.Unlock
	}
	s.gate.Lock()
	s.mu.Lock()
	return func() {
		s.pub.reset(s.counter.Current())
		s.mu.Unlock()
		s.gate.Unlock()
	}
}

// rlockStore acquires the store for a whole-store read (snapshot
// capture): Store.mu read side; striped mode additionally holds the
// commit gate exclusively so the multi-stripe capture is coherent and —
// critically for replication — complete up to the counter: a batch
// closed at version V contains every commit ≤ V, in-flight lanes drained.
func (s *Store) rlockStore() func() {
	if !s.striped {
		s.mu.RLock()
		return s.mu.RUnlock
	}
	s.gate.Lock()
	s.mu.RLock()
	return func() {
		s.mu.RUnlock()
		s.gate.Unlock()
	}
}

// insertDirty adds a record keeping the stripe's dirty index
// version-ordered. Commits land mostly in order, so the scan from the
// back is O(1) amortized. Caller holds the stripe lock.
func (st *storeStripe) insertDirty(rec dirtyRec) {
	i := len(st.dirty)
	for i > 0 && st.dirty[i-1].version > rec.version {
		i--
	}
	st.dirty = append(st.dirty, dirtyRec{})
	copy(st.dirty[i+1:], st.dirty[i:])
	st.dirty[i] = rec
}

// insertLogLocked adds a record keeping the update log version-ordered
// under out-of-order lane landings. Caller holds Store.mu.
func (s *Store) insertLogLocked(rec UpdateRec) {
	i := len(s.log)
	for i > 0 && s.log[i-1].Version > rec.Version {
		i--
	}
	s.log = append(s.log, UpdateRec{})
	copy(s.log[i+1:], s.log[i:])
	s.log[i] = rec
}

// commitStriped is Commit for a striped store. The caller's lane
// serializes commits within a conflict group, so the shadow entries for
// this delta's keys cannot move underneath the commit; stripe locks only
// fence the maps against unrelated groups' publishes.
func (s *Store) commitStriped(writer string, delta *image.Image, ops int) (vclock.Version, int, *image.Image, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()

	// Detect conflicting keys via the shadow, remembering the prior
	// entries the resolver stamps "ours" with.
	keys := delta.Keys()
	var conflictKeys []string
	prior := map[string]shadowEntry{}
	for _, k := range keys {
		st := s.stripeFor(k)
		st.mu.RLock()
		sh, ok := st.shadow[k]
		st.mu.RUnlock()
		if !ok {
			continue
		}
		prior[k] = sh
		if sh.version > delta.Entries[k].Version && sh.writer != writer {
			conflictKeys = append(conflictKeys, k)
		}
	}

	// Resolver inputs come from a keyed extract of just the conflicting
	// keys, outside every lock — never the serial path's full primary
	// snapshot under the store write lock. With no resolver installed the
	// incoming update wins and no extract is needed at all.
	var current *image.Image
	if len(conflictKeys) > 0 && s.resolver != nil {
		var err error
		if s.keyed != nil {
			current, err = s.keyed.ExtractKeys(delta.Props, conflictKeys)
		} else {
			current, err = s.primary.Extract(delta.Props)
		}
		if err != nil {
			return 0, 0, nil, fmt.Errorf("directory: extract for conflict resolution: %w", err)
		}
	}

	apply := image.New(delta.Props.Clone())
	rejected := image.New(delta.Props.Clone())
	conflicts := 0
	isConflict := map[string]bool{}
	for _, k := range conflictKeys {
		isConflict[k] = true
	}
	// Resolve before allocating the version, so a resolver error burns
	// nothing.
	for _, k := range keys {
		theirs := delta.Entries[k].Clone()
		if isConflict[k] {
			conflicts++
			winner := theirs
			if s.resolver != nil {
				var ours image.Entry
				if current != nil {
					if ce, ok := current.Get(k); ok {
						ours = ce
						ours.Version = prior[k].version
						ours.Writer = prior[k].writer
					}
				}
				w, err := s.resolver(image.Conflict{Key: k, Ours: ours, Theirs: theirs})
				if err != nil {
					return 0, 0, nil, fmt.Errorf("directory: resolve %q: %w", k, err)
				}
				winner = w
				if winner.Equal(ours) {
					// The primary's value survives: keep the shadow as-is,
					// skip the merge for this key, and report the winning
					// value back to the pusher so it converges.
					rejected.Put(ours)
					continue
				}
			}
			theirs = winner
		}
		apply.Put(theirs)
	}

	newVer := s.pub.begin(&s.counter)
	landed := false
	// A failed merge must still land the (empty) version, or the
	// watermark would wedge behind it forever.
	defer func() {
		if !landed {
			s.pub.end(newVer)
		}
	}()

	for k, e := range apply.Entries {
		e.Version = newVer
		e.Writer = writer
		apply.Entries[k] = e
	}
	apply.Version = newVer
	if apply.Len() > 0 {
		// Merge into the codec before publishing the shadow stamps: a
		// reader that sees a new stamp is guaranteed the codec already
		// holds at least that value.
		if err := s.primary.Merge(apply, delta.Props); err != nil {
			return 0, 0, nil, fmt.Errorf("directory: merge into primary: %w", err)
		}
	}
	for k, e := range apply.Entries {
		st := s.stripeFor(k)
		st.mu.Lock()
		if _, existed := st.shadow[k]; existed {
			// The key's previous dirty record is now superseded.
			st.stale++
		}
		st.shadow[k] = shadowEntry{version: newVer, writer: writer, deleted: e.Deleted}
		st.insertDirty(dirtyRec{version: newVer, key: k})
		if st.stale > len(st.shadow)+16 {
			st.rebuild()
		}
		st.mu.Unlock()
	}
	s.mu.Lock()
	s.conflictsSeen += conflicts
	s.insertLogLocked(UpdateRec{
		Version: newVer,
		Writer:  writer,
		Props:   delta.Props.Clone(),
		Ops:     ops,
		At:      s.clock.Now(),
	})
	s.gen++
	s.mu.Unlock()
	landed = true
	s.pub.end(newVer)

	rejected.Version = newVer
	if rejected.Len() == 0 {
		return newVer, conflicts, nil, nil
	}
	return newVer, conflicts, rejected, nil
}

// extractStriped serves Extract on a striped store. Images are stamped
// with the published watermark, read BEFORE touching the codec or the
// dirty index: every commit at or below the watermark landed (merge
// included) before the watermark advanced, so it is fully visible to this
// extract; commits above it may or may not appear, and stamping the image
// below them keeps them in the reader's next delta window either way.
func (s *Store) extractStriped(props property.Set, since vclock.Version) (*image.Image, error) {
	if since > 0 && s.keyed != nil {
		return s.extractDeltaStriped(props, since)
	}
	return s.extractFullStriped(props, since)
}

func (s *Store) extractFullStriped(props property.Set, since vclock.Version) (*image.Image, error) {
	pubVer := s.pub.published()
	img, err := s.primary.Extract(props)
	if err != nil {
		return nil, fmt.Errorf("directory: extract from primary: %w", err)
	}
	if img == nil {
		img = image.New(props.Clone())
	}
	s.gate.RLock()
	for k, e := range img.Entries {
		st := s.stripeFor(k)
		st.mu.RLock()
		if sh, ok := st.shadow[k]; ok {
			e.Version = sh.version
			e.Writer = sh.writer
			img.Entries[k] = e
		}
		st.mu.RUnlock()
	}
	// Tombstone synthesis, mirroring the serial path.
	for _, st := range s.stripes {
		st.mu.RLock()
		for k, sh := range st.shadow {
			if !sh.deleted {
				continue
			}
			if _, present := img.Get(k); present {
				continue
			}
			img.Put(image.Entry{Key: k, Version: sh.version, Writer: sh.writer, Deleted: true})
		}
		st.mu.RUnlock()
	}
	s.gate.RUnlock()
	img.Version = pubVer
	if since > 0 {
		img = img.DeltaSince(since)
	}
	return img, nil
}

func (s *Store) extractDeltaStriped(props property.Set, since vclock.Version) (*image.Image, error) {
	pubVer := s.pub.published()
	var liveKeys []string
	var tombs []image.Entry
	s.gate.RLock()
	for _, st := range s.stripes {
		st.mu.RLock()
		start := sort.Search(len(st.dirty), func(i int) bool { return st.dirty[i].version > since })
		for i := start; i < len(st.dirty); i++ {
			rec := st.dirty[i]
			sh, ok := st.shadow[rec.key]
			if !ok || sh.version != rec.version {
				continue // superseded record; the key's current version has its own
			}
			if sh.deleted {
				tombs = append(tombs, image.Entry{Key: rec.key, Version: sh.version, Writer: sh.writer, Deleted: true})
			} else {
				liveKeys = append(liveKeys, rec.key)
			}
		}
		st.mu.RUnlock()
	}
	s.gate.RUnlock()

	var img *image.Image
	if len(liveKeys) == 0 {
		img = image.New(props.Clone())
	} else {
		var err error
		img, err = s.keyed.ExtractKeys(props, liveKeys)
		if err != nil {
			return nil, fmt.Errorf("directory: extract from primary: %w", err)
		}
		if img == nil {
			img = image.New(props.Clone())
		}
	}

	s.gate.RLock()
	for k, e := range img.Entries {
		st := s.stripeFor(k)
		st.mu.RLock()
		if sh, ok := st.shadow[k]; ok {
			e.Version = sh.version
			e.Writer = sh.writer
			img.Entries[k] = e
		}
		st.mu.RUnlock()
	}
	s.gate.RUnlock()
	for _, t := range tombs {
		if _, present := img.Get(t.Key); !present {
			img.Put(t)
		}
	}
	img.Version = pubVer
	return img, nil
}
