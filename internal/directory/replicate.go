package directory

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Hot-standby replication (the HA half of §4.1's "fail-safe mechanisms
// can be implemented"): a primary directory manager streams its commits —
// protocol metadata, primary values, and view-registration state — to one
// or more standbys over a TReplicate/TReplAck session, so a standby can
// take over without losing acknowledged commits and without forcing every
// cache manager through re-register/re-pull.
//
// The scheme is semi-synchronous group commit with gap/rewind shipping
// and epoch fencing:
//
//   - Every state-mutating request barriers on the replicator before its
//     ack is released: nothing a client can observe escapes the primary
//     unreplicated. A standby that stops answering is degraded
//     (availability over replication) and the degradation is counted.
//   - Batches are deltas since the standby's acknowledged watermark,
//     shipped through CallAsync windowed pipelining so several batches
//     overlap one RTT. The ack carries the standby's honest watermark: a
//     low ack rewinds the sender, and the standby refuses batches whose
//     Since it has not reached, so a lost batch leaves no hole — only a
//     resend, which Absorb's merge semantics make idempotent.
//   - Every batch carries the sender's epoch. Promotion installs a higher
//     epoch; a receiver refuses lower-epoch batches ("stale epoch"), and
//     a deposed primary that sees that refusal fences itself — it stops
//     serving rather than split-brain.
//
// Promotion itself travels as a ReplBatch with Promote set, so the wire
// surface stays exactly the TReplicate/TReplAck pair.

// ReplBatch is the unit of primary→standby log shipping, carried
// gob-encoded in a TReplicate message's Blob.
type ReplBatch struct {
	// Epoch is the sender's fencing epoch. Receivers refuse batches from
	// an older epoch; promotion installs a higher one.
	Epoch uint64
	// Since is the watermark this delta starts after: the batch carries
	// everything committed in (Since, Snap.Version]. A receiver whose own
	// watermark is below Since refuses the batch (a hole would otherwise
	// open) and reports its honest watermark in the ack.
	Since vclock.Version
	// Snap is the metadata delta: shadow records and log tail after
	// Since, plus the primary's full view-registration state in Views.
	// Nil for a promote-only batch.
	Snap *Snapshot
	// Img carries the primary values committed after Since, so a standby
	// replicates application data as well as metadata. Nil when Snap is.
	Img *image.Image
	// Promote orders the receiver to take over as primary under Epoch.
	Promote bool
}

// EncodeReplBatch serializes a batch (gob).
func EncodeReplBatch(b *ReplBatch) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("directory: encode repl batch: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeReplBatch parses EncodeReplBatch's output.
func DecodeReplBatch(data []byte) (*ReplBatch, error) {
	var b ReplBatch
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("directory: decode repl batch: %w", err)
	}
	return &b, nil
}

// ReplMessage wraps a batch in its TReplicate envelope.
func ReplMessage(b *ReplBatch) (*wire.Message, error) {
	blob, err := EncodeReplBatch(b)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Type: wire.TReplicate, Blob: blob}, nil
}

// PromoteMessage builds the promote-only TReplicate a coordinator (the
// shard router, or an operator tool) sends to a standby to make it
// primary under the given epoch.
func PromoteMessage(epoch uint64) (*wire.Message, error) {
	return ReplMessage(&ReplBatch{Epoch: epoch, Promote: true})
}

// staleEpochMark is the substring a stale-epoch refusal carries; a
// deposed primary recognizes it in the remote error and fences itself.
const staleEpochMark = "stale epoch"

// SnapshotSince captures the metadata committed strictly after since:
// shadow records newer than since (sorted by key, so encodings are
// deterministic) and the log tail. SnapshotSince(0) is a full snapshot.
// In striped mode the capture quiesces in-flight lane commits (commit
// gate, write side), so a replication batch closed at snap.Version really
// carries every commit ≤ snap.Version — lanes drain into TReplicate
// batches in version-counter order with no holes.
func (s *Store) SnapshotSince(since vclock.Version) *Snapshot {
	defer s.rlockStore()()
	snap := &Snapshot{Version: s.counter.Current()}
	for _, st := range s.stripes {
		for k, sh := range st.shadow {
			if sh.version > since {
				snap.Shadow = append(snap.Shadow, ShadowRec{
					Key: k, Version: sh.version, Writer: sh.writer, Deleted: sh.deleted,
				})
			}
		}
	}
	sort.Slice(snap.Shadow, func(i, j int) bool { return snap.Shadow[i].Key < snap.Shadow[j].Key })
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].Version > since })
	snap.Log = append([]UpdateRec(nil), s.log[i:]...)
	return snap
}

// AbsorbImage merges replicated primary values into the original
// component's codec without issuing new versions — the entries keep the
// version/writer stamps the primary committed them under.
func (s *Store) AbsorbImage(img *image.Image) error {
	if img == nil || img.Len() == 0 {
		return nil
	}
	defer s.lockStore()()
	if err := s.primary.Merge(img, img.Props); err != nil {
		return fmt.Errorf("directory: absorb image: %w", err)
	}
	s.gen++
	return nil
}

// haState is the manager's hot-standby bookkeeping: its fencing epoch,
// whether it is gating client traffic (standby) or refusing everything
// (fenced ex-primary), the attached replicator when it is a replicating
// primary, and a generation counter covering every batch-visible state
// change (commits and registration-state updates alike).
type haState struct {
	mu       sync.Mutex
	repl     *Replicator
	standby  bool
	fenced   bool
	epoch    uint64
	gen      uint64
	lastRepl vclock.Time
	haveRepl bool // lastRepl is meaningful
}

// Epoch returns the manager's current fencing epoch.
func (m *Manager) Epoch() uint64 {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.epoch
}

// Standby reports whether the manager is gating client traffic, waiting
// for promotion.
func (m *Manager) Standby() bool {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.standby
}

// Fenced reports whether the manager has fenced itself after being
// deposed by a higher epoch.
func (m *Manager) Fenced() bool {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.fenced
}

// PromoteSelf makes a standby take over as primary under a fresh epoch
// (lease-lapse self-promotion in deployments without a router
// coordinating the failover). It returns the new epoch.
func (m *Manager) PromoteSelf() uint64 {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	m.ha.epoch++
	m.ha.standby = false
	m.ha.fenced = false
	return m.ha.epoch
}

// StandbySilence returns how long ago the last replication batch arrived
// (0 while none has arrived yet — an unfed standby never counts silence,
// so it cannot self-promote before a primary has ever reached it). A
// standby whose silence exceeds the primary's lease may self-promote.
func (m *Manager) StandbySilence() vclock.Duration {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if !m.ha.haveRepl {
		return 0
	}
	return m.clock.Now() - m.ha.lastRepl
}

// haGen returns the current batch-visible state generation.
func (m *Manager) haGen() uint64 {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.gen
}

// replBarrier is called at the end of every state-mutating handler: it
// bumps the state generation and, when a replicator is attached, blocks
// until every live standby has absorbed a batch at least that fresh.
// Without a replicator it is free.
func (m *Manager) replBarrier() error {
	m.ha.mu.Lock()
	m.ha.gen++
	g := m.ha.gen
	r := m.ha.repl
	m.ha.mu.Unlock()
	if r == nil {
		return nil
	}
	return r.WaitSynced(g)
}

// synced finalizes a mutating handler: it barriers on replication —
// nothing a client can observe escapes the primary unreplicated — and
// converts a barrier failure into the handler's error reply.
func (m *Manager) synced(reply *wire.Message) *wire.Message {
	if err := m.replBarrier(); err != nil {
		return errf("replicate: %v", err)
	}
	return reply
}

// haGate enforces role-based request gating ahead of dispatch: a fenced
// ex-primary refuses everything, a standby refuses client traffic, and
// TReplicate is always admitted (its own epoch check is the authority).
func (m *Manager) haGate(req *wire.Message) *wire.Message {
	if req.Type == wire.TReplicate {
		return nil
	}
	m.ha.mu.Lock()
	fenced, standby, epoch := m.ha.fenced, m.ha.standby, m.ha.epoch
	m.ha.mu.Unlock()
	if fenced {
		return errf("directory %s: %s (fenced deposed primary, epoch %d)", m.name, wire.NotServingMark, epoch)
	}
	if !standby {
		return nil
	}
	switch req.Type {
	case wire.TMigrateTake, wire.TMigrateApply:
		// Shard migration is coordinator traffic, not client traffic.
		return nil
	}
	return errf("directory %s: %s (standby awaiting promotion)", m.name, wire.NotServingMark)
}

// handleReplicate absorbs one replication batch: epoch check, gap check,
// metadata+values absorb, view-state install, optional promotion. The
// TReplAck always reports the receiver's honest watermark.
//
// Note the view install only adds and refreshes — it never prunes: a
// standby may also hold views of its own (a serving replica absorbing a
// migration), and a stale extra registration is harmless (it is evicted
// on first unreachable contact after promotion).
func (m *Manager) handleReplicate(req *wire.Message) *wire.Message {
	b, err := DecodeReplBatch(req.Blob)
	if err != nil {
		return errf("%v", err)
	}
	m.ha.mu.Lock()
	if b.Epoch < m.ha.epoch {
		cur := m.ha.epoch
		m.ha.mu.Unlock()
		return errf("directory %s: %s %d (current %d)", m.name, staleEpochMark, b.Epoch, cur)
	}
	if b.Epoch > m.ha.epoch {
		m.ha.epoch = b.Epoch
		if m.ha.fenced && !b.Promote {
			// A higher-epoch stream re-integrates a fenced ex-primary as a
			// standby of the new primary.
			m.ha.fenced = false
			m.ha.standby = true
		}
	}
	m.ha.lastRepl = m.clock.Now()
	m.ha.haveRepl = true
	m.ha.mu.Unlock()

	if b.Snap != nil {
		cur := m.store.Current()
		if b.Since > cur {
			// Refuse: absorbing would open a hole (Since, b.Since]. The
			// honest watermark in the ack rewinds the sender.
			return &wire.Message{Type: wire.TReplAck, Version: cur}
		}
		if err := m.store.Absorb(b.Snap); err != nil {
			return errf("%v", err)
		}
		if err := m.store.AbsorbImage(b.Img); err != nil {
			return errf("%v", err)
		}
		if err := m.installViews(b.Snap.Views); err != nil {
			return errf("%v", err)
		}
	}
	if b.Promote {
		m.ha.mu.Lock()
		m.ha.standby = false
		m.ha.fenced = false
		m.ha.mu.Unlock()
	}
	return &wire.Message{Type: wire.TReplAck, Version: m.store.Current()}
}

// captureViews snapshots the per-view registration state (sorted by name
// so encodings are deterministic).
func (m *Manager) captureViews() []HandoverView {
	m.vmu.RLock()
	names := make([]string, 0, len(m.views))
	for n := range m.views {
		names = append(names, n)
	}
	sort.Strings(names)
	recs := make([]HandoverView, 0, len(names))
	for _, n := range names {
		vs := m.views[n]
		vs.mu.Lock()
		recs = append(recs, HandoverView{
			Name: n, Mode: vs.mode, Op: vs.lastOp, Seen: vs.seen, Validity: vs.validity.Source(),
		})
		vs.mu.Unlock()
	}
	m.vmu.RUnlock()
	for i := range recs {
		props, _ := m.reg.Props(recs[i].Name)
		recs[i].Props = props
		recs[i].Active = m.reg.Active(recs[i].Name)
	}
	return recs
}

// CaptureSince captures a snapshot of everything committed after since
// plus the full view-registration state — the unit both replication
// batches and checkpoint files are built from. CaptureSince(0) is a full
// view-state-carrying snapshot.
func (m *Manager) CaptureSince(since vclock.Version) *Snapshot {
	snap := m.store.SnapshotSince(since)
	snap.Views = m.captureViews()
	return snap
}

// CaptureSnapshot captures the full store metadata plus view-registration
// state. Restoring it (Options.Snapshot or RestoreSnapshot) brings a
// standby to the point where cache managers resume without
// re-register/re-pull.
func (m *Manager) CaptureSnapshot() *Snapshot { return m.CaptureSince(0) }

// RestoreSnapshot replaces the store metadata with the snapshot's and
// installs its carried view-registration state.
func (m *Manager) RestoreSnapshot(snap *Snapshot) error {
	if err := m.store.Restore(snap); err != nil {
		return err
	}
	return m.installViews(snap.Views)
}

// buildReplBatch assembles the delta batch after since: metadata
// snapshot, view state, and the primary values committed after since
// (extracted under the empty property set, i.e. everything).
func (m *Manager) buildReplBatch(since vclock.Version, epoch uint64) (*ReplBatch, error) {
	snap := m.CaptureSince(since)
	img, err := m.store.Extract(property.NewSet(), since)
	if err != nil {
		return nil, fmt.Errorf("directory %s: build repl batch: %w", m.name, err)
	}
	return &ReplBatch{Epoch: epoch, Since: since, Snap: snap, Img: img}, nil
}

// ReplLag returns the primary-version gap between this manager and its
// slowest live standby (0 without a replicator — or when fully caught
// up).
func (m *Manager) ReplLag() uint64 {
	m.ha.mu.Lock()
	r := m.ha.repl
	m.ha.mu.Unlock()
	if r == nil {
		return 0
	}
	return r.Lag()
}

// ReplTarget names one standby: the remote node to address TReplicate to,
// and optionally a dedicated endpoint to call through (nil uses the
// manager's own network endpoint — the in-process/model-checker case).
type ReplTarget struct {
	Name string
	Ep   transport.Endpoint
}

// ReplConfig tunes a replication session.
type ReplConfig struct {
	// Inline ships batches synchronously inside the commit barrier, on
	// the caller's goroutine — fully deterministic, used by the model
	// checker and simulation tests. The default (false) runs one sender
	// goroutine per standby with CallAsync windowed pipelining.
	Inline bool
	// Window bounds the in-flight batches per standby (async mode).
	// 0 means DefaultReplWindow.
	Window int
	// AckTimeout bounds how long the async sender waits for one batch's
	// ack before declaring the standby unreachable. 0 means
	// DefaultReplAckTimeout.
	AckTimeout time.Duration
	// Retry is the inline-mode per-batch retry policy.
	Retry transport.RetryPolicy
	// Lease is the primary's lease duration (virtual time). A standby
	// whose silence exceeds it may self-promote; with FenceOnLapse the
	// primary fences itself once it has failed to reach every standby
	// for longer than this.
	Lease vclock.Duration
	// FenceOnLapse makes the primary self-fence when its lease lapses
	// (all standbys unreachable for > Lease). Deployments whose standbys
	// self-promote set this so the old primary cannot split-brain.
	FenceOnLapse bool
}

// DefaultReplWindow is the async pipelining window when Window is 0.
const DefaultReplWindow = 4

// DefaultReplAckTimeout is the per-batch ack bound when AckTimeout is 0.
const DefaultReplAckTimeout = 5 * time.Second

// replTarget is the sender-side state for one standby.
type replTarget struct {
	name string
	ep   transport.Endpoint

	sentVer  vclock.Version // highest version shipped (optimistic)
	ackedVer vclock.Version // standby's honest watermark
	sentGen  uint64         // state generation captured by the newest shipped batch
	ackedGen uint64         // state generation the standby has absorbed
	kick     bool           // forced ship requested (heartbeat / probe)
	down     bool           // degraded: unreachable, excluded from barriers
	downAt   vclock.Time
}

// Replicator is a primary's replication session fanning out to its
// standbys.
type Replicator struct {
	m   *Manager
	cfg ReplConfig

	mu      sync.Mutex
	cond    *sync.Cond
	epoch   uint64
	fenced  bool
	closed  bool
	targets []*replTarget
	wg      sync.WaitGroup

	batches  *metrics.Counter // batches shipped
	degraded *metrics.Counter // barriers released with a standby down
}

// StartReplication attaches a replication session to the manager and —
// in async mode — starts one sender per standby. The manager's commit
// and registration paths barrier on it from then on.
func (m *Manager) StartReplication(cfg ReplConfig, targets ...ReplTarget) (*Replicator, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("directory %s: replication needs at least one target", m.name)
	}
	r := &Replicator{
		m:        m,
		cfg:      cfg,
		epoch:    m.Epoch(),
		batches:  metrics.NewCounter(m.name + ".repl_batches"),
		degraded: metrics.NewCounter(m.name + ".repl_degraded"),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, tgt := range targets {
		ep := tgt.Ep
		if ep == nil {
			ep = m.ep
		}
		if ws, ok := ep.(transport.WindowSetter); ok && !cfg.Inline {
			ws.SetWindow(r.window())
		}
		r.targets = append(r.targets, &replTarget{name: tgt.Name, ep: ep})
	}
	m.ha.mu.Lock()
	if m.ha.repl != nil {
		m.ha.mu.Unlock()
		return nil, fmt.Errorf("directory %s: replication already started", m.name)
	}
	m.ha.repl = r
	m.ha.mu.Unlock()
	if !cfg.Inline {
		for _, t := range r.targets {
			r.wg.Add(1)
			go r.runSender(t)
		}
	}
	return r, nil
}

// Replication returns the attached replication session (nil when not a
// replicating primary).
func (m *Manager) Replication() *Replicator {
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.repl
}

func (r *Replicator) window() int {
	if r.cfg.Window > 0 {
		return r.cfg.Window
	}
	return DefaultReplWindow
}

func (r *Replicator) ackTimeout() time.Duration {
	if r.cfg.AckTimeout > 0 {
		return r.cfg.AckTimeout
	}
	return DefaultReplAckTimeout
}

// Lag returns the version gap to the slowest live standby.
func (r *Replicator) Lag() uint64 {
	cur := r.m.store.Current()
	r.mu.Lock()
	defer r.mu.Unlock()
	var lag uint64
	for _, t := range r.targets {
		if t.down {
			continue
		}
		if d := uint64(cur) - uint64(t.ackedVer); d > lag {
			lag = d
		}
	}
	return lag
}

// Degraded reports whether any standby is currently excluded from
// barriers as unreachable.
func (r *Replicator) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.targets {
		if t.down {
			return true
		}
	}
	return false
}

// BatchesShipped returns the number of replication batches sent.
func (r *Replicator) BatchesShipped() int64 { return r.batches.Value() }

// DegradedBarriers returns how many barriers were released while a
// standby was down (commits acked without full replication).
func (r *Replicator) DegradedBarriers() int64 { return r.degraded.Value() }

// WaitSynced blocks until every live standby has absorbed a batch whose
// captured state generation is at least gen (semi-synchronous group
// commit). Standbys marked down are skipped — availability over
// replication — and the skip is counted. A fenced replicator fails.
func (r *Replicator) WaitSynced(gen uint64) error {
	if r.cfg.Inline {
		return r.shipInline(gen)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cond.Broadcast() // wake senders: new state to ship
	for {
		if r.fenced {
			return fmt.Errorf("directory %s: fenced (deposed primary, epoch %d)", r.m.name, r.epoch)
		}
		if r.closed {
			return nil
		}
		synced, skipped := true, false
		for _, t := range r.targets {
			if t.down {
				skipped = true
				continue
			}
			if t.ackedGen < gen {
				synced = false
				break
			}
		}
		if synced {
			if skipped {
				r.degraded.Inc()
			}
			return nil
		}
		r.cond.Wait()
	}
}

// shipInline is the deterministic barrier: build-and-send batches on the
// caller's goroutine until every target has absorbed generation gen.
// Transport failures surface to the commit (the model checker's drop
// schedules land here); they do not degrade the target.
func (r *Replicator) shipInline(gen uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.targets {
		for t.ackedGen < gen {
			if r.fenced {
				return fmt.Errorf("directory %s: fenced (deposed primary, epoch %d)", r.m.name, r.epoch)
			}
			since := t.sentVer
			g := r.m.haGen()
			batch, err := r.m.buildReplBatch(since, r.epoch)
			if err != nil {
				return err
			}
			msg, err := ReplMessage(batch)
			if err != nil {
				return err
			}
			r.batches.Inc()
			reply, err := transport.CallRetry(t.ep, t.name, msg, r.cfg.Retry)
			if err != nil {
				if !transport.IsTransportError(err) && strings.Contains(err.Error(), staleEpochMark) {
					r.fenceLocked()
				}
				return fmt.Errorf("directory %s: replicate to %s: %w", r.m.name, t.name, err)
			}
			r.applyAckLocked(t, batch.Snap.Version, g, reply)
		}
	}
	return nil
}

// applyAckLocked folds one TReplAck into the target's watermarks. end is
// the shipped batch's closing version, gen the state generation it
// captured. An ack at or beyond end means the batch was absorbed; a
// lower ack is a refusal (or partial knowledge) and rewinds the sender
// to the standby's honest watermark.
func (r *Replicator) applyAckLocked(t *replTarget, end vclock.Version, gen uint64, reply *wire.Message) {
	if reply == nil || reply.Type != wire.TReplAck {
		return
	}
	if reply.Version >= end {
		if end > t.ackedVer {
			t.ackedVer = end
		}
		if end > t.sentVer {
			t.sentVer = end
		}
		if gen > t.ackedGen {
			t.ackedGen = gen
		}
	} else {
		t.ackedVer = reply.Version
		t.sentVer = reply.Version
	}
	r.cond.Broadcast()
}

func (r *Replicator) fenceLocked() {
	r.fenced = true
	r.m.ha.mu.Lock()
	r.m.ha.fenced = true
	r.m.ha.mu.Unlock()
	r.cond.Broadcast()
}

// pendingLocked reports whether the target has unshipped state. A down
// target only ships when kicked (the heartbeat doubles as its probe).
func (r *Replicator) pendingLocked(t *replTarget) bool {
	if t.down {
		return t.kick
	}
	return t.kick || t.sentGen < r.m.haGen()
}

// shipCall abstracts "a batch on the wire": a pipelined transport.Call
// on async-capable endpoints, an already-resolved pair elsewhere.
type shipCall struct {
	call  *transport.Call
	end   vclock.Version
	gen   uint64
	reply *wire.Message
	err   error
}

func (s *shipCall) wait(timeout time.Duration) (*wire.Message, error) {
	if s.call == nil {
		return s.reply, s.err
	}
	if timeout > 0 {
		return s.call.WaitTimeout(timeout)
	}
	return s.call.Wait()
}

// runSender is the per-standby async pump: it keeps up to Window batches
// in flight (PR 7's pipelined-session machinery), processes acks in
// order, rewinds on refusals, degrades the target on transport failure,
// and probes a down target whenever kicked.
func (r *Replicator) runSender(t *replTarget) {
	defer r.wg.Done()
	var inflight []*shipCall
	for {
		r.mu.Lock()
		for !r.closed && !r.fenced && len(inflight) == 0 && !r.pendingLocked(t) {
			r.cond.Wait()
		}
		if r.closed || r.fenced {
			r.mu.Unlock()
			for _, p := range inflight {
				_, _ = p.wait(r.ackTimeout())
			}
			return
		}
		for len(inflight) < r.window() && r.pendingLocked(t) {
			probe := t.down
			since := t.sentVer
			epoch := r.epoch
			t.kick = false
			r.mu.Unlock()
			sc := r.issue(t, since, epoch)
			r.mu.Lock()
			if sc == nil { // batch build failed; wait for the next change
				break
			}
			if sc.end > t.sentVer {
				t.sentVer = sc.end
			}
			if sc.gen > t.sentGen {
				t.sentGen = sc.gen
			}
			inflight = append(inflight, sc)
			if probe {
				break // one probe at a time while degraded
			}
		}
		r.mu.Unlock()
		if len(inflight) == 0 {
			continue
		}
		sc := inflight[0]
		inflight = inflight[1:]
		reply, err := sc.wait(r.ackTimeout())
		r.mu.Lock()
		r.senderAckLocked(t, sc, reply, err)
		r.mu.Unlock()
	}
}

// issue builds and sends one batch (no locks held). Returns nil when the
// batch could not be built (primary codec error); the sender retries on
// the next state change.
func (r *Replicator) issue(t *replTarget, since vclock.Version, epoch uint64) *shipCall {
	gen := r.m.haGen()
	batch, err := r.m.buildReplBatch(since, epoch)
	if err != nil {
		return nil
	}
	msg, err := ReplMessage(batch)
	if err != nil {
		return nil
	}
	r.batches.Inc()
	sc := &shipCall{end: batch.Snap.Version, gen: gen}
	if ac, ok := t.ep.(transport.AsyncCaller); ok {
		sc.call = ac.CallAsync(t.name, msg)
	} else {
		sc.reply, sc.err = t.ep.Call(t.name, msg)
	}
	return sc
}

func (r *Replicator) senderAckLocked(t *replTarget, sc *shipCall, reply *wire.Message, err error) {
	if err != nil {
		if transport.IsTransportError(err) {
			if !t.down {
				t.down = true
				t.downAt = r.m.clock.Now()
			}
			// Rewind so the post-recovery probe refills everything the
			// lost batches carried.
			t.sentVer = t.ackedVer
			t.sentGen = t.ackedGen
			r.cond.Broadcast() // release barriers into degraded mode
			return
		}
		if strings.Contains(err.Error(), staleEpochMark) {
			r.fenceLocked()
			return
		}
		// Remote (protocol) error: the standby answered but refused the
		// batch; rewind and retry from its honest state.
		t.sentVer = t.ackedVer
		t.sentGen = t.ackedGen
		r.cond.Broadcast()
		return
	}
	if t.down {
		t.down = false
	}
	r.applyAckLocked(t, sc.end, sc.gen, reply)
}

// Heartbeat kicks every sender: idle standbys get an empty batch (which
// refreshes their lease timer and carries current view state), down
// standbys get a probe. With FenceOnLapse, a primary whose every standby
// has been unreachable for longer than the lease fences itself.
// Deployments call this from their ticker loop; the replicator owns no
// timers of its own.
func (r *Replicator) Heartbeat() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	allDown, latest := true, vclock.Time(0)
	for _, t := range r.targets {
		t.kick = true
		if !t.down {
			allDown = false
		} else if t.downAt > latest {
			latest = t.downAt
		}
	}
	if r.cfg.FenceOnLapse && r.cfg.Lease > 0 && allDown && !r.fenced {
		if r.m.clock.Now()-latest > r.cfg.Lease {
			r.fenceLocked()
		}
	}
	r.cond.Broadcast()
}

// Close stops the senders. Outstanding barriers are released.
func (r *Replicator) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}
