package directory

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"flecc/internal/vclock"
)

// The paper notes that the centralized protocol assumes the original
// component is always running and that "fail-safe mechanisms can be
// implemented" (§4.1). This file implements the mechanism: the directory
// manager's protocol metadata — the version counter, the per-key shadow,
// and the update log — can be snapshotted and restored into a standby
// directory manager, which then continues issuing versions where the
// failed primary left off. (The application data itself lives in the
// original component and is replicated by whatever means the application
// uses; Flecc only needs its metadata to survive.)

// ShadowRec is the exported form of one shadow entry.
type ShadowRec struct {
	Key     string
	Version vclock.Version
	Writer  string
	Deleted bool
}

// Snapshot is a serializable capture of a Store's protocol metadata.
type Snapshot struct {
	// Version is the last issued primary version.
	Version vclock.Version
	// Shadow carries the per-key commit metadata.
	Shadow []ShadowRec
	// Log is the update log (quality accounting).
	Log []UpdateRec
	// Views carries the per-view registration state (modes, seen
	// versions, validity triggers) when the snapshot was captured by
	// Manager.CaptureSnapshot. A standby that restores such a snapshot
	// takes over without forcing every CM through re-register/re-pull.
	// Store-level Snapshot leaves it nil; decoders of old blobs see nil.
	Views []HandoverView
}

// Snapshot captures the store's current metadata. In striped mode it
// quiesces in-flight commits first, so the capture is complete up to its
// Version.
func (s *Store) Snapshot() *Snapshot {
	defer s.rlockStore()()
	snap := &Snapshot{Version: s.counter.Current()}
	for _, st := range s.stripes {
		for k, sh := range st.shadow {
			snap.Shadow = append(snap.Shadow, ShadowRec{
				Key: k, Version: sh.version, Writer: sh.writer, Deleted: sh.deleted,
			})
		}
	}
	snap.Log = make([]UpdateRec, len(s.log))
	copy(snap.Log, s.log)
	return snap
}

// Restore replaces the store's metadata with the snapshot's. The primary
// codec is untouched; callers are responsible for the application data
// being consistent with the snapshot (e.g. restored from the same
// checkpoint).
func (s *Store) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("directory: nil snapshot")
	}
	defer s.lockStore()()
	for _, st := range s.stripes {
		st.shadow = map[string]shadowEntry{}
	}
	for _, r := range snap.Shadow {
		s.stripeFor(r.Key).shadow[r.Key] = shadowEntry{version: r.Version, writer: r.Writer, deleted: r.Deleted}
	}
	s.log = make([]UpdateRec, len(snap.Log))
	copy(s.log, snap.Log)
	s.counter.AdvanceTo(snap.Version)
	for _, st := range s.stripes {
		st.rebuild()
	}
	s.gen++
	return nil
}

// EncodeSnapshot serializes a snapshot (gob; property sets travel in their
// textual form through their TextMarshaler implementation).
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("directory: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses EncodeSnapshot's output.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("directory: decode snapshot: %w", err)
	}
	return &snap, nil
}
