package directory_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// noRetry is the inline-replication retry policy used where a failure
// should surface immediately.
var noRetry = transport.RetryPolicy{Attempts: 1, Sleep: func(time.Duration) {}}

// replPair builds a replicating primary "dm!a" (codec primA) and a hot
// standby "dm!b" (codec primB) on net, with an inline replication session
// already attached unless cfg.Inline is false (async mode).
func replPair(t *testing.T, net transport.Network, clock vclock.Clock, cfg directory.ReplConfig) (a, b *directory.Manager, primA, primB *kv) {
	t.Helper()
	primA, primB = newKV(), newKV()
	a, err := directory.New("dm!a", primA, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err = directory.New("dm!b", primB, clock, net, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartReplication(cfg, directory.ReplTarget{Name: "dm!b"}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if r := a.Replication(); r != nil {
			r.Close()
		}
		a.Close()
		b.Close()
	})
	return a, b, primA, primB
}

// ctlEndpoint attaches a control endpoint (a stand-in for the shard
// router or an operator tool) that can address promote messages.
func ctlEndpoint(t *testing.T, net transport.Network) transport.Endpoint {
	t.Helper()
	ep, err := net.Attach("ctl", func(*wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func promote(t *testing.T, ep transport.Endpoint, target string, epoch uint64) *wire.Message {
	t.Helper()
	msg, err := directory.PromoteMessage(epoch)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ep.Call(target, msg)
	if err != nil {
		t.Fatalf("promote %s: %v", target, err)
	}
	return reply
}

func pushThrough(t *testing.T, cm *cache.Manager, view *kv, k, v string) {
	t.Helper()
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.data[k] = v
	cm.EndUse()
	if err := cm.PushImage(); err != nil {
		t.Fatalf("push %s=%s: %v", k, v, err)
	}
}

// TestReplicationSemiSyncCommit: with an inline replication session
// attached, every acknowledged commit is already on the standby when the
// client's ack is released — metadata (version), primary values, and the
// standby's own codec all agree with the primary, and the lag gauge
// reads zero.
func TestReplicationSemiSyncCommit(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	a, b, primA, primB := replPair(t, net, clock, directory.ReplConfig{Inline: true, Retry: noRetry})

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm!a", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	pushThrough(t, cm, view, "k", "replicated")
	pushThrough(t, cm, view, "k2", "also")

	// The push acks above have been released, so the standby must
	// already hold both commits — no sleeping, no draining.
	if got, want := b.CurrentVersion(), a.CurrentVersion(); got != want {
		t.Fatalf("standby version = %d, primary %d", got, want)
	}
	if primB.data["k"] != "replicated" || primB.data["k2"] != "also" {
		t.Fatalf("standby codec missed values: %v (primary %v)", primB.data, primA.data)
	}
	if lag := a.ReplLag(); lag != 0 {
		t.Fatalf("repl lag = %d after synchronous commits", lag)
	}
	r := a.Replication()
	if r.BatchesShipped() == 0 {
		t.Fatal("no batches shipped")
	}
	if r.DegradedBarriers() != 0 {
		t.Fatalf("degraded barriers = %d on a healthy pair", r.DegradedBarriers())
	}
}

// TestReplicationAsyncBarrier: the same guarantee through the async
// sender (one goroutine per standby, windowed shipping): a commit's ack
// is not released until the standby has absorbed a batch covering it.
func TestReplicationAsyncBarrier(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	a, b, _, primB := replPair(t, net, clock, directory.ReplConfig{Window: 2, AckTimeout: 2 * time.Second})

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm!a", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	for i, val := range []string{"one", "two", "three"} {
		pushThrough(t, cm, view, "k", val)
		if got, want := b.CurrentVersion(), a.CurrentVersion(); got != want {
			t.Fatalf("push %d: standby version = %d, primary %d", i, got, want)
		}
	}
	if primB.data["k"] != "three" {
		t.Fatalf("standby codec = %v, want k=three", primB.data)
	}
}

// TestReplicationStandbyGateAndPromote: a hot standby refuses client
// traffic with the not-serving marker (so reconnecting CMs rotate to
// another endpoint instead of hard-failing), and starts serving the
// moment a promote batch arrives.
func TestReplicationStandbyGateAndPromote(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	_, b, _, _ := replPair(t, net, clock, directory.ReplConfig{Inline: true, Retry: noRetry})
	ctl := ctlEndpoint(t, net)

	// Client traffic against the standby is refused, redialably.
	view := newKV()
	_, err := cache.New(cache.Config{
		Name: "vx", Directory: "dm!b", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err == nil {
		t.Fatal("register against a standby should be refused")
	}
	if !strings.Contains(err.Error(), wire.NotServingMark) {
		t.Fatalf("standby refusal %q does not carry the not-serving marker", err)
	}

	reply := promote(t, ctl, "dm!b", b.Epoch()+1)
	if reply.Type != wire.TReplAck {
		t.Fatalf("promote reply = %v", reply.Type)
	}
	if b.Standby() {
		t.Fatal("standby flag survived promotion")
	}
	if b.Epoch() != 1 {
		t.Fatalf("epoch = %d after promotion, want 1", b.Epoch())
	}
	// And it serves.
	cm, err := cache.New(cache.Config{
		Name: "vx", Directory: "dm!b", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatalf("register against promoted standby: %v", err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationGapRefusal: a standby refuses a batch whose Since it has
// not reached — absorbing it would open a hole — and reports its honest
// watermark in the ack so the sender rewinds instead of looping.
func TestReplicationGapRefusal(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim := newKV()
	b, err := directory.New("dm!b", prim, clock, net, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctl := ctlEndpoint(t, net)

	// A gapped delta: claims to start after version 5, standby is at 0.
	gapped, err := directory.ReplMessage(&directory.ReplBatch{
		Since: 5, Snap: &directory.Snapshot{Version: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ctl.Call("dm!b", gapped)
	if err != nil {
		t.Fatalf("gapped batch should be refused via ack, not error: %v", err)
	}
	if reply.Type != wire.TReplAck || reply.Version != 0 {
		t.Fatalf("refusal ack = %v v%d, want TReplAck v0 (honest watermark)", reply.Type, reply.Version)
	}
	if b.CurrentVersion() != 0 {
		t.Fatalf("gapped batch advanced the standby to v%d", b.CurrentVersion())
	}

	// The rewound full batch (Since 0) is then absorbed.
	src := newKV()
	aDM, err := directory.New("dm!src", src, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer aDM.Close()
	d := image.New(property.MustSet("P={x}"))
	d.Put(image.Entry{Key: "k", Value: []byte("v")})
	if _, err := aDM.CommitLocal(d, 1); err != nil {
		t.Fatal(err)
	}
	img, err := aDM.Store().Extract(property.NewSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := directory.ReplMessage(&directory.ReplBatch{
		Since: 0, Snap: aDM.CaptureSince(0), Img: img,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err = ctl.Call("dm!b", full)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Version != aDM.CurrentVersion() {
		t.Fatalf("ack after full batch = v%d, want v%d", reply.Version, aDM.CurrentVersion())
	}
	if prim.data["k"] != "v" {
		t.Fatalf("standby codec = %v after full batch", prim.data)
	}
}

// TestReplicationStaleEpochFencesPrimary: once the standby is promoted
// under a higher epoch, the old primary's next replicated commit is
// refused as stale — and the deposed primary fences itself rather than
// keep serving a split brain.
func TestReplicationStaleEpochFencesPrimary(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	a, b, _, _ := replPair(t, net, clock, directory.ReplConfig{Inline: true, Retry: noRetry})
	ctl := ctlEndpoint(t, net)

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm!a", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	pushThrough(t, cm, view, "k", "before")

	promote(t, ctl, "dm!b", b.Epoch()+1)

	// The old primary's next commit must fail (its batch is stale) ...
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.data["k"] = "after"
	cm.EndUse()
	if err := cm.PushImage(); err == nil {
		t.Fatal("push through a deposed primary should fail")
	}
	// ... and the deposed primary is now fenced: it refuses everything,
	// with the redialable not-serving marker.
	if !a.Fenced() {
		t.Fatal("deposed primary did not fence itself")
	}
	if err := cm.PullImage(); err == nil || !strings.Contains(err.Error(), wire.NotServingMark) {
		t.Fatalf("fenced primary refusal = %v, want the not-serving marker", err)
	}
	// The lost write was never acked — semi-sync means nothing a client
	// observed is missing from the new primary.
	if b.Standby() {
		t.Fatal("promoted standby still gating")
	}
}

// TestReplicationDroppedBatchResent: a dropped TReplicate is not a hole —
// the inline retry re-ships the same delta, Absorb's merge makes the
// resend idempotent, and the commit's ack is only released once the
// standby really has it.
func TestReplicationDroppedBatchResent(t *testing.T) {
	inner := transport.NewInproc()
	net := transport.NewFaulty(inner, 1)
	net.SetSleep(func(time.Duration) {})
	clock := vclock.NewSim()
	retry := transport.RetryPolicy{Attempts: 4, Sleep: func(time.Duration) {}}
	a, b, _, primB := replPair(t, net, clock, directory.ReplConfig{Inline: true, Retry: retry})

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm!a", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}

	// Drop the next two primary→standby deliveries: the first shipped
	// batch (and its first retry) vanish mid-flight.
	net.DisconnectNext("dm!a", "dm!b", 2)
	pushThrough(t, cm, view, "k", "survives-drops")

	if got, want := b.CurrentVersion(), a.CurrentVersion(); got != want {
		t.Fatalf("standby version = %d after drops, primary %d", got, want)
	}
	if primB.data["k"] != "survives-drops" {
		t.Fatalf("standby codec = %v after drops", primB.data)
	}
}

// TestReplicationCarriesViewState: replication batches carry the
// registration state — modes, seen versions, validity triggers, property
// sets — so a promoted standby picks up every session where the primary
// left it, no re-register or re-pull required.
func TestReplicationCarriesViewState(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	a, b, _, _ := replPair(t, net, clock, directory.ReplConfig{Inline: true, Retry: noRetry})
	ctl := ctlEndpoint(t, net)

	mk := func(name string, mode wire.Mode, props, validity string) (*cache.Manager, *kv) {
		view := newKV()
		cm, err := cache.New(cache.Config{
			Name: name, Directory: "dm!a", Net: net, View: view,
			Props: property.MustSet(props), Mode: mode, Clock: clock,
			ValidityTrigger: validity,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
		return cm, view
	}
	cm1, view1 := mk("v1", wire.Strong, "P={x}", "staleness < 5")
	_, _ = mk("v2", wire.Weak, "P={x..z}", "")

	pushThrough(t, cm1, view1, "k", "state")
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}

	// The standby's registration state mirrors the primary's exactly.
	want := a.CaptureSnapshot().Views
	got := b.CaptureSnapshot().Views
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("view state diverged:\nstandby: %+v\nprimary: %+v", got, want)
	}
	if len(want) != 2 {
		t.Fatalf("captured %d views, want 2", len(want))
	}

	// After promotion the standby already knows the views: same modes,
	// same seen versions — the takeover is observable state, not a fresh
	// registry.
	promote(t, ctl, "dm!b", b.Epoch()+1)
	for _, v := range []string{"v1", "v2"} {
		if bm, am := b.Mode(v), a.Mode(v); bm != am {
			t.Fatalf("%s mode: standby %v, primary %v", v, bm, am)
		}
		if bs, as := b.Seen(v), a.Seen(v); bs != as {
			t.Fatalf("%s seen: standby v%d, primary v%d", v, bs, as)
		}
	}
}

// TestAbsorbRestoreEquivalence: the two ways a standby can reach the
// primary's state — restoring a view-state-carrying snapshot at
// construction, or absorbing the same state as a replication batch — are
// equivalent: same version, same shadow metadata, same registration
// state, same extracted primary values.
func TestAbsorbRestoreEquivalence(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	prim := newKV()
	a, err := directory.New("dm!a", prim, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	view := newKV()
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm!a", Net: net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Strong, Clock: clock,
		ValidityTrigger: "staleness < 9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	pushThrough(t, cm, view, "k1", "one")
	pushThrough(t, cm, view, "k2", "two")

	snap := a.CaptureSnapshot()
	img, err := a.Store().Extract(property.NewSet(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Path 1: restore at construction (checkpoint-file takeover).
	restored, err := directory.New("dm!r", newKV(), clock, net, directory.Options{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Store().AbsorbImage(img); err != nil {
		t.Fatal(err)
	}

	// Path 2: absorb the same state as a replication batch (hot-standby
	// takeover).
	absorbed, err := directory.New("dm!s", newKV(), clock, net, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer absorbed.Close()
	ctl := ctlEndpoint(t, net)
	msg, err := directory.ReplMessage(&directory.ReplBatch{Since: 0, Snap: snap, Img: img})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Call("dm!s", msg); err != nil {
		t.Fatal(err)
	}

	if rv, av := restored.CurrentVersion(), absorbed.CurrentVersion(); rv != av || rv != a.CurrentVersion() {
		t.Fatalf("versions diverged: restored v%d, absorbed v%d, primary v%d", rv, av, a.CurrentVersion())
	}
	rs, as := restored.CaptureSnapshot(), absorbed.CaptureSnapshot()
	if !reflect.DeepEqual(rs.Views, as.Views) {
		t.Fatalf("view state diverged:\nrestored: %+v\nabsorbed: %+v", rs.Views, as.Views)
	}
	if !reflect.DeepEqual(rs.Shadow, as.Shadow) {
		t.Fatalf("shadow diverged:\nrestored: %+v\nabsorbed: %+v", rs.Shadow, as.Shadow)
	}
	ri, err := restored.Store().Extract(property.NewSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ai, err := absorbed.Store().Extract(property.NewSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2"} {
		re, rok := ri.Get(k)
		ae, aok := ai.Get(k)
		if !rok || !aok || string(re.Value) != string(ae.Value) || re.Version != ae.Version {
			t.Fatalf("%s diverged: restored %+v (%v), absorbed %+v (%v)", k, re, rok, ae, aok)
		}
	}
}

// BenchmarkRestoreHighVersion pins the cost of restoring a snapshot
// whose version counter is far ahead: Counter.AdvanceTo makes it a
// single fast-forward instead of the old O(version) Next loop, so a
// v=2,000,000 restore costs the same as a v=2 one.
func BenchmarkRestoreHighVersion(b *testing.B) {
	const high = 2_000_000
	snap := &directory.Snapshot{
		Version: high,
		Shadow: []directory.ShadowRec{
			{Key: "k1", Version: high - 1, Writer: "v1"},
			{Key: "k2", Version: high, Writer: "v2"},
		},
		Log: []directory.UpdateRec{
			{Version: high - 1, Writer: "v1"},
			{Version: high, Writer: "v2"},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := directory.NewStore(newKV(), vclock.NewSim())
		if err := st.Restore(snap); err != nil {
			b.Fatal(err)
		}
		if st.Current() != high {
			b.Fatalf("restored version = %d", st.Current())
		}
	}
}
