package cache_test

import (
	"net"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestProtocolOverTCP runs the full directory/cache protocol over real TCP
// connections: registration, init, strong-mode invalidation across two
// separately dialed cache managers, push/pull, and teardown.
func TestProtocolOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewReal()
	snet := transport.NewServerNetwork(ln, 5*time.Second)
	prim := newKV(map[string]string{"seed": "s0"})
	dm, err := directory.New("dm", prim, clock, snet, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	dnet := transport.NewDialNetwork(ln.Addr().String(), 5*time.Second)
	mk := func(name string, view *kvView) *cache.Manager {
		cm, err := cache.New(cache.Config{
			Name: name, Directory: "dm", Net: dnet, View: view,
			Props: property.MustSet("P={x}"), Mode: wire.Strong, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := mk("v1", v1)
	cm2 := mk("v2", v2)

	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if v1.Get("seed") != "s0" {
		t.Fatal("init over TCP")
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("x", "tcp-write")
	cm1.EndUse()

	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("v1 should be invalidated over TCP")
	}
	if v2.Get("x") != "tcp-write" {
		t.Fatalf("v2 sees x=%q", v2.Get("x"))
	}
	if err := cm2.KillImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.KillImage(); err != nil {
		t.Fatal(err)
	}
	if got := len(dm.Views()); got != 0 {
		t.Fatalf("views remaining: %d", got)
	}
	if prim.Get("x") != "tcp-write" {
		t.Fatal("final state should be at the primary")
	}
}
