package cache_test

import (
	"fmt"
	"math/rand"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/netsim"
	"flecc/internal/property"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestQuickConvergenceAfterQuiesce is the protocol's headline invariant as
// a property-based test: after any random interleaving of view operations
// (pulls, use windows with writes, pushes, mode switches), quiescing the
// system — every view pushes, then every view pulls — leaves every replica
// content-equal to the primary for the keys it shares.
func TestQuickConvergenceAfterQuiesce(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		runConvergenceTrial(t, r, trial)
	}
}

func runConvergenceTrial(t *testing.T, r *rand.Rand, trial int) {
	t.Helper()
	rig := newRig(t, directory.Options{})
	nViews := 2 + r.Intn(3)
	views := make([]*kvView, nViews)
	cms := make([]*cache.Manager, nViews)
	for i := range views {
		views[i] = newKV(nil)
		// All views share property P={x} — everyone conflicts.
		cms[i] = rig.view(t, fmt.Sprintf("t%d-v%d", trial, i), "P={x}", wire.Weak, views[i])
		if err := cms[i].InitImage(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	keys := []string{"k0", "k1", "k2"}

	// Random op soup.
	steps := 10 + r.Intn(30)
	for s := 0; s < steps; s++ {
		i := r.Intn(nViews)
		cm, v := cms[i], views[i]
		switch r.Intn(6) {
		case 0, 1: // write inside a use window
			if !cm.Valid() {
				if err := cm.PullImage(); err != nil {
					t.Fatalf("trial %d step %d pull: %v", trial, s, err)
				}
			}
			if err := cm.StartUse(); err != nil {
				t.Fatalf("trial %d step %d use: %v", trial, s, err)
			}
			v.Set(keys[r.Intn(len(keys))], fmt.Sprintf("w%d-%d", i, s))
			cm.EndUse()
		case 2: // push
			if err := cm.PushImage(); err != nil {
				t.Fatalf("trial %d step %d push: %v", trial, s, err)
			}
		case 3: // pull
			if err := cm.PullImage(); err != nil {
				t.Fatalf("trial %d step %d pull: %v", trial, s, err)
			}
		case 4: // mode flip
			mode := wire.Weak
			if r.Intn(2) == 0 {
				mode = wire.Strong
			}
			if err := cm.SetMode(mode); err != nil {
				t.Fatalf("trial %d step %d mode: %v", trial, s, err)
			}
		case 5: // delete a key
			if !cm.Valid() {
				if err := cm.PullImage(); err != nil {
					t.Fatalf("trial %d step %d pull: %v", trial, s, err)
				}
			}
			if err := cm.StartUse(); err != nil {
				t.Fatalf("trial %d step %d use: %v", trial, s, err)
			}
			v.Delete(keys[r.Intn(len(keys))])
			cm.EndUse()
		}
	}

	// Quiesce: everyone publishes, then everyone refreshes (twice, so a
	// pull that raced a later push settles).
	for round := 0; round < 2; round++ {
		for _, cm := range cms {
			if err := cm.PushImage(); err != nil {
				t.Fatalf("trial %d quiesce push: %v", trial, err)
			}
		}
		for _, cm := range cms {
			if err := cm.PullImage(); err != nil {
				t.Fatalf("trial %d quiesce pull: %v", trial, err)
			}
		}
	}

	// Every replica must now equal the primary on the shared keys.
	primary, err := rig.dms()[0].ExtractPrimary(cms[0].Base().Props)
	if err != nil {
		t.Fatalf("trial %d: %v", trial, err)
	}
	for i, v := range views {
		for _, k := range keys {
			want := ""
			if e, ok := primary.Get(k); ok && !e.Deleted {
				want = string(e.Value)
			}
			if got := v.Get(k); got != want {
				t.Fatalf("trial %d: view %d diverged on %s: got %q want %q",
					trial, i, k, got, want)
			}
		}
	}
	// And nobody has phantom pending work.
	for i, cm := range cms {
		if cm.PendingOps() != 0 {
			// pendingOps counts use windows; quiesce pushes reset it.
			t.Fatalf("trial %d: view %d still has %d pending ops", trial, i, cm.PendingOps())
		}
	}
}

// TestFailedPushKeepsPendingState: a transport fault during push must not
// lose the dirty state — the next push retries it.
func TestFailedPushKeepsPendingState(t *testing.T) {
	rig := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm1 := rig.view(t, "v1", "P={x}", wire.Weak, v1)
	cm1.InitImage()
	cm1.StartUse()
	v1.Set("k", "precious")
	cm1.EndUse()

	fail := true
	rig.net.SetFaultInjector(func(from, to string, m *wire.Message) error {
		if fail && m.Type == wire.TPush {
			return fmt.Errorf("injected link failure")
		}
		return nil
	})
	if err := cm1.PushImage(); err == nil {
		t.Fatal("push should fail under the injected fault")
	}
	if cm1.PendingOps() != 1 {
		t.Fatalf("pending ops = %d, want 1 (state preserved)", cm1.PendingOps())
	}
	fail = false
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if rig.prim.Get("k") != "precious" {
		t.Fatal("retried push should deliver the data")
	}
	if cm1.PendingOps() != 0 {
		t.Fatal("pending ops should clear after the successful retry")
	}
}

// TestFailedPullLeavesViewUsable: a failed pull must not invalidate or
// corrupt the view.
func TestFailedPullLeavesViewUsable(t *testing.T) {
	rig := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm1 := rig.view(t, "v1", "P={x}", wire.Weak, v1)
	cm1.InitImage()
	seenBefore := cm1.Seen()

	rig.net.SetFaultInjector(func(from, to string, m *wire.Message) error {
		if m.Type == wire.TPull {
			return fmt.Errorf("injected link failure")
		}
		return nil
	})
	if err := cm1.PullImage(); err == nil {
		t.Fatal("pull should fail")
	}
	if !cm1.Valid() {
		t.Fatal("failed pull must not invalidate the view")
	}
	if cm1.Seen() != seenBefore {
		t.Fatal("failed pull must not advance seen")
	}
	rig.net.SetFaultInjector(nil)
	if err := cm1.StartUse(); err != nil {
		t.Fatal("view should remain usable with its old image")
	}
	cm1.EndUse()
}

// TestPartitionHealConvergence: a view partitioned away from the
// directory manager keeps its local state, fails loudly on sync attempts,
// and converges once the partition heals.
func TestPartitionHealConvergence(t *testing.T) {
	clock := vclock.NewSim()
	topo := netsim.LAN(1)
	topo.Place("dm", "hub")
	topo.Place("v1", "edge1")
	topo.Place("v2", "edge2")
	net := netsim.New(clock, topo)
	prim := newKV(nil)
	dm, err := directory.New("dm", prim, clock, net, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	mk := func(name string, view *kvView) *cache.Manager {
		cm, err := cache.New(cache.Config{
			Name: name, Directory: "dm", Net: net, View: view,
			Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
		return cm
	}
	v1, v2 := newKV(nil), newKV(nil)
	cm1 := mk("v1", v1)
	cm2 := mk("v2", v2)

	net.Partition("hub", "edge1")
	// v1 keeps working locally; sync attempts fail but lose nothing.
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("k", "written-during-partition")
	cm1.EndUse()
	if err := cm1.PushImage(); err == nil {
		t.Fatal("push across partition should fail")
	}
	if cm1.PendingOps() != 1 {
		t.Fatal("pending work must survive the failed push")
	}
	// The other side keeps operating normally.
	cm2.StartUse()
	v2.Set("other", "fine")
	cm2.EndUse()
	if err := cm2.PushImage(); err != nil {
		t.Fatal(err)
	}

	net.Heal("hub", "edge1")
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if prim.Get("k") != "written-during-partition" {
		t.Fatal("partition-era write should commit after healing")
	}
	if v1.Get("other") != "fine" {
		t.Fatal("v1 should catch up on what it missed")
	}
}

// TestInvalidateFailureEvictsDeadView: when a conflicting view cannot be
// invalidated (e.g. its host died), the directory manager retries with
// backoff, then evicts the dead view and lets the strong pull proceed —
// a crashed holder must not wedge every survivor.
func TestInvalidateFailureEvictsDeadView(t *testing.T) {
	rig := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := rig.view(t, "v1", "P={x}", wire.Strong, v1)
	cm2 := rig.view(t, "v2", "P={x}", wire.Strong, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm1.PullImage() // v1 is the active holder

	rig.net.SetFaultInjector(func(from, to string, m *wire.Message) error {
		if m.Type == wire.TInvalidate && to == "v1" {
			return fmt.Errorf("injected: %s unreachable", to)
		}
		return nil
	})
	if err := cm2.PullImage(); err != nil {
		t.Fatalf("pull must proceed after the dead holder is evicted: %v", err)
	}
	var evicted int64
	var lost []string
	for _, dm := range rig.dms() {
		evicted += dm.ViewsEvicted()
		lost = append(lost, dm.LostViews()...)
	}
	if evicted != 1 {
		t.Fatalf("ViewsEvicted = %d, want 1", evicted)
	}
	if len(lost) != 1 || lost[0] != "v1" {
		t.Fatalf("lost views = %v, want [v1]", lost)
	}

	// Revive-on-contact: once the dead view's manager speaks again, the
	// tombstone clears and it rejoins the conflict set.
	rig.net.SetFaultInjector(nil)
	if err := cm1.PullImage(); err != nil {
		t.Fatalf("revived view must be able to pull: %v", err)
	}
	for _, dm := range rig.dms() {
		if n := len(dm.LostViews()); n != 0 {
			t.Fatalf("view should be revived on contact, still lost: %v", dm.LostViews())
		}
	}
}
