package cache_test

import (
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// kvView is a toy application component/view: a string map guarded by a
// mutex, with the extract/merge codec over it. It plays both the original
// component and the views in these tests.
type kvView struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV(init map[string]string) *kvView {
	d := map[string]string{}
	for k, v := range init {
		d[k] = v
	}
	return &kvView{data: d}
}

func (v *kvView) Set(k, val string) {
	v.mu.Lock()
	v.data[k] = val
	v.mu.Unlock()
}

func (v *kvView) Get(k string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.data[k]
}

func (v *kvView) Delete(k string) {
	v.mu.Lock()
	delete(v.data, k)
	v.mu.Unlock()
}

func (v *kvView) Extract(props property.Set) (*image.Image, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	img := image.New(props.Clone())
	for k, val := range v.data {
		img.Put(image.Entry{Key: k, Value: []byte(val)})
	}
	return img, nil
}

func (v *kvView) Merge(img *image.Image, props property.Set) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(v.data, k)
			continue
		}
		v.data[k] = string(e.Value)
	}
	return nil
}

// rig bundles a complete single-component deployment for tests. With
// FLECC_TEST_SHARDS=N (N > 1) in the environment the same suite runs
// against a sharded directory service instead: the views still dial "dm"
// with an unchanged configuration, but that name is now the shard router
// and N shard managers named dm!s0..dm!s{N-1} hold the state between
// them. Tests reach the manager serving a view through dmFor.
type rig struct {
	clock *vclock.Sim
	net   *transport.Inproc
	stats *metrics.MessageStats
	prim  *kvView
	dm    *directory.Manager // single-DM mode
	svc   *shard.Service     // sharded mode (FLECC_TEST_SHARDS > 1)
}

// testShards reports the FLECC_TEST_SHARDS override; 0 or 1 means the
// plain single-DM rig.
func testShards() int {
	n, _ := strconv.Atoi(os.Getenv("FLECC_TEST_SHARDS"))
	return n
}

// collapseShards rewrites shard-internal traffic so the suite's exact
// message-count assertions hold verbatim in sharded mode: the
// router→shard leg of each routed request is dropped (it mirrors the
// client→router leg one-to-one), and shard-originated traffic to the
// views (invalidates, updates) is attributed to the logical directory
// name.
type collapseShards struct{ inner transport.Observer }

func (c collapseShards) OnMessage(from, to string, m *wire.Message) {
	if base, _, ok := shard.IsNode(from); ok {
		if base == to {
			return
		}
		from = base
	}
	if base, _, ok := shard.IsNode(to); ok {
		if base == from {
			return
		}
		to = base
	}
	c.inner.OnMessage(from, to, m)
}

func newRig(t *testing.T, opts directory.Options) *rig {
	t.Helper()
	r := &rig{
		clock: vclock.NewSim(),
		net:   transport.NewInproc(),
		stats: metrics.NewMessageStats(false),
		prim:  newKV(map[string]string{"seed": "s0"}),
	}
	// With FLECC_TEST_INVARIANTS=1 every rig-based test additionally
	// asserts the directory's invariant self-checks once it finishes
	// (every manager in the deployment, including all shards).
	if os.Getenv("FLECC_TEST_INVARIANTS") == "1" {
		t.Cleanup(func() {
			if t.Failed() {
				return
			}
			for _, dm := range r.dms() {
				if err := dm.CheckInvariants(); err != nil {
					t.Errorf("FLECC_TEST_INVARIANTS: %s: post-test invariant check failed: %v", dm.Name(), err)
				}
			}
		})
	}
	if n := testShards(); n > 1 {
		r.net.SetObserver(collapseShards{r.stats})
		svc, err := shard.NewService(shard.ServiceConfig{
			Name:  "dm",
			Net:   r.net,
			Clock: r.clock,
			// The shards share the one primary; the kvView codec is
			// mutex-guarded, so that is safe.
			Shards:  n,
			Primary: func(int) image.Codec { return r.prim },
			Opts:    opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		r.svc = svc
		return r
	}
	r.net.SetObserver(r.stats)
	dm, err := directory.New("dm", r.prim, r.clock, r.net, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.dm = dm
	return r
}

// dmFor returns the directory manager serving the named view: the one
// manager in the default rig, the owning shard in sharded mode.
func (r *rig) dmFor(view string) *directory.Manager {
	if r.svc == nil {
		return r.dm
	}
	owner := r.svc.Router().Assignment()[view]
	if _, i, ok := shard.IsNode(owner); ok {
		return r.svc.Shard(i)
	}
	panic("rig: view " + view + " is not assigned to any shard")
}

// dms returns every directory manager in the rig, for operations that
// must reach all shards (e.g. seeding the static conflict matrix before
// views have registered anywhere).
func (r *rig) dms() []*directory.Manager {
	if r.svc == nil {
		return []*directory.Manager{r.dm}
	}
	out := make([]*directory.Manager, r.svc.NumShards())
	for i := range out {
		out[i] = r.svc.Shard(i)
	}
	return out
}

// allViews returns the union of registered views across the deployment.
func (r *rig) allViews() []string {
	var out []string
	for _, dm := range r.dms() {
		out = append(out, dm.Views()...)
	}
	return out
}

// activeViews returns the union of active views across the deployment.
func (r *rig) activeViews() []string {
	var out []string
	for _, dm := range r.dms() {
		out = append(out, dm.ActiveViews()...)
	}
	return out
}

func (r *rig) view(t *testing.T, name, props string, mode wire.Mode, view *kvView, triggers ...string) *cache.Manager {
	t.Helper()
	cfg := cache.Config{
		Name:      name,
		Directory: "dm",
		Net:       r.net,
		View:      view,
		Props:     property.MustSet(props),
		Mode:      mode,
		Clock:     r.clock,
	}
	if len(triggers) > 0 {
		cfg.PushTrigger = triggers[0]
	}
	if len(triggers) > 1 {
		cfg.PullTrigger = triggers[1]
	}
	if len(triggers) > 2 {
		cfg.ValidityTrigger = triggers[2]
	}
	cm, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestInitDeliversPrimaryData(t *testing.T) {
	r := newRig(t, directory.Options{})
	v := newKV(nil)
	cm := r.view(t, "v1", "P={x,y}", wire.Weak, v)
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	if v.Get("seed") != "s0" {
		t.Fatal("init should merge the primary data into the view")
	}
	if !cm.Valid() {
		t.Fatal("view should be valid after init")
	}
}

func TestUseBeforeInitFails(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	if err := cm.StartUse(); !errors.Is(err, cache.ErrNotInitialized) {
		t.Fatalf("err = %v", err)
	}
	if err := cm.PullImage(); !errors.Is(err, cache.ErrNotInitialized) {
		t.Fatalf("err = %v", err)
	}
	if err := cm.PushImage(); !errors.Is(err, cache.ErrNotInitialized) {
		t.Fatalf("err = %v", err)
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	// v1 updates and pushes.
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("ticket", "sold-to-alice")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.prim.Get("ticket") != "sold-to-alice" {
		t.Fatal("push should reach the primary")
	}
	// v2 pulls and observes.
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("ticket") != "sold-to-alice" {
		t.Fatal("pull should deliver the update")
	}
	if cm2.Seen() != r.dmFor("v2").CurrentVersion() {
		t.Fatal("seen version should advance")
	}
}

func TestCleanPushSendsNothing(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cm.InitImage()
	before := r.stats.Total()
	if err := cm.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.stats.Total() != before {
		t.Fatal("clean push should not send messages")
	}
}

// TestStrongModeInvalidation reproduces the paper's Figure 2 walkthrough:
// two strong views; when V2 pulls, V1 is invalidated and its pending
// updates are folded into the primary before V2 is served.
func TestStrongModeInvalidation(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x,y}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "P={x,z}", wire.Strong, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	// V1 works on the data but does NOT push.
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("x", "v1-wrote-this")
	cm1.EndUse()

	// V2's init + pull invalidates V1 (they conflict through x).
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("V1 should be invalidated")
	}
	if cm1.Invalidations() != 1 {
		t.Fatalf("invalidations = %d", cm1.Invalidations())
	}
	// V1's pending update must have reached V2 through the primary.
	if v2.Get("x") != "v1-wrote-this" {
		t.Fatalf("v2 sees x=%q", v2.Get("x"))
	}
	// V1 cannot use its image until it pulls again.
	if err := cm1.StartUse(); !errors.Is(err, cache.ErrInvalidated) {
		t.Fatalf("err = %v", err)
	}
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	cm1.EndUse()
	// And V1's pull in turn invalidated V2: only one active view.
	if cm2.Valid() {
		t.Fatal("V2 should now be invalidated (one active view in strong mode)")
	}
	active := r.activeViews()
	if len(active) != 1 || active[0] != "v1" {
		t.Fatalf("active views = %v", active)
	}
}

func TestStrongInvalidationSkipsNonConflicting(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "Flights={100..109}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "Flights={200..209}", wire.Strong, v2)
	cm1.InitImage()
	cm2.InitImage()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if !cm1.Valid() {
		t.Fatal("disjoint views must not invalidate each other")
	}
	if len(r.activeViews()) != 2 {
		t.Fatalf("both views should stay active: %v", r.activeViews())
	}
}

func TestWeakViewsCoexist(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if !cm1.Valid() || !cm2.Valid() {
		t.Fatal("weak conflicting views must both stay valid")
	}
}

func TestWeakPullIsStaleWithoutValidity(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	// v1 modifies locally, does not push.
	cm1.StartUse()
	v1.Set("x", "unpushed")
	cm1.EndUse()
	// v2 pulls; with no validity trigger the DM serves the primary as-is.
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("x") == "unpushed" {
		t.Fatal("relaxed weak pull should not see peers' unpushed data")
	}
	if cm1.PendingOps() != 1 {
		t.Fatalf("v1 pending ops = %d", cm1.PendingOps())
	}
}

func TestWeakPullGathersWithValidityTrigger(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	// validity "false": the primary data is never good enough — always
	// gather from conflicting active views (freshest possible data).
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "", "false")
	cm1.InitImage()
	cm2.InitImage()
	cm1.StartUse()
	v1.Set("x", "unpushed")
	cm1.EndUse()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("x") != "unpushed" {
		t.Fatal("validity-triggered gather should fetch peers' pending data")
	}
	if cm1.PendingOps() != 0 {
		t.Fatal("fetch should clear v1's pending ops")
	}
	if !cm1.Valid() {
		t.Fatal("fetch must not invalidate the peer")
	}
}

func TestValidityStalenessVariable(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	// Accept primary data while fewer than 2 committed remote ops are
	// unseen.
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "", "staleness < 2")
	cm1.InitImage()
	cm2.InitImage()

	work := func() {
		cm1.StartUse()
		v1.Set("x", "w")
		cm1.EndUse()
		if err := cm1.PushImage(); err != nil {
			t.Fatal(err)
		}
	}
	work()
	// staleness(v2)=1 < 2: no gather — but pull still serves committed data.
	msgsBefore := r.stats.Total()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if got := r.stats.Total() - msgsBefore; got != 2 {
		t.Fatalf("pull with satisfied validity should cost 2 messages, got %d", got)
	}
}

func TestValidityVersionAndTimeVariables(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	// Validity: the primary is good enough only before version 2 or
	// before t=1000 — afterwards, gather.
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "", "version < 2 && t < 1000")
	cm1.InitImage()
	cm2.InitImage()

	mutate := func() {
		cm1.StartUse()
		v1.Set("x", "dirty")
		cm1.EndUse()
	}
	mutate()
	// version=0, t=0: good enough — no gathering (2 messages).
	r.stats.Reset()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if got := r.stats.Total(); got != 2 {
		t.Fatalf("early pull = %d messages, want 2", got)
	}
	// Advance time past the trigger bound: now gathering kicks in.
	r.clock.Advance(2000)
	r.stats.Reset()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if got := r.stats.Total(); got != 4 {
		t.Fatalf("late pull = %d messages, want 4 (pull + fetch)", got)
	}
	if v2.Get("x") != "dirty" {
		t.Fatal("gathered data should arrive")
	}
}

func TestQualityAccounting(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()

	for i := 0; i < 3; i++ {
		cm1.StartUse()
		v1.Set("x", string(rune('a'+i)))
		cm1.EndUse()
		if err := cm1.PushImage(); err != nil {
			t.Fatal(err)
		}
	}
	// v2 hasn't pulled since init: 3 committed remote ops unseen.
	if got := r.dmFor("v2").UnseenCommitted("v2"); got != 3 {
		t.Fatalf("unseen = %d, want 3", got)
	}
	// v1 wrote them itself: nothing unseen.
	if got := r.dmFor("v1").UnseenCommitted("v1"); got != 0 {
		t.Fatalf("unseen(v1) = %d, want 0", got)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if got := r.dmFor("v2").UnseenCommitted("v2"); got != 0 {
		t.Fatalf("unseen after pull = %d, want 0", got)
	}
}

func TestQualityPropsFiltered(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v3 := newKV(nil)
	cm1 := r.view(t, "v1", "Flights={100}", wire.Weak, v1)
	cm3 := r.view(t, "v3", "Flights={200}", wire.Weak, v3)
	cm1.InitImage()
	cm3.InitImage()
	cm1.StartUse()
	v1.Set("f100", "updated")
	cm1.EndUse()
	cm1.PushImage()
	// v3's data is disjoint; the update must not count against it.
	if got := r.dmFor("v3").UnseenCommitted("v3"); got != 0 {
		t.Fatalf("unseen(v3) = %d, want 0", got)
	}
}

func TestPullPreservesLocalDirtyEntries(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm1.InitImage()
	// Local unpushed change.
	cm1.StartUse()
	v1.Set("seed", "locally-changed")
	cm1.EndUse()
	// Pull returns the stale primary value for "seed"; it must not clobber
	// the pending local change.
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v1.Get("seed") != "locally-changed" {
		t.Fatalf("pull clobbered local change: %q", v1.Get("seed"))
	}
	// The change still reaches the primary on push.
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.prim.Get("seed") != "locally-changed" {
		t.Fatal("pending change lost")
	}
}

func TestPullAppliesRemoteChangeToCleanKey(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	// v2 is dirty on key "mine" but clean on "seed".
	cm2.StartUse()
	v2.Set("mine", "local")
	cm2.EndUse()
	// v1 updates "seed" and pushes.
	cm1.StartUse()
	v1.Set("seed", "remote-update")
	cm1.EndUse()
	cm1.PushImage()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("seed") != "remote-update" {
		t.Fatal("clean key should take the remote update")
	}
	if v2.Get("mine") != "local" {
		t.Fatal("dirty key should be preserved")
	}
}

func TestModeSwitchAtRuntime(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm1.PullImage()
	cm2.PullImage()
	if !cm1.Valid() || !cm2.Valid() {
		t.Fatal("weak views should coexist")
	}
	// v2 becomes strong (viewer -> buyer); its next pull invalidates v1.
	if err := cm2.SetMode(wire.Strong); err != nil {
		t.Fatal(err)
	}
	if cm2.Mode() != wire.Strong || r.dmFor("v2").Mode("v2") != wire.Strong {
		t.Fatal("mode switch not recorded")
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("strong pull should invalidate the weak sharer")
	}
	// Back to weak: coexistence restored.
	if err := cm2.SetMode(wire.Weak); err != nil {
		t.Fatal(err)
	}
	cm1.PullImage()
	cm2.PullImage()
	if !cm1.Valid() || !cm2.Valid() {
		t.Fatal("after returning to weak both views should be valid")
	}
}

func TestWeakPullInvalidatesStrongHolder(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm1.PullImage() // v1 is the strong active holder
	cm2.InitImage()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("weak pull must displace a conflicting strong holder")
	}
}

func TestSetPropsChangesConflicts(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "Flights={100}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "Flights={200}", wire.Strong, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm2.PullImage()
	if !cm1.Valid() {
		t.Fatal("disjoint: no invalidation expected")
	}
	// v2 retargets to flight 100 at run time.
	if err := cm2.SetProps(property.MustSet("Flights={100}")); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("after SetProps the views conflict; v1 should be invalidated")
	}
}

func TestKillImagePushesPending(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm1.InitImage()
	cm1.StartUse()
	v1.Set("x", "final-words")
	cm1.EndUse()
	if err := cm1.KillImage(); err != nil {
		t.Fatal(err)
	}
	if r.prim.Get("x") != "final-words" {
		t.Fatal("kill should push pending changes")
	}
	if got := r.allViews(); len(got) != 0 {
		t.Fatalf("views = %v", got)
	}
}

func TestDeletionsPropagate(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm1.StartUse()
	v1.Delete("seed")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.prim.Get("seed") != "" {
		t.Fatal("deletion should reach primary")
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("seed") != "" {
		t.Fatal("deletion should reach the other view")
	}
}

func TestStaticMatrixOverridesDynamic(t *testing.T) {
	r := newRig(t, directory.Options{})
	// Force no-conflict statically even though properties overlap.
	for _, dm := range r.dms() {
		dm.Registry().SetStatic("v1", "v2", 0)
	}
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Strong, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm2.PullImage()
	if !cm1.Valid() {
		t.Fatal("static 0 should suppress invalidation")
	}
}

func TestUnregisteredViewRejected(t *testing.T) {
	r := newRig(t, directory.Options{})
	ep, err := r.net.Attach("rogue", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []wire.Type{wire.TInit, wire.TPull, wire.TPush, wire.TSetMode} {
		if _, err := ep.Call("dm", &wire.Message{Type: typ}); err == nil {
			t.Errorf("%v from unregistered view should fail", typ)
		}
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	r := newRig(t, directory.Options{})
	r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cfg := cache.Config{
		Name: "v1b", Directory: "dm", Net: r.net, View: newKV(nil),
		Props: property.MustSet("P={x}"), Clock: r.clock,
	}
	// Same transport name is caught by the network; same view name at the
	// DM is caught by the registry. Exercise the registry path by
	// registering a different node name claiming view v1.
	ep, err := r.net.Attach("v1-imposter", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1"}); err == nil {
		t.Fatal("duplicate view registration should fail")
	}
	_ = cfg
}

func TestBadTriggerRejectedAtRegistration(t *testing.T) {
	r := newRig(t, directory.Options{})
	_, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: r.net, View: newKV(nil),
		Props: property.MustSet("P={x}"), Clock: r.clock,
		PushTrigger: "t >", // syntax error
	})
	if err == nil {
		t.Fatal("bad push trigger should fail at construction")
	}
	_, err = cache.New(cache.Config{
		Name: "v2", Directory: "dm", Net: r.net, View: newKV(nil),
		Props: property.MustSet("P={x}"), Clock: r.clock,
		ValidityTrigger: "t +", // DM-side compile failure
	})
	if err == nil {
		t.Fatal("bad validity trigger should fail registration")
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, directory.Options{})
	bad := []cache.Config{
		{Directory: "dm", Net: r.net, View: newKV(nil), Clock: r.clock},
		{Name: "x", Net: r.net, View: newKV(nil), Clock: r.clock},
		{Name: "x", Directory: "dm", View: newKV(nil), Clock: r.clock},
		{Name: "x", Directory: "dm", Net: r.net, Clock: r.clock},
		{Name: "x", Directory: "dm", Net: r.net, View: newKV(nil)},
	}
	for i, cfg := range bad {
		if _, err := cache.New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestPushTriggerFires(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1, "pending > 0 && t > 1500")
	cm1.InitImage()
	cm1.StartUse()
	v1.Set("x", "dirty")
	cm1.EndUse()

	// Before t=1500: no push.
	pushed, pulled, err := cm1.EvaluateTriggers()
	if err != nil || pushed || pulled {
		t.Fatalf("early evaluation: pushed=%v pulled=%v err=%v", pushed, pulled, err)
	}
	r.clock.Advance(2000)
	pushed, _, err = cm1.EvaluateTriggers()
	if err != nil || !pushed {
		t.Fatalf("pushed=%v err=%v", pushed, err)
	}
	if r.prim.Get("x") != "dirty" {
		t.Fatal("trigger push should reach primary")
	}
	// pending reset: the same trigger no longer fires.
	pushed, _, _ = cm1.EvaluateTriggers()
	if pushed {
		t.Fatal("clean view should not push again")
	}
}

func TestPullTriggerEvery(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "every(500)")
	cm1.InitImage()
	cm2.InitImage()
	cm1.StartUse()
	v1.Set("x", "fresh")
	cm1.EndUse()
	cm1.PushImage()

	if !cm2.ScheduleTriggers(100) {
		t.Fatal("scheduler should start")
	}
	r.clock.RunUntil(1000)
	if v2.Get("x") != "fresh" {
		t.Fatal("periodic pull trigger should have refreshed v2")
	}
	cm2.StopTriggers()
	// No further events should do work after stop + drain.
	r.clock.RunUntil(2000)
}

func TestScheduleTriggersRequiresSimAndTriggers(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil)) // no triggers
	if cm.ScheduleTriggers(100) {
		t.Fatal("no triggers: scheduler should refuse")
	}
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, newKV(nil), "pending > 0")
	if cm2.ScheduleTriggers(0) {
		t.Fatal("non-positive period should refuse")
	}
	if !cm2.ScheduleTriggers(50) {
		t.Fatal("valid scheduler should start")
	}
	if cm2.ScheduleTriggers(50) {
		t.Fatal("double-start should refuse")
	}
}

func TestMessageCountsPerOperation(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	cm1.PullImage()

	r.stats.Reset()
	// Weak relaxed pull: request + reply.
	cm2.PullImage()
	if got := r.stats.Total(); got != 2 {
		t.Fatalf("weak pull = %d messages, want 2", got)
	}

	r.stats.Reset()
	// Strong pull with one conflicting active view: 2 (pull) + 2 (invalidate).
	cm2.SetMode(wire.Strong)
	r.stats.Reset()
	cm2.PullImage()
	if got := r.stats.Total(); got != 4 {
		t.Fatalf("strong pull with 1 sharer = %d messages, want 4", got)
	}
}

func TestGatherAllOption(t *testing.T) {
	r := newRig(t, directory.Options{GatherAll: true, AlwaysGather: true})
	views := make([]*kvView, 4)
	cms := make([]*cache.Manager, 4)
	names := []string{"a", "b", "c", "d"}
	for i := range views {
		views[i] = newKV(nil)
		// All disjoint properties — Flecc would never gather; multicast
		// fetches from everyone anyway.
		cms[i] = r.view(t, names[i], "F={"+string(rune('0'+i))+"}", wire.Weak, views[i])
		cms[i].InitImage()
	}
	r.stats.Reset()
	cms[0].PullImage()
	// 2 (pull) + 2*3 (fetch from every other active view).
	if got := r.stats.Total(); got != 8 {
		t.Fatalf("multicast pull = %d messages, want 8", got)
	}
}

func TestNeverGatherOption(t *testing.T) {
	r := newRig(t, directory.Options{NeverGather: true})
	v1 := newKV(nil)
	v2 := newKV(nil)
	r.view(t, "v1", "P={x}", wire.Weak, v1).InitImage()
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "", "false")
	cm2.InitImage()
	r.stats.Reset()
	cm2.PullImage()
	if got := r.stats.Total(); got != 2 {
		t.Fatalf("NeverGather pull = %d messages, want 2", got)
	}
}

func TestPushPropagationDeliversUpdates(t *testing.T) {
	r := newRig(t, directory.Options{PropagateOnPush: true})
	v1 := newKV(nil)
	v2 := newKV(nil)
	v3 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm3 := r.view(t, "v3", "Q={y}", wire.Weak, v3) // disjoint
	cm1.InitImage()
	cm2.InitImage()
	cm3.InitImage()

	cm1.StartUse()
	v1.Set("k", "pushed-through")
	cm1.EndUse()
	r.stats.Reset()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	// The conflicting view received the update without pulling...
	if v2.Get("k") != "pushed-through" {
		t.Fatal("propagation should reach conflicting views")
	}
	if cm2.Seen() != r.dmFor("v2").CurrentVersion() {
		t.Fatal("propagated view's seen should advance")
	}
	// ...the disjoint view was not contacted (push 2 + update 2 = 4).
	if got := r.stats.Total(); got != 4 {
		t.Fatalf("messages = %d, want 4 (no update to disjoint view)", got)
	}
	if v3.Get("k") != "" {
		t.Fatal("disjoint view must not receive the update")
	}
	// Quality: the recipient is fresh immediately.
	if got := r.dmFor("v2").UnseenCommitted("v2"); got != 0 {
		t.Fatalf("unseen = %d", got)
	}
}

func TestRejectedPushConverges(t *testing.T) {
	// The primary's resolver rejects v2's value; v2 must converge on the
	// winning value rather than silently keeping its own.
	r := newRig(t, directory.Options{
		Resolver: func(c image.Conflict) (image.Entry, error) {
			return c.Ours, nil // primary always wins
		},
	})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	// Both edit the same key from the same snapshot.
	cm1.StartUse()
	v1.Set("k", "winner")
	cm1.EndUse()
	cm2.StartUse()
	v2.Set("k", "loser")
	cm2.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.prim.Get("k") != "winner" {
		t.Fatalf("primary = %q", r.prim.Get("k"))
	}
	if v2.Get("k") != "winner" {
		t.Fatalf("rejected pusher should converge, v2 = %q", v2.Get("k"))
	}
	// And a subsequent push from v2 is clean (no spurious re-push of the
	// rejected value).
	before := r.stats.Total()
	if err := cm2.PushImage(); err != nil {
		t.Fatal(err)
	}
	if r.stats.Total() != before {
		t.Fatal("converged view should have nothing to push")
	}
}

func TestConcurrentUseAndInvalidate(t *testing.T) {
	// A strong peer's pull must block until the open use window closes.
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Strong, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Strong, v2)
	cm1.InitImage()
	cm2.InitImage()
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("x", "mid-flight")

	done := make(chan error, 1)
	go func() { done <- cm2.PullImage() }()

	// Give the puller a moment to block on the invalidation.
	// (The invalidation handler waits on the cond for EndUse.)
	cm1.EndUse()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v2.Get("x") != "mid-flight" {
		t.Fatal("v2 should see the completed write")
	}
}
