package cache_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func TestEndUseWithoutStartIsNoop(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cm.InitImage()
	cm.EndUse() // must not panic or count an op
	if cm.PendingOps() != 0 {
		t.Fatalf("pending = %d", cm.PendingOps())
	}
}

func TestStartUseBlocksSecondWindow(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cm.InitImage()
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	go func() {
		cm.StartUse()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second StartUse should block while the window is open")
	case <-time.After(20 * time.Millisecond):
	}
	cm.EndUse()
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatal("second StartUse should proceed after EndUse")
	}
	cm.EndUse()
}

func TestUseAfterKillFails(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cm.InitImage()
	if err := cm.KillImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm.StartUse(); err == nil {
		t.Fatal("StartUse after kill should fail")
	}
}

func TestSeenDoesNotAdvanceOnPush(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm1.InitImage()
	cm2.InitImage()
	// v2 commits something v1 hasn't seen.
	cm2.StartUse()
	v2.Set("other", "update")
	cm2.EndUse()
	cm2.PushImage()
	// v1 pushes its own change; its seen must stay below v2's commit so
	// the next pull still delivers it.
	cm1.StartUse()
	v1.Set("mine", "x")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Seen() >= r.dmFor("v1").CurrentVersion() {
		t.Fatalf("seen = %d advanced past unobserved commits (current %d)",
			cm1.Seen(), r.dmFor("v1").CurrentVersion())
	}
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v1.Get("other") != "update" {
		t.Fatal("pull after push should still deliver the missed commit")
	}
}

func TestTriggerBuiltinVariables(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	// Push when at least 2 ops are pending and 100ms passed since the
	// last push.
	cm := r.view(t, "v1", "P={x}", wire.Weak, v1, "pending >= 2 && sincePush >= 100")
	cm.InitImage()
	work := func() {
		cm.StartUse()
		v1.Set("k", "v")
		cm.EndUse()
	}
	work()
	r.clock.Advance(200)
	pushed, _, err := cm.EvaluateTriggers()
	if err != nil || pushed {
		t.Fatalf("1 pending: pushed=%v err=%v", pushed, err)
	}
	work()
	pushed, _, err = cm.EvaluateTriggers()
	if err != nil || !pushed {
		t.Fatalf("2 pending + time: pushed=%v err=%v", pushed, err)
	}
	// sincePush reset: immediate re-fire is suppressed even with pending.
	work()
	work()
	pushed, _, _ = cm.EvaluateTriggers()
	if pushed {
		t.Fatal("sincePush should gate an immediate re-push")
	}
}

func TestTriggerEvaluationSkippedWhileInUse(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm := r.view(t, "v1", "P={x}", wire.Weak, v1, "true")
	cm.InitImage()
	cm.StartUse()
	pushed, pulled, err := cm.EvaluateTriggers()
	if err != nil || pushed || pulled {
		t.Fatalf("in-use evaluation must be skipped: %v %v %v", pushed, pulled, err)
	}
	cm.EndUse()
}

func TestTriggerEvalErrorSurfaces(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil), "bogusvar > 0")
	cm.InitImage()
	if _, _, err := cm.EvaluateTriggers(); err == nil {
		t.Fatal("undefined trigger variable should surface")
	}
}

func TestCustomVarsEnv(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: r.net, View: v1,
		Props: property.MustSet("P={x}"), Clock: r.clock,
		PushTrigger: "load > 5",
		Vars:        trigger.MapEnv{"load": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	cm.InitImage()
	cm.StartUse()
	v1.Set("k", "v")
	cm.EndUse()
	pushed, _, err := cm.EvaluateTriggers()
	if err != nil || !pushed {
		t.Fatalf("custom var trigger: pushed=%v err=%v", pushed, err)
	}
}

func TestBuiltinsShadowCustomVars(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: r.net, View: newKV(nil),
		Props: property.MustSet("P={x}"), Clock: r.clock,
		PushTrigger: "pending > 100",
		// The view tries to export a conflicting "pending": the builtin
		// must win (it is protocol state, not app state).
		Vars: trigger.MapEnv{"pending": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	cm.InitImage()
	pushed, _, err := cm.EvaluateTriggers()
	if err != nil || pushed {
		t.Fatalf("builtin pending (0) should shadow the custom value: %v %v", pushed, err)
	}
}

func TestStartTickerRealTime(t *testing.T) {
	r := newRig(t, directory.Options{})
	v1 := newKV(nil)
	v2 := newKV(nil)
	cm1 := r.view(t, "v1", "P={x}", wire.Weak, v1)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2, "", "pending == 0")
	cm1.InitImage()
	cm2.InitImage()
	cm1.StartUse()
	v1.Set("k", "fresh")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}

	stop := cm2.StartTicker(2*time.Millisecond, func(err error) { t.Error(err) })
	if stop == nil {
		t.Fatal("ticker should start")
	}
	deadline := time.Now().Add(2 * time.Second)
	for v2.Get("k") != "fresh" {
		if time.Now().After(deadline) {
			t.Fatal("ticker never pulled the update")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestStartTickerRefusals(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil)) // no triggers
	if cm.StartTicker(time.Millisecond, nil) != nil {
		t.Fatal("no triggers: ticker should refuse")
	}
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, newKV(nil), "pending > 0")
	if cm2.StartTicker(0, nil) != nil {
		t.Fatal("non-positive period should refuse")
	}
}

// brokenMerger wraps a kvView but fails Merge on demand.
type brokenMerger struct {
	*kvView
	fail bool
}

func (b *brokenMerger) Merge(img *image.Image, props property.Set) error {
	if b.fail {
		return errors.New("application merge failed")
	}
	return b.kvView.Merge(img, props)
}

func TestMergeErrorsSurface(t *testing.T) {
	r := newRig(t, directory.Options{})
	broken := &brokenMerger{kvView: newKV(nil)}
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: r.net, View: broken,
		Props: property.MustSet("P={x}"), Clock: r.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	broken.fail = true
	if err := cm.InitImage(); err == nil {
		t.Fatal("init should surface the application merge failure")
	}
	broken.fail = false
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	// Pull path: put fresh data at the primary, then break the merger.
	v2 := newKV(nil)
	cm2 := r.view(t, "v2", "P={x}", wire.Weak, v2)
	cm2.InitImage()
	cm2.StartUse()
	v2.Set("k", "update")
	cm2.EndUse()
	if err := cm2.PushImage(); err != nil {
		t.Fatal(err)
	}
	broken.fail = true
	if err := cm.PullImage(); err == nil {
		t.Fatal("pull should surface the application merge failure")
	}
	// The failed pull must not have advanced seen (no silent data loss).
	broken.fail = false
	if err := cm.PullImage(); err != nil {
		t.Fatal(err)
	}
	if broken.Get("k") != "update" {
		t.Fatal("retried pull should deliver the update")
	}
}

func TestAcquireAgainstPlainDM(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	if err := cm.Acquire(); err == nil {
		t.Fatal("plain Flecc DM should reject token messages")
	}
	if err := cm.Release(); err == nil {
		t.Fatal("plain Flecc DM should reject token messages")
	}
}

func TestDoubleKill(t *testing.T) {
	r := newRig(t, directory.Options{})
	cm := r.view(t, "v1", "P={x}", wire.Weak, newKV(nil))
	cm.InitImage()
	if err := cm.KillImage(); err != nil {
		t.Fatal(err)
	}
	// Second kill fails at the transport (endpoint closed) but must not
	// panic.
	if err := cm.KillImage(); err == nil {
		t.Fatal("second kill should report the closed endpoint")
	}
}

func TestInvalidateBeforeInit(t *testing.T) {
	r := newRig(t, directory.Options{})
	// A registered-but-uninitialized view being invalidated must reply
	// cleanly with an empty image.
	v1 := newKV(nil)
	v2 := newKV(nil)
	_ = r.view(t, "v1", "P={x}", wire.Weak, v1)    // never initialized
	r.dmFor("v1").Registry().SetActive("v1", true) // simulate a stale active mark
	cm2 := r.view(t, "v2", "P={x}", wire.Strong, v2)
	cm2.InitImage()
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPushersManyViews(t *testing.T) {
	r := newRig(t, directory.Options{})
	const n = 6
	cms := make([]*cache.Manager, n)
	views := make([]*kvView, n)
	for i := 0; i < n; i++ {
		views[i] = newKV(nil)
		cms[i] = r.view(t, string(rune('a'+i)), "P={x}", wire.Weak, views[i])
		if err := cms[i].InitImage(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := cms[i].StartUse(); err != nil {
					errs <- err
					return
				}
				views[i].Set("k"+string(rune('a'+i)), "v")
				cms[i].EndUse()
				if err := cms[i].PushImage(); err != nil {
					errs <- err
					return
				}
				if err := cms[i].PullImage(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everyone's key made it to the primary.
	for i := 0; i < n; i++ {
		if r.prim.Get("k"+string(rune('a'+i))) != "v" {
			t.Fatalf("key %d missing at primary", i)
		}
	}
}

func TestErrNotInitializedSentinel(t *testing.T) {
	if !errors.Is(cache.ErrNotInitialized, cache.ErrNotInitialized) {
		t.Fatal("sentinel identity")
	}
	_ = vclock.Time(0) // keep import for the helper package shape
}
