package cache_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// typeCounter counts wire messages by type; driven single-goroutine over
// Inproc, so no locking is needed.
type typeCounter struct{ counts map[wire.Type]int }

func (c *typeCounter) OnMessage(from, to string, m *wire.Message) {
	if c.counts == nil {
		c.counts = map[wire.Type]int{}
	}
	c.counts[m.Type]++
}

// Adjacent asynchronous pushes must coalesce: N writes each followed by a
// PushImageAsync join one buffered round, and flushing costs exactly one
// TPush on the wire, carrying all N keys.
func TestPushAsyncCoalescesIntoOneRound(t *testing.T) {
	clock := vclock.NewSim()
	inproc := transport.NewInproc()
	obs := &typeCounter{}
	inproc.SetObserver(obs)

	prim := newKV(nil)
	dm, err := directory.New("db", prim, clock, inproc, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	v := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "db", Net: inproc, View: v,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		ManualFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}

	const n = 6
	var fut *cache.PushFuture
	for i := 0; i < n; i++ {
		if err := cm.StartUse(); err != nil {
			t.Fatal(err)
		}
		v.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("val%d", i))
		cm.EndUse()
		f := cm.PushImageAsync()
		if fut != nil && f != fut {
			t.Fatalf("write %d started a new round; adjacent pushes must coalesce", i)
		}
		fut = f
	}
	if !cm.PushPending() {
		t.Fatal("a buffered round should be pending before Flush")
	}
	if got := cm.PendingOps(); got != n {
		t.Fatalf("PendingOps = %d before flush, want %d (buffered ops still count)", got, n)
	}

	before := obs.counts[wire.TPush]
	if err := cm.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := obs.counts[wire.TPush] - before; got != 1 {
		t.Fatalf("%d writes cost %d TPush rounds, want exactly 1 (coalescing broken)", n, got)
	}
	if cm.PushPending() {
		t.Fatal("no round should remain after Flush")
	}
	if got := cm.PendingOps(); got != 0 {
		t.Fatalf("PendingOps = %d after flush, want 0", got)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if got, want := prim.Get(k), fmt.Sprintf("val%d", i); got != want {
			t.Fatalf("primary %s = %q, want %q", k, got, want)
		}
	}
	// An async push on a clean view resolves without touching the wire.
	before = obs.counts[wire.TPush]
	clean := cm.PushImageAsync()
	if err := cm.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := clean.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := obs.counts[wire.TPush] - before; got != 0 {
		t.Fatalf("clean-view async push cost %d TPush rounds, want 0", got)
	}
}

// A session death under an in-flight async push must resolve the future
// with the typed ErrSessionReset — not hang it, not lose the write: the
// delta stays pending locally and the next synchronous push (which runs
// the reconnect cycle) delivers it.
func TestPushAsyncSessionResetUnderFaults(t *testing.T) {
	clock := vclock.NewSim()
	faulty := transport.NewFaulty(transport.NewInproc(), 11)
	noSleep := func(time.Duration) {}

	prim := newKV(nil)
	dm, err := directory.New("db", prim, clock, faulty, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	v := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "db", Net: faulty, View: v,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		ManualFlush: true,
		Reconnect: &cache.ReconnectPolicy{
			Attempts: 4, Base: time.Microsecond, Max: time.Microsecond, Sleep: noSleep,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}

	// Round 1: the dispatch itself hits a dead wire.
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	v.Set("a", "first")
	cm.EndUse()
	fut := cm.PushImageAsync()
	faulty.DisconnectNext("v1", "db", 1)
	if err := cm.Flush(); !errors.Is(err, cache.ErrSessionReset) {
		t.Fatalf("Flush over dead wire: err = %v, want ErrSessionReset in chain", err)
	}
	if err := fut.Wait(); !errors.Is(err, cache.ErrSessionReset) {
		t.Fatalf("future: err = %v, want ErrSessionReset in chain", err)
	}
	// A second Wait reports the same resolution (futures are sticky).
	if err := fut.Wait(); !errors.Is(err, cache.ErrSessionReset) {
		t.Fatalf("re-Wait: err = %v, want the same ErrSessionReset", err)
	}

	// The write survived the reset: the synchronous push re-extracts it and
	// the reconnect machinery heals the endpoint.
	if got := cm.PendingOps(); got != 1 {
		t.Fatalf("PendingOps = %d after reset, want 1 (write must stay pending)", got)
	}
	if err := cm.PushImage(); err != nil {
		t.Fatalf("sync push after reset: %v", err)
	}
	if got := prim.Get("a"); got != "first" {
		t.Fatalf("primary a = %q after recovery, want %q", got, "first")
	}

	// Round 2: a reconnect cycle triggered by an unrelated synchronous call
	// must also fail a buffered round — the session it was issued on is
	// being replaced — instead of letting it straddle two connections.
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	v.Set("b", "second")
	cm.EndUse()
	fut = cm.PushImageAsync()
	faulty.DisconnectNext("v1", "db", 1)
	if err := cm.PullImage(); err != nil {
		t.Fatalf("pull through reconnect: %v", err)
	}
	if err := fut.Wait(); !errors.Is(err, cache.ErrSessionReset) {
		t.Fatalf("buffered round across reconnect: err = %v, want ErrSessionReset", err)
	}
	if err := cm.PushImage(); err != nil {
		t.Fatal(err)
	}
	if got := prim.Get("b"); got != "second" {
		t.Fatalf("primary b = %q after second recovery, want %q", got, "second")
	}
}

// Asynchronous pushes over real TCP with a bounded window: the pump's
// goroutine completion path, the window plumbing, and the drain rules all
// run under the race detector here.
func TestPushAsyncOverTCPWithWindow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewReal()
	snet := transport.NewServerNetwork(ln, 5*time.Second)
	prim := newKV(nil)
	dm, err := directory.New("dm", prim, clock, snet, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	dnet := transport.NewDialNetwork(ln.Addr().String(), 5*time.Second)
	v := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm", Net: dnet, View: v,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		Window: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}

	const writes = 40
	futs := make([]*cache.PushFuture, 0, writes)
	for i := 0; i < writes; i++ {
		if err := cm.StartUse(); err != nil {
			t.Fatal(err)
		}
		v.Set(fmt.Sprintf("k%d", i%8), fmt.Sprintf("val%d", i))
		cm.EndUse()
		futs = append(futs, cm.PushImageAsync())
	}
	if err := cm.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	// KillImage drains and delivers whatever is left; the primary must hold
	// the last value written to every key.
	if err := cm.KillImage(); err != nil {
		t.Fatal(err)
	}
	for i := writes - 8; i < writes; i++ {
		k := fmt.Sprintf("k%d", i%8)
		if got, want := prim.Get(k), fmt.Sprintf("val%d", i); got != want {
			t.Fatalf("primary %s = %q, want %q", k, got, want)
		}
	}
}

// versionWatch records, per key, the highest DM-stamped entry version seen
// in db-originated messages, and the first regression it observes. Driven
// single-goroutine over Inproc, so no locking is needed.
type versionWatch struct {
	high      map[string]vclock.Version
	violation string
}

func (w *versionWatch) OnMessage(from, to string, m *wire.Message) {
	if from != "db" || m.Img == nil {
		return
	}
	if w.high == nil {
		w.high = map[string]vclock.Version{}
	}
	for k, e := range m.Img.Entries {
		if e.Version < w.high[k] {
			if w.violation == "" {
				w.violation = fmt.Sprintf("key %s went v%d after v%d (db->%s %s)",
					k, e.Version, w.high[k], to, m.Type)
			}
			continue
		}
		w.high[k] = e.Version
	}
}

// TestSoakPipelinedWindow8 is the pipelined fault soak: three views with
// window-8 sessions over a seeded Faulty transport, async pushes and
// flushes interleaved with pulls, mode flips, and one-shot disconnects
// that force reconnect cycles. Invariants:
//
//   - no future hangs, and every failed round fails with ErrSessionReset
//     (or a reconnect-exhaustion error on sync paths);
//   - per-key versions in each view's synchronized snapshot never move
//     backwards;
//   - two runs at the same seed produce byte-identical outcomes.
//
// Driven from one goroutine over the synchronous Inproc transport with
// ManualFlush sessions, so the seeded fault stream is consumed in a fixed
// order and the run is reproducible.
func TestSoakPipelinedWindow8(t *testing.T) {
	run := func(seed int64) string {
		r := rand.New(rand.NewSource(seed))
		clock := vclock.NewSim()
		faulty := transport.NewFaulty(transport.NewInproc(), seed)
		noSleep := func(time.Duration) {}

		prim := newKV(nil)
		dm, err := directory.New("db", prim, clock, faulty, directory.Options{
			Retry: transport.RetryPolicy{Attempts: 3, Base: time.Microsecond, Sleep: noSleep},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dm.Close()

		names := []string{"v1", "v2", "v3"}
		cms := map[string]*cache.Manager{}
		views := map[string]*kvView{}
		for _, n := range names {
			v := newKV(nil)
			cm, err := cache.New(cache.Config{
				Name: n, Directory: "db", Net: faulty, View: v,
				Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
				Window: 8, ManualFlush: true,
				Reconnect: &cache.ReconnectPolicy{
					Attempts: 4, Base: time.Microsecond, Max: time.Microsecond, Sleep: noSleep,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cm.InitImage(); err != nil {
				t.Fatal(err)
			}
			cms[n], views[n] = cm, v
		}

		// Per-key version monotonicity, checked at the wire: every image
		// entry the DM sends (init/pull replies, push-ack winners, updates)
		// carries a DM-stamped version, and for a given key that version
		// must never move backwards across the whole run. (The CM's own
		// pushes are excluded: their entries deliberately carry the old
		// base version for conflict detection.)
		watch := &versionWatch{}
		faulty.SetObserver(watch)
		faulty.SetDropRate(faultDropRate())

		var resets, pushErrs, pullErrs, flushes int
		futs := map[string][]*cache.PushFuture{}
		const steps = 500
		for i := 0; i < steps; i++ {
			clock.Advance(1)
			n := names[r.Intn(len(names))]
			cm, v := cms[n], views[n]
			switch r.Intn(10) {
			case 0, 1, 2, 3: // write + async push
				v.Set(fmt.Sprintf("%s-k%d", n, r.Intn(12)), fmt.Sprintf("s%d", i))
				futs[n] = append(futs[n], cm.PushImageAsync())
			case 4, 5: // flush the session
				flushes++
				if err := cm.Flush(); err != nil {
					if !errors.Is(err, cache.ErrSessionReset) {
						t.Fatalf("step %d: flush %s: %v (want ErrSessionReset for failed rounds)", i, n, err)
					}
					resets++
				}
				for _, f := range futs[n] {
					select {
					case <-f.Done():
					default:
						t.Fatalf("step %d: %s has an unresolved future after Flush", i, n)
					}
				}
				futs[n] = futs[n][:0]
			case 6: // pull
				if err := cm.PullImage(); err != nil {
					pullErrs++
				}
			case 7: // sync push (drains the session first)
				if err := cm.PushImage(); err != nil {
					pushErrs++
				}
			case 8: // mode flip (drains the session first)
				mode := wire.Weak
				if r.Intn(2) == 0 {
					mode = wire.Strong
				}
				if err := cm.SetMode(mode); err != nil {
					pushErrs++
				}
			case 9: // kill the wire under the next call: forces a reconnect
				faulty.DisconnectNext(n, "db", 1+r.Intn(2))
			}
		}

		// Quiesce: stop injecting, flush and drain everything, converge.
		faulty.SetDropRate(0)
		for _, n := range names {
			if err := cms[n].PushImage(); err != nil {
				t.Fatalf("final push %s: %v", n, err)
			}
		}
		for _, n := range names {
			if err := cms[n].PullImage(); err != nil {
				t.Fatalf("final pull %s: %v", n, err)
			}
			if cms[n].PushPending() {
				t.Fatalf("%s still has a pending round after quiesce", n)
			}
		}
		if watch.violation != "" {
			t.Fatalf("per-key version monotonicity violated: %s", watch.violation)
		}
		if len(watch.high) == 0 {
			t.Fatal("version watch saw no DM-stamped entries; the soak exercised nothing")
		}

		// Fingerprint the outcome: primary state plus every counter that a
		// scheduling or fault-stream divergence would disturb.
		img, err := prim.Extract(property.MustSet("P={x}"))
		if err != nil {
			t.Fatal(err)
		}
		keys := img.Keys()
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s;", k, img.Entries[k].Value)
		}
		fmt.Fprintf(&b, "|injected=%d|resets=%d|pushErrs=%d|pullErrs=%d|flushes=%d|version=%d",
			faulty.Injected(), resets, pushErrs, pullErrs, flushes, dm.CurrentVersion())
		return b.String()
	}

	a := run(42)
	b := run(42)
	if a != b {
		t.Fatalf("identically seeded pipelined soaks diverged:\n  run 1: %s\n  run 2: %s", a, b)
	}
	if strings.Contains(a, "|injected=0|") {
		t.Fatal("soak injected no faults; nothing was exercised")
	}
	if c := run(43); c == a {
		t.Logf("note: different seed matched outcome (possible but unlikely): %s", c)
	}
	t.Logf("soak outcome: %s", a)
}
