package cache

import (
	"errors"
	"fmt"

	"flecc/internal/image"
	"flecc/internal/transport"
	"flecc/internal/wire"
)

// ErrSessionReset is the typed failure every in-flight asynchronous push
// resolves with when the CM↔DM session dies under it — a dropped
// connection, an injected fault, or a reconnect cycle replacing the
// endpoint. The writes are NOT lost: they remain pending locally (the
// delta is re-extracted from the view on the next push), so the caller's
// recovery is simply to push again once the session is re-established.
var ErrSessionReset = errors.New("cache: session reset; in-flight push aborted")

// PushFuture is the completion handle of one asynchronous push round.
// Rounds complete in issue order (at most one is on the wire, the next
// coalesces behind it), and a future resolves exactly once.
type PushFuture struct {
	done     chan struct{}
	err      error // written before done closes; read after
	resolved bool  // guarded by the owning manager's mu
}

func newPushFuture() *PushFuture {
	return &PushFuture{done: make(chan struct{})}
}

func resolvedFuture(err error) *PushFuture {
	f := newPushFuture()
	f.resolved = true
	f.err = err
	close(f.done)
	return f
}

// Done returns a channel closed when the round has resolved.
func (f *PushFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the round resolves and returns its outcome.
func (f *PushFuture) Wait() error {
	<-f.done
	return f.err
}

// pushRound is one coalesced batch of local writes on its way to the DM.
// The delta is NOT captured at buffering time: it is extracted lazily at
// dispatch, after the previous round's ack has folded into the base
// snapshot — that is what makes adjacent PushImageAsync calls coalesce
// into a single TPush and keeps per-key version bookkeeping exact.
type pushRound struct {
	fut *PushFuture
	ops int    // pending-op count the dispatched delta carried
	gen uint64 // session generation at creation; stale rounds are dead
}

// PushImageAsync starts (or joins) an asynchronous push round and returns
// its future. At most one round is in flight per session; a second call
// while one is on the wire buffers a follow-up round, and further calls
// coalesce into that buffer — so W rapid writers cost two TPush rounds,
// not W. Ordering: rounds complete in issue order; a round's delta is
// extracted at dispatch time, so it carries every local write made before
// dispatch (callers joined to the same future all ride the same round).
// On session death the future resolves with ErrSessionReset.
func (m *Manager) PushImageAsync() *PushFuture {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.initialized {
		return resolvedFuture(ErrNotInitialized)
	}
	if m.killed {
		return resolvedFuture(transport.ErrClosed)
	}
	if m.buffer != nil {
		return m.buffer.fut // coalesce into the waiting round
	}
	m.buffer = &pushRound{fut: newPushFuture(), gen: m.sessGen}
	fut := m.buffer.fut
	if !m.manualFlush {
		go m.pump()
	}
	return fut
}

// Flush dispatches any buffered round and waits for every outstanding
// round to resolve, returning the first error. Under Config.ManualFlush
// this is the only dispatcher, which keeps deterministic harnesses
// (model checker, seeded soaks) in control of when the wire is touched.
func (m *Manager) Flush() error {
	m.mu.Lock()
	var futs []*PushFuture
	if m.inflight != nil {
		futs = append(futs, m.inflight.fut)
	}
	if m.buffer != nil {
		futs = append(futs, m.buffer.fut)
	}
	m.mu.Unlock()
	if len(futs) == 0 {
		return nil
	}
	m.pump()
	var first error
	for _, f := range futs {
		if err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PushPending reports whether any asynchronous push round is buffered or
// in flight.
func (m *Manager) PushPending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight != nil || m.buffer != nil
}

// pump dispatches rounds while none is in flight. It is safe to call from
// any goroutine at any time: the inflight/buffer state under mu makes
// concurrent pumps collapse to one dispatcher. On an AsyncCaller endpoint
// the round's completion continues pumping from the completion goroutine;
// on synchronous endpoints (Inproc/netsim) everything completes inline on
// the caller's goroutine, preserving the no-spawn determinism discipline.
func (m *Manager) pump() {
	for {
		m.mu.Lock()
		if m.inflight != nil || m.buffer == nil {
			m.mu.Unlock()
			return
		}
		r := m.buffer
		m.buffer = nil
		if r.gen != m.sessGen {
			// A session reset raced the promotion; the round was already
			// resolved with ErrSessionReset.
			m.mu.Unlock()
			continue
		}
		delta, ops, cur, err := m.extractDeltaLocked()
		if err != nil {
			m.resolveRoundLocked(r, err)
			m.mu.Unlock()
			continue
		}
		if delta.Len() == 0 {
			m.pendingOps -= ops
			if m.pendingOps < 0 {
				m.pendingOps = 0
			}
			m.lastPush = m.clock.Now()
			m.resolveRoundLocked(r, nil)
			m.mu.Unlock()
			continue
		}
		r.ops = ops
		m.inflight = r
		req := &wire.Message{Type: wire.TPush, Img: delta, Ops: uint32(ops)}
		ep := m.ep
		m.mu.Unlock()

		// The call itself runs without mu: on Inproc the DM handler runs
		// inline and may call back into this manager (handleUpdate).
		if ac, ok := ep.(transport.AsyncCaller); ok {
			call := ac.CallAsync(m.dir, req)
			select {
			case <-call.Done():
				// Synchronous transport (or an immediate failure): finish
				// inline and keep pumping on this goroutine.
				reply, cerr := call.Wait()
				m.completeRound(r, delta, cur, reply, cerr)
				continue
			default:
				go func() {
					reply, cerr := call.Wait()
					m.completeRound(r, delta, cur, reply, cerr)
					m.pump()
				}()
				return
			}
		}
		reply, cerr := ep.Call(m.dir, req)
		m.completeRound(r, delta, cur, reply, cerr)
	}
}

// completeRound applies one round's outcome. Success folds the pushed
// keys into the base snapshot exactly like the synchronous PushImage; a
// transport-level failure resets the whole session (this round AND the
// buffered one fail with ErrSessionReset — their writes stay pending
// locally); a remote protocol error fails only this round.
func (m *Manager) completeRound(r *pushRound, delta, cur *image.Image, reply *wire.Message, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight == r {
		m.inflight = nil
	}
	if r.gen != m.sessGen || r.fut.resolved {
		return // a session reset got here first
	}
	if err != nil {
		if redialable(err) {
			// A dead link or a "not serving" refusal from a deposed
			// primary: this round already left the inflight slot above, so
			// fail it explicitly, then reset the rest of the session. The
			// writes stay pending locally and the next synchronous call's
			// reconnect cycle re-dials toward the promoted standby.
			m.resolveRoundLocked(r, fmt.Errorf("cache %s: %w (%v)", m.name, ErrSessionReset, err))
			m.failSessionLocked(err)
		} else {
			m.resolveRoundLocked(r, err)
		}
		return
	}
	m.resolveRoundLocked(r, m.finishPushLocked(delta, cur, reply, r.ops))
}

// finishPushLocked is the shared push-ack bookkeeping for the sync and
// async paths: fold the pushed keys into the base snapshot, retire the
// ops the round carried, and adopt resolver winners. Caller holds mu.
func (m *Manager) finishPushLocked(delta, cur *image.Image, reply *wire.Message, ops int) error {
	// Fold only the pushed keys into the base snapshot. The manager was
	// unlocked during the call, so a propagated update or a reconnect
	// re-pull may have merged fresh remote entries meanwhile; wholesale
	// replacing base with the pre-call extract would regress those keys,
	// leaving the view looking dirty with stale data that a later push
	// would echo over newer commits.
	for k, e := range delta.Entries {
		if ce, ok := cur.Get(k); ok {
			m.base.Put(ce.Clone())
		} else if e.Deleted {
			m.base.Put(image.Entry{Key: k, Version: reply.Version, Writer: m.name, Deleted: true})
		}
	}
	// Retire only the ops this round carried: use windows closed while
	// the round was on the wire belong to the next one.
	m.pendingOps -= ops
	if m.pendingOps < 0 {
		m.pendingOps = 0
	}
	m.lastPush = m.clock.Now()
	// Note: seen does NOT advance here. The push ack's version covers only
	// this view's own commit; updates other writers committed since the
	// last pull remain unobserved, and advancing seen past them would make
	// later delta pulls skip them forever.
	//
	// If the directory's resolver rejected some of our entries, the ack
	// carries the winning values; adopt them so the view converges on the
	// resolved state instead of silently keeping the losing data.
	if reply.Img != nil && reply.Img.Len() > 0 {
		winners := reply.Img.Clone()
		winners.Version = 0 // do not advance seen (see above)
		if err := m.applyIncomingLocked(winners, 0); err != nil {
			return err
		}
	}
	return nil
}

// failSessionLocked resolves every outstanding round with ErrSessionReset
// (wrapping the cause) and bumps the session generation so completions of
// already-dispatched calls are ignored when they straggle in. The writes
// those rounds carried stay pending locally — extractDeltaLocked will
// pick them up again on the next round over the new session. Caller
// holds mu; idempotent.
func (m *Manager) failSessionLocked(cause error) {
	err := fmt.Errorf("cache %s: %w (%v)", m.name, ErrSessionReset, cause)
	if m.inflight != nil {
		m.resolveRoundLocked(m.inflight, err)
		m.inflight = nil
	}
	if m.buffer != nil {
		m.resolveRoundLocked(m.buffer, err)
		m.buffer = nil
	}
	m.sessGen++
}

// resolveRoundLocked resolves a round's future exactly once. Caller
// holds mu.
func (m *Manager) resolveRoundLocked(r *pushRound, err error) {
	if r.fut.resolved {
		return
	}
	r.fut.resolved = true
	r.fut.err = err
	close(r.fut.done)
}

// drainPushes dispatches and waits out every outstanding async round —
// the window-drain rule: synchronous operations (PushImage, SetMode,
// SetProps, KillImage) observe a quiet session so they cannot interleave
// with a round that is still reshaping the base snapshot. Round errors
// are reported through their futures, not here.
func (m *Manager) drainPushes() {
	for {
		m.mu.Lock()
		var fut *PushFuture
		if m.inflight != nil {
			fut = m.inflight.fut
		} else if m.buffer != nil {
			fut = m.buffer.fut
		}
		m.mu.Unlock()
		if fut == nil {
			return
		}
		m.pump()
		<-fut.Done()
	}
}
