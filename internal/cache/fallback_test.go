package cache_test

import (
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestFallbackNetworkRotation: an HA deployment gives each cache manager
// the standby daemon's dial network as a fallback. When the primary dies,
// the reconnect cycle rotates across the configured networks; a standby
// that has not been promoted yet answers with the "not serving" refusal,
// which counts as redialable — the client keeps rotating instead of
// surfacing the refusal — and the first promoted node wins the session.
func TestFallbackNetworkRotation(t *testing.T) {
	clock := vclock.NewSim()
	netA, netB := transport.NewInproc(), transport.NewInproc()

	prim := newKV(map[string]string{"seed": "1"})
	dm1, err := directory.New("dm", prim, clock, netA, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}

	view := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "v1", Directory: "dm",
		Net:       netA,
		Fallbacks: []transport.Network{netB},
		View:      view,
		Props:     property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		Reconnect: &cache.ReconnectPolicy{
			Attempts: 6,
			Sleep:    func(time.Duration) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cm.KillImage()
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.Set("k", "before")
	cm.EndUse()
	if err := cm.PushImage(); err != nil {
		t.Fatal(err)
	}

	// The standby daemon lives on its own network (its own listener, in
	// the TCP deployment), hot with the primary's state.
	snap := dm1.CaptureSnapshot()
	img, err := dm1.Store().Extract(property.NewSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sbPrim := newKV(nil)
	dm2, err := directory.New("dm", sbPrim, clock, netB, directory.Options{Snapshot: snap, Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dm2.Close()
	if err := dm2.Store().AbsorbImage(img); err != nil {
		t.Fatal(err)
	}

	// Primary dies. While the standby is unpromoted, the client rotates
	// netA (dead) → netB (not serving) → netA … until its attempts run
	// out: bounded, and the refusal is never surfaced as a protocol
	// error.
	if err := dm1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cm.StartUse(); err != nil {
		t.Fatal(err)
	}
	view.Set("k", "after")
	cm.EndUse()
	err = cm.PushImage()
	if err == nil {
		t.Fatal("push with no serving directory should fail")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("want bounded attempts-exhausted failure, got: %v", err)
	}

	// Promotion flips the standby to serving; the next reconnect cycle
	// lands on it and the pending write commits there, with version
	// continuity from the replicated snapshot.
	dm2.PromoteSelf()
	if err := cm.PushImage(); err != nil {
		t.Fatalf("push after promotion: %v", err)
	}
	if sbPrim.Get("k") != "after" {
		t.Fatalf("standby primary k=%q, want %q", sbPrim.Get("k"), "after")
	}
	if got := dm2.CurrentVersion(); got != 2 {
		t.Fatalf("version continuity broken: standby at v%d, want v2", got)
	}

	// The rotated session is fully live: pulls work too.
	if err := cm.PullImage(); err != nil {
		t.Fatalf("pull through fallback network: %v", err)
	}
}
