package cache_test

import (
	"net"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestDMRestartCMReconnect is the fleccd fail-over round-trip over real
// TCP: a view registers against a daemon, the daemon dies and is restarted
// from its snapshot on the same address, and the live cache manager
// re-dials, re-registers, and re-pulls on its own — the next push/pull
// just works, no manual re-registration.
func TestDMRestartCMReconnect(t *testing.T) {
	clock := vclock.NewSim()
	prim := newKV(map[string]string{"seed": "1"})

	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	dm1, err := directory.New("db", prim, clock, transport.NewServerNetwork(ln1, 5*time.Second), directory.Options{})
	if err != nil {
		t.Fatal(err)
	}

	view := newKV(nil)
	cm, err := cache.New(cache.Config{
		Name: "agent", Directory: "db",
		Net:   transport.NewDialNetwork(addr, 5*time.Second),
		View:  view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
		Reconnect: &cache.ReconnectPolicy{
			Attempts: 20,
			Base:     time.Millisecond,
			Max:      50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cm.KillImage()
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	view.Set("before", "restart")
	if err := cm.PushImage(); err != nil {
		t.Fatal(err)
	}

	// Daemon restart: snapshot the protocol metadata, tear the server down
	// (the view's connection dies with it), come back on the same address.
	snap := dm1.Store().Snapshot()
	if err := dm1.Close(); err != nil {
		t.Fatal(err)
	}
	var ln2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	dm2, err := directory.New("db", prim, clock, transport.NewServerNetwork(ln2, 5*time.Second), directory.Options{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer dm2.Close()

	// The next protocol call rides the reconnect machinery end to end.
	view.Set("after", "restart")
	if err := cm.PushImage(); err != nil {
		t.Fatalf("push across daemon restart: %v", err)
	}
	if got := prim.Get("after"); got != "restart" {
		t.Fatalf("primary missed the post-restart push: %q", got)
	}
	if err := cm.PullImage(); err != nil {
		t.Fatalf("pull after restart: %v", err)
	}
	if got := view.Get("before"); got != "restart" {
		t.Fatalf("replica lost pre-restart data: %q", got)
	}

	// The re-registration happened implicitly, against the restarted DM.
	views := dm2.Views()
	if len(views) != 1 || views[0] != "agent" {
		t.Fatalf("restarted DM views = %v, want [agent]", views)
	}
}
