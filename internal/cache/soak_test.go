package cache_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"flecc/internal/airline"
	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/netsim"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestSoakAirlineMixedModes is the long randomized end-to-end run: many
// travel agents over a latency-bearing simulated LAN, random interleaving
// of reservations, cancellations, pulls, pushes, mode flips, property
// retargeting, and agent churn (kill + redeploy). Invariants checked
// throughout and at the end:
//
//   - no operation ever errors (other than legitimate sold-out refusals);
//   - strong-mode reservations are never lost;
//   - after quiescing, every replica agrees with the database on its
//     served flights;
//   - total seats recorded at the database equals the seats the harness
//     successfully reserved minus those cancelled.
func TestSoakAirlineMixedModes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := rand.New(rand.NewSource(2026))
	clock := vclock.NewSim()
	topo := netsim.LAN(1)
	topo.Place("db", "hub")
	net := netsim.New(clock, topo)
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)

	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 10, 1<<20) // effectively unlimited seats
	dm, err := directory.New("db", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	const nAgents = 6
	agents := make([]*airline.TravelAgent, nAgents)
	gen := 0
	mk := func(i int) *airline.TravelAgent {
		gen++
		name := fmt.Sprintf("agent-%d-g%d", i, gen)
		topo.Place(name, fmt.Sprintf("edge-%d", i))
		a, err := airline.NewTravelAgent(airline.AgentConfig{
			Name: name, Directory: "db", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 109,
			Mode: wire.Weak,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for i := range agents {
		agents[i] = mk(i)
	}

	expected := 0 // net seats the harness successfully reserved
	const steps = 1200
	for s := 0; s < steps; s++ {
		i := r.Intn(nAgents)
		a := agents[i]
		flight := 100 + r.Intn(10)
		switch r.Intn(10) {
		case 0, 1, 2, 3: // reserve
			if err := a.ReserveTickets(1, flight); err != nil {
				t.Fatalf("step %d reserve: %v", s, err)
			}
			expected++
		case 4: // cancel (may be a no-op if the replica shows 0 reserved)
			if err := a.CM.PullImage(); err != nil {
				t.Fatalf("step %d pull: %v", s, err)
			}
			f, ok := a.ARS.Flight(flight)
			if ok && f.Reserved > 0 {
				if err := a.CM.StartUse(); err != nil {
					t.Fatalf("step %d use: %v", s, err)
				}
				if err := a.ARS.CancelTickets(1, flight); err != nil {
					t.Fatalf("step %d cancel: %v", s, err)
				}
				a.CM.EndUse()
				expected--
			}
		case 5: // push
			if err := a.CM.PushImage(); err != nil {
				t.Fatalf("step %d push: %v", s, err)
			}
		case 6: // pull
			if err := a.CM.PullImage(); err != nil {
				t.Fatalf("step %d pull: %v", s, err)
			}
		case 7: // mode flip
			mode := wire.Weak
			if r.Intn(2) == 0 {
				mode = wire.Strong
			}
			if err := a.CM.SetMode(mode); err != nil {
				t.Fatalf("step %d mode: %v", s, err)
			}
		case 8: // churn: kill and redeploy
			if err := a.Close(); err != nil {
				t.Fatalf("step %d kill: %v", s, err)
			}
			agents[i] = mk(i)
		case 9: // browse
			if _, err := a.Browse("", ""); err != nil {
				t.Fatalf("step %d browse: %v", s, err)
			}
		}
	}

	// Quiesce.
	for round := 0; round < 2; round++ {
		for _, a := range agents {
			if err := a.CM.PushImage(); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range agents {
			if err := a.CM.PullImage(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Cancellation note: a cancel based on a replica that had not yet seen
	// another agent's reservation can be absorbed by the conservative
	// SeatResolver (reserved = max). So the database total must be at
	// least the harness expectation and at most expectation + cancels that
	// raced; with the resolver's max rule the total can only exceed, never
	// undercut, a successful strong history. Here we assert the exact
	// ledger when using only committed knowledge:
	total := 0
	for _, f := range db.Flights() {
		total += f.Reserved
	}
	if total < expected {
		t.Fatalf("database lost sales: %d recorded < %d expected", total, expected)
	}

	// Replicas agree with the database after quiescing.
	for _, a := range agents {
		for _, f := range a.ARS.Flights() {
			dbf, ok := db.Flight(f.Number)
			if !ok {
				t.Fatalf("flight %d missing at db", f.Number)
			}
			if f.Reserved != dbf.Reserved {
				t.Fatalf("replica %s disagrees on flight %d: %d vs %d",
					a.Name(), f.Number, f.Reserved, dbf.Reserved)
			}
		}
		a.Close()
	}
	if stats.Total() == 0 {
		t.Fatal("no traffic recorded?")
	}
	t.Logf("soak: %d steps, %d messages, final version v%d, %d conflicts resolved, %v virtual time",
		steps, stats.Total(), dm.CurrentVersion(), dm.Store().ConflictsSeen(), clock.Now())
}

// faultDropRate is the message-drop probability for the failure soak:
// 10% by default, overridable with FLECC_TEST_FAULTS=<percent> (the CI
// fault job runs the suite at a higher rate, the same way
// FLECC_TEST_SHARDS reruns it sharded).
func faultDropRate() float64 {
	if s := os.Getenv("FLECC_TEST_FAULTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 && n <= 90 {
			return float64(n) / 100
		}
	}
	return 0.10
}

// TestSoakFaultInjected is the deterministic failure soak: three weak-mode
// views over a Faulty-wrapped in-process transport with seeded message
// drops (see faultDropRate), reconnect-enabled cache managers, and a fast
// retry/evict policy at the directory manager. Midway one view's node is
// isolated (a crashed process); a strong pull on a conflicting view must
// still complete, with the dead view evicted and counted. After the faults
// stop, the survivors must converge on exactly the writes whose pushes
// were acknowledged.
//
// Everything is driven from one goroutine over the synchronous Inproc
// transport, so the injector's seeded random stream is consumed in a fixed
// order and the run is reproducible for a given drop rate.
func TestSoakFaultInjected(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	clock := vclock.NewSim()
	faulty := transport.NewFaulty(transport.NewInproc(), 7)
	noSleep := func(time.Duration) {}

	prim := newKV(nil)
	dm, err := directory.New("db", prim, clock, faulty, directory.Options{
		Retry: transport.RetryPolicy{Attempts: 3, Base: time.Microsecond, Sleep: noSleep},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	names := []string{"v1", "v2", "v3"}
	cms := map[string]*cache.Manager{}
	views := map[string]*kvView{}
	for _, n := range names {
		v := newKV(nil)
		cm, err := cache.New(cache.Config{
			Name: n, Directory: "db", Net: faulty, View: v,
			Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
			Reconnect: &cache.ReconnectPolicy{
				Attempts: 4, Base: time.Microsecond, Max: time.Microsecond, Sleep: noSleep,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
		cms[n], views[n] = cm, v
	}

	faulty.SetDropRate(faultDropRate())

	// expect holds writes whose push was acknowledged; staged holds writes
	// made locally but not yet acknowledged (they ride the next ack).
	expect := map[string]string{}
	staged := map[string]map[string]string{"v1": {}, "v2": {}, "v3": {}}
	dead := map[string]bool{}
	var pushErrs, pullErrs int

	const steps = 400
	for i := 0; i < steps; i++ {
		clock.Advance(1)
		if i == steps/2 {
			// v3's process crashes: every edge touching it goes dark.
			faulty.Isolate("v3")
			dead["v3"] = true

			// A strong pull on a conflicting live view must complete: the
			// DM retries the dead view's invalidation, evicts it, and
			// serves the puller.
			if err := cms["v1"].SetMode(wire.Strong); err != nil {
				t.Fatalf("step %d: mode flip to strong: %v", i, err)
			}
			if err := cms["v1"].PullImage(); err != nil {
				t.Fatalf("step %d: strong pull with dead conflicting view: %v", i, err)
			}
			if dm.ViewsEvicted() == 0 {
				t.Fatalf("step %d: dead view was not evicted", i)
			}
			if err := cms["v1"].SetMode(wire.Weak); err != nil {
				t.Fatalf("step %d: mode flip back: %v", i, err)
			}
			continue
		}
		n := names[r.Intn(len(names))]
		if dead[n] {
			continue
		}
		switch r.Intn(3) {
		case 0: // write + push
			k := fmt.Sprintf("%s-k%d", n, r.Intn(20))
			val := fmt.Sprintf("s%d", i)
			views[n].Set(k, val)
			staged[n][k] = val
			if err := cms[n].PushImage(); err != nil {
				pushErrs++
				continue
			}
			for sk, sv := range staged[n] {
				expect[sk] = sv
			}
			staged[n] = map[string]string{}
		case 1: // push without new writes (drains staged backlog)
			if err := cms[n].PushImage(); err != nil {
				pushErrs++
				continue
			}
			for sk, sv := range staged[n] {
				expect[sk] = sv
			}
			staged[n] = map[string]string{}
		case 2:
			if err := cms[n].PullImage(); err != nil {
				pullErrs++
			}
		}
	}

	if dm.ViewsEvicted() < 1 {
		t.Fatalf("ViewsEvicted = %d, want >= 1", dm.ViewsEvicted())
	}
	// At high drop rates a live view can transiently exhaust its retries
	// and get evicted too (it revives on next contact), so require only
	// that the genuinely dead view is among the lost.
	lost := dm.LostViews()
	var v3Lost bool
	for _, n := range lost {
		if n == "v3" {
			v3Lost = true
		}
	}
	if !v3Lost {
		t.Fatalf("lost views = %v, want v3 among them", lost)
	}
	if faulty.Injected() == 0 {
		t.Fatal("soak ran without injecting a single fault")
	}
	t.Logf("soak: %d injected faults, %d push errors, %d pull errors, %d evictions",
		faulty.Injected(), pushErrs, pullErrs, dm.ViewsEvicted())

	// Quiesce: stop dropping, drain the survivors' backlogs, converge.
	faulty.SetDropRate(0)
	for _, n := range []string{"v1", "v2"} {
		if err := cms[n].PushImage(); err != nil {
			t.Fatalf("final push %s: %v", n, err)
		}
		for sk, sv := range staged[n] {
			expect[sk] = sv
		}
		staged[n] = map[string]string{}
	}
	for _, n := range []string{"v1", "v2"} {
		if err := cms[n].PullImage(); err != nil {
			t.Fatalf("final pull %s: %v", n, err)
		}
	}
	for k, want := range expect {
		if got := prim.Get(k); got != want {
			t.Fatalf("primary %s = %q, want %q", k, got, want)
		}
		for _, n := range []string{"v1", "v2"} {
			if got := views[n].Get(k); got != want {
				t.Fatalf("replica %s: %s = %q, want %q", n, k, got, want)
			}
		}
	}
}

// TestSoakSeededDeterminism runs the fault-soak scenario twice with
// identical seeds — including jittered retry backoff drawn from a
// seeded transport.Rand — and requires identical injected-fault and
// eviction counts. This regresses the bug where retry jitter consumed
// the process-global math/rand: the workload was seeded but the
// backoff stream was not, so "deterministic" fault runs diverged in
// their injected counts from run to run.
func TestSoakSeededDeterminism(t *testing.T) {
	type outcome struct {
		injected int64
		evicted  int64
		version  vclock.Version
		pushErrs int
		pullErrs int
	}
	run := func(seed int64) outcome {
		r := rand.New(rand.NewSource(seed))
		clock := vclock.NewSim()
		faulty := transport.NewFaulty(transport.NewInproc(), seed)
		noSleep := func(time.Duration) {}

		prim := newKV(nil)
		dm, err := directory.New("db", prim, clock, faulty, directory.Options{
			Retry: transport.RetryPolicy{
				Attempts: 3, Base: time.Microsecond, Sleep: noSleep,
				Jitter: 0.2, Rand: transport.NewRand(seed),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dm.Close()

		names := []string{"v1", "v2", "v3"}
		cms := map[string]*cache.Manager{}
		views := map[string]*kvView{}
		for _, n := range names {
			v := newKV(nil)
			cm, err := cache.New(cache.Config{
				Name: n, Directory: "db", Net: faulty, View: v,
				Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: clock,
				Reconnect: &cache.ReconnectPolicy{
					Attempts: 4, Base: time.Microsecond, Max: time.Microsecond,
					Sleep: noSleep, Jitter: 0.2, Seed: seed,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cm.InitImage(); err != nil {
				t.Fatal(err)
			}
			cms[n], views[n] = cm, v
		}

		faulty.SetDropRate(faultDropRate())
		var out outcome
		const steps = 250
		for i := 0; i < steps; i++ {
			clock.Advance(1)
			n := names[r.Intn(len(names))]
			switch r.Intn(3) {
			case 0:
				views[n].Set(fmt.Sprintf("%s-k%d", n, r.Intn(20)), fmt.Sprintf("s%d", i))
				if err := cms[n].PushImage(); err != nil {
					out.pushErrs++
				}
			case 1:
				if err := cms[n].PushImage(); err != nil {
					out.pushErrs++
				}
			case 2:
				if err := cms[n].PullImage(); err != nil {
					out.pullErrs++
				}
			}
		}
		out.injected = faulty.Injected()
		out.evicted = dm.ViewsEvicted()
		out.version = dm.CurrentVersion()
		return out
	}

	a := run(7)
	b := run(7)
	if a != b {
		t.Fatalf("identically seeded runs diverged:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
	if a.injected == 0 {
		t.Fatal("soak injected no faults; nothing was exercised")
	}
	if c := run(8); c == a {
		t.Logf("note: different seed produced identical outcome %+v (possible but unlikely)", c)
	}
}
