package cache_test

import (
	"fmt"
	"math/rand"
	"testing"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/netsim"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestSoakAirlineMixedModes is the long randomized end-to-end run: many
// travel agents over a latency-bearing simulated LAN, random interleaving
// of reservations, cancellations, pulls, pushes, mode flips, property
// retargeting, and agent churn (kill + redeploy). Invariants checked
// throughout and at the end:
//
//   - no operation ever errors (other than legitimate sold-out refusals);
//   - strong-mode reservations are never lost;
//   - after quiescing, every replica agrees with the database on its
//     served flights;
//   - total seats recorded at the database equals the seats the harness
//     successfully reserved minus those cancelled.
func TestSoakAirlineMixedModes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := rand.New(rand.NewSource(2026))
	clock := vclock.NewSim()
	topo := netsim.LAN(1)
	topo.Place("db", "hub")
	net := netsim.New(clock, topo)
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)

	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 10, 1<<20) // effectively unlimited seats
	dm, err := directory.New("db", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	const nAgents = 6
	agents := make([]*airline.TravelAgent, nAgents)
	gen := 0
	mk := func(i int) *airline.TravelAgent {
		gen++
		name := fmt.Sprintf("agent-%d-g%d", i, gen)
		topo.Place(name, fmt.Sprintf("edge-%d", i))
		a, err := airline.NewTravelAgent(airline.AgentConfig{
			Name: name, Directory: "db", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 109,
			Mode: wire.Weak,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for i := range agents {
		agents[i] = mk(i)
	}

	expected := 0 // net seats the harness successfully reserved
	const steps = 1200
	for s := 0; s < steps; s++ {
		i := r.Intn(nAgents)
		a := agents[i]
		flight := 100 + r.Intn(10)
		switch r.Intn(10) {
		case 0, 1, 2, 3: // reserve
			if err := a.ReserveTickets(1, flight); err != nil {
				t.Fatalf("step %d reserve: %v", s, err)
			}
			expected++
		case 4: // cancel (may be a no-op if the replica shows 0 reserved)
			if err := a.CM.PullImage(); err != nil {
				t.Fatalf("step %d pull: %v", s, err)
			}
			f, ok := a.ARS.Flight(flight)
			if ok && f.Reserved > 0 {
				if err := a.CM.StartUse(); err != nil {
					t.Fatalf("step %d use: %v", s, err)
				}
				if err := a.ARS.CancelTickets(1, flight); err != nil {
					t.Fatalf("step %d cancel: %v", s, err)
				}
				a.CM.EndUse()
				expected--
			}
		case 5: // push
			if err := a.CM.PushImage(); err != nil {
				t.Fatalf("step %d push: %v", s, err)
			}
		case 6: // pull
			if err := a.CM.PullImage(); err != nil {
				t.Fatalf("step %d pull: %v", s, err)
			}
		case 7: // mode flip
			mode := wire.Weak
			if r.Intn(2) == 0 {
				mode = wire.Strong
			}
			if err := a.CM.SetMode(mode); err != nil {
				t.Fatalf("step %d mode: %v", s, err)
			}
		case 8: // churn: kill and redeploy
			if err := a.Close(); err != nil {
				t.Fatalf("step %d kill: %v", s, err)
			}
			agents[i] = mk(i)
		case 9: // browse
			if _, err := a.Browse("", ""); err != nil {
				t.Fatalf("step %d browse: %v", s, err)
			}
		}
	}

	// Quiesce.
	for round := 0; round < 2; round++ {
		for _, a := range agents {
			if err := a.CM.PushImage(); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range agents {
			if err := a.CM.PullImage(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Cancellation note: a cancel based on a replica that had not yet seen
	// another agent's reservation can be absorbed by the conservative
	// SeatResolver (reserved = max). So the database total must be at
	// least the harness expectation and at most expectation + cancels that
	// raced; with the resolver's max rule the total can only exceed, never
	// undercut, a successful strong history. Here we assert the exact
	// ledger when using only committed knowledge:
	total := 0
	for _, f := range db.Flights() {
		total += f.Reserved
	}
	if total < expected {
		t.Fatalf("database lost sales: %d recorded < %d expected", total, expected)
	}

	// Replicas agree with the database after quiescing.
	for _, a := range agents {
		for _, f := range a.ARS.Flights() {
			dbf, ok := db.Flight(f.Number)
			if !ok {
				t.Fatalf("flight %d missing at db", f.Number)
			}
			if f.Reserved != dbf.Reserved {
				t.Fatalf("replica %s disagrees on flight %d: %d vs %d",
					a.Name(), f.Number, f.Reserved, dbf.Reserved)
			}
		}
		a.Close()
	}
	if stats.Total() == 0 {
		t.Fatal("no traffic recorded?")
	}
	t.Logf("soak: %d steps, %d messages, final version v%d, %d conflicts resolved, %v virtual time",
		steps, stats.Total(), dm.CurrentVersion(), dm.Store().ConflictsSeen(), clock.Now())
}
