package cache

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"flecc/internal/transport"
	"flecc/internal/wire"
)

// Default reconnect-policy knobs (see ReconnectPolicy).
const (
	DefaultReconnectAttempts = 8
	DefaultReconnectBase     = 10 * time.Millisecond
	DefaultReconnectMax      = 2 * time.Second
)

// ReconnectPolicy makes a cache manager survive its endpoint dying — a
// directory-manager restart, a dropped TCP connection, or an injected
// fault. When a CM→DM call fails at the transport level, the manager
// closes the dead endpoint, re-attaches to the network under its name
// (over a DialNetwork this dials a fresh connection), re-registers with
// its current properties and mode (the DM side is idempotent: same props
// keep seen/mode), re-pulls the delta since its seen version, and then
// retries the original call. Attempts are spaced by exponential backoff
// with jitter so a herd of clients re-dialing a restarted daemon spreads
// out.
//
// A nil policy in Config disables reconnection: transport errors surface
// to the caller exactly as before.
type ReconnectPolicy struct {
	// Attempts bounds the reconnect cycles per call before giving up.
	Attempts int
	// Base is the backoff before the second attempt; it doubles per
	// attempt (the first retry is immediate).
	Base time.Duration
	// Max caps the backoff.
	Max time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// value; 0 means a deterministic schedule.
	Jitter float64
	// Seed fixes the jitter stream for reproducible runs; 0 derives a
	// seed from the manager's name.
	Seed int64
	// Sleep replaces time.Sleep between attempts (tests).
	Sleep func(time.Duration)
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultReconnectAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultReconnectBase
	}
	if p.Max <= 0 {
		p.Max = DefaultReconnectMax
	}
	return p
}

// reconnector holds the manager's reconnect machinery, separate from the
// protocol state guarded by Manager.mu. reconMu serializes reconnect
// cycles; it is never held while Manager.mu is wanted by the transport
// handler path, only around attach/register/pull calls.
type reconnector struct {
	pol ReconnectPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

func newReconnector(name string, pol ReconnectPolicy) *reconnector {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = int64(h.Sum64())
	}
	return &reconnector{pol: pol, rng: rand.New(rand.NewSource(seed))}
}

func (rc *reconnector) pause(attempt int) {
	if attempt <= 1 {
		return // first retry is immediate
	}
	d := rc.pol.Base
	for i := 2; i < attempt && d < rc.pol.Max; i++ {
		d *= 2
	}
	if d > rc.pol.Max {
		d = rc.pol.Max
	}
	if rc.pol.Jitter > 0 {
		f := 1 + rc.pol.Jitter*(2*rc.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d <= 0 {
		return
	}
	if rc.pol.Sleep != nil {
		rc.pol.Sleep(d)
		return
	}
	time.Sleep(d)
}

// redialable reports whether a failed CM→DM call should trigger a
// reconnect cycle: any transport-level failure, or a remote "not
// serving" refusal — the directory node answered but is a standby (or a
// fenced ex-primary), so the client should rotate toward the promoted
// node rather than surface the refusal.
func redialable(err error) bool {
	return transport.IsTransportError(err) ||
		strings.Contains(err.Error(), wire.NotServingMark)
}

// call issues a CM→DM request through the current endpoint, transparently
// running reconnect cycles on transport-level failures when a policy is
// configured. Remote protocol errors always surface immediately.
func (m *Manager) call(req *wire.Message) (*wire.Message, error) {
	for attempt := 1; ; attempt++ {
		ep := m.endpoint()
		reply, err := ep.Call(m.dir, req)
		if err == nil || m.recon == nil || !redialable(err) {
			return reply, err
		}
		if attempt >= m.recon.pol.Attempts {
			return nil, fmt.Errorf("cache %s: %d attempts exhausted: %w", m.name, attempt, err)
		}
		if rerr := m.redial(ep, attempt); rerr != nil {
			return nil, rerr
		}
	}
}

// redial replaces a dead endpoint: detach it, re-attach under the same
// name, re-register, and re-pull the delta this view missed while away.
// Concurrent callers coalesce — whoever loses the race to reconMu finds
// the endpoint already replaced and just returns.
func (m *Manager) redial(old transport.Endpoint, attempt int) error {
	rc := m.recon
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if m.endpoint() != old {
		return nil // another caller already reconnected
	}
	m.mu.Lock()
	killed := m.killed
	if !killed {
		// The session the in-flight async rounds were issued on is dead:
		// resolve their futures with ErrSessionReset before tearing the
		// endpoint down, so no caller is left waiting on a connection that
		// is about to be replaced. Their writes stay pending locally.
		m.failSessionLocked(errors.New("endpoint replaced by reconnect"))
	}
	m.mu.Unlock()
	if killed {
		return transport.ErrClosed
	}
	old.Close()

	rc.pause(attempt)
	ep, err := m.nets[m.netIdx].Attach(m.name, m.handle)
	if err != nil {
		// The old attachment may not have unwound yet (e.g. a server-side
		// peer that has not noticed the close); surface as a transport
		// failure so the next cycle tries again — on the next network when
		// fallbacks are configured, so a dead primary daemon eventually
		// rotates the client onto its promoted standby.
		m.netIdx = (m.netIdx + 1) % len(m.nets)
		return nil
	}
	if _, err := ep.Call(m.dir, m.registerMsg()); err != nil {
		ep.Close()
		if !redialable(err) {
			return fmt.Errorf("cache %s: re-register: %w", m.name, err)
		}
		m.netIdx = (m.netIdx + 1) % len(m.nets)
		return nil // transient: next cycle retries
	}
	// Refresh before resuming: pull everything committed while we were
	// away so the replica does not serve a hole. Local dirty entries are
	// preserved by the usual merge rules.
	m.mu.Lock()
	initialized := m.initialized
	since := m.seen
	epoch := m.invalidations
	m.mu.Unlock()
	if initialized {
		reply, err := ep.Call(m.dir, &wire.Message{Type: wire.TPull, Since: since, Op: m.op})
		if err != nil {
			ep.Close()
			if !redialable(err) {
				return fmt.Errorf("cache %s: re-pull: %w", m.name, err)
			}
			m.netIdx = (m.netIdx + 1) % len(m.nets)
			return nil
		}
		m.mu.Lock()
		aerr := m.applyIncomingLocked(reply.Img, reply.Version)
		if aerr == nil {
			// Validity epoch guard: an invalidate that raced the re-pull
			// (the fresh registration makes this view a target again)
			// supersedes the pulled data's validity claim.
			if m.invalidations == epoch {
				m.valid = true
			}
			m.lastPull = m.clock.Now()
		}
		m.mu.Unlock()
		if aerr != nil {
			ep.Close()
			return aerr
		}
	}
	m.applyWindow(ep)
	m.setEndpoint(ep)
	return nil
}

// registerMsg rebuilds the view's registration announcement from its
// current state (props and mode may have changed since New).
func (m *Manager) registerMsg() *wire.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &wire.Message{
		Type:  wire.TRegister,
		View:  m.name,
		Mode:  m.mode,
		Op:    m.op,
		Props: m.props.Clone(),
		Trig:  m.trigSrc,
	}
}

func (m *Manager) endpoint() transport.Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ep
}

func (m *Manager) setEndpoint(ep transport.Endpoint) {
	m.mu.Lock()
	m.ep = ep
	m.mu.Unlock()
}
