// Package cache implements Flecc's cache manager (paper §4.2): the runtime
// component created alongside each deployed view. It forwards the view's
// requests to the directory manager, executes the commands the directory
// manager sends back (invalidations and fetches), and evaluates the view's
// push/pull quality triggers so the application can delegate its
// synchronization decisions to the system.
//
// The exported API mirrors the paper's Figure 3 pseudo-code:
//
//	cm, _ := cache.New(cfg)        // create cache manager (steps 1–2)
//	cm.InitImage()                 // initialize data (steps 3–5)
//	cm.PullImage()
//	cm.StartUse()                  // mutual exclusion (step 6)
//	... work on the view's data ...
//	cm.EndUse()                    // step 7
//	cm.PushImage()
//	cm.KillImage()                 // steps 20–21
package cache

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// ErrInvalidated is returned by StartUse when the view's image was
// invalidated by the directory manager (another view acquired exclusive
// access in strong mode). The view must PullImage again before using the
// data — exactly what the paper's travel-agent loop does on every
// iteration.
var ErrInvalidated = errors.New("cache: image invalidated; pull before use")

// ErrNotInitialized is returned when the image is used before InitImage.
var ErrNotInitialized = errors.New("cache: image not initialized")

// Config assembles everything a view supplies when creating its cache
// manager (the constructor arguments in Figure 3).
type Config struct {
	// Name is the view's unique node name.
	Name string
	// Directory is the directory manager's node name.
	Directory string
	// Net is the network both managers are attached to.
	Net transport.Network
	// View is the application view's extract/merge implementation
	// (mergeIntoView / extractFromView).
	View image.Codec
	// Props is the view's initial data property set.
	Props property.Set
	// Mode is the initial consistency mode.
	Mode wire.Mode
	// PushTrigger, PullTrigger, ValidityTrigger are quality-trigger
	// sources; empty strings mean "no trigger".
	PushTrigger, PullTrigger, ValidityTrigger string
	// Vars supplies the view's variables for trigger evaluation (the
	// paper's prototype used Java reflection; here the view exports them
	// explicitly). May be nil if the triggers reference only builtins.
	Vars trigger.Env
	// Clock supplies the discrete time for trigger evaluation.
	Clock vclock.Clock
	// Op is the view's default operation class (used by the read/write
	// extension; OpWrite when unset).
	Op wire.OpClass
	// Reconnect, if non-nil, makes the manager survive a dead endpoint
	// (e.g. a directory-manager restart) by re-dialing with exponential
	// backoff + jitter, re-registering, and re-pulling before resuming.
	// Nil keeps the historical behavior: transport errors surface to the
	// caller.
	Reconnect *ReconnectPolicy
	// Fallbacks are alternative networks the reconnect cycle rotates
	// through when the primary stops answering — the HA deployment lists
	// the standby daemon's dial network here, so a failed-over client
	// re-dials the promoted standby without operator action. Each entry
	// must host a node answering to Directory. Ignored without Reconnect.
	Fallbacks []transport.Network
	// Window, if > 0, bounds the in-flight pipelined requests on the
	// CM↔DM link (transport.WindowSetter); it is re-applied to every
	// endpoint a reconnect cycle dials. 0 leaves the link unbounded.
	Window int
	// ManualFlush disables the automatic dispatch of asynchronous push
	// rounds: PushImageAsync only buffers, and rounds go out when Flush
	// (or a draining synchronous operation) is called. Deterministic
	// harnesses — the model checker, seeded soaks — use it to keep every
	// wire interaction an explicit, schedulable step.
	ManualFlush bool
}

// Manager is the view-side protocol endpoint.
type Manager struct {
	name  string
	dir   string
	view  image.Codec
	vars  trigger.Env
	clock vclock.Clock
	op    wire.OpClass
	// nets holds the primary network followed by Config.Fallbacks; netIdx
	// (guarded by recon.mu) points at the one the current endpoint dialed.
	nets   []transport.Network
	netIdx int
	// trigSrc keeps the trigger sources for re-registration.
	trigSrc wire.Triggers
	// recon, when non-nil, drives the reconnect cycle (reconnect.go).
	recon  *reconnector
	ep     transport.Endpoint // guarded by mu; use endpoint()/setEndpoint()
	pushTr trigger.Trigger
	pullTr trigger.Trigger

	mu          sync.Mutex
	cond        *sync.Cond
	props       property.Set
	mode        wire.Mode
	inUse       bool
	valid       bool
	initialized bool
	killed      bool
	base        *image.Image // last synchronized snapshot
	seen        vclock.Version
	pendingOps  int
	// lastPull/lastPush are virtual times for the sincePull/sincePush
	// trigger variables.
	lastPull, lastPush vclock.Time
	// invalidations counts how many times the DM stopped this view. It
	// doubles as the validity epoch: pull paths capture it before going to
	// the wire and only mark the image valid if no invalidate interleaved.
	invalidations int
	// cancelTick stops the trigger scheduler.
	cancelTick func()

	// Asynchronous push session (session.go): at most one round in flight,
	// at most one buffered behind it, a generation counter to retire
	// straggling completions after a session reset.
	inflight    *pushRound
	buffer      *pushRound
	sessGen     uint64
	manualFlush bool
	window      int
}

// New creates the cache manager, attaches it to the network, and registers
// the view with the directory manager (Figure 2, steps 1–2).
func New(cfg Config) (*Manager, error) {
	if cfg.Name == "" || cfg.Directory == "" {
		return nil, fmt.Errorf("cache: Name and Directory are required")
	}
	if cfg.Net == nil || cfg.View == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("cache: Net, View and Clock are required")
	}
	pushTr, err := trigger.Compile(cfg.PushTrigger)
	if err != nil {
		return nil, fmt.Errorf("cache: push trigger: %w", err)
	}
	pullTr, err := trigger.Compile(cfg.PullTrigger)
	if err != nil {
		return nil, fmt.Errorf("cache: pull trigger: %w", err)
	}
	m := &Manager{
		name:  cfg.Name,
		dir:   cfg.Directory,
		view:  cfg.View,
		vars:  cfg.Vars,
		clock: cfg.Clock,
		op:    cfg.Op,
		nets:  append([]transport.Network{cfg.Net}, cfg.Fallbacks...),
		trigSrc: wire.Triggers{
			Push:     cfg.PushTrigger,
			Pull:     cfg.PullTrigger,
			Validity: cfg.ValidityTrigger,
		},
		pushTr:      pushTr,
		pullTr:      pullTr,
		props:       cfg.Props.Clone(),
		mode:        cfg.Mode,
		manualFlush: cfg.ManualFlush,
		window:      cfg.Window,
	}
	if cfg.Reconnect != nil {
		m.recon = newReconnector(cfg.Name, *cfg.Reconnect)
	}
	m.cond = sync.NewCond(&m.mu)
	ep, err := cfg.Net.Attach(cfg.Name, m.handle)
	if err != nil {
		return nil, fmt.Errorf("cache: attach %q: %w", cfg.Name, err)
	}
	m.ep = ep
	m.applyWindow(ep)
	if _, err := ep.Call(cfg.Directory, m.registerMsg()); err != nil {
		ep.Close()
		return nil, fmt.Errorf("cache: register %q: %w", cfg.Name, err)
	}
	return m, nil
}

// applyWindow applies the configured pipelining window to a freshly
// attached endpoint, when the transport supports it.
func (m *Manager) applyWindow(ep transport.Endpoint) {
	if m.window <= 0 {
		return
	}
	if ws, ok := ep.(transport.WindowSetter); ok {
		ws.SetWindow(m.window)
	}
}

// Name returns the view's node name.
func (m *Manager) Name() string { return m.name }

// Mode returns the current consistency mode.
func (m *Manager) Mode() wire.Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mode
}

// Seen returns the primary version this view has observed.
func (m *Manager) Seen() vclock.Version {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Valid reports whether the view's image is currently valid (not
// invalidated by the directory manager).
func (m *Manager) Valid() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.valid
}

// PendingOps returns the number of use windows not yet pushed or fetched —
// the locally visible part of the paper's quality metric from the peers'
// perspective.
func (m *Manager) PendingOps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pendingOps
}

// Invalidations returns how many times the directory manager stopped this
// view.
func (m *Manager) Invalidations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.invalidations
}

// InitImage fetches the view's initial data (Figure 2, steps 3–5).
func (m *Manager) InitImage() error {
	m.mu.Lock()
	epoch := m.invalidations
	m.mu.Unlock()
	reply, err := m.call(&wire.Message{Type: wire.TInit})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.applyIncomingLocked(reply.Img, reply.Version); err != nil {
		return err
	}
	m.initialized = true
	// Validity epoch guard: if the DM invalidated this view while the init
	// reply was on the wire, the image we just merged is already stale —
	// claiming validity now would let StartUse run on data the DM believes
	// this view stopped using.
	if m.invalidations == epoch {
		m.valid = true
	}
	m.lastPull = m.clock.Now()
	return nil
}

// PullImage updates the view's shared data with the value held by the
// original component. In strong mode this (transitively) invalidates any
// conflicting active view; in weak mode the directory manager may first
// gather peers' pending updates, depending on the validity trigger.
func (m *Manager) PullImage() error {
	m.mu.Lock()
	if !m.initialized {
		m.mu.Unlock()
		return ErrNotInitialized
	}
	since := m.seen
	epoch := m.invalidations
	m.mu.Unlock()

	reply, err := m.call(&wire.Message{Type: wire.TPull, Since: since, Op: m.op})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.applyIncomingLocked(reply.Img, reply.Version); err != nil {
		return err
	}
	// Validity epoch guard: an invalidate that interleaved with the pull
	// reply supersedes it — the merged data is kept (it is still the newest
	// we have) but the view must pull again before StartUse.
	if m.invalidations == epoch {
		m.valid = true
	}
	m.lastPull = m.clock.Now()
	return nil
}

// PushImage sends the view's modified data to the original component. It
// extracts the current view state, diffs it against the last synchronized
// snapshot, and sends only the changed entries (stamped with the version
// they were based on, for conflict detection at the primary). A clean view
// sends nothing. Any asynchronous rounds are drained first, so the
// synchronous push observes a quiet session.
func (m *Manager) PushImage() error {
	m.drainPushes()
	m.mu.Lock()
	if !m.initialized {
		m.mu.Unlock()
		return ErrNotInitialized
	}
	delta, ops, cur, err := m.extractDeltaLocked()
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if delta.Len() == 0 {
		m.pendingOps = 0
		m.lastPush = m.clock.Now()
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	reply, err := m.call(&wire.Message{Type: wire.TPush, Img: delta, Ops: uint32(ops)})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finishPushLocked(delta, cur, reply, ops)
}

// StartUse marks the beginning of a mutually exclusive work window on the
// shared data (Figure 2, step 6). While a window is open, the cache
// manager will not merge or extract updates. StartUse fails with
// ErrInvalidated if the image was invalidated since the last pull.
func (m *Manager) StartUse() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.initialized {
		return ErrNotInitialized
	}
	if m.killed {
		return transport.ErrClosed
	}
	if !m.valid {
		return ErrInvalidated
	}
	for m.inUse {
		m.cond.Wait()
	}
	m.inUse = true
	return nil
}

// EndUse closes the work window (Figure 2, step 7) and counts one logical
// operation on the shared data.
func (m *Manager) EndUse() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inUse {
		return
	}
	m.inUse = false
	m.pendingOps++
	m.cond.Broadcast()
}

// Acquire requests the protocol-level token from the directory side. The
// base Flecc protocol does not use tokens (mutual exclusion is handled by
// invalidations); the time-sharing baseline serializes agents with it.
func (m *Manager) Acquire() error {
	_, err := m.call(&wire.Message{Type: wire.TAcquire, Op: m.op})
	return err
}

// Release returns the token obtained with Acquire.
func (m *Manager) Release() error {
	_, err := m.call(&wire.Message{Type: wire.TRelease})
	return err
}

// SetMode switches the view between strong and weak operation at run time.
// Outstanding asynchronous pushes drain first: a mode switch takes effect
// on a quiet session, never between a round's dispatch and its ack.
func (m *Manager) SetMode(mode wire.Mode) error {
	m.drainPushes()
	if _, err := m.call(&wire.Message{Type: wire.TSetMode, Mode: mode}); err != nil {
		return err
	}
	m.mu.Lock()
	m.mode = mode
	m.mu.Unlock()
	return nil
}

// SetProps installs a new dynamic property set for the view. Like
// SetMode, it drains outstanding asynchronous pushes first.
func (m *Manager) SetProps(props property.Set) error {
	m.drainPushes()
	if _, err := m.call(&wire.Message{Type: wire.TSetProps, Props: props}); err != nil {
		return err
	}
	m.mu.Lock()
	m.props = props.Clone()
	m.mu.Unlock()
	return nil
}

// KillImage pushes any pending changes, unregisters the view, and detaches
// from the network (Figure 2, steps 20–21).
func (m *Manager) KillImage() error {
	m.StopTriggers()
	m.drainPushes()
	m.mu.Lock()
	dirty := m.initialized && m.valid && m.pendingOps > 0
	m.killed = true
	m.mu.Unlock()
	if dirty {
		if err := m.PushImage(); err != nil {
			return fmt.Errorf("cache: final push: %w", err)
		}
	}
	ep := m.endpoint()
	if _, err := ep.Call(m.dir, &wire.Message{Type: wire.TUnregister}); err != nil {
		ep.Close()
		return err
	}
	return ep.Close()
}

// applyIncomingLocked folds an incoming image (init/pull reply or DM
// update) into the snapshot and the application view. Entries the view has
// modified locally since the last synchronization are NOT overwritten —
// the local change stays pending and is reconciled at push time by the
// directory manager's conflict detection (the pushed entry still carries
// its old base version, so a concurrent remote write is detected and
// handed to the application resolver). Caller holds mu.
func (m *Manager) applyIncomingLocked(img *image.Image, ver vclock.Version) error {
	if m.base == nil {
		m.base = image.New(m.props.Clone())
	}
	if img != nil && img.Len() > 0 {
		apply := img
		if m.initialized {
			if cur, err := m.view.Extract(m.props); err == nil && cur != nil {
				apply = image.New(img.Props.Clone())
				apply.Version = img.Version
				for _, k := range img.Keys() {
					in := img.Entries[k]
					ce, curOK := cur.Get(k)
					be, baseOK := m.base.Get(k)
					dirty := curOK != (baseOK && !be.Deleted) ||
						(curOK && baseOK && !ce.Equal(be))
					if dirty && !(curOK && ce.Equal(in)) {
						// Keep the local pending change; skip this entry
						// (and leave its base snapshot untouched so the
						// push carries the old base version).
						continue
					}
					apply.Put(in.Clone())
				}
			}
		}
		// Merging into the view is the application's mergeIntoView; a
		// failing merge must not half-update the snapshot, so the base is
		// only advanced afterwards.
		if err := m.view.Merge(apply, m.props); err != nil {
			return fmt.Errorf("cache: merge into view: %w", err)
		}
		for _, k := range apply.Keys() {
			m.base.Put(apply.Entries[k].Clone())
		}
	}
	if ver > m.seen {
		m.seen = ver
	}
	if img != nil && img.Version > m.seen {
		m.seen = img.Version
	}
	m.base.Version = m.seen
	return nil
}

// extractDeltaLocked extracts the current view state and returns the
// changed entries (relative to base), the pending op count, and the full
// current snapshot. Delta entries carry the version of the base data they
// supersede. Caller holds mu.
func (m *Manager) extractDeltaLocked() (*image.Image, int, *image.Image, error) {
	cur, err := m.view.Extract(m.props)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("cache: extract from view: %w", err)
	}
	if cur == nil {
		cur = image.New(m.props.Clone())
	}
	cur.Props = m.props.Clone()
	delta := image.New(m.props.Clone())
	for k, e := range cur.Entries {
		be, ok := m.base.Get(k)
		if ok && e.Equal(be) {
			continue
		}
		out := e.Clone()
		if ok {
			out.Version = be.Version // version the change was based on
		} else {
			out.Version = 0
		}
		out.Writer = m.name
		delta.Put(out)
	}
	// Deletions: keys in base missing from the current extract.
	for k, be := range m.base.Entries {
		if _, ok := cur.Get(k); !ok && !be.Deleted {
			delta.Put(image.Entry{Key: k, Version: be.Version, Writer: m.name, Deleted: true})
		}
	}
	return delta, m.pendingOps, cur, nil
}

// handle serves directory-manager-initiated commands.
func (m *Manager) handle(req *wire.Message) *wire.Message {
	switch req.Type {
	case wire.TInvalidate:
		return m.handleInvalidate()
	case wire.TPull:
		return m.handleFetch()
	case wire.TUpdate:
		return m.handleUpdate(req)
	default:
		return &wire.Message{Type: wire.TErr, Err: fmt.Sprintf("cache %s: unexpected message %s", m.name, req.Type)}
	}
}

// handleInvalidate implements Figure 2 steps 12–14 from the view side:
// wait for any open use window, surrender pending updates, and stop using
// the data.
func (m *Manager) handleInvalidate() *wire.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.inUse {
		m.cond.Wait()
	}
	if !m.initialized {
		return &wire.Message{Type: wire.TImage}
	}
	delta, ops, cur, err := m.extractDeltaLocked()
	if err != nil {
		return &wire.Message{Type: wire.TErr, Err: err.Error()}
	}
	m.base = cur
	m.pendingOps = 0
	m.valid = false
	m.invalidations++
	return &wire.Message{Type: wire.TImage, Img: delta, Ops: uint32(ops)}
}

// handleFetch surrenders pending updates without stopping the view
// (weak-mode gathering).
func (m *Manager) handleFetch() *wire.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.inUse {
		m.cond.Wait()
	}
	if !m.initialized {
		return &wire.Message{Type: wire.TImage}
	}
	delta, ops, cur, err := m.extractDeltaLocked()
	if err != nil {
		return &wire.Message{Type: wire.TErr, Err: err.Error()}
	}
	m.base = cur
	m.pendingOps = 0
	return &wire.Message{Type: wire.TImage, Img: delta, Ops: uint32(ops)}
}

// handleUpdate applies a DM-initiated update (push-propagation, used by
// the propagation ablation).
func (m *Manager) handleUpdate(req *wire.Message) *wire.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.inUse {
		m.cond.Wait()
	}
	if err := m.applyIncomingLocked(req.Img, req.Version); err != nil {
		return &wire.Message{Type: wire.TErr, Err: err.Error()}
	}
	return &wire.Message{Type: wire.TAck}
}

// triggerEnv builds the evaluation environment for push/pull triggers:
// the view's own variables plus the builtins pending, sincePull and
// sincePush. Caller holds mu.
func (m *Manager) triggerEnvLocked() trigger.Env {
	now := m.clock.Now()
	builtins := trigger.MapEnv{
		"pending":   float64(m.pendingOps),
		"sincePull": float64(now - m.lastPull),
		"sincePush": float64(now - m.lastPush),
	}
	if m.vars == nil {
		return builtins
	}
	return chainEnv{first: builtins, rest: m.vars}
}

type chainEnv struct {
	first trigger.MapEnv
	rest  trigger.Env
}

func (c chainEnv) Lookup(name string) (float64, bool) {
	if v, ok := c.first[name]; ok {
		return v, true
	}
	return c.rest.Lookup(name)
}

// EvaluateTriggers evaluates the push and pull triggers at the current
// virtual time and performs the corresponding synchronization. It returns
// (pushed, pulled). Trigger evaluation is skipped while a use window is
// open (the view marked the data as mutually exclusive).
func (m *Manager) EvaluateTriggers() (pushed, pulled bool, err error) {
	m.mu.Lock()
	if m.inUse || !m.initialized || m.killed {
		m.mu.Unlock()
		return false, false, nil
	}
	env := m.triggerEnvLocked()
	now := float64(m.clock.Now())
	firePush, errPush := m.pushTr.Fire(now, env)
	firePull, errPull := m.pullTr.Fire(now, env)
	m.mu.Unlock()
	if errPush != nil {
		return false, false, fmt.Errorf("cache: push trigger: %w", errPush)
	}
	if errPull != nil {
		return false, false, fmt.Errorf("cache: pull trigger: %w", errPull)
	}
	if firePush {
		if err := m.PushImage(); err != nil {
			return false, false, err
		}
		pushed = true
	}
	if firePull {
		if err := m.PullImage(); err != nil {
			return pushed, false, err
		}
		pulled = true
	}
	return pushed, pulled, nil
}

// ScheduleTriggers arranges for EvaluateTriggers to run every period
// virtual milliseconds on a simulated clock. It is a no-op (returning
// false) when the manager has no triggers or the clock is not a *vclock.Sim.
// Use StopTriggers (or KillImage) to cancel.
func (m *Manager) ScheduleTriggers(period vclock.Duration) bool {
	sim, ok := m.clock.(*vclock.Sim)
	if !ok || (m.pushTr.IsZero() && m.pullTr.IsZero()) || period <= 0 {
		return false
	}
	m.mu.Lock()
	if m.cancelTick != nil || m.killed {
		m.mu.Unlock()
		return false
	}
	stopped := false
	m.cancelTick = func() { stopped = true }
	m.mu.Unlock()

	var tick func()
	tick = func() {
		m.mu.Lock()
		dead := m.killed || stopped
		m.mu.Unlock()
		if dead {
			return
		}
		_, _, _ = m.EvaluateTriggers()
		sim.After(period, tick)
	}
	sim.After(period, tick)
	return true
}

// StartTicker evaluates the push/pull triggers every period of wall time
// on a background goroutine — the scheduling mode for real (non-simulated)
// deployments such as fleccview. It returns a stop function (safe to call
// more than once), or nil when the manager has no triggers. Evaluation
// errors are delivered to onErr (may be nil to ignore them).
func (m *Manager) StartTicker(period time.Duration, onErr func(error)) (stop func()) {
	if m.pushTr.IsZero() && m.pullTr.IsZero() || period <= 0 {
		return nil
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, _, err := m.EvaluateTriggers(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// StopTriggers cancels the trigger scheduler (idempotent).
func (m *Manager) StopTriggers() {
	m.mu.Lock()
	if m.cancelTick != nil {
		m.cancelTick()
		m.cancelTick = nil
	}
	m.mu.Unlock()
}

// Base returns a clone of the last synchronized snapshot (tests/tools).
func (m *Manager) Base() *image.Image {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil {
		return nil
	}
	return m.base.Clone()
}
