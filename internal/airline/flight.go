// Package airline implements the paper's case study (§5): a
// component-based airline reservation system consisting of a main flight
// database, replicable travel-agent views that assist clients, and
// reservation clients of different capabilities (viewers and buyers).
//
// The same ReservationSystem type plays both the original component (the
// main database) and the travel agents' working replicas — exactly the
// view relationship from §3.2: each agent's data is a subset of the
// database's, selected by the "Flights" property.
package airline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
)

// PropFlights is the property name agents use to declare which flights
// they serve (the paper's `"Flights"` property).
const PropFlights = "Flights"

// Flight is one flight record in the database.
type Flight struct {
	// Number is the unique flight number.
	Number int
	// Origin and Dest are airport codes.
	Origin, Dest string
	// Capacity is the number of sellable seats.
	Capacity int
	// Reserved is the number of seats sold.
	Reserved int
	// Fare is the ticket price in cents.
	Fare int
}

// Available returns the number of unsold seats.
func (f Flight) Available() int { return f.Capacity - f.Reserved }

// Key returns the image entry key for the flight.
func (f Flight) Key() string { return FlightKey(f.Number) }

// FlightKey renders the image entry key for a flight number.
func FlightKey(number int) string { return "flight/" + strconv.Itoa(number) }

// ParseFlightKey extracts the flight number from an entry key.
func ParseFlightKey(key string) (int, error) {
	rest, ok := strings.CutPrefix(key, "flight/")
	if !ok {
		return 0, fmt.Errorf("airline: %q is not a flight key", key)
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("airline: bad flight key %q: %w", key, err)
	}
	return n, nil
}

// Encode renders the flight payload ("origin|dest|capacity|reserved|fare").
func (f Flight) Encode() []byte {
	return []byte(fmt.Sprintf("%s|%s|%d|%d|%d", f.Origin, f.Dest, f.Capacity, f.Reserved, f.Fare))
}

// DecodeFlight parses an encoded flight payload for the given number.
func DecodeFlight(number int, b []byte) (Flight, error) {
	parts := strings.Split(string(b), "|")
	if len(parts) != 5 {
		return Flight{}, fmt.Errorf("airline: bad flight payload %q", b)
	}
	capn, err1 := strconv.Atoi(parts[2])
	res, err2 := strconv.Atoi(parts[3])
	fare, err3 := strconv.Atoi(parts[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return Flight{}, fmt.Errorf("airline: bad numbers in flight payload %q", b)
	}
	return Flight{
		Number: number, Origin: parts[0], Dest: parts[1],
		Capacity: capn, Reserved: res, Fare: fare,
	}, nil
}

// Errors reported by reservation operations.
var (
	ErrNoSuchFlight = fmt.Errorf("airline: no such flight")
	ErrSoldOut      = fmt.Errorf("airline: not enough seats")
)

// ReservationSystem is the flight store. It is safe for concurrent use and
// implements the Flecc image codec (extractFromObject/mergeIntoObject and
// extractFromView/mergeIntoView are the same shape, per the paper's
// Figure 3).
type ReservationSystem struct {
	mu      sync.Mutex
	flights map[int]*Flight
}

// NewReservationSystem returns an empty system.
func NewReservationSystem() *ReservationSystem {
	return &ReservationSystem{flights: map[int]*Flight{}}
}

// AddFlight inserts or replaces a flight.
func (rs *ReservationSystem) AddFlight(f Flight) {
	rs.mu.Lock()
	cp := f
	rs.flights[f.Number] = &cp
	rs.mu.Unlock()
}

// Flight returns a copy of the flight record.
func (rs *ReservationSystem) Flight(number int) (Flight, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	f, ok := rs.flights[number]
	if !ok {
		return Flight{}, false
	}
	return *f, true
}

// Flights returns copies of all flights, ordered by number.
func (rs *ReservationSystem) Flights() []Flight {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Flight, 0, len(rs.flights))
	for _, f := range rs.flights {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Len returns the number of flights.
func (rs *ReservationSystem) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.flights)
}

// Browse returns the flights between two airports with seats available —
// the viewer operation.
func (rs *ReservationSystem) Browse(origin, dest string) []Flight {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []Flight
	for _, f := range rs.flights {
		if (origin == "" || f.Origin == origin) && (dest == "" || f.Dest == dest) && f.Available() > 0 {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// SeatsAvailable returns the unsold seats on a flight.
func (rs *ReservationSystem) SeatsAvailable(number int) (int, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	f, ok := rs.flights[number]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchFlight, number)
	}
	return f.Available(), nil
}

// ConfirmTickets reserves count seats on a flight — the paper's
// confirmTickets(count, flightNumber) operation.
func (rs *ReservationSystem) ConfirmTickets(count, number int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	f, ok := rs.flights[number]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFlight, number)
	}
	if f.Available() < count {
		return fmt.Errorf("%w: flight %d has %d seats, want %d", ErrSoldOut, number, f.Available(), count)
	}
	f.Reserved += count
	return nil
}

// CancelTickets releases count seats on a flight.
func (rs *ReservationSystem) CancelTickets(count, number int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	f, ok := rs.flights[number]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFlight, number)
	}
	f.Reserved -= count
	if f.Reserved < 0 {
		f.Reserved = 0
	}
	return nil
}

// TotalReserved sums reserved seats across all flights (a trigger
// variable).
func (rs *ReservationSystem) TotalReserved() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	total := 0
	for _, f := range rs.flights {
		total += f.Reserved
	}
	return total
}

// flightsDomain returns the flight-number domain of a property set
// (empty domain = no restriction declared).
func flightsDomain(props property.Set) (property.Domain, bool) {
	p, ok := props.Get(PropFlights)
	if !ok {
		return property.Domain{}, false
	}
	return p.Domain, true
}

// Extract implements the Flecc extract method (extractFromObject /
// extractFromView): it snapshots the flights selected by the property
// set's "Flights" domain (all flights when the property is absent).
func (rs *ReservationSystem) Extract(props property.Set) (*image.Image, error) {
	dom, restricted := flightsDomain(props)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	img := image.New(props.Clone())
	for n, f := range rs.flights {
		if restricted && !dom.ContainsValue(float64(n)) {
			continue
		}
		img.Put(image.Entry{Key: f.Key(), Value: f.Encode()})
	}
	return img, nil
}

// ExtractKeys implements image.KeyedExtractor: it snapshots just the
// requested flights, applying the same "Flights" domain restriction as
// Extract, so the directory store can serve delta pulls by looking up the
// handful of flights that changed instead of walking the whole database.
// Non-flight keys and absent flights are omitted.
func (rs *ReservationSystem) ExtractKeys(props property.Set, keys []string) (*image.Image, error) {
	dom, restricted := flightsDomain(props)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	img := image.New(props.Clone())
	for _, key := range keys {
		n, err := ParseFlightKey(key)
		if err != nil {
			continue // foreign entries are not ours to interpret
		}
		if restricted && !dom.ContainsValue(float64(n)) {
			continue
		}
		f, ok := rs.flights[n]
		if !ok {
			continue
		}
		img.Put(image.Entry{Key: f.Key(), Value: f.Encode()})
	}
	return img, nil
}

// Merge implements the Flecc merge method (mergeIntoObject /
// mergeIntoView): it folds flight entries into the store, honoring the
// property restriction and tombstones.
func (rs *ReservationSystem) Merge(img *image.Image, props property.Set) error {
	dom, restricted := flightsDomain(props)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for key, e := range img.Entries {
		n, err := ParseFlightKey(key)
		if err != nil {
			continue // foreign entries are not ours to interpret
		}
		if restricted && !dom.ContainsValue(float64(n)) {
			continue
		}
		if e.Deleted {
			delete(rs.flights, n)
			continue
		}
		f, err := DecodeFlight(n, e.Value)
		if err != nil {
			return err
		}
		rs.flights[n] = &f
	}
	return nil
}

var (
	_ image.Codec          = (*ReservationSystem)(nil)
	_ image.KeyedExtractor = (*ReservationSystem)(nil)
)

// SeatResolver is the application conflict resolver for concurrent
// reservations: when two agents sold seats on the same flight based on the
// same snapshot, the merged record keeps the higher Reserved count (seats,
// once sold, stay sold) while taking the rest of the incoming record.
// Overselling beyond capacity is clamped.
func SeatResolver(c image.Conflict) (image.Entry, error) {
	ourN, err1 := ParseFlightKey(c.Key)
	if err1 != nil || c.Ours.Value == nil || c.Theirs.Value == nil {
		// Not a flight record (or a deletion raced): take the incoming.
		return c.Theirs, nil
	}
	ours, err1 := DecodeFlight(ourN, c.Ours.Value)
	theirs, err2 := DecodeFlight(ourN, c.Theirs.Value)
	if err1 != nil || err2 != nil {
		return c.Theirs, nil
	}
	merged := theirs
	if ours.Reserved > merged.Reserved {
		merged.Reserved = ours.Reserved
	}
	if merged.Reserved > merged.Capacity {
		merged.Reserved = merged.Capacity
	}
	out := c.Theirs
	out.Value = merged.Encode()
	return out, nil
}

// SeedFlights populates a system with count flights numbered from start,
// with the given capacity, and round-robin city pairs — the synthetic
// stand-in for the paper's "main flight database that contains all
// information about existing flights".
func SeedFlights(rs *ReservationSystem, start, count, capacity int) {
	cities := []string{"NYC", "BOS", "SFO", "LAX", "ORD", "MIA"}
	for i := 0; i < count; i++ {
		n := start + i
		rs.AddFlight(Flight{
			Number:   n,
			Origin:   cities[i%len(cities)],
			Dest:     cities[(i+1)%len(cities)],
			Capacity: capacity,
			Fare:     10000 + 100*(i%50),
		})
	}
}
