package airline

import (
	"fmt"

	"flecc/internal/cache"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// AgentConfig mirrors the constructor arguments of the paper's Figure 3
// travel agent: where the directory manager lives, which flights this
// agent serves, the mode of operation, and the three quality triggers.
type AgentConfig struct {
	// Name is the agent's unique node name (e.g. "agent-7").
	Name string
	// Directory is the directory manager's node name.
	Directory string
	// Net is the network to attach to.
	Net transport.Network
	// Clock is the discrete time source.
	Clock vclock.Clock
	// FlightsFrom/FlightsTo define the agent's served flight-number range
	// (the "Flights" property value).
	FlightsFrom, FlightsTo int
	// Mode is the initial consistency mode.
	Mode wire.Mode
	// PushTrigger, PullTrigger, ValidityTrigger are the quality-trigger
	// sources registered with the cache manager (the paper's three
	// "(t > 1500)" constructor arguments).
	PushTrigger, PullTrigger, ValidityTrigger string
	// ReadOnly declares the agent a pure browser: its pulls are tagged
	// read operations so the read/write-semantics extension can let
	// concurrent readers coexist in strong mode.
	ReadOnly bool
	// Reconnect, when non-nil, lets the agent's cache manager survive its
	// endpoint dying (directory restart, dropped connection) by re-dialing
	// with backoff and re-registering.
	Reconnect *cache.ReconnectPolicy
}

// TravelAgent is a deployed travel-agent view: a working replica of the
// flight database slice it serves, plus the cache manager that keeps the
// replica coherent. It is the Go translation of the paper's Figure 3
// pseudo-code class.
type TravelAgent struct {
	// ARS is the agent's working replica (the `ars` field in Figure 3).
	ARS *ReservationSystem
	// CM is the agent's cache manager (the `cm` field in Figure 3).
	CM *cache.Manager

	name string
}

// agentVars exposes the agent's replica state to trigger expressions.
type agentVars struct{ rs *ReservationSystem }

// Lookup implements trigger.Env: triggers may reference "reservedTotal"
// (total seats this agent has sold locally) and "flights" (replica size).
func (v agentVars) Lookup(name string) (float64, bool) {
	switch name {
	case "reservedTotal":
		return float64(v.rs.TotalReserved()), true
	case "flights":
		return float64(v.rs.Len()), true
	default:
		return 0, false
	}
}

var _ trigger.Env = agentVars{}

// NewTravelAgent creates the agent's replica and cache manager and
// registers with the directory manager (Figure 3 lines 7–16), then
// initializes the data (line 17).
func NewTravelAgent(cfg AgentConfig) (*TravelAgent, error) {
	if cfg.FlightsTo < cfg.FlightsFrom {
		return nil, fmt.Errorf("airline: empty flight range [%d,%d]", cfg.FlightsFrom, cfg.FlightsTo)
	}
	ars := NewReservationSystem()
	props := property.NewSet(property.New(PropFlights,
		property.DiscreteRange(cfg.FlightsFrom, cfg.FlightsTo)))
	op := wire.OpWrite
	if cfg.ReadOnly {
		op = wire.OpRead
	}
	cm, err := cache.New(cache.Config{
		Name:            cfg.Name,
		Directory:       cfg.Directory,
		Net:             cfg.Net,
		View:            ars,
		Props:           props,
		Mode:            cfg.Mode,
		PushTrigger:     cfg.PushTrigger,
		PullTrigger:     cfg.PullTrigger,
		ValidityTrigger: cfg.ValidityTrigger,
		Vars:            agentVars{rs: ars},
		Clock:           cfg.Clock,
		Op:              op,
		Reconnect:       cfg.Reconnect,
	})
	if err != nil {
		return nil, err
	}
	if err := cm.InitImage(); err != nil {
		cm.KillImage()
		return nil, fmt.Errorf("airline: init %s: %w", cfg.Name, err)
	}
	return &TravelAgent{ARS: ars, CM: cm, name: cfg.Name}, nil
}

// Name returns the agent's node name.
func (a *TravelAgent) Name() string { return a.name }

// ReserveTickets performs one coherent reservation: pull the freshest
// data the mode/triggers allow, work on it inside a mutual-exclusion
// window, and leave the update pending for the push policy to propagate.
// It is one iteration of the paper's Figure 3 loop (lines 18–23).
func (a *TravelAgent) ReserveTickets(count, flightNumber int) error {
	if err := a.CM.PullImage(); err != nil {
		return err
	}
	if err := a.CM.StartUse(); err != nil {
		return err
	}
	err := a.ARS.ConfirmTickets(count, flightNumber)
	a.CM.EndUse()
	return err
}

// Browse performs one read-only lookup against the agent's replica,
// pulling first so the viewer sees data as fresh as its consistency level
// provides.
func (a *TravelAgent) Browse(origin, dest string) ([]Flight, error) {
	if err := a.CM.PullImage(); err != nil {
		return nil, err
	}
	if err := a.CM.StartUse(); err != nil {
		return nil, err
	}
	flights := a.ARS.Browse(origin, dest)
	a.CM.EndUse()
	return flights, nil
}

// Run executes the Figure 3 main loop: n reservations of one seat on the
// agent's first served flight, then nothing else (callers decide when to
// kill the image).
func (a *TravelAgent) Run(n, flightNumber int) error {
	for i := 0; i < n; i++ {
		if err := a.ReserveTickets(1, flightNumber); err != nil {
			return fmt.Errorf("airline: %s iteration %d: %w", a.name, i, err)
		}
	}
	return nil
}

// Close pushes pending work and unregisters (Figure 3 line 30).
func (a *TravelAgent) Close() error { return a.CM.KillImage() }

// Client models a reservation client of a given capability (§5.1).
type Client struct {
	// Agent is the travel agent assisting this client.
	Agent *TravelAgent
	// Buyer clients need fresh data (strong mode); viewers accept stale
	// data (weak mode).
	Buyer bool
}

// BecomeBuyer switches the client (and its agent) to buying: the paper's
// "a viewer can become at any point a buyer", which tightens the agent's
// consistency to strong.
func (c *Client) BecomeBuyer() error {
	if c.Buyer {
		return nil
	}
	if err := c.Agent.CM.SetMode(wire.Strong); err != nil {
		return err
	}
	c.Buyer = true
	return nil
}

// BecomeViewer relaxes the client back to browsing (weak mode).
func (c *Client) BecomeViewer() error {
	if !c.Buyer {
		return nil
	}
	if err := c.Agent.CM.SetMode(wire.Weak); err != nil {
		return err
	}
	c.Buyer = false
	return nil
}

// Buy reserves seats; only buyers may buy.
func (c *Client) Buy(count, flight int) error {
	if !c.Buyer {
		return fmt.Errorf("airline: client is a viewer; call BecomeBuyer first")
	}
	if err := c.Agent.ReserveTickets(count, flight); err != nil {
		return err
	}
	// Buyers publish immediately: the sale must be visible system-wide.
	return c.Agent.CM.PushImage()
}

// View browses flights; available to all clients.
func (c *Client) View(origin, dest string) ([]Flight, error) {
	return c.Agent.Browse(origin, dest)
}
