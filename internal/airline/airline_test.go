package airline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func TestFlightEncodeDecode(t *testing.T) {
	f := Flight{Number: 102, Origin: "NYC", Dest: "SFO", Capacity: 200, Reserved: 42, Fare: 19900}
	got, err := DecodeFlight(102, f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("round trip: %+v != %+v", got, f)
	}
}

func TestDecodeFlightErrors(t *testing.T) {
	for _, b := range []string{"", "a|b|c", "a|b|x|0|0", "a|b|1|x|0", "a|b|1|0|x"} {
		if _, err := DecodeFlight(1, []byte(b)); err == nil {
			t.Errorf("DecodeFlight(%q) should fail", b)
		}
	}
}

func TestFlightKeys(t *testing.T) {
	if FlightKey(102) != "flight/102" {
		t.Fatal("key format")
	}
	n, err := ParseFlightKey("flight/102")
	if err != nil || n != 102 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for _, k := range []string{"flight/", "flight/x", "nope/1", "102"} {
		if _, err := ParseFlightKey(k); err == nil {
			t.Errorf("ParseFlightKey(%q) should fail", k)
		}
	}
}

func TestQuickFlightRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	f := func() bool {
		fl := Flight{
			Number:   r.Intn(1000),
			Origin:   []string{"NYC", "BOS", "SFO"}[r.Intn(3)],
			Dest:     []string{"LAX", "ORD", "MIA"}[r.Intn(3)],
			Capacity: r.Intn(500),
			Reserved: r.Intn(500),
			Fare:     r.Intn(100000),
		}
		got, err := DecodeFlight(fl.Number, fl.Encode())
		return err == nil && got == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReservations(t *testing.T) {
	rs := NewReservationSystem()
	rs.AddFlight(Flight{Number: 1, Origin: "NYC", Dest: "BOS", Capacity: 3})
	if err := rs.ConfirmTickets(2, 1); err != nil {
		t.Fatal(err)
	}
	avail, err := rs.SeatsAvailable(1)
	if err != nil || avail != 1 {
		t.Fatalf("avail=%d err=%v", avail, err)
	}
	if err := rs.ConfirmTickets(2, 1); !errors.Is(err, ErrSoldOut) {
		t.Fatalf("overbooking err = %v", err)
	}
	if err := rs.ConfirmTickets(1, 99); !errors.Is(err, ErrNoSuchFlight) {
		t.Fatalf("missing flight err = %v", err)
	}
	if err := rs.CancelTickets(5, 1); err != nil {
		t.Fatal(err)
	}
	avail, _ = rs.SeatsAvailable(1)
	if avail != 3 {
		t.Fatalf("cancel should clamp at 0 reserved, avail=%d", avail)
	}
	if err := rs.CancelTickets(1, 99); !errors.Is(err, ErrNoSuchFlight) {
		t.Fatal("cancel on missing flight should fail")
	}
}

func TestBrowse(t *testing.T) {
	rs := NewReservationSystem()
	rs.AddFlight(Flight{Number: 1, Origin: "NYC", Dest: "BOS", Capacity: 2})
	rs.AddFlight(Flight{Number: 2, Origin: "NYC", Dest: "SFO", Capacity: 2})
	rs.AddFlight(Flight{Number: 3, Origin: "NYC", Dest: "BOS", Capacity: 1, Reserved: 1}) // full
	got := rs.Browse("NYC", "BOS")
	if len(got) != 1 || got[0].Number != 1 {
		t.Fatalf("browse = %+v", got)
	}
	if len(rs.Browse("NYC", "")) != 2 {
		t.Fatal("wildcard dest")
	}
	if len(rs.Browse("", "")) != 2 {
		t.Fatal("full wildcard excludes sold-out flights")
	}
}

func TestExtractRestrictedByProps(t *testing.T) {
	rs := NewReservationSystem()
	SeedFlights(rs, 100, 10, 50)
	img, err := rs.Extract(property.MustSet("Flights={100..104}"))
	if err != nil {
		t.Fatal(err)
	}
	if img.Len() != 5 {
		t.Fatalf("len = %d, want 5", img.Len())
	}
	// No Flights property: everything.
	img, _ = rs.Extract(property.NewSet())
	if img.Len() != 10 {
		t.Fatalf("unrestricted len = %d", img.Len())
	}
}

func TestMergeRestrictedAndForeignKeys(t *testing.T) {
	rs := NewReservationSystem()
	img := image.New(property.MustSet("Flights={1}"))
	img.Put(image.Entry{Key: FlightKey(1), Value: Flight{Number: 1, Origin: "A", Dest: "B", Capacity: 10}.Encode()})
	img.Put(image.Entry{Key: FlightKey(2), Value: Flight{Number: 2, Origin: "A", Dest: "B", Capacity: 10}.Encode()})
	img.Put(image.Entry{Key: "other/data", Value: []byte("ignored")})
	if err := rs.Merge(img, img.Props); err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("len = %d: restriction or foreign-key filtering failed", rs.Len())
	}
	// Tombstone removes.
	img2 := image.New(property.MustSet("Flights={1}"))
	img2.Put(image.Entry{Key: FlightKey(1), Deleted: true})
	rs.Merge(img2, img2.Props)
	if rs.Len() != 0 {
		t.Fatal("tombstone should delete")
	}
}

func TestMergeBadPayload(t *testing.T) {
	rs := NewReservationSystem()
	img := image.New(property.NewSet())
	img.Put(image.Entry{Key: FlightKey(1), Value: []byte("garbage")})
	if err := rs.Merge(img, img.Props); err == nil {
		t.Fatal("bad payload should fail")
	}
}

func TestSeatResolver(t *testing.T) {
	ours := Flight{Number: 1, Origin: "A", Dest: "B", Capacity: 10, Reserved: 7}
	theirs := Flight{Number: 1, Origin: "A", Dest: "B", Capacity: 10, Reserved: 5}
	win, err := SeatResolver(image.Conflict{
		Key:    FlightKey(1),
		Ours:   image.Entry{Key: FlightKey(1), Value: ours.Encode()},
		Theirs: image.Entry{Key: FlightKey(1), Value: theirs.Encode()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeFlight(1, win.Value)
	if got.Reserved != 7 {
		t.Fatalf("resolver kept %d reserved, want max 7", got.Reserved)
	}
	// Clamping at capacity.
	ours.Reserved = 12
	win, _ = SeatResolver(image.Conflict{
		Key:    FlightKey(1),
		Ours:   image.Entry{Key: FlightKey(1), Value: ours.Encode()},
		Theirs: image.Entry{Key: FlightKey(1), Value: theirs.Encode()},
	})
	got, _ = DecodeFlight(1, win.Value)
	if got.Reserved != 10 {
		t.Fatalf("reserved should clamp to capacity, got %d", got.Reserved)
	}
	// Non-flight conflicts fall through to theirs.
	win, _ = SeatResolver(image.Conflict{
		Key:    "other/key",
		Ours:   image.Entry{Key: "other/key", Value: []byte("o")},
		Theirs: image.Entry{Key: "other/key", Value: []byte("t")},
	})
	if string(win.Value) != "t" {
		t.Fatal("non-flight conflict should take theirs")
	}
}

func TestSeedFlights(t *testing.T) {
	rs := NewReservationSystem()
	SeedFlights(rs, 100, 25, 40)
	if rs.Len() != 25 {
		t.Fatalf("len = %d", rs.Len())
	}
	f, ok := rs.Flight(100)
	if !ok || f.Capacity != 40 || f.Origin == f.Dest {
		t.Fatalf("flight = %+v", f)
	}
	all := rs.Flights()
	if len(all) != 25 || all[0].Number != 100 || all[24].Number != 124 {
		t.Fatal("Flights() ordering")
	}
}

// deployment spins up a DB + directory manager for agent tests.
func deployment(t *testing.T) (*transport.Inproc, *vclock.Sim, *ReservationSystem, *directory.Manager) {
	t.Helper()
	net := transport.NewInproc()
	clock := vclock.NewSim()
	db := NewReservationSystem()
	SeedFlights(db, 100, 20, 100)
	dm, err := directory.New("db", db, clock, net, directory.Options{Resolver: SeatResolver})
	if err != nil {
		t.Fatal(err)
	}
	return net, clock, db, dm
}

func TestTravelAgentLifecycle(t *testing.T) {
	net, clock, db, _ := deployment(t)
	a, err := NewTravelAgent(AgentConfig{
		Name: "agent-1", Directory: "db", Net: net, Clock: clock,
		FlightsFrom: 100, FlightsTo: 104, Mode: wire.Weak,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The agent's replica holds exactly its served slice.
	if a.ARS.Len() != 5 {
		t.Fatalf("replica len = %d, want 5", a.ARS.Len())
	}
	if err := a.Run(3, 102); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The sales reached the main database on close.
	f, _ := db.Flight(102)
	if f.Reserved != 3 {
		t.Fatalf("db reserved = %d, want 3", f.Reserved)
	}
}

func TestTravelAgentBadRange(t *testing.T) {
	net, clock, _, _ := deployment(t)
	if _, err := NewTravelAgent(AgentConfig{
		Name: "agent-x", Directory: "db", Net: net, Clock: clock,
		FlightsFrom: 10, FlightsTo: 5,
	}); err == nil {
		t.Fatal("inverted range should fail")
	}
}

func TestTwoAgentsStrongMode(t *testing.T) {
	net, clock, db, _ := deployment(t)
	mk := func(name string) *TravelAgent {
		a, err := NewTravelAgent(AgentConfig{
			Name: name, Directory: "db", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 109, Mode: wire.Strong,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := mk("agent-1")
	a2 := mk("agent-2")
	// Alternating strong reservations on the same flight: every sale must
	// be preserved (one-copy serializability).
	for i := 0; i < 4; i++ {
		if err := a1.ReserveTickets(1, 105); err != nil {
			t.Fatal(err)
		}
		if err := a2.ReserveTickets(1, 105); err != nil {
			t.Fatal(err)
		}
	}
	a1.Close()
	a2.Close()
	f, _ := db.Flight(105)
	if f.Reserved != 8 {
		t.Fatalf("db reserved = %d, want 8 (no lost sales)", f.Reserved)
	}
}

func TestViewerBecomesBuyer(t *testing.T) {
	net, clock, db, dm := deployment(t)
	a, err := NewTravelAgent(AgentConfig{
		Name: "agent-1", Directory: "db", Net: net, Clock: clock,
		FlightsFrom: 100, FlightsTo: 109, Mode: wire.Weak,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Agent: a}
	if _, err := c.View("NYC", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Buy(1, 100); err == nil {
		t.Fatal("viewer should not buy")
	}
	if err := c.BecomeBuyer(); err != nil {
		t.Fatal(err)
	}
	if dm.Mode("agent-1") != wire.Strong {
		t.Fatal("buyer should be strong")
	}
	if err := c.Buy(2, 100); err != nil {
		t.Fatal(err)
	}
	f, _ := db.Flight(100)
	if f.Reserved != 2 {
		t.Fatalf("db reserved = %d", f.Reserved)
	}
	if err := c.BecomeViewer(); err != nil {
		t.Fatal(err)
	}
	if dm.Mode("agent-1") != wire.Weak {
		t.Fatal("viewer should be weak")
	}
	a.Close()
}

func TestConcurrentSalesResolved(t *testing.T) {
	// Two weak agents sell the same flight from the same stale snapshot;
	// the SeatResolver must preserve the larger sale on merge.
	net, clock, db, _ := deployment(t)
	mk := func(name string) *TravelAgent {
		a, err := NewTravelAgent(AgentConfig{
			Name: name, Directory: "db", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 109, Mode: wire.Weak,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := mk("agent-1")
	a2 := mk("agent-2")
	// Both work from the initial snapshot (no pulls in between).
	a1.CM.StartUse()
	a1.ARS.ConfirmTickets(3, 101)
	a1.CM.EndUse()
	a2.CM.StartUse()
	a2.ARS.ConfirmTickets(5, 101)
	a2.CM.EndUse()
	if err := a1.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := a2.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	f, _ := db.Flight(101)
	// The conservative resolver keeps max(3,5)=5; the point is that the
	// later push did not silently erase the earlier sale down to 0.
	if f.Reserved != 5 {
		t.Fatalf("db reserved = %d, want 5 (resolver keeps max)", f.Reserved)
	}
	a1.Close()
	a2.Close()
}

func TestAgentVars(t *testing.T) {
	rs := NewReservationSystem()
	rs.AddFlight(Flight{Number: 1, Capacity: 10, Reserved: 4})
	v := agentVars{rs: rs}
	if got, ok := v.Lookup("reservedTotal"); !ok || got != 4 {
		t.Fatalf("reservedTotal = %g, %v", got, ok)
	}
	if got, ok := v.Lookup("flights"); !ok || got != 1 {
		t.Fatalf("flights = %g, %v", got, ok)
	}
	if _, ok := v.Lookup("nope"); ok {
		t.Fatal("unknown var should be undefined")
	}
}
