package image

import (
	"fmt"
	"sort"

	"flecc/internal/vclock"
)

// Conflict records a key where two images disagree relative to a common
// base — the situation the paper delegates to application extract/merge
// methods "to detect and resolve possible conflicts".
type Conflict struct {
	Key          string
	Base         *Entry // nil if the key did not exist in the base
	Ours, Theirs Entry
}

func (c Conflict) String() string {
	return fmt.Sprintf("conflict on %q (ours v%d by %s, theirs v%d by %s)",
		c.Key, c.Ours.Version, c.Ours.Writer, c.Theirs.Version, c.Theirs.Writer)
}

// Policy decides the winner of a conflict.
type Policy uint8

const (
	// PolicyLastWriterWins keeps the entry with the higher version
	// (ties prefer "theirs", the incoming update).
	PolicyLastWriterWins Policy = iota
	// PolicyOurs keeps the local entry.
	PolicyOurs
	// PolicyTheirs keeps the incoming entry.
	PolicyTheirs
)

func (p Policy) String() string {
	switch p {
	case PolicyLastWriterWins:
		return "last-writer-wins"
	case PolicyOurs:
		return "ours"
	case PolicyTheirs:
		return "theirs"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Resolver adjudicates conflicts a Policy cannot express; applications may
// install one to implement domain resolution (e.g. airline seat counts
// merge by taking the minimum availability).
type Resolver func(c Conflict) (Entry, error)

// MergeOptions configures ThreeWayMerge.
type MergeOptions struct {
	Policy   Policy
	Resolver Resolver // if non-nil, consulted before Policy
}

// MergeResult reports what a merge did.
type MergeResult struct {
	// Applied is the number of keys taken from "theirs".
	Applied int
	// KeptOurs is the number of conflicting keys resolved in favor of ours.
	KeptOurs int
	// Conflicts lists the conflicts encountered (all resolved; merge does
	// not fail on conflicts unless the Resolver errors).
	Conflicts []Conflict
}

// ThreeWayMerge folds "theirs" into "ours" given their common ancestor
// "base" (may be nil, meaning everything is an addition). It mutates ours
// and returns a summary. An entry conflicts when both sides changed it
// relative to the base and the values differ.
func ThreeWayMerge(base, ours, theirs *Image, opt MergeOptions) (MergeResult, error) {
	var res MergeResult
	if theirs == nil {
		return res, nil
	}
	baseGet := func(key string) (Entry, bool) {
		if base == nil {
			return Entry{}, false
		}
		return base.Get(key)
	}
	// Deterministic iteration for reproducible resolver callbacks.
	keys := theirs.Keys()
	for _, k := range keys {
		their := theirs.Entries[k]
		our, ourOK := ours.Get(k)
		bent, baseOK := baseGet(k)

		ourChanged := !ourOK && baseOK || ourOK && (!baseOK || !our.Equal(bent))
		if !ourOK && !baseOK {
			ourChanged = false // pure addition from theirs
		}
		theirChanged := !baseOK || !their.Equal(bent)

		switch {
		case !theirChanged:
			// Theirs didn't move; keep ours as-is.
		case !ourChanged:
			// Fast-forward.
			ours.Put(their.Clone())
			res.Applied++
		case ourOK && our.Equal(their):
			// Both made the same change; nothing to do.
		default:
			var basePtr *Entry
			if baseOK {
				b := bent.Clone()
				basePtr = &b
			}
			c := Conflict{Key: k, Base: basePtr, Ours: our, Theirs: their}
			res.Conflicts = append(res.Conflicts, c)
			winner, err := resolve(c, opt)
			if err != nil {
				return res, fmt.Errorf("image: merge of %q: %w", k, err)
			}
			if winner.Equal(our) && ourOK {
				res.KeptOurs++
			} else {
				ours.Put(winner.Clone())
				res.Applied++
			}
		}
	}
	if theirs.Version > ours.Version {
		ours.Version = theirs.Version
	}
	return res, nil
}

func resolve(c Conflict, opt MergeOptions) (Entry, error) {
	if opt.Resolver != nil {
		return opt.Resolver(c)
	}
	switch opt.Policy {
	case PolicyOurs:
		return c.Ours, nil
	case PolicyTheirs:
		return c.Theirs, nil
	default: // last writer wins
		if c.Ours.Version > c.Theirs.Version {
			return c.Ours, nil
		}
		return c.Theirs, nil
	}
}

// Diff returns the keys whose entries differ between a and b (content
// comparison), sorted. Either image may be nil (treated as empty).
func Diff(a, b *Image) []string {
	var out []string
	seen := map[string]bool{}
	if a != nil {
		for k, e := range a.Entries {
			seen[k] = true
			if b == nil {
				out = append(out, k)
				continue
			}
			be, ok := b.Get(k)
			if !ok || !e.Equal(be) {
				out = append(out, k)
			}
		}
	}
	if b != nil {
		for k := range b.Entries {
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// DeltaSince returns a new image containing only the entries of im with
// Version greater than since. The directory manager sends deltas rather
// than full snapshots when a view pulls and already holds an older image.
func (im *Image) DeltaSince(since vclock.Version) *Image {
	out := New(im.Props.Clone())
	out.Version = im.Version
	for k, e := range im.Entries {
		if e.Version > since {
			out.Entries[k] = e.Clone()
		}
	}
	return out
}
