package image

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flecc/internal/property"
	"flecc/internal/vclock"
)

func entry(key, val string, v vclock.Version, writer string) Entry {
	return Entry{Key: key, Value: []byte(val), Version: v, Writer: writer}
}

func TestImageBasics(t *testing.T) {
	im := New(property.MustSet("Flights={1,2}"))
	im.Put(entry("f/1", "a", 1, "v1"))
	im.Put(entry("f/2", "b", 2, "v1"))
	if im.Len() != 2 {
		t.Fatalf("len = %d", im.Len())
	}
	e, ok := im.Get("f/1")
	if !ok || string(e.Value) != "a" {
		t.Fatalf("Get = %v, %v", e, ok)
	}
	if got := im.Keys(); got[0] != "f/1" || got[1] != "f/2" {
		t.Fatalf("keys = %v", got)
	}
	im.Delete("f/1", 3, "v2")
	e, _ = im.Get("f/1")
	if !e.Deleted {
		t.Fatal("tombstone missing")
	}
}

func TestImagePutOnZero(t *testing.T) {
	var im Image
	im.Put(entry("k", "v", 1, ""))
	if im.Len() != 1 {
		t.Fatal("Put on zero image should allocate")
	}
}

func TestCloneIndependence(t *testing.T) {
	im := New(property.MustSet("A={1}"))
	im.Put(entry("k", "orig", 1, ""))
	c := im.Clone()
	e := c.Entries["k"]
	e.Value[0] = 'X'
	c.Entries["k"] = e
	if string(im.Entries["k"].Value) != "orig" {
		t.Fatal("clone shares payload storage")
	}
	c.Put(entry("k2", "v", 2, ""))
	if im.Len() != 1 {
		t.Fatal("clone shares entry map")
	}
}

func TestRestrict(t *testing.T) {
	im := New(property.NewSet())
	im.Version = 9
	im.Put(entry("a/1", "x", 1, ""))
	im.Put(entry("b/1", "y", 2, ""))
	out := im.Restrict(func(k string) bool { return strings.HasPrefix(k, "a/") })
	if out.Len() != 1 || out.Version != 9 {
		t.Fatalf("restrict = %v", out)
	}
	if _, ok := out.Get("a/1"); !ok {
		t.Fatal("a/1 missing")
	}
}

func TestEntryEqual(t *testing.T) {
	a := entry("k", "v", 1, "w1")
	b := entry("k", "v", 9, "w2") // metadata differs, content equal
	if !a.Equal(b) {
		t.Fatal("content-equal entries should be Equal")
	}
	if a.Equal(entry("k", "x", 1, "w1")) {
		t.Fatal("different payloads should differ")
	}
	if a.Equal(Entry{Key: "k", Value: []byte("v"), Deleted: true}) {
		t.Fatal("tombstone should differ")
	}
}

func TestImageEqualAndDiff(t *testing.T) {
	a := New(property.NewSet())
	b := New(property.NewSet())
	a.Put(entry("k1", "v", 1, ""))
	b.Put(entry("k1", "v", 5, "")) // same content
	if !a.Equal(b) {
		t.Fatal("images with same content should be equal")
	}
	b.Put(entry("k2", "w", 6, ""))
	if a.Equal(b) {
		t.Fatal("extra key should break equality")
	}
	d := Diff(a, b)
	if len(d) != 1 || d[0] != "k2" {
		t.Fatalf("diff = %v", d)
	}
	if got := Diff(nil, b); len(got) != 2 {
		t.Fatalf("diff(nil,b) = %v", got)
	}
	if got := Diff(a, nil); len(got) != 1 {
		t.Fatalf("diff(a,nil) = %v", got)
	}
}

func TestDeltaSince(t *testing.T) {
	im := New(property.NewSet())
	im.Version = 10
	im.Put(entry("old", "x", 3, ""))
	im.Put(entry("new", "y", 8, ""))
	d := im.DeltaSince(5)
	if d.Len() != 1 {
		t.Fatalf("delta len = %d", d.Len())
	}
	if _, ok := d.Get("new"); !ok {
		t.Fatal("delta should contain 'new'")
	}
	if d.Version != 10 {
		t.Fatalf("delta version = %d", d.Version)
	}
}

func TestFuncCodec(t *testing.T) {
	c := FuncCodec{
		ExtractFn: func(props property.Set) (*Image, error) { return New(props), nil },
		MergeFn:   func(img *Image, props property.Set) error { return nil },
	}
	if _, err := c.Extract(property.NewSet()); err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil, property.NewSet()); err != nil {
		t.Fatal(err)
	}
	var empty FuncCodec
	if _, err := empty.Extract(property.NewSet()); err == nil {
		t.Fatal("empty codec Extract should fail")
	}
	if err := empty.Merge(nil, property.NewSet()); err == nil {
		t.Fatal("empty codec Merge should fail")
	}
}

func TestThreeWayMergeFastForward(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "v0", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	theirs.Put(entry("k", "v1", 2, "remote"))
	theirs.Version = 2

	res, err := ThreeWayMerge(base, ours, theirs, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || len(res.Conflicts) != 0 {
		t.Fatalf("res = %+v", res)
	}
	e, _ := ours.Get("k")
	if string(e.Value) != "v1" || ours.Version != 2 {
		t.Fatalf("ours = %v", ours)
	}
}

func TestThreeWayMergeBothSame(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "v0", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	ours.Put(entry("k", "same", 2, "a"))
	theirs.Put(entry("k", "same", 3, "b"))
	res, err := ThreeWayMerge(base, ours, theirs, MergeOptions{})
	if err != nil || len(res.Conflicts) != 0 {
		t.Fatalf("identical changes should not conflict: %+v, %v", res, err)
	}
}

func TestThreeWayMergeConflictLWW(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "v0", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	ours.Put(entry("k", "mine", 5, "me"))
	theirs.Put(entry("k", "theirs", 3, "them"))

	res, err := ThreeWayMerge(base, ours, theirs, MergeOptions{Policy: PolicyLastWriterWins})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.KeptOurs != 1 {
		t.Fatalf("res = %+v", res)
	}
	e, _ := ours.Get("k")
	if string(e.Value) != "mine" {
		t.Fatalf("LWW kept %q, want mine (v5 > v3)", e.Value)
	}
}

func TestThreeWayMergePolicies(t *testing.T) {
	mk := func() (*Image, *Image, *Image) {
		base := New(property.NewSet())
		base.Put(entry("k", "v0", 1, ""))
		ours := base.Clone()
		theirs := base.Clone()
		ours.Put(entry("k", "mine", 2, "me"))
		theirs.Put(entry("k", "theirs", 2, "them"))
		return base, ours, theirs
	}
	base, ours, theirs := mk()
	if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{Policy: PolicyOurs}); err != nil {
		t.Fatal(err)
	}
	e, _ := ours.Get("k")
	if string(e.Value) != "mine" {
		t.Fatal("PolicyOurs should keep ours")
	}
	base, ours, theirs = mk()
	if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{Policy: PolicyTheirs}); err != nil {
		t.Fatal(err)
	}
	e, _ = ours.Get("k")
	if string(e.Value) != "theirs" {
		t.Fatal("PolicyTheirs should take theirs")
	}
	// LWW tie goes to theirs.
	base, ours, theirs = mk()
	if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	e, _ = ours.Get("k")
	if string(e.Value) != "theirs" {
		t.Fatal("LWW tie should take theirs")
	}
}

func TestThreeWayMergeResolver(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "10", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	ours.Put(entry("k", "7", 2, "me"))
	theirs.Put(entry("k", "4", 2, "them"))

	// Domain resolver: numeric minimum (airline "seats remaining" style).
	res, err := ThreeWayMerge(base, ours, theirs, MergeOptions{
		Resolver: func(c Conflict) (Entry, error) {
			if string(c.Ours.Value) < string(c.Theirs.Value) {
				return c.Ours, nil
			}
			return c.Theirs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ours.Get("k")
	if string(e.Value) != "4" {
		t.Fatalf("resolver result = %q", e.Value)
	}
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(res.Conflicts))
	}
}

func TestThreeWayMergeResolverError(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "v", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	ours.Put(entry("k", "a", 2, ""))
	theirs.Put(entry("k", "b", 2, ""))
	_, err := ThreeWayMerge(base, ours, theirs, MergeOptions{
		Resolver: func(c Conflict) (Entry, error) { return Entry{}, fmt.Errorf("boom") },
	})
	if err == nil {
		t.Fatal("resolver error should propagate")
	}
}

func TestThreeWayMergeNilBase(t *testing.T) {
	ours := New(property.NewSet())
	theirs := New(property.NewSet())
	theirs.Put(entry("k", "v", 1, ""))
	res, err := ThreeWayMerge(nil, ours, theirs, MergeOptions{})
	if err != nil || res.Applied != 1 {
		t.Fatalf("nil base merge: %+v, %v", res, err)
	}
}

func TestThreeWayMergeNilTheirs(t *testing.T) {
	ours := New(property.NewSet())
	res, err := ThreeWayMerge(nil, ours, nil, MergeOptions{})
	if err != nil || res.Applied != 0 {
		t.Fatalf("nil theirs: %+v, %v", res, err)
	}
}

func TestThreeWayMergeDeletionWins(t *testing.T) {
	base := New(property.NewSet())
	base.Put(entry("k", "v", 1, ""))
	ours := base.Clone()
	theirs := base.Clone()
	theirs.Delete("k", 2, "them")
	if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	e, _ := ours.Get("k")
	if !e.Deleted {
		t.Fatal("remote deletion should fast-forward")
	}
}

func TestConflictString(t *testing.T) {
	c := Conflict{Key: "k", Ours: entry("k", "a", 1, "x"), Theirs: entry("k", "b", 2, "y")}
	s := c.String()
	if !strings.Contains(s, "k") || !strings.Contains(s, "x") || !strings.Contains(s, "y") {
		t.Fatalf("String = %q", s)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyLastWriterWins: "last-writer-wins",
		PolicyOurs:           "ours",
		PolicyTheirs:         "theirs",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
}

func genImage(r *rand.Rand, writer string, baseVer vclock.Version) *Image {
	im := New(property.NewSet())
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", r.Intn(6))
		im.Put(entry(k, fmt.Sprintf("%s-%d", writer, r.Intn(3)), baseVer+vclock.Version(r.Intn(4)), writer))
	}
	im.Version = baseVer + vclock.Version(r.Intn(5))
	return im
}

// Merging theirs into ours makes ours contain theirs' content wherever
// there was no conflict resolved to ours; with PolicyTheirs, ours must end
// up containing every key of theirs with theirs' content.
func TestQuickMergePolicyTheirsAbsorbs(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	f := func() bool {
		base := genImage(r, "base", 0)
		ours := base.Clone()
		theirs := base.Clone()
		// independent mutations
		om := genImage(r, "ours", 10)
		tm := genImage(r, "theirs", 10)
		for _, e := range om.Entries {
			ours.Put(e)
		}
		for _, e := range tm.Entries {
			theirs.Put(e)
		}
		if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{Policy: PolicyTheirs}); err != nil {
			return false
		}
		for k, te := range theirs.Entries {
			oe, ok := ours.Get(k)
			if !ok {
				return false
			}
			// if theirs changed the key, ours must now equal theirs
			be, baseOK := base.Get(k)
			if !baseOK || !te.Equal(be) {
				if !oe.Equal(te) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Merge is idempotent: merging the same theirs twice changes nothing the
// second time.
func TestQuickMergeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func() bool {
		base := genImage(r, "base", 0)
		ours := base.Clone()
		theirs := base.Clone()
		for _, e := range genImage(r, "theirs", 10).Entries {
			theirs.Put(e)
		}
		if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{}); err != nil {
			return false
		}
		snapshot := ours.Clone()
		if _, err := ThreeWayMerge(base, ours, theirs, MergeOptions{}); err != nil {
			return false
		}
		return ours.Equal(snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
