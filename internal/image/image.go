// Package image defines ObjectImage, the unit of state Flecc moves between
// views and the original component (paper §4.1, "Merge/Extract methods").
//
// Flecc propagates *modified data* rather than operation logs, because
// views are different layouts of the same component and may not implement
// each other's methods. An Image is a property-scoped snapshot: a bag of
// keyed, versioned, opaque entries plus the property set describing which
// shared data the snapshot covers. The application supplies the
// extract/merge callbacks (Extractor/Merger interfaces); Flecc never
// interprets entry payloads — it only routes, versions, and (optionally)
// helps resolve conflicts via the three-way merge helpers here, in the
// style of Coda and Bayou.
package image

import (
	"fmt"
	"sort"

	"flecc/internal/property"
	"flecc/internal/vclock"
)

// Entry is one keyed datum inside an image. The payload is opaque to
// Flecc. Version is the primary-copy version at which this value was
// committed; Writer identifies the view whose update produced the value
// (empty for values that originate at the primary).
type Entry struct {
	Key     string
	Value   []byte
	Version vclock.Version
	Writer  string
	Deleted bool
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	if e.Value != nil {
		v := make([]byte, len(e.Value))
		copy(v, e.Value)
		e.Value = v
	}
	return e
}

// Equal reports whether two entries carry the same payload and tombstone
// state (version/writer metadata is ignored — it describes provenance, not
// content).
func (e Entry) Equal(o Entry) bool {
	if e.Key != o.Key || e.Deleted != o.Deleted || len(e.Value) != len(o.Value) {
		return false
	}
	for i := range e.Value {
		if e.Value[i] != o.Value[i] {
			return false
		}
	}
	return true
}

// Image is a property-scoped snapshot of shared state.
type Image struct {
	// Props describes which shared data the image covers; the directory
	// manager uses it to route updates to interested views only.
	Props property.Set
	// Version is the primary-copy version at extraction/commit time. A
	// view that holds an image with Version v has seen every primary
	// update numbered ≤ v.
	Version vclock.Version
	// Entries is the snapshot content, keyed by entry key.
	Entries map[string]Entry
}

// New returns an empty image covering the given properties.
func New(props property.Set) *Image {
	return &Image{Props: props, Entries: map[string]Entry{}}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	c := &Image{Props: im.Props.Clone(), Version: im.Version, Entries: make(map[string]Entry, len(im.Entries))}
	for k, e := range im.Entries {
		c.Entries[k] = e.Clone()
	}
	return c
}

// Put inserts or replaces an entry.
func (im *Image) Put(e Entry) {
	if im.Entries == nil {
		im.Entries = map[string]Entry{}
	}
	im.Entries[e.Key] = e
}

// Get returns the entry for key and whether it exists.
func (im *Image) Get(key string) (Entry, bool) {
	e, ok := im.Entries[key]
	return e, ok
}

// Delete records a tombstone for key at the given version.
func (im *Image) Delete(key string, v vclock.Version, writer string) {
	im.Put(Entry{Key: key, Version: v, Writer: writer, Deleted: true})
}

// Len returns the number of entries (including tombstones).
func (im *Image) Len() int { return len(im.Entries) }

// Keys returns the sorted entry keys.
func (im *Image) Keys() []string {
	keys := make([]string, 0, len(im.Entries))
	for k := range im.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Restrict returns a copy of the image containing only the entries whose
// key passes the filter. It is used to trim an extracted image to the
// intersection of two views' property sets.
func (im *Image) Restrict(keep func(key string) bool) *Image {
	out := New(im.Props.Clone())
	out.Version = im.Version
	for k, e := range im.Entries {
		if keep(k) {
			out.Entries[k] = e.Clone()
		}
	}
	return out
}

// Equal reports whether two images have equal content (entries compared by
// Entry.Equal; versions and props ignored).
func (im *Image) Equal(o *Image) bool {
	if len(im.Entries) != len(o.Entries) {
		return false
	}
	for k, e := range im.Entries {
		oe, ok := o.Entries[k]
		if !ok || !e.Equal(oe) {
			return false
		}
	}
	return true
}

// String summarizes the image for logs.
func (im *Image) String() string {
	return fmt.Sprintf("image{v%d, %d entries, props: %s}", im.Version, len(im.Entries), im.Props)
}

// Extractor produces an image of a replica's current state, restricted to
// the given property set. Views implement extractFromView; the original
// component implements extractFromObject — both have this shape (paper
// Figure 3).
type Extractor interface {
	Extract(props property.Set) (*Image, error)
}

// Merger folds an image into a replica's state. Views implement
// mergeIntoView; the original component implements mergeIntoObject.
type Merger interface {
	Merge(img *Image, props property.Set) error
}

// KeyedExtractor is an optional extension of Extractor: a codec that can
// produce an image of *specific keys* without walking its whole state. The
// directory store uses it to serve delta pulls incrementally — it knows
// (from its dirty-key index) exactly which keys changed since the puller's
// version, so a keyed codec turns a full extract-and-discard into a lookup
// of just those keys.
//
// Contract: the result must contain exactly the requested keys that (a)
// currently exist in the replica and (b) pass the same property
// restriction Extract applies; keys that are absent or filtered out are
// simply omitted. Entry Version/Writer must be left zero, exactly as
// Extract leaves them — the store stamps provenance from its shadow.
type KeyedExtractor interface {
	ExtractKeys(props property.Set, keys []string) (*Image, error)
}

// Codec combines both directions; most application components implement
// the full Codec.
type Codec interface {
	Extractor
	Merger
}

// FuncCodec adapts two closures to a Codec, handy for tests and for small
// components that keep their state in plain maps.
type FuncCodec struct {
	ExtractFn func(props property.Set) (*Image, error)
	MergeFn   func(img *Image, props property.Set) error
}

// Extract implements Extractor.
func (f FuncCodec) Extract(props property.Set) (*Image, error) {
	if f.ExtractFn == nil {
		return nil, fmt.Errorf("image: FuncCodec has no ExtractFn")
	}
	return f.ExtractFn(props)
}

// Merge implements Merger.
func (f FuncCodec) Merge(img *Image, props property.Set) error {
	if f.MergeFn == nil {
		return fmt.Errorf("image: FuncCodec has no MergeFn")
	}
	return f.MergeFn(img, props)
}
