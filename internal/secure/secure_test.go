package secure

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	p := NewPair([]byte("shared-secret"))
	msg := []byte("confirmTickets(1, 105)")
	env, err := p.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(env, msg) {
		t.Fatal("envelope leaks plaintext")
	}
	got, err := p.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	p := NewPair([]byte("k"))
	env, _ := p.Seal([]byte("payload"))
	for i := 0; i < len(env); i++ {
		bad := append([]byte(nil), env...)
		bad[i] ^= 0x01
		if _, err := p.Open(bad); !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at %d: err = %v, want ErrTampered", i, err)
		}
	}
}

func TestOpenRejectsShortAndWrongKey(t *testing.T) {
	p := NewPair([]byte("k"))
	if _, err := p.Open([]byte("short")); err == nil {
		t.Fatal("short envelope should fail")
	}
	env, _ := p.Seal([]byte("payload"))
	other := NewPair([]byte("different"))
	if _, err := other.Open(env); !errors.Is(err, ErrTampered) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestNoncesDiffer(t *testing.T) {
	p := NewPair([]byte("k"))
	a, _ := p.Seal([]byte("same"))
	b, _ := p.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("identical envelopes for identical plaintexts (nonce reuse?)")
	}
}

func TestEmptyPlaintext(t *testing.T) {
	p := NewPair([]byte("k"))
	env, err := p.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Open(env)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestQuickSealOpen(t *testing.T) {
	p := NewPair([]byte("quick"))
	r := rand.New(rand.NewSource(70))
	f := func() bool {
		n := r.Intn(500)
		msg := make([]byte, n)
		r.Read(msg)
		env, err := p.Seal(msg)
		if err != nil {
			return false
		}
		got, err := p.Open(env)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// pipeRWC adapts an io.Pipe pair into an io.ReadWriteCloser.
type pipeRWC struct {
	io.Reader
	io.Writer
}

func (pipeRWC) Close() error { return nil }

func TestConnStream(t *testing.T) {
	p := NewPair([]byte("stream"))
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a := NewConn(pipeRWC{Reader: ar, Writer: aw}, p)
	b := NewConn(pipeRWC{Reader: br, Writer: bw}, p)

	go func() {
		b.Write([]byte("hello "))
		b.Write([]byte("world"))
	}()
	buf := make([]byte, 64)
	total := ""
	for len(total) < len("hello world") {
		n, err := a.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		total += string(buf[:n])
	}
	if total != "hello world" {
		t.Fatalf("got %q", total)
	}
	// Short reads drain the buffered frame.
	go a.Write([]byte("xyz"))
	one := make([]byte, 1)
	var got []byte
	for i := 0; i < 3; i++ {
		if _, err := b.Read(one); err != nil {
			t.Fatal(err)
		}
		got = append(got, one[0])
	}
	if string(got) != "xyz" {
		t.Fatalf("got %q", got)
	}
}

func TestConnRejectsCorruptStream(t *testing.T) {
	p := NewPair([]byte("k"))
	var wire bytes.Buffer
	w := NewConn(pipeRWC{Reader: &wire, Writer: &wire}, p)
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt the MAC
	r := NewConn(pipeRWC{Reader: bytes.NewReader(raw), Writer: io.Discard}, p)
	if _, err := r.Read(make([]byte, 16)); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtectedTCPLink(t *testing.T) {
	pair := NewPair([]byte("link-key"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := NewListener(ln, pair)
	defer sln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := sln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = conn.Write(append([]byte("echo: "), buf[:n]...))
		done <- err
	}()

	c, err := Dial(ln.Addr().String(), pair)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "echo: ping" {
		t.Fatalf("got %q", buf[:n])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// net.Conn surface works.
	if c.LocalAddr() == nil || c.RemoteAddr() == nil {
		t.Fatal("addr methods")
	}
}
