// Package secure implements the encryptor/decryptor component pair that
// PSF's planning module inserts around insecure links (paper §3.1: "the
// security requirements of [a] security-sensitive ... application can be
// satisfied by placing encryption/decryption components around insecure
// links"; §5.1: "the privacy of a transaction is ensured by deploying
// encryptor/decryptor pairs around insecure links").
//
// The pair seals byte frames with a stdlib-only authenticated stream
// construction: a SHA-256-counter keystream for confidentiality and an
// encrypt-then-MAC HMAC-SHA256 tag for integrity, with a random per-frame
// nonce. Conn wraps a net.Conn (or any io.ReadWriter) so the existing
// framed TCP transport runs unchanged over a protected link.
package secure

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

const (
	nonceLen = 16
	macLen   = sha256.Size
	// maxFrame bounds a sealed frame (must cover the transport's frames).
	maxFrame = 17 << 20
)

// ErrTampered reports an authentication failure on Open.
var ErrTampered = errors.New("secure: frame authentication failed")

// Pair is one encryptor/decryptor component pair sharing a symmetric key.
// It is safe for concurrent use.
type Pair struct {
	encKey [32]byte // keystream key
	macKey [32]byte // HMAC key
}

// NewPair derives a pair from an arbitrary-length shared secret.
func NewPair(secret []byte) *Pair {
	p := &Pair{}
	p.encKey = sha256.Sum256(append([]byte("flecc-enc:"), secret...))
	p.macKey = sha256.Sum256(append([]byte("flecc-mac:"), secret...))
	return p
}

// keystreamXOR XORs data in place with the SHA-256 counter keystream for
// the given nonce.
func (p *Pair) keystreamXOR(nonce, data []byte) {
	var block [8]byte
	buf := make([]byte, 0, len(p.encKey)+nonceLen+8)
	for i := 0; i < len(data); i += sha256.Size {
		binary.LittleEndian.PutUint64(block[:], uint64(i/sha256.Size))
		buf = buf[:0]
		buf = append(buf, p.encKey[:]...)
		buf = append(buf, nonce...)
		buf = append(buf, block[:]...)
		ks := sha256.Sum256(buf)
		for j := 0; j < sha256.Size && i+j < len(data); j++ {
			data[i+j] ^= ks[j]
		}
	}
}

func (p *Pair) mac(nonce, ct []byte) []byte {
	h := hmac.New(sha256.New, p.macKey[:])
	h.Write(nonce)
	h.Write(ct)
	return h.Sum(nil)
}

// Seal encrypts and authenticates plaintext into an envelope:
// nonce || ciphertext || mac.
func (p *Pair) Seal(plaintext []byte) ([]byte, error) {
	env := make([]byte, nonceLen+len(plaintext)+macLen)
	nonce := env[:nonceLen]
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("secure: nonce: %w", err)
	}
	ct := env[nonceLen : nonceLen+len(plaintext)]
	copy(ct, plaintext)
	p.keystreamXOR(nonce, ct)
	copy(env[nonceLen+len(plaintext):], p.mac(nonce, ct))
	return env, nil
}

// Open authenticates and decrypts an envelope produced by Seal.
func (p *Pair) Open(env []byte) ([]byte, error) {
	if len(env) < nonceLen+macLen {
		return nil, fmt.Errorf("secure: envelope too short (%d bytes)", len(env))
	}
	nonce := env[:nonceLen]
	ct := env[nonceLen : len(env)-macLen]
	tag := env[len(env)-macLen:]
	if !hmac.Equal(tag, p.mac(nonce, ct)) {
		return nil, ErrTampered
	}
	pt := make([]byte, len(ct))
	copy(pt, ct)
	p.keystreamXOR(nonce, pt)
	return pt, nil
}

// Conn runs a byte stream through the pair: every Write becomes one sealed
// length-prefixed frame; Read returns the decrypted stream. It implements
// net.Conn when wrapping one (deadline methods delegate), so the Flecc TCP
// transport can run over it unchanged.
type Conn struct {
	inner io.ReadWriteCloser
	pair  *Pair
	// rbuf holds decrypted-but-unread bytes.
	rbuf []byte
}

// NewConn protects a stream with the pair.
func NewConn(inner io.ReadWriteCloser, pair *Pair) *Conn {
	return &Conn{inner: inner, pair: pair}
}

// Write seals p as one frame.
func (c *Conn) Write(p []byte) (int, error) {
	env, err := c.pair.Seal(p)
	if err != nil {
		return 0, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(env)))
	if _, err := c.inner.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := c.inner.Write(env); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read returns decrypted bytes, reading and opening whole frames as
// needed.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.rbuf) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(c.inner, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			return 0, fmt.Errorf("secure: frame of %d bytes exceeds limit", n)
		}
		env := make([]byte, n)
		if _, err := io.ReadFull(c.inner, env); err != nil {
			return 0, err
		}
		pt, err := c.pair.Open(env)
		if err != nil {
			return 0, err
		}
		c.rbuf = pt
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.inner.Close() }

// netConn is Conn plus the net.Conn surface, for wrapping real sockets.
type netConn struct {
	*Conn
	nc net.Conn
}

func (c *netConn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *netConn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *netConn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *netConn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *netConn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// WrapNetConn protects a net.Conn; the result is a net.Conn.
func WrapNetConn(nc net.Conn, pair *Pair) net.Conn {
	return &netConn{Conn: NewConn(nc, pair), nc: nc}
}

// Listener wraps an accepting listener so every accepted connection is
// protected — the "decryptor" end of the pair, deployed next to the
// protected component.
type Listener struct {
	net.Listener
	pair *Pair
}

// NewListener protects ln with the pair.
func NewListener(ln net.Listener, pair *Pair) *Listener {
	return &Listener{Listener: ln, pair: pair}
}

// Accept wraps the accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapNetConn(nc, l.pair), nil
}

// Dial connects to a protected listener — the "encryptor" end of the
// pair, deployed next to the client.
func Dial(addr string, pair *Pair) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapNetConn(nc, pair), nil
}
