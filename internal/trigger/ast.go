package trigger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type is the static type of an expression node: number or boolean.
type Type uint8

const (
	// TNumber is a float64-valued expression.
	TNumber Type = iota
	// TBool is a boolean-valued expression.
	TBool
)

func (t Type) String() string {
	if t == TBool {
		return "bool"
	}
	return "number"
}

// Node is a typed expression-tree node. Nodes are immutable after parsing.
type Node interface {
	// Type returns the node's static type, established at parse time.
	Type() Type
	// String renders the node in source syntax (re-parseable).
	String() string
	// walk visits the node and its children.
	walk(fn func(Node))
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// BoolLit is `true` or `false`.
type BoolLit struct{ Value bool }

// Var references a variable by name; "t" is the virtual time variable.
type Var struct{ Name string }

// Unary is negation: "-x" (numeric) or "!x" (boolean).
type Unary struct {
	Op string // "-" or "!"
	X  Node
}

// Binary is an infix operation. Arithmetic ops ("+","-","*","/","%") have
// numeric operands and a numeric result; comparisons ("<","<=",">",">=",
// "==","!=") have numeric operands and boolean result; logic ops ("&&","||")
// have boolean operands and boolean result.
type Binary struct {
	Op   string
	L, R Node
}

// Call is a built-in function application.
type Call struct {
	Fn   string
	Args []Node
}

func (n *NumberLit) Type() Type { return TNumber }
func (n *BoolLit) Type() Type   { return TBool }
func (n *Var) Type() Type       { return TNumber } // variables are numeric
func (n *Unary) Type() Type {
	if n.Op == "!" {
		return TBool
	}
	return TNumber
}

func (n *Binary) Type() Type {
	switch n.Op {
	case "+", "-", "*", "/", "%":
		return TNumber
	default:
		return TBool
	}
}

func (n *Call) Type() Type {
	if n.Fn == "every" {
		return TBool
	}
	return TNumber
}

func (n *NumberLit) String() string {
	return strconv.FormatFloat(n.Value, 'g', -1, 64)
}
func (n *BoolLit) String() string { return strconv.FormatBool(n.Value) }
func (n *Var) String() string     { return n.Name }
func (n *Unary) String() string   { return n.Op + paren(n.X) }
func (n *Binary) String() string {
	return paren(n.L) + " " + n.Op + " " + paren(n.R)
}
func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Fn + "(" + strings.Join(args, ", ") + ")"
}

func paren(n Node) string {
	switch n.(type) {
	case *NumberLit, *BoolLit, *Var, *Call:
		return n.String()
	default:
		return "(" + n.String() + ")"
	}
}

func (n *NumberLit) walk(fn func(Node)) { fn(n) }
func (n *BoolLit) walk(fn func(Node))   { fn(n) }
func (n *Var) walk(fn func(Node))       { fn(n) }
func (n *Unary) walk(fn func(Node)) {
	fn(n)
	n.X.walk(fn)
}
func (n *Binary) walk(fn func(Node)) {
	fn(n)
	n.L.walk(fn)
	n.R.walk(fn)
}
func (n *Call) walk(fn func(Node)) {
	fn(n)
	for _, a := range n.Args {
		a.walk(fn)
	}
}

// Vars returns the sorted set of variable names referenced by the
// expression (including "t" if used). The cache manager uses this to know
// which view variables it must sample before each evaluation.
func Vars(n Node) []string {
	seen := map[string]bool{}
	n.walk(func(m Node) {
		if v, ok := m.(*Var); ok {
			seen[v.Name] = true
		}
	})
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// UsesTime reports whether the expression references the time variable t.
// Time-independent triggers need re-evaluation only when variables change;
// time-dependent ones are re-checked on every clock tick.
func UsesTime(n Node) bool {
	for _, v := range Vars(n) {
		if v == "t" {
			return true
		}
	}
	return false
}

// ParseError is a syntax or type error with position information.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trigger: parse error at offset %d: %s", e.Pos, e.Msg)
}
