package trigger

import (
	"fmt"
	"math"
)

// Env supplies variable values during evaluation. The time variable "t" is
// resolved through Env like any other variable; the cache manager installs
// the current virtual time under that name before each evaluation.
type Env interface {
	// Lookup returns the numeric value of the named variable and whether it
	// is defined.
	Lookup(name string) (float64, bool)
}

// MapEnv is an Env backed by a plain map.
type MapEnv map[string]float64

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// TimeEnv wraps an Env, overriding the "t" variable with a fixed time
// value. It lets callers evaluate the same view-variable source at
// different virtual times without mutating shared state.
type TimeEnv struct {
	T    float64
	Base Env
}

// Lookup implements Env.
func (e TimeEnv) Lookup(name string) (float64, bool) {
	if name == "t" {
		return e.T, true
	}
	if e.Base == nil {
		return 0, false
	}
	return e.Base.Lookup(name)
}

// EvalError reports a runtime evaluation failure (undefined variable,
// division by zero).
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "trigger: eval error: " + e.Msg }

// EvalBool evaluates a boolean-typed expression against env.
func EvalBool(n Node, env Env) (bool, error) {
	if n.Type() != TBool {
		return false, &EvalError{Msg: "expression is not boolean"}
	}
	v, err := eval(n, env)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// EvalNumber evaluates a numeric-typed expression against env.
func EvalNumber(n Node, env Env) (float64, error) {
	if n.Type() != TNumber {
		return 0, &EvalError{Msg: "expression is not numeric"}
	}
	return eval(n, env)
}

// eval computes the expression value; booleans are represented as 0/1.
func eval(n Node, env Env) (float64, error) {
	switch n := n.(type) {
	case *NumberLit:
		return n.Value, nil
	case *BoolLit:
		if n.Value {
			return 1, nil
		}
		return 0, nil
	case *Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return 0, &EvalError{Msg: fmt.Sprintf("undefined variable %q", n.Name)}
		}
		return v, nil
	case *Unary:
		x, err := eval(n.X, env)
		if err != nil {
			return 0, err
		}
		if n.Op == "!" {
			if x != 0 {
				return 0, nil
			}
			return 1, nil
		}
		return -x, nil
	case *Binary:
		return evalBinary(n, env)
	case *Call:
		return evalCall(n, env)
	default:
		return 0, &EvalError{Msg: fmt.Sprintf("unknown node type %T", n)}
	}
}

func evalBinary(n *Binary, env Env) (float64, error) {
	// Short-circuit logic operators.
	switch n.Op {
	case "&&":
		l, err := eval(n.L, env)
		if err != nil {
			return 0, err
		}
		if l == 0 {
			return 0, nil
		}
		return eval(n.R, env)
	case "||":
		l, err := eval(n.L, env)
		if err != nil {
			return 0, err
		}
		if l != 0 {
			return 1, nil
		}
		r, err := eval(n.R, env)
		if err != nil {
			return 0, err
		}
		if r != 0 {
			return 1, nil
		}
		return 0, nil
	}
	l, err := eval(n.L, env)
	if err != nil {
		return 0, err
	}
	r, err := eval(n.R, env)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, &EvalError{Msg: "division by zero"}
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, &EvalError{Msg: "modulo by zero"}
		}
		return math.Mod(l, r), nil
	case "<":
		return b2f(l < r), nil
	case "<=":
		return b2f(l <= r), nil
	case ">":
		return b2f(l > r), nil
	case ">=":
		return b2f(l >= r), nil
	case "==":
		return b2f(l == r), nil
	case "!=":
		return b2f(l != r), nil
	default:
		return 0, &EvalError{Msg: fmt.Sprintf("unknown operator %q", n.Op)}
	}
}

func evalCall(n *Call, env Env) (float64, error) {
	args := make([]float64, len(n.Args))
	for i, a := range n.Args {
		v, err := eval(a, env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	switch n.Fn {
	case "abs":
		return math.Abs(args[0]), nil
	case "min":
		m := args[0]
		for _, v := range args[1:] {
			m = math.Min(m, v)
		}
		return m, nil
	case "max":
		m := args[0]
		for _, v := range args[1:] {
			m = math.Max(m, v)
		}
		return m, nil
	case "every":
		// every(p) is true at non-zero multiples of period p; it drives the
		// periodic pull triggers in the Figure 6 experiment.
		p := args[0]
		if p <= 0 {
			return 0, &EvalError{Msg: "every() requires a positive period"}
		}
		t, ok := env.Lookup("t")
		if !ok {
			return 0, &EvalError{Msg: "every() requires time variable t"}
		}
		return b2f(t > 0 && math.Mod(t, p) == 0), nil
	default:
		return 0, &EvalError{Msg: fmt.Sprintf("unknown function %q", n.Fn)}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Trigger is a compiled quality trigger, ready for repeated evaluation.
// The zero value is an always-false trigger (no synchronization delegated
// to the system).
type Trigger struct {
	src  string
	node Node
}

// Compile parses src into a Trigger. An empty src yields the always-false
// trigger (views that give no trigger synchronize only via explicit calls).
func Compile(src string) (Trigger, error) {
	if src == "" {
		return Trigger{}, nil
	}
	n, err := Parse(src)
	if err != nil {
		return Trigger{}, err
	}
	return Trigger{src: src, node: n}, nil
}

// MustCompile panics on error.
func MustCompile(src string) Trigger {
	tr, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return tr
}

// IsZero reports whether the trigger is the always-false zero trigger.
func (tr Trigger) IsZero() bool { return tr.node == nil }

// Source returns the original expression text.
func (tr Trigger) Source() string { return tr.src }

// Node exposes the compiled AST (nil for the zero trigger).
func (tr Trigger) Node() Node { return tr.node }

// Fire evaluates the trigger at virtual time t against the view variables
// in base. Evaluation errors (e.g. a variable the view stopped exporting)
// are reported as non-firing along with the error so the runtime can log
// them without stopping the protocol.
func (tr Trigger) Fire(t float64, base Env) (bool, error) {
	if tr.node == nil {
		return false, nil
	}
	return EvalBool(tr.node, TimeEnv{T: t, Base: base})
}

// Vars returns the variables the trigger references (excluding none); see
// Vars(Node).
func (tr Trigger) Vars() []string {
	if tr.node == nil {
		return nil
	}
	return Vars(tr.node)
}

// String renders the trigger source, or "<none>" for the zero trigger.
func (tr Trigger) String() string {
	if tr.node == nil {
		return "<none>"
	}
	return tr.src
}
