package trigger

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse compiles a trigger expression into a typed AST. The expression must
// be boolean-typed overall (it answers "should we synchronize now?").
func Parse(input string) (Node, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t.pos, "unexpected %s after expression", t)
	}
	if n.Type() != TBool {
		return nil, p.errf(0, "trigger must be boolean, got a %s expression", n.Type())
	}
	return n, nil
}

// ParseExpr is like Parse but allows a numeric result; it is used for
// testing sub-expressions and by tools that evaluate arbitrary formulas.
func ParseExpr(input string) (Node, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t.pos, "unexpected %s after expression", t)
	}
	return n, nil
}

// MustParse panics on error; for tests and static trigger tables.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if !(t.kind == tokOp && t.text == "||" || t.kind == tokIdent && t.text == "or") {
			return l, nil
		}
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if l.Type() != TBool || r.Type() != TBool {
			return nil, p.errf(t.pos, "|| requires boolean operands")
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if !(t.kind == tokOp && t.text == "&&" || t.kind == tokIdent && t.text == "and") {
			return l, nil
		}
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if l.Type() != TBool || r.Type() != TBool {
			return nil, p.errf(t.pos, "&& requires boolean operands")
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
}

func (p *parser) parseNot() (Node, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "!" || t.kind == tokIdent && t.text == "not" {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if x.Type() != TBool {
			return nil, p.errf(t.pos, "! requires a boolean operand")
		}
		return &Unary{Op: "!", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokOp {
		return l, nil
	}
	op := t.text
	switch op {
	case "<", "<=", ">", ">=", "==", "!=", "=":
		p.next()
		if op == "=" {
			op = "==" // tolerate single '=' as equality, common in specs
		}
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		// == and != also compare booleans; the relational ops are numeric.
		if op == "==" || op == "!=" {
			if l.Type() != r.Type() {
				return nil, p.errf(t.pos, "%s requires operands of the same type", op)
			}
		} else if l.Type() != TNumber || r.Type() != TNumber {
			return nil, p.errf(t.pos, "%s requires numeric operands", op)
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseSum() (Node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if l.Type() != TNumber || r.Type() != TNumber {
			return nil, p.errf(t.pos, "%s requires numeric operands", t.text)
		}
		l = &Binary{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if l.Type() != TNumber || r.Type() != TNumber {
			return nil, p.errf(t.pos, "%s requires numeric operands", t.text)
		}
		l = &Binary{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if x.Type() != TNumber {
			return nil, p.errf(t.pos, "unary - requires a numeric operand")
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return &NumberLit{Value: t.num}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &BoolLit{Value: true}, nil
		case "false":
			return &BoolLit{Value: false}, nil
		}
		if p.peek().kind == tokLParen {
			return p.parseCall(t)
		}
		return &Var{Name: t.text}, nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if tt := p.next(); tt.kind != tokRParen {
			return nil, p.errf(tt.pos, "expected ')', got %s", tt)
		}
		return n, nil
	default:
		return nil, p.errf(t.pos, "expected expression, got %s", t)
	}
}

// funcArity maps built-in names to (min,max) argument counts; max = -1
// means variadic.
var funcArity = map[string][2]int{
	"abs":   {1, 1},
	"min":   {1, -1},
	"max":   {1, -1},
	"every": {1, 1},
}

func (p *parser) parseCall(name token) (Node, error) {
	arity, ok := funcArity[name.text]
	if !ok {
		return nil, p.errf(name.pos, "unknown function %q", name.text)
	}
	p.next() // consume '('
	var args []Node
	if p.peek().kind != tokRParen {
		for {
			a, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if a.Type() != TNumber {
				return nil, p.errf(name.pos, "%s arguments must be numeric", name.text)
			}
			args = append(args, a)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if tt := p.next(); tt.kind != tokRParen {
		return nil, p.errf(tt.pos, "expected ')' in call to %s, got %s", name.text, tt)
	}
	if len(args) < arity[0] || (arity[1] >= 0 && len(args) > arity[1]) {
		return nil, p.errf(name.pos, "%s: wrong number of arguments (%d)", name.text, len(args))
	}
	return &Call{Fn: name.text, Args: args}, nil
}
