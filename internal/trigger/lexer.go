// Package trigger implements Flecc's quality-trigger language (paper §4.1,
// Definition 4): boolean expressions over discrete time t and view
// variables, such as the paper's "(t > 1500)".
//
// A trigger T_v(t, x1, x2, ...) : T × V_v* → {true,false} is compiled once
// into an AST and evaluated repeatedly against an Env that supplies the
// current virtual time and the view's variable values. The cache manager
// evaluates push/pull triggers on clock ticks; the directory manager
// evaluates validity triggers when serving pulls. Flecc itself attaches no
// semantics to the variables — it only evaluates the expression.
//
// Grammar (precedence from lowest to highest):
//
//	expr    = or
//	or      = and { ("||" | "or") and }
//	and     = not { ("&&" | "and") not }
//	not     = { "!" | "not" } cmp
//	cmp     = sum [ ("==" | "!=" | "<" | "<=" | ">" | ">=") sum ]
//	sum     = term { ("+" | "-") term }
//	term    = unary { ("*" | "/" | "%") unary }
//	unary   = [ "-" ] primary
//	primary = NUMBER | "true" | "false" | IDENT | IDENT "(" args ")" |
//	          "(" expr ")"
//
// Built-in functions: abs(x), min(a,b,...), max(a,b,...), every(period)
// — the latter is true when t is a non-zero multiple of period, giving the
// periodic pull triggers used in the Figure 6 experiment.
package trigger

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokOp // operator or punctuation, text in token.text
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int // byte offset in input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	default:
		return t.text
	}
}

// lexError describes a lexical error with its position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("trigger: lex error at offset %d: %s", e.pos, e.msg)
}

// lex tokenizes the input. It returns all tokens including a trailing EOF
// token, or an error for unrecognized input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c >= '0' && c <= '9' || c == '.':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			text := input[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &lexError{pos: start, msg: fmt.Sprintf("bad number %q", text)}
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			// Multi-char operators first.
			rest := input[i:]
			matched := ""
			for _, op := range [...]string{"&&", "||", "==", "!=", "<=", ">="} {
				if strings.HasPrefix(rest, op) {
					matched = op
					break
				}
			}
			if matched == "" {
				switch c {
				case '<', '>', '!', '+', '-', '*', '/', '%', '=':
					matched = string(c)
				default:
					return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", c)}
				}
			}
			toks = append(toks, token{kind: tokOp, text: matched, pos: i})
			i += len(matched)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
