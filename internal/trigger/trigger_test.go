package trigger

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func evalB(t *testing.T, src string, env Env) bool {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := EvalBool(n, env)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", src, err)
	}
	return v
}

func evalN(t *testing.T, src string, env Env) float64 {
	t.Helper()
	n, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	v, err := EvalNumber(n, env)
	if err != nil {
		t.Fatalf("EvalNumber(%q): %v", src, err)
	}
	return v
}

// TestPaperTrigger checks the exact trigger from the paper's Figure 3.
func TestPaperTrigger(t *testing.T) {
	if evalB(t, "(t > 1500)", MapEnv{"t": 1500}) {
		t.Fatal("t=1500 should not fire (strict >)")
	}
	if !evalB(t, "(t > 1500)", MapEnv{"t": 1501}) {
		t.Fatal("t=1501 should fire")
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":      7,
		"(1 + 2) * 3":    9,
		"10 / 4":         2.5,
		"10 % 3":         1,
		"-5 + 2":         -3,
		"--5":            5,
		"2 * -3":         -6,
		"abs(-4)":        4,
		"min(3, 1, 2)":   1,
		"max(3, 1, 2)":   3,
		"min(7)":         7,
		"1.5e2":          150,
		"abs(min(-2,5))": 2,
	}
	for src, want := range cases {
		if got := evalN(t, src, MapEnv{}); got != want {
			t.Errorf("%q = %g, want %g", src, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := MapEnv{"x": 5, "y": 10}
	cases := map[string]bool{
		"x < y":                            true,
		"x <= 5":                           true,
		"x > y":                            false,
		"x >= 5":                           true,
		"x == 5":                           true,
		"x != 5":                           false,
		"x = 5":                            true, // single '=' tolerated
		"x < y && y < 20":                  true,
		"x < y && y > 20":                  false,
		"x > y || y == 10":                 true,
		"!(x > y)":                         true,
		"not (x > y)":                      true,
		"x < y and y < 20":                 true,
		"x > y or y == 10":                 true,
		"true":                             true,
		"false || true":                    true,
		"(x == 5) == (y == 10)":            true,
		"(x == 5) != (y == 10)":            false,
		"x + 1 == 6 && y - 5 == x":         true,
		"min(x, y) == 5 && max(x,y) == 10": true,
	}
	for src, want := range cases {
		if got := evalB(t, src, env); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvery(t *testing.T) {
	n := MustParse("every(500)")
	for _, c := range []struct {
		t    float64
		want bool
	}{{0, false}, {250, false}, {500, true}, {750, false}, {1000, true}} {
		got, err := EvalBool(n, MapEnv{"t": c.t})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("every(500) at t=%g: got %v, want %v", c.t, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right side references an undefined variable; short-circuit must avoid
	// evaluating it.
	if evalB(t, "false && missing > 0", MapEnv{}) {
		t.Fatal("false && _ should be false")
	}
	if !evalB(t, "true || missing > 0", MapEnv{}) {
		t.Fatal("true || _ should be true")
	}
	// Division by zero guarded by short-circuit.
	if evalB(t, "false && 1/0 > 0", MapEnv{}) {
		t.Fatal("short-circuit should skip division by zero")
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{"missing > 0", "1/0 > 0", "1 % 0 == 1", "every(0)"}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := EvalBool(n, MapEnv{"t": 100}); err == nil {
			t.Errorf("%q should fail at eval time", src)
		}
	}
	// every() without t defined.
	n := MustParse("every(5)")
	if _, err := EvalBool(n, MapEnv{}); err == nil {
		t.Error("every without t should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",               // Parse requires non-empty (Compile handles empty)
		"1 +",            // dangling operator
		"(t > 5",         // unbalanced paren
		"t >",            // missing rhs
		"5",              // numeric, not boolean
		"t + 1",          // numeric, not boolean
		"t && 1 > 0",     // numeric operand to &&
		"!(t)",           // ! on numeric
		"-(t > 1)",       // unary minus on boolean
		"t > true",       // mixed comparison
		"frob(1) > 0",    // unknown function
		"abs() > 0",      // wrong arity
		"abs(1,2) > 0",   // wrong arity
		"abs(t > 1) > 0", // boolean arg to numeric fn
		"t > 1 extra",    // trailing tokens
		"t > 1 $",        // lex error
		"t > 1..5",       // bad number
		"min(1,) > 0",    // dangling comma
		"t < (1,2)",      // comma outside call
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestVarsAndUsesTime(t *testing.T) {
	n := MustParse("t > 1500 && reserved >= limit || every(100)")
	want := []string{"limit", "reserved", "t"}
	if got := Vars(n); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	if !UsesTime(n) {
		t.Fatal("UsesTime should be true")
	}
	n2 := MustParse("reserved > 5")
	if UsesTime(n2) {
		t.Fatal("UsesTime should be false")
	}
}

func TestCompileZeroTrigger(t *testing.T) {
	tr, err := Compile("")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsZero() {
		t.Fatal("empty source should compile to zero trigger")
	}
	fired, err := tr.Fire(99999, MapEnv{})
	if err != nil || fired {
		t.Fatalf("zero trigger fired=%v err=%v", fired, err)
	}
	if tr.String() != "<none>" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestTriggerFire(t *testing.T) {
	tr := MustCompile("t > 1500 && pending > 0")
	fired, err := tr.Fire(2000, MapEnv{"pending": 1})
	if err != nil || !fired {
		t.Fatalf("fired=%v err=%v, want true", fired, err)
	}
	fired, err = tr.Fire(2000, MapEnv{"pending": 0})
	if err != nil || fired {
		t.Fatalf("fired=%v err=%v, want false", fired, err)
	}
	fired, err = tr.Fire(1000, MapEnv{"pending": 1})
	if err != nil || fired {
		t.Fatalf("fired=%v err=%v, want false", fired, err)
	}
}

func TestTimeEnvOverridesBase(t *testing.T) {
	env := TimeEnv{T: 42, Base: MapEnv{"t": 7, "x": 1}}
	v, ok := env.Lookup("t")
	if !ok || v != 42 {
		t.Fatalf("t = %g, want 42", v)
	}
	v, ok = env.Lookup("x")
	if !ok || v != 1 {
		t.Fatalf("x = %g, want 1", v)
	}
	if _, ok := env.Lookup("nope"); ok {
		t.Fatal("nope should be undefined")
	}
	if _, ok := (TimeEnv{T: 1}).Lookup("x"); ok {
		t.Fatal("nil base should define only t")
	}
}

// genExprString builds random well-formed boolean expressions.
func genExprString(r *rand.Rand, depth int) string {
	if depth <= 0 {
		// Leaf comparison.
		vars := []string{"t", "x", "y"}
		v := vars[r.Intn(len(vars))]
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return v + " " + ops[r.Intn(len(ops))] + " " + []string{"0", "1", "10", "1500"}[r.Intn(4)]
	}
	switch r.Intn(4) {
	case 0:
		return "(" + genExprString(r, depth-1) + " && " + genExprString(r, depth-1) + ")"
	case 1:
		return "(" + genExprString(r, depth-1) + " || " + genExprString(r, depth-1) + ")"
	case 2:
		return "!(" + genExprString(r, depth-1) + ")"
	default:
		return genExprString(r, 0)
	}
}

// TestQuickStringRoundTrip: parsing the String() rendering of a parsed tree
// yields a tree that evaluates identically.
func TestQuickStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	env := MapEnv{"t": 1500, "x": 3, "y": -2}
	f := func() bool {
		src := genExprString(r, 3)
		n1, err := Parse(src)
		if err != nil {
			return false
		}
		n2, err := Parse(n1.String())
		if err != nil {
			return false
		}
		v1, err1 := EvalBool(n1, env)
		v2, err2 := EvalBool(n2, env)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministic: evaluation is pure — same env, same result.
func TestQuickDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(tv, xv, yv int16) bool {
		src := genExprString(r, 2)
		n, err := Parse(src)
		if err != nil {
			return false
		}
		env := MapEnv{"t": float64(tv), "x": float64(xv), "y": float64(yv)}
		a, err1 := EvalBool(n, env)
		b, err2 := EvalBool(n, env)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("t > ")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should carry position info: %v", err)
	}
}

func TestIdentifierWithDots(t *testing.T) {
	// Dotted names let views export namespaced variables (e.g. ars.pending).
	if !evalB(t, "ars.pending > 0", MapEnv{"ars.pending": 2}) {
		t.Fatal("dotted identifier lookup failed")
	}
}
