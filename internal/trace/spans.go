package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"flecc/internal/wire"
)

// Child is one downstream call made while serving a root request — an
// invalidate or gather fan-out leg, a shard hop, a checkpoint write.
type Child struct {
	// To is the callee node.
	To string
	// Type is the outbound request type.
	Type wire.Type
	// Seq correlates the outbound request with its reply.
	Seq uint64
	// Start, End bracket the call; End is zero when the reply was never
	// observed (dropped by a fault, or the span closed first).
	Start, End time.Time
	// Err carries the reply's error, if any.
	Err string
}

// Span is one served request at the recorded node, with the downstream
// calls issued on its behalf — a pull that triggered an invalidate and
// two gathers renders as one span with three children, which is
// Figure 2's numbered arrows grouped by cause rather than by time.
type Span struct {
	// N is the 1-based completion number of the span.
	N int
	// From is the requesting node; Seq is the request's correlation id.
	From string
	Seq  uint64
	// Type is the root request type.
	Type wire.Type
	// Start is the request's arrival, End the reply's departure.
	Start, End time.Time
	// Err carries the reply's error, if any.
	Err string
	// Children are the downstream calls, in issue order.
	Children []Child
}

// Duration returns End - Start.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

type spanKey struct {
	from string
	seq  uint64
}

type childKey struct {
	to  string
	seq uint64
}

type openSpan struct {
	span     Span
	children map[childKey]int // child index by outbound correlation key
}

// maxOpenSpans bounds the stack of in-flight spans so a reply that is
// never observed (dropped by a fault injector, or a crashed handler)
// cannot leak memory forever; the oldest open span is discarded when
// the bound is hit.
const maxOpenSpans = 256

// SpanRecorder is a transport observer that reconstructs request spans
// for one node from the message stream: a request arriving at the node
// opens a span, outbound requests issued before its reply leaves attach
// as children (correlated to their replies by destination and Seq), and
// the reply leaving closes the span into a bounded ring of completed
// spans.
//
// On a synchronous transport (Inproc, the in-process shard bridge) the
// delivery order makes child attribution exact. On TCP, concurrent
// requests interleave in the frame stream, so a child issued while two
// spans are open attaches to the most recently opened one — best
// effort, which is the honest limit of observing without propagating a
// context through handlers.
type SpanRecorder struct {
	node string
	cap  int
	now  func() time.Time

	mu    sync.Mutex
	stack []*openSpan           // open spans, oldest first
	byKey map[spanKey]*openSpan // root correlation
	done  []Span                // completed ring
	next  int
	total int
}

// NewSpanRecorder records spans for the named node, keeping the most
// recent capacity completed spans (capacity <= 0 means 256).
func NewSpanRecorder(node string, capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanRecorder{
		node:  node,
		cap:   capacity,
		now:   time.Now,
		byKey: map[spanKey]*openSpan{},
	}
}

// SetNow replaces the clock (tests).
func (r *SpanRecorder) SetNow(fn func() time.Time) {
	if fn != nil {
		r.now = fn
	}
}

// Node returns the node whose spans are recorded.
func (r *SpanRecorder) Node() string { return r.node }

// OnMessage implements transport.Observer.
func (r *SpanRecorder) OnMessage(from, to string, m *wire.Message) {
	// Handshake frames are transport-level, not protocol requests; their
	// ack type is not a wire reply, so admitting them would leak open
	// roots that never close.
	if m.Type == wire.THello || m.Type == wire.THelloAck {
		return
	}
	isReply := m.IsReply()
	switch {
	case to == r.node && !isReply:
		r.openRoot(from, m)
	case from == r.node && isReply:
		r.closeRoot(to, m)
	case from == r.node && !isReply:
		r.openChild(to, m)
	case to == r.node && isReply:
		r.closeChild(from, m)
	}
}

func (r *SpanRecorder) openRoot(from string, m *wire.Message) {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[spanKey{from, m.Seq}]; dup {
		// The same frame can be observed at two layers (TCP wire and the
		// in-process shard bridge); the first observation wins.
		return
	}
	if len(r.stack) >= maxOpenSpans {
		dropped := r.stack[0]
		r.stack = r.stack[1:]
		delete(r.byKey, spanKey{dropped.span.From, dropped.span.Seq})
	}
	os := &openSpan{
		span:     Span{From: from, Seq: m.Seq, Type: m.Type, Start: t},
		children: map[childKey]int{},
	}
	r.stack = append(r.stack, os)
	r.byKey[spanKey{from, m.Seq}] = os
}

func (r *SpanRecorder) closeRoot(to string, m *wire.Message) {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	key := spanKey{to, m.Seq}
	os := r.byKey[key]
	if os == nil {
		return
	}
	delete(r.byKey, key)
	for i, s := range r.stack {
		if s == os {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
	os.span.End = t
	os.span.Err = m.Err
	r.total++
	os.span.N = r.total
	if len(r.done) < r.cap {
		r.done = append(r.done, os.span)
		return
	}
	r.done[r.next] = os.span
	r.next = (r.next + 1) % r.cap
}

func (r *SpanRecorder) openChild(to string, m *wire.Message) {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.stack) == 0 {
		return // spontaneous outbound call, not serving anything
	}
	os := r.stack[len(r.stack)-1]
	os.children[childKey{to, m.Seq}] = len(os.span.Children)
	os.span.Children = append(os.span.Children, Child{To: to, Type: m.Type, Seq: m.Seq, Start: t})
}

func (r *SpanRecorder) closeChild(from string, m *wire.Message) {
	t := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	key := childKey{from, m.Seq}
	// Search open spans newest-first: the reply belongs to the most
	// recent span that issued a matching call.
	for i := len(r.stack) - 1; i >= 0; i-- {
		os := r.stack[i]
		if idx, ok := os.children[key]; ok {
			c := &os.span.Children[idx]
			if c.End.IsZero() {
				c.End = t
				c.Err = m.Err
				delete(os.children, key)
			}
			return
		}
	}
}

// Total returns how many spans have completed (including any rotated
// out of the ring).
func (r *SpanRecorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Open returns how many spans are currently in flight.
func (r *SpanRecorder) Open() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.stack)
}

// Spans returns the retained completed spans in completion order.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.done))
	if len(r.done) < r.cap {
		out = append(out, r.done...)
		return out
	}
	out = append(out, r.done[r.next:]...)
	out = append(out, r.done[:r.next]...)
	return out
}

// Reset clears completed spans; in-flight spans keep accumulating.
func (r *SpanRecorder) Reset() {
	r.mu.Lock()
	r.done = nil
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// String renders the retained spans as an indented call tree:
//
//  42. pull v2→dm seq=7 812µs
//     ├─ invalidate →v1 seq=8 120µs
//     └─ gather →v3 seq=9 240µs
func (r *SpanRecorder) String() string {
	spans := r.Spans()
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "%5d. %s %s→%s seq=%d %s", s.N, s.Type, s.From, r.node, s.Seq, s.Duration())
		if s.Err != "" {
			fmt.Fprintf(&b, " err=%s", s.Err)
		}
		b.WriteByte('\n')
		for i, c := range s.Children {
			branch := "├─"
			if i == len(s.Children)-1 {
				branch = "└─"
			}
			fmt.Fprintf(&b, "         %s %s →%s seq=%d", branch, c.Type, c.To, c.Seq)
			if c.End.IsZero() {
				b.WriteString(" (no reply)")
			} else {
				fmt.Fprintf(&b, " %s", c.End.Sub(c.Start))
			}
			if c.Err != "" {
				fmt.Fprintf(&b, " err=%s", c.Err)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
