// Package trace records protocol message flows and renders them as text
// sequence diagrams — the debugging view of Figure 2's numbered arrows.
// A Recorder plugs into any transport as an Observer; every message
// becomes one arrow line:
//
//  12. v2 ──pull──────────> dm    seq=7
//  13. dm ──invalidate────> v1    seq=8
//  14. v1 ──image─────────> dm    seq=8  img(v3,2)
//
// Recorders are bounded ring buffers, so they can stay attached to
// long-running systems.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"flecc/internal/wire"
)

// Event is one recorded message.
type Event struct {
	// N is the 1-based sequence number of the event in the recording.
	N int
	// From, To are the node names.
	From, To string
	// Type is the message type.
	Type wire.Type
	// Seq is the request/reply correlation id.
	Seq uint64
	// Note summarizes the payload (image sizes, errors).
	Note string
}

// Recorder is a bounded transport observer.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   int // ring write position when full
	total  int
	cap    int
	filter func(m *wire.Message) bool
}

// NewRecorder returns a recorder keeping the most recent capacity events
// (capacity <= 0 means 1024).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{cap: capacity}
}

// SetFilter installs a predicate; messages it rejects are not recorded.
// Not safe to call concurrently with traffic.
func (r *Recorder) SetFilter(f func(m *wire.Message) bool) { r.filter = f }

// OnMessage implements transport.Observer.
func (r *Recorder) OnMessage(from, to string, m *wire.Message) {
	if r.filter != nil && !r.filter(m) {
		return
	}
	var note string
	if m.Img != nil {
		note = fmt.Sprintf("img(v%d,%d)", m.Img.Version, m.Img.Len())
	}
	if m.Err != "" {
		if note != "" {
			note += " "
		}
		note += "err=" + m.Err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	e := Event{N: r.total, From: from, To: to, Type: m.Type, Seq: m.Seq, Note: note}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % r.cap
}

// Total returns how many messages were observed (including any that have
// rotated out of the buffer).
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if len(r.events) < r.cap {
		out = append(out, r.events...)
		return out
	}
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// String renders the retained events as a sequence diagram.
func (r *Recorder) String() string {
	events := r.Events()
	var b strings.Builder
	width := 0
	for _, e := range events {
		if len(e.From) > width {
			width = len(e.From)
		}
	}
	for _, e := range events {
		arrow := "──" + e.Type.String() + strings.Repeat("─", max(1, 14-len(e.Type.String()))) + ">"
		fmt.Fprintf(&b, "%5d.  %-*s %s %s    seq=%d", e.N, width, e.From, arrow, e.To, e.Seq)
		if e.Note != "" {
			b.WriteString("  " + e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
