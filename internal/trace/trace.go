// Package trace records protocol message flows and renders them as text
// sequence diagrams — the debugging view of Figure 2's numbered arrows.
// A Recorder plugs into any transport as an Observer; every message
// becomes one arrow line:
//
//  12. v2 ──pull──────────> dm    seq=7
//  13. dm ──invalidate────> v1    seq=8
//  14. v1 ──image─────────> dm    seq=8  img(v3,2)
//
// Recorders are bounded ring buffers, so they can stay attached to
// long-running systems.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"flecc/internal/wire"
)

// Event is one recorded message.
type Event struct {
	// N is the 1-based sequence number of the event in the recording.
	N int
	// From, To are the node names.
	From, To string
	// Type is the message type.
	Type wire.Type
	// Seq is the request/reply correlation id.
	Seq uint64
	// Note summarizes the payload (image sizes, errors).
	Note string
}

// Recorder is a bounded transport observer.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   int // ring write position when full
	total  int
	cap    int
	filter atomic.Pointer[func(m *wire.Message) bool]
}

// NewRecorder returns a recorder keeping the most recent capacity events
// (capacity <= 0 means 1024).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{cap: capacity}
}

// SetFilter installs a predicate; messages it rejects are not recorded
// (nil clears the filter). The swap is atomic, so SetFilter is safe to
// call concurrently with traffic: deliveries in flight finish against
// whichever filter they loaded, and later deliveries see the new one.
// Already-recorded events are never re-filtered, so SetFilter composes
// with ring rotation and Reset — change the filter mid-recording and
// the retained events simply switch admission policy from that point.
func (r *Recorder) SetFilter(f func(m *wire.Message) bool) {
	if f == nil {
		r.filter.Store(nil)
		return
	}
	r.filter.Store(&f)
}

// OnMessage implements transport.Observer.
func (r *Recorder) OnMessage(from, to string, m *wire.Message) {
	if f := r.filter.Load(); f != nil && !(*f)(m) {
		return
	}
	var note string
	if m.Img != nil {
		note = fmt.Sprintf("img(v%d,%d)", m.Img.Version, m.Img.Len())
	}
	if m.Err != "" {
		if note != "" {
			note += " "
		}
		note += "err=" + m.Err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	e := Event{N: r.total, From: from, To: to, Type: m.Type, Seq: m.Seq, Note: note}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % r.cap
}

// Total returns how many messages were observed (including any that have
// rotated out of the buffer).
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if len(r.events) < r.cap {
		out = append(out, r.events...)
		return out
	}
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// String renders the retained events as a sequence diagram. Column
// widths adapt to the retained events: the name column covers both
// From and To names (an event's To is the next line's From as replies
// turn around, so both must fit), and the arrow column covers the
// longest message type, so long types like migrate-apply keep every
// arrowhead and the seq= column aligned.
func (r *Recorder) String() string {
	events := r.Events()
	var b strings.Builder
	nameW, typeW := 0, 0
	for _, e := range events {
		nameW = max(nameW, len(e.From), len(e.To))
		typeW = max(typeW, len(e.Type.String()))
	}
	for _, e := range events {
		t := e.Type.String()
		arrow := "──" + t + strings.Repeat("─", typeW-len(t)+2) + ">"
		fmt.Fprintf(&b, "%5d.  %-*s %s %-*s  seq=%d", e.N, nameW, e.From, arrow, nameW, e.To, e.Seq)
		if e.Note != "" {
			b.WriteString("  " + e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
