package trace

import (
	"strings"
	"testing"
	"time"

	"flecc/internal/wire"
)

// tick returns a deterministic clock advancing 1ms per call.
func tick() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// feed replays a pull that fans out an invalidate and a gather before
// replying — Figure 2's strong-mode shape, from the DM's perspective.
func feed(r *SpanRecorder) {
	r.OnMessage("v2", "dm", &wire.Message{Type: wire.TPull, Seq: 7})       // root opens
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.TInvalidate, Seq: 8}) // child 1
	r.OnMessage("v1", "dm", &wire.Message{Type: wire.TImage, Seq: 8})      // child 1 reply
	r.OnMessage("dm", "v3", &wire.Message{Type: wire.TUpdate, Seq: 9})     // child 2
	r.OnMessage("v3", "dm", &wire.Message{Type: wire.TImage, Seq: 9})      // child 2 reply
	r.OnMessage("dm", "v2", &wire.Message{Type: wire.TImage, Seq: 7})      // root closes
}

func TestSpanRecorderReconstructsFanOut(t *testing.T) {
	r := NewSpanRecorder("dm", 16)
	r.SetNow(tick())
	feed(r)

	if r.Total() != 1 || r.Open() != 0 {
		t.Fatalf("total=%d open=%d, want 1 completed, 0 open", r.Total(), r.Open())
	}
	spans := r.Spans()
	s := spans[0]
	if s.From != "v2" || s.Seq != 7 || s.Type != wire.TPull {
		t.Fatalf("span = %+v", s)
	}
	if s.Duration() != 5*time.Millisecond {
		t.Fatalf("duration = %v (events ticked 1ms apart)", s.Duration())
	}
	if len(s.Children) != 2 {
		t.Fatalf("children = %+v", s.Children)
	}
	c1, c2 := s.Children[0], s.Children[1]
	if c1.To != "v1" || c1.Type != wire.TInvalidate || c1.End.Sub(c1.Start) != time.Millisecond {
		t.Fatalf("child 1 = %+v", c1)
	}
	if c2.To != "v3" || c2.Type != wire.TUpdate || c2.End.Sub(c2.Start) != time.Millisecond {
		t.Fatalf("child 2 = %+v", c2)
	}

	out := r.String()
	for _, want := range []string{"pull v2→dm seq=7 5ms", "├─ invalidate →v1 seq=8 1ms", "└─ update →v3 seq=9 1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestSpanRecorderChildWithoutReply: a fan-out leg whose reply never
// comes back (dropped by a fault) renders as such instead of blocking
// the span.
func TestSpanRecorderChildWithoutReply(t *testing.T) {
	r := NewSpanRecorder("dm", 16)
	r.SetNow(tick())
	r.OnMessage("v2", "dm", &wire.Message{Type: wire.TPull, Seq: 1})
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.TInvalidate, Seq: 2})
	// v1's reply is dropped; the DM replies to v2 anyway (evicting v1).
	r.OnMessage("dm", "v2", &wire.Message{Type: wire.TImage, Seq: 1})

	spans := r.Spans()
	if len(spans) != 1 || len(spans[0].Children) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	if !spans[0].Children[0].End.IsZero() {
		t.Fatalf("child should have no End: %+v", spans[0].Children[0])
	}
	if !strings.Contains(r.String(), "(no reply)") {
		t.Fatalf("rendering should flag the missing reply:\n%s", r.String())
	}
}

// TestSpanRecorderRing: completed spans rotate through a bounded ring
// with original numbering, like the raw-event Recorder.
func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder("dm", 3)
	for i := 1; i <= 9; i++ {
		r.OnMessage("cm", "dm", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
		r.OnMessage("dm", "cm", &wire.Message{Type: wire.TAck, Seq: uint64(i)})
	}
	if r.Total() != 9 {
		t.Fatalf("total = %d", r.Total())
	}
	spans := r.Spans()
	if len(spans) != 3 || spans[0].N != 7 || spans[2].N != 9 {
		t.Fatalf("spans = %+v", spans)
	}
}

// TestSpanRecorderDedupesDoubleObservation: the same frame observed at
// two layers (TCP wire + in-process bridge) opens only one span and the
// extra reply observation is a no-op.
func TestSpanRecorderDedupesDoubleObservation(t *testing.T) {
	r := NewSpanRecorder("dm", 16)
	req := &wire.Message{Type: wire.TPull, Seq: 4}
	reply := &wire.Message{Type: wire.TAck, Seq: 4}
	r.OnMessage("v1", "dm", req)
	r.OnMessage("v1", "dm", req) // second layer sees the same frame
	r.OnMessage("dm", "v1", reply)
	r.OnMessage("dm", "v1", reply)
	if r.Total() != 1 || r.Open() != 0 {
		t.Fatalf("total=%d open=%d, want exactly one span and no leak", r.Total(), r.Open())
	}
}

// TestSpanRecorderOpenBound: spans whose replies are never observed are
// eventually discarded instead of leaking.
func TestSpanRecorderOpenBound(t *testing.T) {
	r := NewSpanRecorder("dm", 4)
	for i := 0; i < maxOpenSpans*2; i++ {
		r.OnMessage("cm", "dm", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
	}
	if r.Open() != maxOpenSpans {
		t.Fatalf("open = %d, want bounded at %d", r.Open(), maxOpenSpans)
	}
}

// TestSpanRecorderError: a TErr reply closes the span with its error.
func TestSpanRecorderError(t *testing.T) {
	r := NewSpanRecorder("dm", 4)
	r.OnMessage("v1", "dm", &wire.Message{Type: wire.TPush, Seq: 2})
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.TErr, Seq: 2, Err: "mode conflict"})
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Err != "mode conflict" {
		t.Fatalf("spans = %+v", spans)
	}
	if !strings.Contains(r.String(), "err=mode conflict") {
		t.Fatalf("rendering missing error:\n%s", r.String())
	}
}

// TestSpanRecorderIgnoresHandshake: hello/hello-ack are transport-level
// frames whose ack is not a wire reply type; they must not open spans.
func TestSpanRecorderIgnoresHandshake(t *testing.T) {
	r := NewSpanRecorder("dm", 4)
	r.OnMessage("v1", "dm", &wire.Message{Type: wire.THello, Seq: 0})
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.THelloAck, Seq: 0})
	if r.Total() != 0 || r.Open() != 0 {
		t.Fatalf("total=%d open=%d, want handshake ignored", r.Total(), r.Open())
	}
}
