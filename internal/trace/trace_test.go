package trace

import (
	"strings"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/wire"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(10)
	r.OnMessage("v2", "dm", &wire.Message{Type: wire.TPull, Seq: 7})
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.TInvalidate, Seq: 8})
	img := image.New(property.NewSet())
	img.Put(image.Entry{Key: "k", Value: []byte("v")})
	img.Version = 3
	r.OnMessage("v1", "dm", &wire.Message{Type: wire.TImage, Seq: 8, Img: img})
	r.OnMessage("dm", "v2", &wire.Message{Type: wire.TErr, Seq: 7, Err: "boom"})

	if r.Total() != 4 {
		t.Fatalf("total = %d", r.Total())
	}
	events := r.Events()
	if len(events) != 4 || events[0].N != 1 || events[3].N != 4 {
		t.Fatalf("events = %+v", events)
	}
	out := r.String()
	for _, want := range []string{"pull", "invalidate", "img(v3,1)", "err=boom", "seq=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diagram missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.OnMessage("a", "b", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d", r.Total())
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained = %d", len(events))
	}
	// The most recent three, in order.
	if events[0].Seq != 4 || events[1].Seq != 5 || events[2].Seq != 6 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].N != 5 {
		t.Fatalf("numbering = %+v", events[0])
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(10)
	r.SetFilter(func(m *wire.Message) bool { return m.Type == wire.TInvalidate })
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	r.OnMessage("a", "b", &wire.Message{Type: wire.TInvalidate})
	if r.Total() != 1 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0) // default capacity
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRecorderWithProtocolRun(t *testing.T) {
	// The recorder is a drop-in observer: Figure 2's strong-mode
	// invalidation sequence shows up as pull → invalidate → image → image.
	// (Wired through the real protocol in the flecc package test
	// TestTraceOption; here we just confirm the rendering order.)
	r := NewRecorder(100)
	seq := []wire.Type{wire.TPull, wire.TInvalidate, wire.TImage, wire.TImage}
	for i, typ := range seq {
		r.OnMessage("x", "y", &wire.Message{Type: typ, Seq: uint64(i)})
	}
	out := r.String()
	iPull := strings.Index(out, "pull")
	iInv := strings.Index(out, "invalidate")
	if iPull < 0 || iInv < 0 || iPull > iInv {
		t.Fatalf("ordering wrong:\n%s", out)
	}
}
