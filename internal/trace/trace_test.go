package trace

import (
	"strings"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/wire"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(10)
	r.OnMessage("v2", "dm", &wire.Message{Type: wire.TPull, Seq: 7})
	r.OnMessage("dm", "v1", &wire.Message{Type: wire.TInvalidate, Seq: 8})
	img := image.New(property.NewSet())
	img.Put(image.Entry{Key: "k", Value: []byte("v")})
	img.Version = 3
	r.OnMessage("v1", "dm", &wire.Message{Type: wire.TImage, Seq: 8, Img: img})
	r.OnMessage("dm", "v2", &wire.Message{Type: wire.TErr, Seq: 7, Err: "boom"})

	if r.Total() != 4 {
		t.Fatalf("total = %d", r.Total())
	}
	events := r.Events()
	if len(events) != 4 || events[0].N != 1 || events[3].N != 4 {
		t.Fatalf("events = %+v", events)
	}
	out := r.String()
	for _, want := range []string{"pull", "invalidate", "img(v3,1)", "err=boom", "seq=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diagram missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.OnMessage("a", "b", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d", r.Total())
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained = %d", len(events))
	}
	// The most recent three, in order.
	if events[0].Seq != 4 || events[1].Seq != 5 || events[2].Seq != 6 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].N != 5 {
		t.Fatalf("numbering = %+v", events[0])
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(10)
	r.SetFilter(func(m *wire.Message) bool { return m.Type == wire.TInvalidate })
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	r.OnMessage("a", "b", &wire.Message{Type: wire.TInvalidate})
	if r.Total() != 1 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0) // default capacity
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRecorderWithProtocolRun(t *testing.T) {
	// The recorder is a drop-in observer: Figure 2's strong-mode
	// invalidation sequence shows up as pull → invalidate → image → image.
	// (Wired through the real protocol in the flecc package test
	// TestTraceOption; here we just confirm the rendering order.)
	r := NewRecorder(100)
	seq := []wire.Type{wire.TPull, wire.TInvalidate, wire.TImage, wire.TImage}
	for i, typ := range seq {
		r.OnMessage("x", "y", &wire.Message{Type: typ, Seq: uint64(i)})
	}
	out := r.String()
	iPull := strings.Index(out, "pull")
	iInv := strings.Index(out, "invalidate")
	if iPull < 0 || iInv < 0 || iPull > iInv {
		t.Fatalf("ordering wrong:\n%s", out)
	}
}

// TestRecorderStringAlignment: the rendered diagram keeps the To column
// and seq= column aligned even when message types of very different
// lengths (ack vs migrate-apply) and node names of different lengths
// mix — the layout bug where long types collapsed the arrow padding.
func TestRecorderStringAlignment(t *testing.T) {
	r := NewRecorder(10)
	r.OnMessage("v2", "dm", &wire.Message{Type: wire.TPull, Seq: 1})
	r.OnMessage("dm", "a-long-view-name", &wire.Message{Type: wire.TMigrateApply, Seq: 2})
	r.OnMessage("a-long-view-name", "dm", &wire.Message{Type: wire.TAck, Seq: 2})
	out := r.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	// Column positions in runes: the arrow shaft is drawn with multi-byte
	// box-drawing characters, so byte offsets don't measure alignment.
	runeIndex := func(s, sub string) int {
		b := strings.Index(s, sub)
		if b < 0 {
			return -1
		}
		return len([]rune(s[:b]))
	}
	var arrowCol, seqCol int
	for i, l := range lines {
		a := runeIndex(l, ">")
		s := runeIndex(l, "seq=")
		if a < 0 || s < 0 {
			t.Fatalf("line %d malformed: %q", i, l)
		}
		if i == 0 {
			arrowCol, seqCol = a, s
			continue
		}
		if a != arrowCol {
			t.Fatalf("arrowheads misaligned (%d vs %d):\n%s", a, arrowCol, out)
		}
		if s != seqCol {
			t.Fatalf("seq columns misaligned (%d vs %d):\n%s", s, seqCol, out)
		}
	}
	// Every arrow must retain at least the two leading and two trailing
	// dashes around its label.
	for i, l := range lines {
		if !strings.Contains(l, "──") {
			t.Fatalf("line %d lost its arrow shaft: %q", i, l)
		}
	}
}

// TestRecorderRotatedRendering: String over a rotated ring (total >
// capacity) renders exactly the retained window with original event
// numbers.
func TestRecorderRotatedRendering(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 11; i++ {
		r.OnMessage("cm", "dm", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
	}
	out := r.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	for i, wantN := range []string{"8.", "9.", "10.", "11."} {
		if !strings.Contains(lines[i], wantN) {
			t.Fatalf("line %d = %q, want event %s", i, lines[i], wantN)
		}
	}
	if strings.Contains(out, "seq=7") {
		t.Fatalf("rotated-out event still rendered:\n%s", out)
	}
}

// TestRecorderFilterRotationResetCompose: SetFilter, ring rotation, and
// Reset compose — a filter installed mid-stream only governs later
// admissions, survives rotation, and stays in force across Reset.
func TestRecorderFilterRotationResetCompose(t *testing.T) {
	r := NewRecorder(3)
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull, Seq: 1})
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPush, Seq: 2})

	r.SetFilter(func(m *wire.Message) bool { return m.Type == wire.TPull })
	for i := 3; i <= 8; i++ {
		typ := wire.TPush
		if i%2 == 1 {
			typ = wire.TPull
		}
		r.OnMessage("a", "b", &wire.Message{Type: typ, Seq: uint64(i)})
	}
	// Admitted: pre-filter 1,2 then pulls 3,5,7 → total 5, ring keeps 3.
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	events := r.Events()
	if len(events) != 3 || events[0].Seq != 3 || events[1].Seq != 5 || events[2].Seq != 7 {
		t.Fatalf("events = %+v", events)
	}

	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("reset incomplete")
	}
	// The filter survives Reset.
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPush, Seq: 9})
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPull, Seq: 10})
	if r.Total() != 1 || r.Events()[0].Seq != 10 {
		t.Fatalf("post-reset events = %+v", r.Events())
	}

	// Clearing restores admit-all.
	r.SetFilter(nil)
	r.OnMessage("a", "b", &wire.Message{Type: wire.TPush, Seq: 11})
	if r.Total() != 2 {
		t.Fatalf("total after clearing filter = %d", r.Total())
	}
}

// TestRecorderSetFilterConcurrent: swapping the filter while traffic
// flows is safe (run under -race in CI).
func TestRecorderSetFilterConcurrent(t *testing.T) {
	r := NewRecorder(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.SetFilter(func(m *wire.Message) bool { return m.Type == wire.TPull })
			} else {
				r.SetFilter(nil)
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		r.OnMessage("a", "b", &wire.Message{Type: wire.TPull, Seq: uint64(i)})
	}
	close(stop)
	<-done
	if r.Total() == 0 {
		t.Fatal("nothing recorded")
	}
}
