package shard

import (
	"fmt"
	"sync"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

// ServiceConfig configures a sharded directory service.
type ServiceConfig struct {
	// Name is the logical directory name cache managers dial ("dm" by
	// default). Shard nodes attach as Node(Name, i).
	Name string
	// Net is the transport all parties share.
	Net transport.Network
	// Clock drives the shard stores' timestamps.
	Clock vclock.Clock
	// Shards is the initial shard count (>= 1).
	Shards int
	// Replicas is the virtual-node count per shard on the ring
	// (DefaultReplicas when 0).
	Replicas int
	// Primary yields the primary-copy codec for shard i. Each shard needs
	// its own codec instance when they serve disjoint data concurrently —
	// a shared codec would serialize every shard on its one lock. Callers
	// that migrate data between shards may still return one shared
	// instance so both shards extract from the same primary.
	Primary func(i int) image.Codec
	// Opts is applied to every shard directory manager.
	Opts directory.Options

	// Standby, when non-nil, yields a standby codec for shard i: every
	// shard gets a hot-standby directory manager (node StandbyNode(Name,
	// i)) fed by the primary's replication session, and the router is
	// armed to promote it when the primary's lease lapses.
	Standby func(i int) image.Codec
	// Repl tunes the per-shard replication sessions (Standby mode).
	Repl directory.ReplConfig
	// Lease is the shard primaries' router-side lease (Standby mode;
	// DefaultLease when 0).
	Lease vclock.Duration
	// LeaseSleep overrides how the router waits out a lease remainder
	// (nil = wall-clock sleep; simulated-time tests inject one).
	LeaseSleep func(vclock.Duration)
}

// DefaultLease is the shard-primary lease applied when ServiceConfig
// enables standbys without choosing one (milliseconds of the service
// clock).
const DefaultLease vclock.Duration = 500

// StandbyNode renders the conventional node name for shard i's hot
// standby: "db!s0r", "db!s1r", … The trailing 'r' (replica) keeps it
// outside the IsNode namespace, so tooling never mistakes a standby for
// a member shard.
func StandbyNode(base string, i int) string { return Node(base, i) + "r" }

// Service bundles a sharded directory: N directory managers attached
// under shard node names, the shard map, and the router serving the
// logical name. It replaces a bare directory.Manager in deployments that
// outgrow one; cache managers are none the wiser.
type Service struct {
	cfg ServiceConfig
	m   *Map
	r   *Router

	mu       sync.Mutex
	dms      []*directory.Manager          // index i serves Node(cfg.Name, i)
	standbys []*directory.Manager          // index i serves StandbyNode(cfg.Name, i); nil entries without Standby
	repls    []*directory.Replicator       // index i replicates shard i to its standby
	byName   map[string]*directory.Manager // every attached manager (primaries and standbys)
}

// NewService builds and attaches the shard directory managers and the
// router. On error, everything already attached is torn down.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Name == "" {
		cfg.Name = "dm"
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Net == nil || cfg.Clock == nil || cfg.Primary == nil {
		return nil, fmt.Errorf("shard: Net, Clock, and Primary are required")
	}
	s := &Service{cfg: cfg, m: NewMap(cfg.Replicas), byName: map[string]*directory.Manager{}}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := s.attachShard(i); err != nil {
			s.Close()
			return nil, err
		}
	}
	r, err := NewRouter(cfg.Net, cfg.Name, s.m)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.r = r
	if cfg.Standby != nil {
		lease := cfg.Lease
		if lease == 0 {
			lease = DefaultLease
		}
		r.SetFailover(FailoverConfig{Clock: cfg.Clock, Lease: lease, Sleep: cfg.LeaseSleep})
		s.mu.Lock()
		n := len(s.dms)
		s.mu.Unlock()
		for i := 0; i < n; i++ {
			r.SetStandby(Node(cfg.Name, i), StandbyNode(cfg.Name, i))
		}
	}
	return s, nil
}

// attachShard creates directory manager i (and, when configured, its hot
// standby plus the replication session feeding it) and adds the primary
// to the map.
func (s *Service) attachShard(i int) (string, error) {
	node := Node(s.cfg.Name, i)
	dm, err := directory.New(node, s.cfg.Primary(i), s.cfg.Clock, s.cfg.Net, s.cfg.Opts)
	if err != nil {
		return "", fmt.Errorf("shard: attach %s: %w", node, err)
	}
	var sb *directory.Manager
	var repl *directory.Replicator
	if s.cfg.Standby != nil {
		sbOpts := s.cfg.Opts
		sbOpts.Standby = true
		sbOpts.Snapshot = nil
		sb, err = directory.New(StandbyNode(s.cfg.Name, i), s.cfg.Standby(i), s.cfg.Clock, s.cfg.Net, sbOpts)
		if err != nil {
			_ = dm.Close()
			return "", fmt.Errorf("shard: attach standby for %s: %w", node, err)
		}
		repl, err = dm.StartReplication(s.cfg.Repl, directory.ReplTarget{Name: sb.Name()})
		if err != nil {
			_ = sb.Close()
			_ = dm.Close()
			return "", fmt.Errorf("shard: replicate %s: %w", node, err)
		}
	}
	s.mu.Lock()
	s.dms = append(s.dms, dm)
	s.standbys = append(s.standbys, sb)
	s.repls = append(s.repls, repl)
	s.byName[node] = dm
	if sb != nil {
		s.byName[sb.Name()] = sb
	}
	s.mu.Unlock()
	s.m.Add(node)
	if s.r != nil && sb != nil {
		s.r.SetStandby(node, sb.Name())
	}
	return node, nil
}

// Standby returns shard i's hot-standby directory manager (nil without
// standbys or out of range).
func (s *Service) Standby(i int) *directory.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.standbys) {
		return nil
	}
	return s.standbys[i]
}

// Replication returns shard i's replication session (nil without
// standbys or out of range).
func (s *Service) Replication(i int) *directory.Replicator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.repls) {
		return nil
	}
	return s.repls[i]
}

// Heartbeat kicks every shard's replication session (idle standbys get
// lease-refreshing empty batches, degraded ones a probe). Deployments
// call it from their ticker loop.
func (s *Service) Heartbeat() {
	s.mu.Lock()
	repls := append([]*directory.Replicator(nil), s.repls...)
	s.mu.Unlock()
	for _, r := range repls {
		if r != nil {
			r.Heartbeat()
		}
	}
}

// ReplLag returns the worst primary→standby version gap across shards.
func (s *Service) ReplLag() uint64 {
	s.mu.Lock()
	dms := append([]*directory.Manager(nil), s.dms...)
	s.mu.Unlock()
	var lag uint64
	for _, dm := range dms {
		if l := dm.ReplLag(); l > lag {
			lag = l
		}
	}
	return lag
}

// Manager returns the attached directory manager serving the given node
// name — primary or standby — or nil.
func (s *Service) Manager(node string) *directory.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byName[node]
}

// AddShard grows the service by one shard directory manager and returns
// its node name. New registrations may land on it immediately; existing
// views stay where they are until Migrate moves them.
func (s *Service) AddShard() (string, error) {
	s.mu.Lock()
	i := len(s.dms)
	s.mu.Unlock()
	return s.attachShard(i)
}

// Router returns the logical-endpoint router.
func (s *Service) Router() *Router { return s.r }

// Map returns the shard map.
func (s *Service) Map() *Map { return s.m }

// Name returns the logical directory name.
func (s *Service) Name() string { return s.cfg.Name }

// NumShards returns the current shard count.
func (s *Service) NumShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dms)
}

// Shard returns shard i's directory manager (nil when out of range).
func (s *Service) Shard(i int) *directory.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.dms) {
		return nil
	}
	return s.dms[i]
}

// ShardNames returns the shard node names in index order.
func (s *Service) ShardNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.dms))
	for i := range s.dms {
		out[i] = Node(s.cfg.Name, i)
	}
	return out
}

// Migrate moves views between shards; see Router.Migrate.
func (s *Service) Migrate(from, to string, views ...string) error {
	return s.r.Migrate(from, to, views...)
}

// Versions returns the router's per-shard version vector.
func (s *Service) Versions() vclock.Vector { return s.r.Versions() }

// Seen returns the primary version last observed by a view, asked of its
// owning shard (0 when the view is unassigned).
func (s *Service) Seen(view string) vclock.Version {
	owner, ok := s.r.Assignment()[view]
	if !ok {
		return 0
	}
	_, i, ok := IsNode(owner)
	if !ok {
		return 0
	}
	dm := s.Shard(i)
	if dm == nil {
		return 0
	}
	return dm.Seen(view)
}

// CompactAll runs log compaction on every shard concurrently and returns
// the total number of update records dropped. Each shard only drops what
// all of its own live views have already seen, so quality accounting stays
// exact; the fan-out just keeps one busy shard's store lock from
// serializing the sweep.
func (s *Service) CompactAll() int {
	s.mu.Lock()
	dms := append([]*directory.Manager(nil), s.dms...)
	s.mu.Unlock()
	dropped := make([]int, len(dms))
	var wg sync.WaitGroup
	for i, dm := range dms {
		wg.Add(1)
		go func(i int, dm *directory.Manager) {
			defer wg.Done()
			dropped[i] = dm.CompactLog()
		}(i, dm)
	}
	wg.Wait()
	total := 0
	for _, n := range dropped {
		total += n
	}
	return total
}

// Close detaches the router, stops the replication sessions, and closes
// every shard directory manager (standbys included). The manager
// teardowns fan out concurrently; a TCP-backed deployment with many
// shards should not pay N sequential connection drains.
func (s *Service) Close() error {
	var first error
	if s.r != nil {
		first = s.r.Close()
	}
	s.mu.Lock()
	dms := append([]*directory.Manager(nil), s.dms...)
	for _, sb := range s.standbys {
		if sb != nil {
			dms = append(dms, sb)
		}
	}
	repls := append([]*directory.Replicator(nil), s.repls...)
	s.mu.Unlock()
	for _, repl := range repls {
		if repl != nil {
			repl.Close()
		}
	}
	errs := make([]error, len(dms))
	var wg sync.WaitGroup
	for i, dm := range dms {
		wg.Add(1)
		go func(i int, dm *directory.Manager) {
			defer wg.Done()
			errs[i] = dm.Close()
		}(i, dm)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
