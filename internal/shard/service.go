package shard

import (
	"fmt"
	"sync"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

// ServiceConfig configures a sharded directory service.
type ServiceConfig struct {
	// Name is the logical directory name cache managers dial ("dm" by
	// default). Shard nodes attach as Node(Name, i).
	Name string
	// Net is the transport all parties share.
	Net transport.Network
	// Clock drives the shard stores' timestamps.
	Clock vclock.Clock
	// Shards is the initial shard count (>= 1).
	Shards int
	// Replicas is the virtual-node count per shard on the ring
	// (DefaultReplicas when 0).
	Replicas int
	// Primary yields the primary-copy codec for shard i. Each shard needs
	// its own codec instance when they serve disjoint data concurrently —
	// a shared codec would serialize every shard on its one lock. Callers
	// that migrate data between shards may still return one shared
	// instance so both shards extract from the same primary.
	Primary func(i int) image.Codec
	// Opts is applied to every shard directory manager.
	Opts directory.Options
}

// Service bundles a sharded directory: N directory managers attached
// under shard node names, the shard map, and the router serving the
// logical name. It replaces a bare directory.Manager in deployments that
// outgrow one; cache managers are none the wiser.
type Service struct {
	cfg ServiceConfig
	m   *Map
	r   *Router

	mu  sync.Mutex
	dms []*directory.Manager // index i serves Node(cfg.Name, i)
}

// NewService builds and attaches the shard directory managers and the
// router. On error, everything already attached is torn down.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Name == "" {
		cfg.Name = "dm"
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Net == nil || cfg.Clock == nil || cfg.Primary == nil {
		return nil, fmt.Errorf("shard: Net, Clock, and Primary are required")
	}
	s := &Service{cfg: cfg, m: NewMap(cfg.Replicas)}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := s.attachShard(i); err != nil {
			s.Close()
			return nil, err
		}
	}
	r, err := NewRouter(cfg.Net, cfg.Name, s.m)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.r = r
	return s, nil
}

// attachShard creates directory manager i and adds it to the map.
func (s *Service) attachShard(i int) (string, error) {
	node := Node(s.cfg.Name, i)
	dm, err := directory.New(node, s.cfg.Primary(i), s.cfg.Clock, s.cfg.Net, s.cfg.Opts)
	if err != nil {
		return "", fmt.Errorf("shard: attach %s: %w", node, err)
	}
	s.mu.Lock()
	s.dms = append(s.dms, dm)
	s.mu.Unlock()
	s.m.Add(node)
	return node, nil
}

// AddShard grows the service by one shard directory manager and returns
// its node name. New registrations may land on it immediately; existing
// views stay where they are until Migrate moves them.
func (s *Service) AddShard() (string, error) {
	s.mu.Lock()
	i := len(s.dms)
	s.mu.Unlock()
	return s.attachShard(i)
}

// Router returns the logical-endpoint router.
func (s *Service) Router() *Router { return s.r }

// Map returns the shard map.
func (s *Service) Map() *Map { return s.m }

// Name returns the logical directory name.
func (s *Service) Name() string { return s.cfg.Name }

// NumShards returns the current shard count.
func (s *Service) NumShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dms)
}

// Shard returns shard i's directory manager (nil when out of range).
func (s *Service) Shard(i int) *directory.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.dms) {
		return nil
	}
	return s.dms[i]
}

// ShardNames returns the shard node names in index order.
func (s *Service) ShardNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.dms))
	for i := range s.dms {
		out[i] = Node(s.cfg.Name, i)
	}
	return out
}

// Migrate moves views between shards; see Router.Migrate.
func (s *Service) Migrate(from, to string, views ...string) error {
	return s.r.Migrate(from, to, views...)
}

// Versions returns the router's per-shard version vector.
func (s *Service) Versions() vclock.Vector { return s.r.Versions() }

// Seen returns the primary version last observed by a view, asked of its
// owning shard (0 when the view is unassigned).
func (s *Service) Seen(view string) vclock.Version {
	owner, ok := s.r.Assignment()[view]
	if !ok {
		return 0
	}
	_, i, ok := IsNode(owner)
	if !ok {
		return 0
	}
	dm := s.Shard(i)
	if dm == nil {
		return 0
	}
	return dm.Seen(view)
}

// CompactAll runs log compaction on every shard concurrently and returns
// the total number of update records dropped. Each shard only drops what
// all of its own live views have already seen, so quality accounting stays
// exact; the fan-out just keeps one busy shard's store lock from
// serializing the sweep.
func (s *Service) CompactAll() int {
	s.mu.Lock()
	dms := append([]*directory.Manager(nil), s.dms...)
	s.mu.Unlock()
	dropped := make([]int, len(dms))
	var wg sync.WaitGroup
	for i, dm := range dms {
		wg.Add(1)
		go func(i int, dm *directory.Manager) {
			defer wg.Done()
			dropped[i] = dm.CompactLog()
		}(i, dm)
	}
	wg.Wait()
	total := 0
	for _, n := range dropped {
		total += n
	}
	return total
}

// Close detaches the router and every shard directory manager. The shard
// teardowns fan out concurrently; a TCP-backed deployment with many shards
// should not pay N sequential connection drains.
func (s *Service) Close() error {
	var first error
	if s.r != nil {
		first = s.r.Close()
	}
	s.mu.Lock()
	dms := s.dms
	s.mu.Unlock()
	errs := make([]error, len(dms))
	var wg sync.WaitGroup
	for i, dm := range dms {
		wg.Add(1)
		go func(i int, dm *directory.Manager) {
			defer wg.Done()
			errs[i] = dm.Close()
		}(i, dm)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
