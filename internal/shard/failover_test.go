package shard_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// haRig is a one-shard deployment with a hot standby: faulty (seeded)
// transport, simulated time, inline replication, and a router armed to
// promote "dm!s0r" when "dm!s0"'s lease lapses. LeaseSleep advances the
// simulated clock, so a lease wait costs no wall time and every run is
// deterministic.
type haRig struct {
	t     *testing.T
	clock *vclock.Sim
	net   *transport.Faulty
	prim  *kv // primary shard's codec
	sb    *kv // standby's codec
	svc   *shard.Service
}

func newHARig(t *testing.T, seed int64, lease vclock.Duration) *haRig {
	t.Helper()
	clock := vclock.NewSim()
	net := transport.NewFaulty(transport.NewInproc(), seed)
	net.SetSleep(func(time.Duration) {})
	r := &haRig{
		t:     t,
		clock: clock,
		net:   net,
		prim:  newKV(map[string]string{"seed": "s0"}),
		sb:    newKV(nil),
	}
	noSleep := func(time.Duration) {}
	svc, err := shard.NewService(shard.ServiceConfig{
		Name:    "dm",
		Net:     net,
		Clock:   clock,
		Shards:  1,
		Primary: func(int) image.Codec { return r.prim },
		Standby: func(int) image.Codec { return r.sb },
		Repl: directory.ReplConfig{
			Inline: true,
			Retry:  transport.RetryPolicy{Attempts: 3, Sleep: noSleep},
		},
		Lease:      lease,
		LeaseSleep: func(d vclock.Duration) { clock.Advance(d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Router().SetRetryPolicy(transport.RetryPolicy{Attempts: 2, Sleep: noSleep})
	r.svc = svc
	t.Cleanup(func() { svc.Close() })
	return r
}

func (r *haRig) view(name string, view *kv) *cache.Manager {
	r.t.Helper()
	cm, err := cache.New(cache.Config{
		Name: name, Directory: "dm", Net: r.net, View: view,
		Props: property.MustSet("P={x}"), Mode: wire.Weak, Clock: r.clock,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	return cm
}

// TestShardFailoverKillTheLeader: the kill-the-leader soak. Three views
// push writes through the router; mid-run the primary is isolated at the
// network. The next routed call waits out the lease, the router promotes
// the hot standby, and the same call succeeds against it — the client
// sees latency, never an error. Every acknowledged commit must be
// readable afterwards (zero acked loss), and the router must report one
// failover and no regressions.
func TestShardFailoverKillTheLeader(t *testing.T) {
	fp1 := runKillTheLeader(t, 42)
	// Byte-identical seeded runs: the same seed replays the same
	// history, byte for byte.
	fp2 := runKillTheLeader(t, 42)
	if fp1 != fp2 {
		t.Fatalf("seeded soak diverged:\nrun1: %s\nrun2: %s", fp1, fp2)
	}
	if fp3 := runKillTheLeader(t, 7); fp3 == "" {
		t.Fatal("second seed produced no fingerprint")
	}
}

// runKillTheLeader executes one seeded soak and returns a fingerprint of
// its observable history (final standby state, versions, counters).
func runKillTheLeader(t *testing.T, seed int64) string {
	t.Helper()
	r := newHARig(t, seed, 200)

	views := make([]*kv, 3)
	cms := make([]*cache.Manager, 3)
	for i := range cms {
		views[i] = newKV(nil)
		cms[i] = r.view(fmt.Sprintf("v%d", i+1), views[i])
		if err := cms[i].InitImage(); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 20
	const killAt = 10
	acked := map[string]string{}
	for round := 0; round < rounds; round++ {
		if round == killAt {
			// Kill the leader: every edge touching the primary is cut.
			r.net.Isolate("dm!s0")
		}
		if round == 5 {
			// And mid-run, lose one replication batch in flight: the
			// inline retry re-ships it, so the commit still barriers.
			r.net.DisconnectNext("dm!s0", "dm!s0r", 1)
		}
		for i, cm := range cms {
			key := fmt.Sprintf("k%d", round%4+i*4)
			val := fmt.Sprintf("r%d-v%d", round, i+1)
			if err := cm.StartUse(); err != nil {
				t.Fatalf("round %d view %d StartUse: %v", round, i, err)
			}
			views[i].Set(key, val)
			cm.EndUse()
			// Bounded failover cost: pushes never fail — the routed call
			// that finds the primary dead absorbs lease-wait + promotion
			// + retry internally.
			if err := cm.PushImage(); err != nil {
				t.Fatalf("round %d view %d push: %v", round, i, err)
			}
			acked[key] = val
		}
		r.clock.Advance(1)
	}

	router := r.svc.Router()
	if got := router.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if got := router.Regressions(); got != 0 {
		t.Fatalf("failover regressions = %d — an acked commit is missing from the standby", got)
	}
	// The shard map now routes to the standby.
	if owner := router.Assignment()["v1"]; owner != "dm!s0r" {
		t.Fatalf("v1 routes to %s after failover, want dm!s0r", owner)
	}

	// Zero acked loss: every acknowledged write is readable through the
	// promoted standby.
	if err := cms[0].PullImage(); err != nil {
		t.Fatalf("post-failover pull: %v", err)
	}
	for k, want := range acked {
		if got := views[0].Get(k); got != want {
			t.Fatalf("acked commit lost across failover: %s = %q, want %q", k, got, want)
		}
	}

	sbDM := r.svc.Manager("dm!s0r")
	if sbDM == nil {
		t.Fatal("standby manager unreachable via Manager()")
	}
	if sbDM.Standby() {
		t.Fatal("promoted standby still gating client traffic")
	}

	// Fingerprint the run for the determinism check.
	var b strings.Builder
	fmt.Fprintf(&b, "ver=%d epoch=%d failovers=%d|", sbDM.CurrentVersion(), sbDM.Epoch(), router.Failovers())
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, r.sb.Get(k))
	}
	return b.String()
}

// TestShardFailoverReplicationKeepsStandbyHot: before any failure, the
// inline replication session keeps the standby at the primary's version
// after every acked push — the property that makes promotion lossless.
func TestShardFailoverReplicationKeepsStandbyHot(t *testing.T) {
	r := newHARig(t, 1, 200)
	view := newKV(nil)
	cm := r.view("v1", view)
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cm.StartUse(); err != nil {
			t.Fatal(err)
		}
		view.Set("k", fmt.Sprintf("w%d", i))
		cm.EndUse()
		if err := cm.PushImage(); err != nil {
			t.Fatal(err)
		}
		prim, sb := r.svc.Shard(0), r.svc.Standby(0)
		if prim.CurrentVersion() != sb.CurrentVersion() {
			t.Fatalf("push %d: standby at v%d, primary at v%d", i, sb.CurrentVersion(), prim.CurrentVersion())
		}
		if lag := r.svc.ReplLag(); lag != 0 {
			t.Fatalf("push %d: ReplLag = %d", i, lag)
		}
	}
	if r.sb.Get("k") != "w4" {
		t.Fatalf("standby codec k=%q, want w4", r.sb.Get("k"))
	}
	// Heartbeat is safe to call and keeps counters sane.
	r.svc.Heartbeat()
	if r.svc.Replication(0).Degraded() {
		t.Fatal("healthy pair reports degraded")
	}
}
