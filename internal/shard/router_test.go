package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/wire"
)

// TestRouterPushPullRoundTrip runs the basic protocol exchange through a
// 4-shard router: the cache managers dial "dm" exactly as they would a
// single directory manager.
func TestRouterPushPullRoundTrip(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	v1, v2 := newKV(nil), newKV(nil)
	cm1 := r.view("v1", "P={x}", wire.Weak, v1)
	cm2 := r.view("v2", "P={x}", wire.Weak, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if v1.Get("seed") != "s0" {
		t.Fatal("init should deliver the primary data through the router")
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("ticket", "sold-to-alice")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("ticket") != "sold-to-alice" {
		t.Fatal("pull should deliver the pushed update")
	}
	// Conflicting views must be co-located.
	if r.owner("v1") != r.owner("v2") {
		t.Fatalf("overlapping views split: v1 on %s, v2 on %s", r.owner("v1"), r.owner("v2"))
	}
}

// TestRouterStrongModeInvalidation re-runs the paper's Figure 2
// walkthrough with the directory sharded 4 ways: invalidation and update
// gathering work because conflicting views share a shard.
func TestRouterStrongModeInvalidation(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	v1, v2 := newKV(nil), newKV(nil)
	cm1 := r.view("v1", "P={x,y}", wire.Strong, v1)
	cm2 := r.view("v2", "P={x,z}", wire.Strong, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("x", "v1-wrote-this")
	cm1.EndUse()

	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if cm1.Valid() {
		t.Fatal("v1 should be invalidated")
	}
	if v2.Get("x") != "v1-wrote-this" {
		t.Fatalf("v2 sees x=%q", v2.Get("x"))
	}
	if err := cm1.StartUse(); !errors.Is(err, cache.ErrInvalidated) {
		t.Fatalf("err = %v", err)
	}
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	cm1.EndUse()
}

// TestRouterSpreadsDisjointViews checks that non-conflicting views
// actually use more than one shard — the point of the exercise.
func TestRouterSpreadsDisjointViews(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	for i := 0; i < 16; i++ {
		props := fmt.Sprintf("P%d={a,b}", i)
		cm := r.view(fmt.Sprintf("v%d", i), props, wire.Weak, newKV(nil))
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
	}
	used := map[string]bool{}
	for _, s := range r.svc.Router().Assignment() {
		used[s] = true
	}
	if len(used) < 2 {
		t.Fatalf("16 disjoint views all landed on one shard: %v", r.svc.Router().Assignment())
	}
}

// TestRouterPinPlacement installs a pin before registration and checks
// the view bypasses the ring.
func TestRouterPinPlacement(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	target := shard.Node("dm", 2)
	flights := property.MustSet("Flights={100,101}").Properties()[0]
	if err := r.svc.Map().Pin(flights, target); err != nil {
		t.Fatal(err)
	}
	cm := r.view("agent", "Flights={100}", wire.Weak, newKV(nil))
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	if got := r.owner("agent"); got != target {
		t.Fatalf("pinned view on %s, want %s", got, target)
	}
}

// TestRouterRejectsUnroutableAndUnknown checks the router's input
// validation: DM→CM message types never cross it, and non-register
// traffic for a view it has never placed is refused.
func TestRouterRejectsUnroutableAndUnknown(t *testing.T) {
	r := newRig(t, 2, directory.Options{})
	ep, err := r.net.Attach("probe", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TInvalidate, View: "x"}); err == nil {
		t.Fatalf("TInvalidate should be refused, got %v", reply)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TPull, View: "ghost"}); err == nil {
		t.Fatalf("pull for unknown view should be refused, got %v", reply)
	}
	if reply, err := ep.Call("dm", &wire.Message{Type: wire.TRouted}); err == nil {
		t.Fatalf("nested TRouted should be refused, got %v", reply)
	}
}

// TestRouterUnregisterClearsAssignment checks killImage releases the
// view's placement.
func TestRouterUnregisterClearsAssignment(t *testing.T) {
	r := newRig(t, 2, directory.Options{})
	cm := r.view("v1", "P={x}", wire.Weak, newKV(nil))
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.svc.Router().Assignment()["v1"]; !ok {
		t.Fatal("v1 should be assigned after registration")
	}
	if err := cm.KillImage(); err != nil {
		t.Fatal(err)
	}
	if s, ok := r.svc.Router().Assignment()["v1"]; ok {
		t.Fatalf("v1 still assigned to %s after unregister", s)
	}
}

// TestRouterVersionVector checks the router tracks each shard's primary
// version from the replies that pass through it.
func TestRouterVersionVector(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	v1 := newKV(nil)
	cm1 := r.view("v1", "P={x}", wire.Weak, v1)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cm1.StartUse(); err != nil {
			t.Fatal(err)
		}
		v1.Set("k", fmt.Sprintf("val-%d", i))
		cm1.EndUse()
		if err := cm1.PushImage(); err != nil {
			t.Fatal(err)
		}
	}
	owner := r.owner("v1")
	_, idx, ok := shard.IsNode(owner)
	if !ok {
		t.Fatalf("owner %q is not a shard node", owner)
	}
	dm := r.svc.Shard(idx)
	vv := r.svc.Versions()
	if vv.Get(owner) == 0 {
		t.Fatalf("no version observed for %s: %v", owner, vv)
	}
	if vv.Get(owner) != uint64(dm.CurrentVersion()) {
		t.Fatalf("router saw version %d, shard is at %d", vv.Get(owner), dm.CurrentVersion())
	}
}
