package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flecc/internal/transport"
	"flecc/internal/wire"
)

// Bridge is a Network that hosts the sharded directory service — router
// plus shard directory managers — inside one process, behind a transport
// that only admits a single node (transport.ServerNetwork attaches
// exactly one listener-side node). Local nodes call each other in
// process; calls to names that are not local (the remote cache managers)
// leave through the uplink, and requests arriving on the uplink are
// handed to the local gateway node (the router) with the remote caller's
// From intact — which is exactly what the router needs to identify the
// originating view.
//
// The Bridge carries its own observer fan-out so a deployment can count
// router→shard traffic per shard (metrics.MessageStats.PerShard) even
// though that traffic never touches the wire.
type Bridge struct {
	mu      sync.RWMutex
	nodes   map[string]*bridgeNode
	seq     atomic.Uint64
	obs     transport.Observers
	uplink  transport.Endpoint
	gateway string
}

type bridgeNode struct {
	bridge  *Bridge
	name    string
	handler transport.Handler
	closed  atomic.Bool
}

// NewBridge returns an empty bridge with no uplink.
func NewBridge() *Bridge {
	return &Bridge{nodes: map[string]*bridgeNode{}}
}

// SetObserver replaces the observer fan-out for in-process traffic with
// the single observer o (nil disables). Safe to call concurrently with
// traffic.
func (b *Bridge) SetObserver(o transport.Observer) { b.obs.Set(o) }

// AddObserver appends an observer to the fan-out, so per-shard stats,
// tracing, and user hooks coexist. Safe to call concurrently with
// traffic.
func (b *Bridge) AddObserver(o transport.Observer) { b.obs.Add(o) }

// Attach implements transport.Network for local nodes.
func (b *Bridge) Attach(name string, h transport.Handler) (transport.Endpoint, error) {
	if name == "" || h == nil {
		return nil, fmt.Errorf("transport: bridge needs a name and handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.nodes[name]; dup {
		return nil, fmt.Errorf("%w: %q", transport.ErrNameTaken, name)
	}
	n := &bridgeNode{bridge: b, name: name, handler: h}
	b.nodes[name] = n
	return n, nil
}

// ConnectUplink attaches the bridge to an external network under the
// gateway name. Requests arriving there are served by the local node of
// the same name; local calls to unknown names go out through it.
func (b *Bridge) ConnectUplink(ext transport.Network, gateway string) error {
	b.mu.Lock()
	if b.uplink != nil {
		b.mu.Unlock()
		return fmt.Errorf("transport: bridge already has an uplink")
	}
	b.gateway = gateway
	b.mu.Unlock()
	ep, err := ext.Attach(gateway, b.inbound)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.uplink = ep
	b.mu.Unlock()
	return nil
}

// Close detaches the uplink (local nodes close themselves).
func (b *Bridge) Close() error {
	b.mu.Lock()
	up := b.uplink
	b.uplink = nil
	b.mu.Unlock()
	if up != nil {
		return up.Close()
	}
	return nil
}

// inbound serves an uplink request by delivering it to the local gateway
// node. req.From is preserved: it names the remote caller, not the
// bridge.
func (b *Bridge) inbound(req *wire.Message) *wire.Message {
	b.mu.RLock()
	node := b.nodes[b.gateway]
	b.mu.RUnlock()
	if node == nil || node.closed.Load() {
		return &wire.Message{Type: wire.TErr, Err: fmt.Sprintf("bridge: gateway %q not attached", b.gateway)}
	}
	b.obs.OnMessage(req.From, node.name, req)
	reply := node.handler(req)
	if reply == nil {
		reply = &wire.Message{Type: wire.TAck}
	}
	reply.Seq = req.Seq
	reply.From = node.name
	b.obs.OnMessage(node.name, req.From, reply)
	return reply
}

func (b *Bridge) lookup(name string) *bridgeNode {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.nodes[name]
}

func (n *bridgeNode) Name() string { return n.name }

func (n *bridgeNode) Close() error {
	if n.closed.CompareAndSwap(false, true) {
		n.bridge.mu.Lock()
		delete(n.bridge.nodes, n.name)
		n.bridge.mu.Unlock()
	}
	return nil
}

func (n *bridgeNode) Call(to string, req *wire.Message) (*wire.Message, error) {
	if n.closed.Load() {
		return nil, fmt.Errorf("%w: %s", transport.ErrClosed, n.name)
	}
	b := n.bridge
	if callee := b.lookup(to); callee != nil {
		// In-process delivery, Inproc-style: synchronous on the caller's
		// goroutine. Stamp a shallow clone — the caller may retry the same
		// message and must not observe Seq/From writes.
		r := *req
		req = &r
		req.Seq = b.seq.Add(1)
		req.From = n.name
		b.obs.OnMessage(n.name, to, req)
		if callee.closed.Load() {
			return nil, fmt.Errorf("%w: %s", transport.ErrClosed, to)
		}
		reply := callee.handler(req)
		if reply == nil {
			reply = &wire.Message{Type: wire.TAck}
		}
		reply.Seq = req.Seq
		reply.From = to
		b.obs.OnMessage(to, n.name, reply)
		if err := wire.ErrorOf(reply); err != nil {
			return reply, err
		}
		return reply, nil
	}
	b.mu.RLock()
	up := b.uplink
	b.mu.RUnlock()
	if up == nil {
		return nil, fmt.Errorf("%w: %q (no uplink)", transport.ErrUnknownNode, to)
	}
	return up.Call(to, req)
}

var _ transport.Network = (*Bridge)(nil)
var _ transport.ObservableNetwork = (*Bridge)(nil)
var _ transport.Endpoint = (*bridgeNode)(nil)
