package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Router is the single logical directory endpoint in front of a set of
// shard directory managers. It attaches to the network under the
// directory's public name, so cache managers keep dialing "the directory"
// unchanged; each request is placed on its owning shard (sticky per
// view), wrapped in a TRouted envelope so the shard sees the originating
// view as the caller, and forwarded. The router never interprets protocol
// semantics — conflicts, modes, and triggers stay inside the shard
// directory managers — it only places views and merges the version
// metadata it observes into a per-shard vclock.Vector.
//
// Placement precedence for a registering view:
//
//  1. the Map's pin table (first pin whose property overlaps the view's),
//  2. conflict affinity: co-locate with the already-assigned views whose
//     property sets overlap (so dynConfl checks stay shard-local),
//  3. the consistent-hash ring over the canonical property-set string
//     (the view name when the set is empty).
//
// A placement (or a TSetProps) that would leave one conflict group
// spanning two shards is rejected with an error directing the operator to
// pin the property domain — the alternative would be conflicts the
// shard-local dynConfl check silently misses.
//
// Migrate moves assigned views between shards at run time; while a
// migration freezes a shard, routed calls to it block (queue) and resume
// against the post-migration assignment, so callers observe only added
// latency, never an outage.
type Router struct {
	name string
	m    *Map
	ep   transport.Endpoint

	mu       sync.Mutex
	cond     *sync.Cond
	assign   map[string]string       // view -> owning shard
	vprops   map[string]property.Set // view -> last known property set
	pidx     *property.Index         // posting index over vprops (conflict affinity)
	inflight map[string]int          // shard -> routed calls in flight
	frozen   map[string]bool         // shard -> migration freeze
	vv       vclock.Vector           // shard -> highest primary version observed
	retry    transport.RetryPolicy   // bounds router→shard call retries
	closed   bool

	// Lease-based failover state (failover.go).
	fo          FailoverConfig
	ha          map[string]*haShard // shard -> standby + lease record
	failovers   *metrics.Counter
	regressions *metrics.Counter
}

// NewRouter attaches a router under the logical directory name. The map's
// member shards must be (or become) attached to the same network under
// their Node names.
func NewRouter(net transport.Network, name string, m *Map) (*Router, error) {
	if m == nil {
		return nil, fmt.Errorf("shard: nil map")
	}
	r := &Router{
		name:     name,
		m:        m,
		assign:   map[string]string{},
		vprops:   map[string]property.Set{},
		pidx:     property.NewIndex(),
		inflight: map[string]int{},
		frozen:   map[string]bool{},
		vv:       vclock.NewVector(),
		ha:       map[string]*haShard{},
	}
	r.cond = sync.NewCond(&r.mu)
	// Attach under the lock: on a live network a request can be dispatched
	// to r.route the moment the handler is installed, and route must not
	// find r.ep nil. acquire() takes r.mu before the endpoint is used, so
	// holding it across the attach closes the window.
	r.mu.Lock()
	ep, err := net.Attach(name, r.route)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.ep = ep
	r.mu.Unlock()
	return r, nil
}

// Name returns the logical directory name the router answers under.
func (r *Router) Name() string { return r.name }

// Map returns the router's shard map.
func (r *Router) Map() *Map { return r.m }

// Close detaches the router endpoint and wakes any waiters.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	return r.ep.Close()
}

// routable reports whether a cache-manager request type may cross the
// router. Everything else (replies, DM→CM traffic, migration control) is
// refused — the router is strictly the CM→DM half of the star.
func routable(t wire.Type) bool {
	switch t {
	case wire.TRegister, wire.TUnregister, wire.TInit, wire.TPull, wire.TPush,
		wire.TAcquire, wire.TRelease, wire.TSetMode, wire.TSetProps:
		return true
	}
	return false
}

func errf(format string, args ...any) *wire.Message {
	return &wire.Message{Type: wire.TErr, Err: fmt.Sprintf(format, args...)}
}

// route is the router's transport handler.
func (r *Router) route(req *wire.Message) *wire.Message {
	if !routable(req.Type) {
		return errf("shard router %s: %s is not routable", r.name, req.Type)
	}
	view := req.View
	if view == "" {
		view = req.From
	}
	if view == "" {
		return errf("shard router %s: %s without a view identity", r.name, req.Type)
	}

	// The envelope is built before acquiring the routing slot: handlers
	// must not retain req after returning, so capture it now.
	inner := *req
	inner.From = view
	blob := wire.Encode(&inner)

	shard, placed, err := r.acquire(view, req.Type, req.Props)
	if err != nil {
		return errf("%v", err)
	}
	env := &wire.Message{Type: wire.TRouted, View: view, Blob: blob}
	// Pre-encode the envelope body once: the retry loop below (and any
	// byte-stream transport underneath) reuses the bytes instead of
	// re-serializing the blob per attempt.
	env.Pre = wire.Preencode(env)
	// Same eviction contract as the DM's own outbound calls: bounded
	// retry-with-backoff before declaring the shard unreachable, so one
	// dropped frame does not fail the view's request.
	reply, callErr := transport.CallRetry(r.ep, shard, env, r.retryPolicy())
	r.settle(shard, view, req.Type, req.Props, placed, reply)

	if reply == nil && r.failover(shard) {
		// The shard's slot moved (standby promoted, or the primary
		// recovered while we waited out its lease): re-resolve and retry
		// once against wherever the view now routes. One routed call
		// absorbs the whole failover; the client only sees latency.
		shard, placed, err = r.acquire(view, req.Type, req.Props)
		if err != nil {
			return errf("%v", err)
		}
		reply, callErr = transport.CallRetry(r.ep, shard, env, r.retryPolicy())
		r.settle(shard, view, req.Type, req.Props, placed, reply)
	}
	if reply == nil {
		return errf("shard router %s: shard %s unreachable: %v", r.name, shard, callErr)
	}
	return reply
}

// acquire blocks while the owning shard is frozen, then claims a routing
// slot on it and returns it, with placed reporting whether a tentative
// registration placement was recorded. Registration placement happens
// here (under the lock) so two concurrently registering, conflicting
// views settle on the same shard.
func (r *Router) acquire(view string, t wire.Type, props property.Set) (shard string, placed bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return "", false, fmt.Errorf("shard router %s: closed", r.name)
		}
		shard, ok := r.assign[view]
		if !ok {
			if t != wire.TRegister {
				return "", false, fmt.Errorf("shard router %s: %s for unknown view %s", r.name, t, view)
			}
			shard, err = r.placeLocked(view, props)
			if err != nil {
				return "", false, err
			}
			if shard == "" {
				return "", false, fmt.Errorf("shard router %s: no shards", r.name)
			}
		}
		if !r.frozen[shard] {
			if !ok {
				// Record the placement now so concurrent registrations of
				// conflicting views see it; rolled back if the shard refuses.
				r.assign[view] = shard
				r.vprops[view] = props.Clone()
				r.pidx.Insert(view, r.vprops[view])
			} else if t == wire.TSetProps {
				// The view keeps its shard (assignments are sticky), so the
				// new set must not overlap views owned elsewhere — the
				// shard-local dynConfl check would silently miss those
				// conflicts. Checked before the shard applies the change.
				if other := r.overlapOutsideLocked(view, shard, props); other != "" {
					return "", false, fmt.Errorf(
						"shard router %s: set-props on %s (shard %s) would overlap views on shard %s; pin the property domain to one shard",
						r.name, view, shard, other)
				}
			}
			r.inflight[shard]++
			return shard, !ok, nil
		}
		// Frozen for migration: wait and re-resolve — the view may be owned
		// by a different shard when we wake.
		r.cond.Wait()
	}
}

// placeLocked decides the shard for a registering view, rejecting any
// placement that would split a conflict group across shards. Caller
// holds mu.
func (r *Router) placeLocked(view string, props property.Set) (string, error) {
	// Conflict affinity: every assigned view whose property set overlaps
	// the newcomer's must share its shard, because the directory manager's
	// dynConfl check only sees its own registry. Collect the whole overlap
	// group — co-locating with just the first overlapping view could make
	// the newcomer a bridge between disjoint views on different shards,
	// silently splitting its conflicts. The posting index answers "which
	// assigned views overlap?" in O(log n + matches) instead of scanning
	// every assignment.
	group := map[string]bool{}
	r.pidx.Overlapping(props, func(v string) bool {
		group[r.assign[v]] = true
		return true
	})
	if len(group) > 1 {
		return "", fmt.Errorf(
			"shard router %s: registering %s would span its conflict group across shards %s; pin the property domain to one shard",
			r.name, view, joinShards(group))
	}
	if pinned, ok := r.m.RouteProps(props); ok {
		if len(group) == 1 && !group[pinned] {
			return "", fmt.Errorf(
				"shard router %s: %s is pinned to %s but overlapping views live on %s; migrate them to the pinned shard first",
				r.name, view, pinned, joinShards(group))
		}
		return pinned, nil
	}
	for s := range group {
		return s, nil
	}
	key := props.String()
	if key == "" {
		key = view
	}
	return r.m.Owner(key), nil
}

// overlapOutsideLocked returns a shard other than home owning a view
// (other than self) whose property set overlaps props, or "" when the
// overlap group stays on home. Caller holds mu.
func (r *Router) overlapOutsideLocked(self, home string, props property.Set) string {
	out := ""
	r.pidx.Overlapping(props, func(v string) bool {
		if v == self {
			return true
		}
		if s := r.assign[v]; s != home {
			out = s
			return false
		}
		return true
	})
	return out
}

func joinShards(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// settle folds a routed call's outcome into the router tables and returns
// the routing slot, in one critical section. Releasing the slot first
// would let a migration woken by the release drain the shard while the
// reply is not yet folded in — a failed TRegister's tentative placement
// still in r.assign makes TakeHandover fail on an unknown view, and a
// late assignment update could clobber the migration's re-pointing.
func (r *Router) settle(shard, view string, t wire.Type, props property.Set, placed bool, reply *wire.Message) {
	failed := reply == nil || reply.Type == wire.TErr
	r.mu.Lock()
	if reply != nil {
		v := reply.Version
		if reply.Img != nil && reply.Img.Version > v {
			v = reply.Img.Version
		}
		if uint64(v) > r.vv[shard] {
			r.vv[shard] = uint64(v)
		}
		// Any answer — even a protocol error — proves the primary alive
		// and renews its lease.
		r.touchShardLocked(shard)
	}
	switch t {
	case wire.TRegister:
		if failed && placed {
			// Drop the tentative placement so a retry re-places cleanly.
			// placed guards an existing assignment against a failed
			// duplicate register.
			delete(r.assign, view)
			delete(r.vprops, view)
			r.pidx.Remove(view)
		}
	case wire.TUnregister:
		if !failed {
			delete(r.assign, view)
			delete(r.vprops, view)
			r.pidx.Remove(view)
		}
	case wire.TSetProps:
		if !failed {
			// Record the new set so future conflict-affinity placements see
			// it; acquire already refused sets that overlap other shards.
			r.vprops[view] = props.Clone()
			r.pidx.Update(view, r.vprops[view])
		}
	}
	r.inflight[shard]--
	if r.inflight[shard] <= 0 {
		delete(r.inflight, shard)
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// SetRetryPolicy configures the bounded retry-with-backoff applied to
// router→shard calls (routing envelopes and migration take/apply). The
// zero value means the transport defaults.
func (r *Router) SetRetryPolicy(p transport.RetryPolicy) {
	r.mu.Lock()
	r.retry = p
	r.mu.Unlock()
}

func (r *Router) retryPolicy() transport.RetryPolicy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retry
}

// Versions returns a copy of the per-shard version vector: for each shard
// node, the highest primary version the router has observed from it.
// Components never decrease — a regression would mean a migration lost
// updates.
func (r *Router) Versions() vclock.Vector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vv.Clone()
}

// Assignment returns a copy of the view→shard table.
func (r *Router) Assignment() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.assign))
	for v, s := range r.assign {
		out[v] = s
	}
	return out
}

// AssignedTo returns the sorted views owned by a shard.
func (r *Router) AssignedTo(shard string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for v, s := range r.assign {
		if s == shard {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Migrate moves views (all of from's views when none are named) from one
// shard directory manager to another, live. Both shards are frozen —
// routed calls to them queue — until the handover completes; calls to
// other shards proceed throughout. The handover reuses the directory
// manager's fail-over snapshot: TMigrateTake captures the source's store
// metadata and per-view records, TMigrateApply absorbs them on the
// target, and absorption only fast-forwards the target's version counter,
// which Migrate verifies (the target must report a version >= the
// source's at handover, else updates were lost).
func (r *Router) Migrate(from, to string, views ...string) error {
	if from == to {
		return fmt.Errorf("shard router %s: migrate %s onto itself", r.name, from)
	}
	if !r.m.Has(from) || !r.m.Has(to) {
		return fmt.Errorf("shard router %s: migrate %s -> %s: both must be member shards", r.name, from, to)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("shard router %s: closed", r.name)
	}
	if r.frozen[from] || r.frozen[to] {
		r.mu.Unlock()
		return fmt.Errorf("shard router %s: migration already in progress on %s or %s", r.name, from, to)
	}
	r.frozen[from], r.frozen[to] = true, true
	for r.inflight[from] > 0 || r.inflight[to] > 0 {
		r.cond.Wait()
	}
	if len(views) == 0 {
		for v, s := range r.assign {
			if s == from {
				views = append(views, v)
			}
		}
		sort.Strings(views)
	}
	r.mu.Unlock()

	absorbed, err := r.handover(from, to, views)

	r.mu.Lock()
	if absorbed {
		// Re-point routing wherever the state actually lives — even when
		// handover reports an error (e.g. a version regression): the source
		// has dropped the views and the target absorbed them, so keeping
		// them routed to the source would fail every subsequent request.
		for _, v := range views {
			r.assign[v] = to
		}
	}
	delete(r.frozen, from)
	delete(r.frozen, to)
	r.cond.Broadcast()
	r.mu.Unlock()
	return err
}

// handover performs the take/apply exchange. Both shards are frozen and
// drained; no router traffic can race with it. absorbed reports whether
// the target now holds the views — it can be true even on error, in which
// case the caller must still re-point routing at the target.
func (r *Router) handover(from, to string, views []string) (absorbed bool, err error) {
	blob, err := directory.EncodeViewList(views)
	if err != nil {
		return false, err
	}
	takeReply, err := transport.CallRetry(r.ep, from, &wire.Message{Type: wire.TMigrateTake, Blob: blob}, r.retryPolicy())
	if err != nil {
		return false, fmt.Errorf("shard router %s: take from %s: %w", r.name, from, err)
	}
	applyReply, err := transport.CallRetry(r.ep, to, &wire.Message{Type: wire.TMigrateApply, Blob: takeReply.Blob}, r.retryPolicy())
	if err != nil {
		// The source no longer serves the views; put them back so they are
		// not stranded.
		if _, rbErr := transport.CallRetry(r.ep, from, &wire.Message{Type: wire.TMigrateApply, Blob: takeReply.Blob}, r.retryPolicy()); rbErr != nil {
			return false, fmt.Errorf("shard router %s: apply on %s failed (%v) and rollback to %s failed: %w",
				r.name, to, err, from, rbErr)
		}
		return false, fmt.Errorf("shard router %s: apply on %s: %w", r.name, to, err)
	}
	r.mu.Lock()
	if uint64(applyReply.Version) > r.vv[to] {
		r.vv[to] = uint64(applyReply.Version)
	}
	r.mu.Unlock()
	if applyReply.Version < takeReply.Version {
		return true, fmt.Errorf("shard router %s: version regression migrating %s -> %s: source at %d, target at %d",
			r.name, from, to, takeReply.Version, applyReply.Version)
	}
	return true, nil
}
