package shard_test

import (
	"fmt"
	"testing"

	"flecc/internal/property"
	"flecc/internal/shard"
)

func TestNodeNaming(t *testing.T) {
	name := shard.Node("dm", 3)
	if name != "dm!s3" {
		t.Fatalf("Node = %q", name)
	}
	base, idx, ok := shard.IsNode(name)
	if !ok || base != "dm" || idx != 3 {
		t.Fatalf("IsNode(%q) = %q, %d, %v", name, base, idx, ok)
	}
	if _, _, ok := shard.IsNode("dm"); ok {
		t.Fatal("plain name should not parse as a shard node")
	}
	if _, _, ok := shard.IsNode("dm!sx"); ok {
		t.Fatal("non-numeric suffix should not parse")
	}
}

func TestOwnerDeterministic(t *testing.T) {
	build := func() *shard.Map {
		return shard.NewMap(0, shard.Node("dm", 0), shard.Node("dm", 1), shard.Node("dm", 2))
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs between identical maps", key)
		}
	}
}

func TestAddMovesKeysOnlyToNewShard(t *testing.T) {
	m := shard.NewMap(0, shard.Node("dm", 0), shard.Node("dm", 1), shard.Node("dm", 2))
	const n = 2000
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = m.Owner(key)
	}
	newShard := shard.Node("dm", 3)
	m.Add(newShard)
	moved := 0
	for key, old := range before {
		now := m.Owner(key)
		if now == old {
			continue
		}
		moved++
		if now != newShard {
			t.Fatalf("key %q moved %s -> %s, but only moves onto the new shard are allowed", key, old, now)
		}
	}
	if moved == 0 {
		t.Fatal("adding a shard should claim some keys")
	}
	// Expectation is n/4; anything beyond half signals the ring is broken.
	if moved > n/2 {
		t.Fatalf("adding one of four shards moved %d/%d keys", moved, n)
	}
}

func TestBalance(t *testing.T) {
	shards := []string{shard.Node("dm", 0), shard.Node("dm", 1), shard.Node("dm", 2), shard.Node("dm", 3)}
	m := shard.NewMap(0, shards...)
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, s := range shards {
		// Perfect balance is n/4; insist every shard gets at least a third
		// of its fair share, which catches gross ring defects without
		// flaking on hash variance.
		if counts[s] < n/12 {
			t.Fatalf("shard %s owns only %d of %d keys: %v", s, counts[s], n, counts)
		}
	}
}

func TestPins(t *testing.T) {
	s0, s1 := shard.Node("dm", 0), shard.Node("dm", 1)
	m := shard.NewMap(0, s0, s1)
	flights := property.MustSet("Flights={1,2,3}").Properties()[0]
	if err := m.Pin(flights, s1); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.RouteProps(property.MustSet("Flights={2}; Seats={9}")); !ok || got != s1 {
		t.Fatalf("RouteProps = %q, %v", got, ok)
	}
	if _, ok := m.RouteProps(property.MustSet("Flights={7}")); ok {
		t.Fatal("non-overlapping set should not match the pin")
	}
	if _, ok := m.RouteProps(property.MustSet("Hotels={2}")); ok {
		t.Fatal("different property name should not match the pin")
	}
	if err := m.Pin(flights, "dm!s9"); err == nil {
		t.Fatal("pinning to a non-member shard should fail")
	}
	if err := m.Pin(property.Property{}, s0); err == nil {
		t.Fatal("pinning an empty property should fail")
	}
	// Removing the pinned shard drops its pins.
	m.Remove(s1)
	if _, ok := m.RouteProps(property.MustSet("Flights={2}")); ok {
		t.Fatal("pin should disappear with its shard")
	}
}

func TestMembership(t *testing.T) {
	m := shard.NewMap(4)
	if m.Len() != 0 || m.Owner("k") != "" {
		t.Fatal("empty map should own nothing")
	}
	m.Add("dm!s0")
	m.Add("dm!s0") // idempotent
	if m.Len() != 1 || !m.Has("dm!s0") {
		t.Fatalf("membership after add: %v", m.Shards())
	}
	if m.Owner("anything") != "dm!s0" {
		t.Fatal("single shard owns every key")
	}
	m.Remove("dm!s0")
	if m.Len() != 0 || m.Has("dm!s0") {
		t.Fatal("remove should empty the map")
	}
}
