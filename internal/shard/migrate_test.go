package shard_test

import (
	"fmt"
	"sync"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/shard"
	"flecc/internal/wire"
)

// TestLiveMigrationPreservesState grows a 1-shard service to 2 and moves
// every view across, then checks nothing was lost: assignments point at
// the new shard, seen versions did not regress, and the protocol keeps
// working end to end.
func TestLiveMigrationPreservesState(t *testing.T) {
	r := newRig(t, 1, directory.Options{})
	v1, v2 := newKV(nil), newKV(nil)
	cm1 := r.view("v1", "P={x}", wire.Weak, v1)
	cm2 := r.view("v2", "P={x}", wire.Weak, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("booked", "before-migration")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	// Pull so the directory-side seen version advances (it tracks what the
	// view observed, which a push alone does not change).
	if err := cm1.PullImage(); err != nil {
		t.Fatal(err)
	}

	src := shard.Node("dm", 0)
	seenBefore := r.svc.Seen("v1")
	verBefore := r.svc.Shard(0).CurrentVersion()
	if seenBefore == 0 || verBefore == 0 {
		t.Fatalf("expected progress before migration (seen=%d ver=%d)", seenBefore, verBefore)
	}

	dst, err := r.svc.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Migrate(src, dst); err != nil {
		t.Fatal(err)
	}

	// Assignments moved, the source shard serves nothing anymore.
	for _, v := range []string{"v1", "v2"} {
		if got := r.owner(v); got != dst {
			t.Fatalf("%s assigned to %s after migration, want %s", v, got, dst)
		}
	}
	if n := len(r.svc.Shard(0).Views()); n != 0 {
		t.Fatalf("source shard still serves %d views", n)
	}
	if got := r.svc.Shard(1).Views(); len(got) != 2 {
		t.Fatalf("target shard serves %v", got)
	}

	// No version regression: the target's counter is at least the
	// source's, and the view's seen version survived the move.
	if after := r.svc.Shard(1).CurrentVersion(); after < verBefore {
		t.Fatalf("target version %d < source version %d", after, verBefore)
	}
	if seen := r.svc.Seen("v1"); seen < seenBefore {
		t.Fatalf("seen regressed across migration: %d -> %d", seenBefore, seen)
	}

	// The protocol keeps working against the new shard, transparently.
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("booked") != "before-migration" {
		t.Fatal("pre-migration update lost")
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("booked2", "after-migration")
	cm1.EndUse()
	if err := cm1.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("booked2") != "after-migration" {
		t.Fatal("post-migration update lost")
	}
	if vv := r.svc.Versions(); vv.Get(dst) < uint64(verBefore) {
		t.Fatalf("router vector regressed: %v (source was at %d)", vv, verBefore)
	}
}

// TestMigrationUnderLoad is the live-migration soak: agents push and pull
// concurrently while the service grows from 1 to 2 shards and every view
// migrates. Afterwards no acknowledged update may be missing and no
// agent may ever have observed its seen version go backwards.
func TestMigrationUnderLoad(t *testing.T) {
	r := newRig(t, 1, directory.Options{})
	const agents = 4
	const rounds = 25

	views := make([]*kv, agents)
	cms := make([]*cache.Manager, agents)
	for i := 0; i < agents; i++ {
		views[i] = newKV(nil)
		cm := r.view(fmt.Sprintf("agent%d", i), "P={x}", wire.Weak, views[i])
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
		cms[i] = cm
	}

	var (
		mu    sync.Mutex
		acked []string // keys whose push was acknowledged
	)
	halfway := make(chan struct{})
	var halfOnce sync.Once

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for i := 0; i < agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cm, view := cms[i], views[i]
			lastSeen := cm.Seen()
			for round := 0; round < rounds; round++ {
				if i == 0 && round == rounds/2 {
					halfOnce.Do(func() { close(halfway) })
				}
				key := fmt.Sprintf("agent%d-round%d", i, round)
				if err := cm.StartUse(); err != nil {
					errs <- fmt.Errorf("agent%d start: %w", i, err)
					return
				}
				view.Set(key, "booked")
				cm.EndUse()
				if err := cm.PushImage(); err != nil {
					errs <- fmt.Errorf("agent%d push: %w", i, err)
					return
				}
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
				if err := cm.PullImage(); err != nil {
					errs <- fmt.Errorf("agent%d pull: %w", i, err)
					return
				}
				if s := cm.Seen(); s < lastSeen {
					errs <- fmt.Errorf("agent%d seen regressed %d -> %d", i, lastSeen, s)
					return
				} else {
					lastSeen = s
				}
			}
		}(i)
	}

	// Grow 1 -> 2 while the agents hammer the service.
	<-halfway
	dst, err := r.svc.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Migrate(shard.Node("dm", 0), dst); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every view migrated.
	for v, s := range r.svc.Router().Assignment() {
		if s != dst {
			t.Fatalf("view %s still on %s after migration", v, s)
		}
	}

	// Quiesce: one final pull each, then every acknowledged update must be
	// visible in the primary and in every agent's view.
	for i := 0; i < agents; i++ {
		if err := cms[i].PullImage(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(acked) != agents*rounds {
		t.Fatalf("only %d of %d pushes were acknowledged", len(acked), agents*rounds)
	}
	for _, key := range acked {
		if r.prim.Get(key) != "booked" {
			t.Fatalf("acked update %s missing from the primary", key)
		}
		for i := 0; i < agents; i++ {
			if views[i].Get(key) != "booked" {
				t.Fatalf("acked update %s missing from agent%d after final pull", key, i)
			}
		}
	}
}
