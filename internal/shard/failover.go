package shard

import (
	"time"

	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Lease-based failover (the router half of the HA directory; see
// internal/directory/replicate.go for the replication half). Each shard
// primary holds a time-bounded lease that every successful routed call
// renews. When a routed call finds the primary unreachable and a standby
// is configured, the calling goroutine waits out the lease remainder —
// a merely-slow primary gets its full lease to answer — then the router
// promotes the standby with a promote-only TReplicate under the next
// epoch and re-points the shard's slot at it: assignment table, shard
// map membership, and pins all move, with no global consensus round
// (the consensus-free reconfiguration template of Alchieri et al.).
// The client's request is then retried against the new primary, so a
// failover costs one caller a bounded wait and everyone else nothing.
//
// Epoch fencing closes the split-brain window: the deposed primary's
// next replication batch is refused with "stale epoch" and it fences
// itself (directory.Replicator), so even a primary that was only
// partitioned — not dead — stops serving once its standby took over.

// FailoverConfig enables router-coordinated failover.
type FailoverConfig struct {
	// Clock times the lease (virtual ms).
	Clock vclock.Clock
	// Lease is how long after the last successful call a shard primary's
	// lease lasts. A failed call only triggers promotion once the lease
	// has fully lapsed.
	Lease vclock.Duration
	// Sleep waits out the lease remainder; nil uses wall-clock sleep
	// (vclock.Duration is milliseconds). Simulated-time tests inject one.
	Sleep func(vclock.Duration)
}

// haShard is the router's failover record for one shard primary.
type haShard struct {
	standby string // standby node promoted when the lease lapses
	lastOK  vclock.Time
	epoch   uint64
}

// SetFailover installs the failover configuration. Call before
// SetStandby.
func (r *Router) SetFailover(cfg FailoverConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fo = cfg
	if r.failovers == nil {
		r.failovers = metrics.NewCounter(r.name + ".failovers")
		r.regressions = metrics.NewCounter(r.name + ".failover_regressions")
	}
	for _, ha := range r.ha {
		ha.lastOK = cfg.Clock.Now()
	}
}

// SetStandby registers a standby node for a member shard. The standby
// must be attached to the router's network and kept hot by the shard
// primary's replication session; the router only promotes and re-points.
func (r *Router) SetStandby(shard, standby string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var now vclock.Time
	if r.fo.Clock != nil {
		now = r.fo.Clock.Now()
	}
	prev := r.ha[shard]
	if prev != nil {
		prev.standby = standby
		return
	}
	r.ha[shard] = &haShard{standby: standby, lastOK: now}
}

// Failovers returns how many standby promotions this router has
// performed.
func (r *Router) Failovers() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failovers == nil {
		return 0
	}
	return r.failovers.Value()
}

// Regressions returns how many promotions reported a standby version
// below the best the router had observed from the deposed primary —
// each one is an acknowledged commit the standby never absorbed.
func (r *Router) Regressions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.regressions == nil {
		return 0
	}
	return r.regressions.Value()
}

func (r *Router) foSleep(d vclock.Duration) {
	if r.fo.Sleep != nil {
		r.fo.Sleep(d)
		return
	}
	time.Sleep(time.Duration(d) * time.Millisecond)
}

// touchShard renews a shard's lease after a successful call. Caller
// holds mu.
func (r *Router) touchShardLocked(shard string) {
	if ha := r.ha[shard]; ha != nil && r.fo.Clock != nil {
		ha.lastOK = r.fo.Clock.Now()
	}
}

// failover is called by route after a shard proved unreachable. It
// returns true when the caller should re-resolve and retry: either this
// goroutine promoted the standby, another one already did, or the
// primary's lease was renewed while we waited (it recovered). False
// means failover is not possible (no standby, no clock, promotion
// failed too) and the original error stands.
func (r *Router) failover(shard string) bool {
	r.mu.Lock()
	if r.fo.Clock == nil {
		r.mu.Unlock()
		return false
	}
	for {
		if r.closed {
			r.mu.Unlock()
			return false
		}
		ha := r.ha[shard]
		if ha == nil {
			// Already failed over (the shard's slot moved) — or never
			// configured. Retry exactly when the shard left the map.
			gone := !r.m.Has(shard)
			r.mu.Unlock()
			return gone
		}
		if ha.standby == "" {
			r.mu.Unlock()
			return false
		}
		if r.frozen[shard] {
			// A migration (or another failover) owns the shard; when it
			// finishes, re-evaluate from scratch.
			r.cond.Wait()
			continue
		}
		start := ha.lastOK
		remaining := start + r.fo.Lease - r.fo.Clock.Now()
		if remaining > 0 {
			// The primary still holds its lease: wait it out, off the lock
			// so other shards route freely.
			r.mu.Unlock()
			r.foSleep(remaining)
			r.mu.Lock()
			continue
		}
		if ha.lastOK > start {
			// Renewed while deciding: the primary answered someone else.
			r.mu.Unlock()
			return true
		}
		// Lease lapsed: this goroutine performs the promotion. Freeze and
		// drain the shard exactly like a migration so no routed call races
		// the re-pointing.
		r.frozen[shard] = true
		for r.inflight[shard] > 0 {
			r.cond.Wait()
		}
		promoted := r.promoteLocked(shard, ha)
		delete(r.frozen, shard)
		r.cond.Broadcast()
		r.mu.Unlock()
		return promoted
	}
}

// promoteLocked sends the promote-only batch to the standby and, on
// success, re-points the shard's slot: assignments, map membership, and
// pins. Called with mu held and the shard frozen+drained; the promote
// call itself runs off the lock.
func (r *Router) promoteLocked(shard string, ha *haShard) bool {
	epoch := ha.epoch + 1
	msg, err := directory.PromoteMessage(epoch)
	if err != nil {
		return false
	}
	retry := r.retry
	r.mu.Unlock()
	reply, err := transport.CallRetry(r.ep, ha.standby, msg, retry)
	r.mu.Lock()
	if err != nil || reply == nil || reply.Type != wire.TReplAck {
		// Standby down too; the shard stays as-is and the caller's
		// original error stands.
		return false
	}
	// Re-point: every view owned by the dead primary moves to the
	// standby, pins targeting it are re-issued against the standby
	// (before Remove, which drops them), and the membership swaps.
	for v, s := range r.assign {
		if s == shard {
			r.assign[v] = ha.standby
		}
	}
	pins := r.m.Pins()
	r.m.Add(ha.standby)
	for _, p := range pins {
		if p.Shard == shard {
			_ = r.m.Pin(p.Prop, ha.standby)
		}
	}
	r.m.Remove(shard)
	if uint64(reply.Version) > r.vv[ha.standby] {
		r.vv[ha.standby] = uint64(reply.Version)
	}
	if uint64(reply.Version) < r.vv[shard] {
		// The standby is behind the best version the router observed from
		// the deposed primary: an acknowledged commit is missing.
		r.regressions.Inc()
	}
	r.ha[ha.standby] = &haShard{epoch: epoch, lastOK: r.fo.Clock.Now()}
	delete(r.ha, shard)
	r.failovers.Inc()
	return true
}
