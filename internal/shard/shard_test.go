package shard_test

import (
	"sync"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// kv is the toy component/view used across the shard tests: a string map
// guarded by a mutex, with the extract/merge codec over it (the same
// shape the cache package tests use).
type kv struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV(init map[string]string) *kv {
	d := map[string]string{}
	for k, v := range init {
		d[k] = v
	}
	return &kv{data: d}
}

func (v *kv) Set(k, val string) {
	v.mu.Lock()
	v.data[k] = val
	v.mu.Unlock()
}

func (v *kv) Get(k string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.data[k]
}

func (v *kv) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.data)
}

func (v *kv) Extract(props property.Set) (*image.Image, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	img := image.New(props.Clone())
	for k, val := range v.data {
		img.Put(image.Entry{Key: k, Value: []byte(val)})
	}
	return img, nil
}

func (v *kv) Merge(img *image.Image, props property.Set) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(v.data, k)
			continue
		}
		v.data[k] = string(e.Value)
	}
	return nil
}

// rig bundles a sharded deployment: one shared primary kv behind every
// shard directory manager (the tests move views between shards, so the
// shards must extract from the same primary), the service, and helpers to
// spawn views.
type rig struct {
	t     *testing.T
	clock *vclock.Sim
	net   *transport.Inproc
	prim  *kv
	svc   *shard.Service
}

func newRig(t *testing.T, shards int, opts directory.Options) *rig {
	t.Helper()
	r := &rig{
		t:     t,
		clock: vclock.NewSim(),
		net:   transport.NewInproc(),
		prim:  newKV(map[string]string{"seed": "s0"}),
	}
	svc, err := shard.NewService(shard.ServiceConfig{
		Name:    "dm",
		Net:     r.net,
		Clock:   r.clock,
		Shards:  shards,
		Primary: func(int) image.Codec { return r.prim },
		Opts:    opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.svc = svc
	t.Cleanup(func() { svc.Close() })
	return r
}

func (r *rig) view(name, props string, mode wire.Mode, view *kv) *cache.Manager {
	r.t.Helper()
	cm, err := cache.New(cache.Config{
		Name:      name,
		Directory: "dm",
		Net:       r.net,
		View:      view,
		Props:     property.MustSet(props),
		Mode:      mode,
		Clock:     r.clock,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	return cm
}

// owner returns the shard a view is assigned to, failing when unassigned.
func (r *rig) owner(view string) string {
	r.t.Helper()
	s, ok := r.svc.Router().Assignment()[view]
	if !ok {
		r.t.Fatalf("view %s has no shard assignment", view)
	}
	return s
}
