package shard_test

import (
	"strings"
	"testing"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/wire"
)

// register dials the logical directory through a fresh cache manager and
// returns the registration error (nil on success). The rig's view helper
// fatals on error, so rejection tests go through here.
func (r *rig) register(name, props string) error {
	r.t.Helper()
	cm, err := cache.New(cache.Config{
		Name:      name,
		Directory: "dm",
		Net:       r.net,
		View:      newKV(nil),
		Props:     property.MustSet(props),
		Mode:      wire.Weak,
		Clock:     r.clock,
	})
	if err == nil {
		r.t.Cleanup(func() { cm.KillImage() })
	}
	return err
}

// TestRouterRejectsCrossShardConflictGroup pins two disjoint property
// domains to different shards and then tries to register a view bridging
// both: the router must refuse the registration rather than co-locate
// with just one side and silently split the bridge view's conflicts.
func TestRouterRejectsCrossShardConflictGroup(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	pinA := property.MustSet("A={1}").Properties()[0]
	pinB := property.MustSet("B={2}").Properties()[0]
	if err := r.svc.Map().Pin(pinA, shard.Node("dm", 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Map().Pin(pinB, shard.Node("dm", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.register("vA", "A={1}"); err != nil {
		t.Fatal(err)
	}
	if err := r.register("vB", "B={2}"); err != nil {
		t.Fatal(err)
	}
	err := r.register("bridge", "A={1}; B={2}")
	if err == nil {
		t.Fatal("registering a view bridging two shards must fail")
	}
	if !strings.Contains(err.Error(), "pin the property domain") {
		t.Fatalf("rejection should direct the operator to pin, got: %v", err)
	}
	if _, ok := r.svc.Router().Assignment()["bridge"]; ok {
		t.Fatal("rejected view must not keep an assignment")
	}
	// A retry with non-bridging properties succeeds cleanly.
	if err := r.register("bridge", "A={1}"); err != nil {
		t.Fatalf("re-register after rejection: %v", err)
	}
	if got := r.owner("bridge"); got != shard.Node("dm", 0) {
		t.Fatalf("bridge re-registered on %s, want %s", got, shard.Node("dm", 0))
	}
}

// TestRouterRejectsPinAgainstExistingOverlap installs a pin that points
// away from where an overlapping view already lives: a later registration
// matching the pin must be refused, not split across shards.
func TestRouterRejectsPinAgainstExistingOverlap(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	if err := r.register("v1", "C={3}"); err != nil {
		t.Fatal(err)
	}
	home := r.owner("v1")
	var target string
	for _, s := range r.svc.Map().Shards() {
		if s != home {
			target = s
			break
		}
	}
	pinC := property.MustSet("C={3}").Properties()[0]
	if err := r.svc.Map().Pin(pinC, target); err != nil {
		t.Fatal(err)
	}
	if err := r.register("v2", "C={3}"); err == nil {
		t.Fatal("pin pointing away from the existing overlap group must be refused")
	}
}

// TestRouterRejectsCrossShardSetProps checks the TSetProps counterpart:
// a property change that would make a view overlap views owned by another
// shard is refused before the shard applies it (assignments are sticky,
// so accepting it would split the conflict group).
func TestRouterRejectsCrossShardSetProps(t *testing.T) {
	r := newRig(t, 4, directory.Options{})
	pinA := property.MustSet("A={1}").Properties()[0]
	pinB := property.MustSet("B={2}").Properties()[0]
	if err := r.svc.Map().Pin(pinA, shard.Node("dm", 0)); err != nil {
		t.Fatal(err)
	}
	if err := r.svc.Map().Pin(pinB, shard.Node("dm", 1)); err != nil {
		t.Fatal(err)
	}
	v2 := newKV(nil)
	cm1 := r.view("v1", "A={1}", wire.Weak, newKV(nil))
	cm2 := r.view("v2", "B={2}", wire.Weak, v2)
	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	err := cm2.SetProps(property.MustSet("A={1}"))
	if err == nil {
		t.Fatal("set-props overlapping a view on another shard must fail")
	}
	if !strings.Contains(err.Error(), "pin the property domain") {
		t.Fatalf("rejection should direct the operator to pin, got: %v", err)
	}
	// A shard-local change still goes through.
	if err := cm2.SetProps(property.MustSet("B={2,3}")); err != nil {
		t.Fatalf("shard-local set-props: %v", err)
	}
}

// attachNode registers a scripted handler on the in-process network.
func attachNode(t *testing.T, net *transport.Inproc, name string, h transport.Handler) {
	t.Helper()
	ep, err := net.Attach(name, h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
}

// TestMigrationRegressionRepointsRouting scripts a version regression:
// the target absorbs the handover but reports a smaller version than the
// source handed over. Migrate must surface the error AND re-point routing
// at the target, where the state now lives — keeping the views routed to
// the drained source would fail every subsequent request.
func TestMigrationRegressionRepointsRouting(t *testing.T) {
	net := transport.NewInproc()
	var s1Routed int
	attachNode(t, net, "s0", func(req *wire.Message) *wire.Message {
		switch req.Type {
		case wire.TRouted:
			return &wire.Message{Type: wire.TAck}
		case wire.TMigrateTake:
			return &wire.Message{Type: wire.TAck, Version: 5}
		}
		return &wire.Message{Type: wire.TErr, Err: "unexpected " + req.Type.String()}
	})
	attachNode(t, net, "s1", func(req *wire.Message) *wire.Message {
		switch req.Type {
		case wire.TRouted:
			s1Routed++
			return &wire.Message{Type: wire.TAck}
		case wire.TMigrateApply:
			return &wire.Message{Type: wire.TAck, Version: 3}
		}
		return &wire.Message{Type: wire.TErr, Err: "unexpected " + req.Type.String()}
	})
	m := shard.NewMap(0, "s0", "s1")
	if err := m.Pin(property.MustSet("P={1}").Properties()[0], "s0"); err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(net, "dm", m)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	probe, err := net.Attach("v1", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1", Props: property.MustSet("P={1}")}); err != nil {
		t.Fatal(err)
	}
	if got := router.Assignment()["v1"]; got != "s0" {
		t.Fatalf("v1 assigned to %q, want s0", got)
	}

	err = router.Migrate("s0", "s1")
	if err == nil || !strings.Contains(err.Error(), "version regression") {
		t.Fatalf("migrate should report the regression, got: %v", err)
	}
	if got := router.Assignment()["v1"]; got != "s1" {
		t.Fatalf("after a regression the views live on the target: v1 routed to %q, want s1", got)
	}
	if _, err := probe.Call("dm", &wire.Message{Type: wire.TPull, View: "v1"}); err != nil {
		t.Fatal(err)
	}
	if s1Routed != 1 {
		t.Fatalf("post-migration traffic should reach the target, s1 served %d routed calls", s1Routed)
	}
}

// TestMigrationApplyFailureRollsBack scripts an apply failure: the target
// refuses the handover, the router re-applies it to the source, and
// routing stays put.
func TestMigrationApplyFailureRollsBack(t *testing.T) {
	net := transport.NewInproc()
	var rolledBack bool
	attachNode(t, net, "s0", func(req *wire.Message) *wire.Message {
		switch req.Type {
		case wire.TRouted:
			return &wire.Message{Type: wire.TAck}
		case wire.TMigrateTake:
			return &wire.Message{Type: wire.TAck, Version: 5}
		case wire.TMigrateApply:
			rolledBack = true
			return &wire.Message{Type: wire.TAck, Version: 5}
		}
		return &wire.Message{Type: wire.TErr, Err: "unexpected " + req.Type.String()}
	})
	attachNode(t, net, "s1", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TErr, Err: "refusing handover"}
	})
	m := shard.NewMap(0, "s0", "s1")
	if err := m.Pin(property.MustSet("P={1}").Properties()[0], "s0"); err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(net, "dm", m)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	probe, err := net.Attach("v1", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1", Props: property.MustSet("P={1}")}); err != nil {
		t.Fatal(err)
	}

	if err := router.Migrate("s0", "s1"); err == nil {
		t.Fatal("migrate should report the apply failure")
	}
	if !rolledBack {
		t.Fatal("failed apply must be rolled back to the source")
	}
	if got := router.Assignment()["v1"]; got != "s0" {
		t.Fatalf("after a rolled-back migration v1 routed to %q, want s0", got)
	}
}

// TestFailedRegisterLeavesNoAssignment checks the settle path: a shard
// refusing a registration (or being unreachable) must leave no tentative
// placement behind — a stale entry would make the next migration's
// TakeHandover fail on an unknown view.
func TestFailedRegisterLeavesNoAssignment(t *testing.T) {
	net := transport.NewInproc()
	attachNode(t, net, "s0", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TErr, Err: "registry full"}
	})
	m := shard.NewMap(0, "s0")
	router, err := shard.NewRouter(net, "dm", m)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	probe, err := net.Attach("v1", func(req *wire.Message) *wire.Message { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Call("dm", &wire.Message{Type: wire.TRegister, View: "v1", Props: property.MustSet("P={1}")}); err == nil {
		t.Fatal("register should fail")
	}
	if s, ok := router.Assignment()["v1"]; ok {
		t.Fatalf("failed register left v1 assigned to %s", s)
	}
}
