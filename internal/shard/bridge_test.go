package shard_test

import (
	"net"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestBridgeOverTCP runs the full stack the fleccd daemon assembles: a
// sharded directory service hosted on a Bridge behind a TCP listener,
// with cache managers connecting as real TCP clients. The remote views
// must be routed to shards transparently, and the bridge's observer must
// expose the per-shard traffic split.
func TestBridgeOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snet := transport.NewServerNetwork(ln, 5*time.Second)

	prim := newKV(map[string]string{"seed": "s0"})
	bridge := shard.NewBridge()
	stats := metrics.NewMessageStats(false)
	bridge.SetObserver(stats)
	svc, err := shard.NewService(shard.ServiceConfig{
		Name:    "db",
		Net:     bridge,
		Clock:   vclock.NewReal(),
		Shards:  2,
		Primary: func(int) image.Codec { return prim },
		Opts:    directory.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := bridge.ConnectUplink(snet, "db"); err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	dial := func(name string, view *kv, props string, mode wire.Mode) *cache.Manager {
		t.Helper()
		cm, err := cache.New(cache.Config{
			Name:      name,
			Directory: "db",
			Net:       transport.NewDialNetwork(ln.Addr().String(), 5*time.Second),
			View:      view,
			Props:     property.MustSet(props),
			Mode:      mode,
			Clock:     vclock.NewReal(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}

	v1, v2 := newKV(nil), newKV(nil)
	cm1 := dial("v1", v1, "P={x}", wire.Strong)
	cm2 := dial("v2", v2, "P={x}", wire.Strong)

	if err := cm1.InitImage(); err != nil {
		t.Fatal(err)
	}
	if v1.Get("seed") != "s0" {
		t.Fatal("remote init should deliver the primary data")
	}
	if err := cm1.StartUse(); err != nil {
		t.Fatal(err)
	}
	v1.Set("x", "over-tcp")
	cm1.EndUse()

	// Strong mode: v2's init+pull invalidates v1 across the wire — the
	// shard's invalidate travels bridge → uplink → client.
	if err := cm2.InitImage(); err != nil {
		t.Fatal(err)
	}
	if err := cm2.PullImage(); err != nil {
		t.Fatal(err)
	}
	if v2.Get("x") != "over-tcp" {
		t.Fatalf("v2 sees x=%q", v2.Get("x"))
	}

	// Both views conflict via P, so exactly one shard carries them all.
	per := stats.PerShard()
	if len(per) != 1 {
		t.Fatalf("per-shard traffic = %v, want exactly one loaded shard", per)
	}
	for s, n := range per {
		if _, _, ok := shard.IsNode(s); !ok || n == 0 {
			t.Fatalf("per-shard traffic = %v", per)
		}
	}
}
