// Package shard partitions the Flecc directory manager across several
// independent directory-manager instances behind a single logical
// endpoint. The paper's centralized protocol attaches one directory
// manager to the original component (§4.1), which makes that manager the
// throughput ceiling for every pull, push, and validate in the system.
// This package removes the ceiling without touching the protocol:
//
//   - Map is a deterministic shard map: a consistent-hash ring over
//     routing keys plus an ordered override (pin) table that lets an
//     application pin an entire property domain to one shard — necessary
//     because conflict detection between views is property-based and must
//     stay shard-local.
//   - Router implements the directory side of the transport contract, so
//     cache managers and tools keep talking to "the directory" unchanged
//     while the router fans their requests out to the owning shard
//     (wrapped in TRouted envelopes) and merges the version metadata it
//     observes into a vclock.Vector.
//   - Migration (router.go) moves a shard's protocol metadata to another
//     directory manager at run time by reusing directory.Snapshot via the
//     TMigrateTake/TMigrateApply handshake, while the router queues
//     in-flight requests — so a deployment can grow from 1 to N shards
//     without dropping a view.
//   - Service (service.go) bundles the pieces: N directory managers, the
//     map, and the router, with helpers to grow the shard set.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flecc/internal/property"
)

// DefaultReplicas is the number of virtual nodes per shard on the ring.
// 64 keeps the expected imbalance between shards under a few percent
// while the ring stays small enough to rebuild on every membership
// change.
const DefaultReplicas = 64

// Node renders the conventional node name for shard i of the logical
// directory base: "db!s0", "db!s1", … The '!' separator never appears in
// view names, so shard nodes are recognizable in metrics edges (see
// metrics.ShardOf).
func Node(base string, i int) string { return base + "!s" + strconv.Itoa(i) }

// IsNode reports whether name follows the Node convention, returning the
// base and index when it does.
func IsNode(name string) (base string, idx int, ok bool) {
	cut := strings.LastIndex(name, "!s")
	if cut < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[cut+2:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return name[:cut], n, true
}

// Pin is one override-table entry: every view whose property set overlaps
// Prop is routed to Shard, regardless of the ring. Pins exist because
// cross-view conflict checks are property-based and shard-local; when an
// application knows a whole domain is contested, it pins the domain to
// one shard instead of relying on hash placement.
type Pin struct {
	// Prop selects the pinned slice of the property space.
	Prop property.Property
	// Shard is the owning shard node.
	Shard string
}

type ringPoint struct {
	hash  uint64
	shard string
}

// Map is the deterministic shard map: membership, the consistent-hash
// ring, and the pin table. It is safe for concurrent use; routing results
// depend only on the membership, the replica count, and the pins.
type Map struct {
	mu       sync.RWMutex
	replicas int
	shards   map[string]struct{}
	ring     []ringPoint
	pins     []Pin
	// pinIdx is a posting index over the pin properties, keyed by the
	// pin's ordinal in the consultation order, so RouteProps resolves the
	// first matching pin in O(log pins + matches) instead of scanning the
	// whole override table per registration.
	pinIdx *property.Index
}

// NewMap builds a map over the given shard nodes with the given number of
// virtual nodes per shard (DefaultReplicas when replicas <= 0).
func NewMap(replicas int, shards ...string) *Map {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	m := &Map{replicas: replicas, shards: map[string]struct{}{}, pinIdx: property.NewIndex()}
	for _, s := range shards {
		m.shards[s] = struct{}{}
	}
	m.rebuild()
	return m
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// rebuild recomputes the ring from the membership. Caller holds mu (or
// has exclusive access during construction).
func (m *Map) rebuild() {
	m.ring = m.ring[:0]
	for s := range m.shards {
		for i := 0; i < m.replicas; i++ {
			m.ring = append(m.ring, ringPoint{hash: hash64(s + "#" + strconv.Itoa(i)), shard: s})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].shard < m.ring[j].shard
	})
}

// Add inserts a shard into the membership (idempotent). Only keys that
// consistent-hash onto the new shard's ring points move; everything else
// keeps its owner.
func (m *Map) Add(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[shard]; ok {
		return
	}
	m.shards[shard] = struct{}{}
	m.rebuild()
}

// Remove deletes a shard from the membership (idempotent) and drops any
// pins that target it.
func (m *Map) Remove(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[shard]; !ok {
		return
	}
	delete(m.shards, shard)
	kept := m.pins[:0]
	for _, p := range m.pins {
		if p.Shard != shard {
			kept = append(kept, p)
		}
	}
	m.pins = kept
	// Dropping pins renumbers the consultation order; rebuild the pin
	// index from scratch (membership changes are rare and the table is
	// small next to the view population).
	m.pinIdx = property.NewIndex()
	for i, p := range m.pins {
		m.pinIdx.Insert(strconv.Itoa(i), property.NewSet(p.Prop))
	}
	m.rebuild()
}

// Has reports membership.
func (m *Map) Has(shard string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.shards[shard]
	return ok
}

// Shards returns the sorted member shard nodes.
func (m *Map) Shards() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.shards))
	for s := range m.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member shards.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.shards)
}

// Owner returns the shard owning a routing key on the consistent-hash
// ring ("" when the map is empty).
func (m *Map) Owner(key string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.ring) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap around
	}
	return m.ring[i].shard
}

// Pin appends an override-table entry: property sets overlapping p route
// to shard. Pins are consulted in installation order, before the ring.
// The shard must be a member.
func (m *Map) Pin(p property.Property, shard string) error {
	if p.IsEmpty() {
		return fmt.Errorf("shard: cannot pin an empty property")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.shards[shard]; !ok {
		return fmt.Errorf("shard: pin target %q is not a member shard", shard)
	}
	m.pins = append(m.pins, Pin{Prop: p, Shard: shard})
	m.pinIdx.Insert(strconv.Itoa(len(m.pins)-1), property.NewSet(p))
	return nil
}

// Pins returns a copy of the override table in consultation order.
func (m *Map) Pins() []Pin {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Pin, len(m.pins))
	copy(out, m.pins)
	return out
}

// RouteProps consults the pin table for a property set: the first pin
// whose property overlaps any property of the set wins (resolved through
// the pin posting index — the earliest ordinal among the overlapping
// pins, identical to the old in-order scan). The second result reports
// whether a pin matched.
func (m *Map) RouteProps(props property.Set) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	first := -1
	m.pinIdx.Overlapping(props, func(key string) bool {
		if i, err := strconv.Atoi(key); err == nil && (first < 0 || i < first) {
			first = i
		}
		return true
	})
	if first < 0 {
		return "", false
	}
	return m.pins[first].Shard, true
}
