package property

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDomain parses the textual domain syntax:
//
//	[lo,hi]      closed numeric interval
//	{a,b,c}      discrete set (members are trimmed, may be quoted)
//	{}           empty domain
//	{lo..hi}     integer range sugar, expands to a discrete set
//
// Whitespace around tokens is ignored.
func ParseDomain(s string) (Domain, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "{}" || s == "":
		return Empty(), nil
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		body := s[1 : len(s)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 2 {
			return Domain{}, fmt.Errorf("property: interval %q must have exactly two bounds", s)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return Domain{}, fmt.Errorf("property: bad interval lower bound in %q: %w", s, err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return Domain{}, fmt.Errorf("property: bad interval upper bound in %q: %w", s, err)
		}
		if lo > hi {
			return Domain{}, fmt.Errorf("property: interval %q has lo > hi", s)
		}
		return Interval(lo, hi), nil
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return Empty(), nil
		}
		// Integer range sugar {lo..hi}.
		if lo, hi, ok := splitRange(body); ok {
			if lo > hi {
				return Domain{}, fmt.Errorf("property: range %q has lo > hi", s)
			}
			return DiscreteRange(lo, hi), nil
		}
		raw := strings.Split(body, ",")
		members := make([]string, 0, len(raw))
		for _, r := range raw {
			m := strings.TrimSpace(r)
			m = strings.Trim(m, `"'`)
			if m == "" {
				return Domain{}, fmt.Errorf("property: empty member in %q", s)
			}
			members = append(members, m)
		}
		return Discrete(members...), nil
	default:
		return Domain{}, fmt.Errorf("property: cannot parse domain %q (want [lo,hi] or {a,b,c})", s)
	}
}

func splitRange(body string) (lo, hi int, ok bool) {
	i := strings.Index(body, "..")
	if i < 0 || strings.Contains(body, ",") {
		return 0, 0, false
	}
	lo, err1 := strconv.Atoi(strings.TrimSpace(body[:i]))
	hi, err2 := strconv.Atoi(strings.TrimSpace(body[i+2:]))
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return lo, hi, true
}

// ParseProperty parses "name=domain", e.g. `Flights={100..109}`.
func ParseProperty(s string) (Property, error) {
	i := strings.Index(s, "=")
	if i <= 0 {
		return Property{}, fmt.Errorf("property: %q is not of the form name=domain", s)
	}
	name := strings.TrimSpace(s[:i])
	if name == "" {
		return Property{}, fmt.Errorf("property: empty name in %q", s)
	}
	d, err := ParseDomain(s[i+1:])
	if err != nil {
		return Property{}, err
	}
	return Property{Name: name, Domain: d}, nil
}

// ParseSet parses a semicolon-separated list of properties, e.g.
// `Flights={100..109}; Seats=[0,400]`. An empty string yields an empty set.
func ParseSet(s string) (Set, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return NewSet(), nil
	}
	parts := strings.Split(s, ";")
	props := make([]Property, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := ParseProperty(part)
		if err != nil {
			return Set{}, err
		}
		props = append(props, p)
	}
	return NewSet(props...), nil
}

// MustSet is a test/example helper that panics on parse failure.
func MustSet(s string) Set {
	set, err := ParseSet(s)
	if err != nil {
		panic(err)
	}
	return set
}
