package property

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalConstruction(t *testing.T) {
	d := Interval(1, 5)
	if d.Kind() != KindInterval {
		t.Fatalf("kind = %v, want interval", d.Kind())
	}
	lo, hi := d.Bounds()
	if lo != 1 || hi != 5 {
		t.Fatalf("bounds = [%g,%g], want [1,5]", lo, hi)
	}
	if Interval(5, 1).Kind() != KindEmpty {
		t.Fatal("inverted interval should be empty")
	}
}

func TestDiscreteDedupAndSort(t *testing.T) {
	d := Discrete("b", "a", "b", "c", "a")
	want := []string{"a", "b", "c"}
	if got := d.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	if d.Size() != 3 {
		t.Fatalf("size = %d, want 3", d.Size())
	}
}

func TestDiscreteRange(t *testing.T) {
	d := DiscreteRange(10, 12)
	if !d.ContainsMember("10") || !d.ContainsMember("11") || !d.ContainsMember("12") {
		t.Fatalf("range missing members: %v", d)
	}
	if d.ContainsMember("13") {
		t.Fatal("range contains 13")
	}
	if !DiscreteRange(5, 4).IsEmpty() {
		t.Fatal("inverted range should be empty")
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Domain
	}{
		{Interval(0, 10), Interval(5, 15), Interval(5, 10)},
		{Interval(0, 10), Interval(10, 20), Interval(10, 10)},
		{Interval(0, 10), Interval(11, 20), Empty()},
		{Interval(0, 10), Empty(), Empty()},
		{Empty(), Empty(), Empty()},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if !got.Equal(c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		// Intersection is commutative.
		if !c.b.Intersect(c.a).Equal(got) {
			t.Errorf("%v ∩ %v not commutative", c.a, c.b)
		}
		if got.IsEmpty() == c.a.Overlaps(c.b) {
			t.Errorf("Overlaps(%v,%v) inconsistent with Intersect", c.a, c.b)
		}
	}
}

func TestDiscreteIntersect(t *testing.T) {
	a := Discrete("x", "y")
	b := Discrete("x", "z")
	got := a.Intersect(b)
	if !got.Equal(Discrete("x")) {
		t.Fatalf("got %v, want {x}", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("a should overlap b")
	}
	if a.Overlaps(Discrete("q")) {
		t.Fatal("a should not overlap {q}")
	}
}

func TestMixedIntersect(t *testing.T) {
	d := Discrete("5", "10", "15", "oops")
	iv := Interval(6, 14)
	got := d.Intersect(iv)
	if !got.Equal(Discrete("10")) {
		t.Fatalf("got %v, want {10}", got)
	}
	if !iv.Intersect(d).Equal(got) {
		t.Fatal("mixed intersect not commutative")
	}
}

func TestContainsValue(t *testing.T) {
	if !Interval(1, 2).ContainsValue(1.5) {
		t.Fatal("interval should contain 1.5")
	}
	if Interval(1, 2).ContainsValue(2.5) {
		t.Fatal("interval should not contain 2.5")
	}
	if !DiscreteInts(7, 8).ContainsValue(7) {
		t.Fatal("discrete should contain 7")
	}
	if DiscreteInts(7, 8).ContainsValue(7.5) {
		t.Fatal("discrete should not contain 7.5")
	}
	if Empty().ContainsValue(0) {
		t.Fatal("empty contains nothing")
	}
}

func TestUnion(t *testing.T) {
	got := Interval(0, 5).Union(Interval(10, 20))
	if !got.Equal(Interval(0, 20)) {
		t.Fatalf("interval union = %v, want covering [0,20]", got)
	}
	got = Discrete("a").Union(Discrete("b"))
	if !got.Equal(Discrete("a", "b")) {
		t.Fatalf("discrete union = %v", got)
	}
	got = DiscreteInts(1, 100).Union(Interval(50, 60))
	if !got.Equal(Interval(1, 100)) {
		t.Fatalf("mixed numeric union = %v, want [1,100]", got)
	}
	if !Empty().Union(Discrete("a")).Equal(Discrete("a")) {
		t.Fatal("empty union identity failed")
	}
	// Mixed with non-numeric member stays total.
	got = Discrete("x").Union(Interval(1, 2))
	if got.IsEmpty() {
		t.Fatal("mixed non-numeric union should not be empty")
	}
}

func TestDomainString(t *testing.T) {
	cases := map[string]Domain{
		"{}":      Empty(),
		"[1,5]":   Interval(1, 5),
		"{a,b}":   Discrete("a", "b"),
		"[0.5,2]": Interval(0.5, 2),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// genDomain builds a random domain for property-based tests.
func genDomain(r *rand.Rand) Domain {
	switch r.Intn(3) {
	case 0:
		lo := float64(r.Intn(100))
		return Interval(lo, lo+float64(r.Intn(50)))
	case 1:
		n := r.Intn(6)
		ms := make([]string, n)
		for i := range ms {
			ms[i] = string(rune('a' + r.Intn(8)))
		}
		return Discrete(ms...)
	default:
		return Empty()
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := genDomain(r), genDomain(r)
		return a.Intersect(b).Equal(b.Intersect(a)) && a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectIdempotentAndShrinking(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a := genDomain(r)
		b := genDomain(r)
		inter := a.Intersect(b)
		// a∩a == a
		if !a.Intersect(a).Equal(a) {
			return false
		}
		// (a∩b)∩a == a∩b : intersection result is contained in both operands
		return inter.Intersect(a).Equal(inter) && inter.Intersect(b).Equal(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapsMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := genDomain(r), genDomain(r)
		return a.Overlaps(b) == !a.Intersect(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		d := genDomain(r)
		back, err := ParseDomain(d.String())
		return err == nil && back.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Domain
		want bool
	}{
		{Empty(), Interval(0, 1), true},
		{Interval(0, 1), Empty(), false},
		{Empty(), Empty(), true},
		{Interval(1, 2), Interval(0, 3), true},
		{Interval(0, 3), Interval(1, 2), false},
		{Interval(1, 2), Interval(1, 2), true},
		{Discrete("a"), Discrete("a", "b"), true},
		{Discrete("a", "c"), Discrete("a", "b"), false},
		{DiscreteInts(2, 3), Interval(1, 5), true},
		{DiscreteInts(2, 9), Interval(1, 5), false},
		{Discrete("x"), Interval(1, 5), false}, // non-numeric member
		{Point(3), DiscreteInts(3), true},
		{Point(3), DiscreteInts(4), false},
		{Interval(1, 2), DiscreteInts(1, 2), false}, // uncountable ⊄ finite
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v ⊆ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickSubsetConsistentWithIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		a, b := genDomain(r), genDomain(r)
		if a.SubsetOf(b) {
			// a ⊆ b implies a ∩ b == a.
			return a.Intersect(b).Equal(a)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionContainsOperands(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := genDomain(r), genDomain(r)
		u := a.Union(b)
		// The union must overlap (contain something of) each non-empty operand.
		if !a.IsEmpty() && !u.Overlaps(a) {
			return false
		}
		if !b.IsEmpty() && !u.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
