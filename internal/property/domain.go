// Package property implements the data-property algebra used by Flecc to
// decide which views share data (paper §4.1, Definitions 1–3).
//
// A property is a tuple (name, D) where D is a value domain: either a closed
// numeric interval [min,max] or a finite set of discrete values. Two
// properties intersect iff they have the same name and their domains
// intersect; two property sets intersect iff any pair of their properties
// does. Flecc treats a non-empty intersection as a (potential) data-sharing
// relationship between the two views that declared the sets.
package property

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the two domain representations supported by the paper:
// an interval D = [dmin, dmax] or a discrete set D = {d1, ..., dn}.
type Kind uint8

const (
	// KindEmpty is the domain with no values. It is the zero Domain and the
	// result of any intersection that eliminates every value.
	KindEmpty Kind = iota
	// KindInterval is a closed numeric interval [Min, Max].
	KindInterval
	// KindDiscrete is a finite set of string-valued members.
	KindDiscrete
)

func (k Kind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindInterval:
		return "interval"
	case KindDiscrete:
		return "discrete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Domain is a value domain D_p. The zero value is the empty domain.
//
// Domains are immutable after construction; all operations return new
// domains. Discrete members are kept sorted and deduplicated so that equal
// domains have identical representations (useful for hashing and tests).
type Domain struct {
	kind Kind
	// interval bounds, valid when kind == KindInterval
	min, max float64
	// sorted unique members, valid when kind == KindDiscrete
	members []string
}

// Empty returns the empty domain.
func Empty() Domain { return Domain{} }

// Interval returns the closed interval [min, max]. If min > max the result
// is the empty domain (the interval contains no values).
func Interval(min, max float64) Domain {
	if min > max || math.IsNaN(min) || math.IsNaN(max) {
		return Domain{}
	}
	return Domain{kind: KindInterval, min: min, max: max}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Domain { return Interval(v, v) }

// Discrete returns the discrete domain containing exactly the given members
// (duplicates removed). An empty member list yields the empty domain.
func Discrete(members ...string) Domain {
	if len(members) == 0 {
		return Domain{}
	}
	ms := make([]string, len(members))
	copy(ms, members)
	sort.Strings(ms)
	// dedupe in place
	w := 1
	for i := 1; i < len(ms); i++ {
		if ms[i] != ms[w-1] {
			ms[w] = ms[i]
			w++
		}
	}
	ms = ms[:w]
	return Domain{kind: KindDiscrete, members: ms}
}

// DiscreteInts is a convenience constructor for discrete domains whose
// members are integers (e.g. flight numbers).
func DiscreteInts(members ...int) Domain {
	ms := make([]string, len(members))
	for i, m := range members {
		ms[i] = strconv.Itoa(m)
	}
	return Discrete(ms...)
}

// DiscreteRange returns the discrete domain {lo, lo+1, ..., hi} rendered as
// integers. If lo > hi the result is empty.
func DiscreteRange(lo, hi int) Domain {
	if lo > hi {
		return Domain{}
	}
	ms := make([]string, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		ms = append(ms, strconv.Itoa(v))
	}
	return Discrete(ms...)
}

// Kind reports the domain's representation.
func (d Domain) Kind() Kind { return d.kind }

// IsEmpty reports whether the domain contains no values.
func (d Domain) IsEmpty() bool { return d.kind == KindEmpty }

// Bounds returns the interval bounds. It panics unless Kind()==KindInterval.
func (d Domain) Bounds() (min, max float64) {
	if d.kind != KindInterval {
		panic("property: Bounds on non-interval domain")
	}
	return d.min, d.max
}

// Members returns a copy of the discrete members. It returns nil for
// non-discrete domains.
func (d Domain) Members() []string {
	if d.kind != KindDiscrete {
		return nil
	}
	out := make([]string, len(d.members))
	copy(out, d.members)
	return out
}

// Size returns the number of values in a discrete domain, or -1 for an
// interval (uncountable for our purposes), or 0 for the empty domain.
func (d Domain) Size() int {
	switch d.kind {
	case KindEmpty:
		return 0
	case KindDiscrete:
		return len(d.members)
	default:
		return -1
	}
}

// ContainsValue reports whether the numeric value v lies in the domain.
// For discrete domains the value is matched against integer renderings.
func (d Domain) ContainsValue(v float64) bool {
	switch d.kind {
	case KindInterval:
		return v >= d.min && v <= d.max
	case KindDiscrete:
		if v != math.Trunc(v) {
			return false
		}
		return d.ContainsMember(strconv.FormatInt(int64(v), 10))
	default:
		return false
	}
}

// ContainsMember reports whether the discrete member m is in the domain.
func (d Domain) ContainsMember(m string) bool {
	if d.kind != KindDiscrete {
		return false
	}
	i := sort.SearchStrings(d.members, m)
	return i < len(d.members) && d.members[i] == m
}

// Intersect returns the intersection of two domains (Definition 3's domain
// part). Interval∩interval and discrete∩discrete are exact. A mixed
// interval∩discrete intersection keeps the discrete members whose numeric
// rendering falls inside the interval; non-numeric members are dropped.
func (d Domain) Intersect(o Domain) Domain {
	switch {
	case d.kind == KindEmpty || o.kind == KindEmpty:
		return Domain{}
	case d.kind == KindInterval && o.kind == KindInterval:
		lo := math.Max(d.min, o.min)
		hi := math.Min(d.max, o.max)
		return Interval(lo, hi)
	case d.kind == KindDiscrete && o.kind == KindDiscrete:
		return intersectSorted(d.members, o.members)
	case d.kind == KindDiscrete && o.kind == KindInterval:
		return filterByInterval(d.members, o.min, o.max)
	default: // interval ∩ discrete
		return filterByInterval(o.members, d.min, d.max)
	}
}

// Overlaps reports whether the two domains share at least one value. It is
// equivalent to !d.Intersect(o).IsEmpty() but avoids allocation for the
// common discrete/discrete case.
func (d Domain) Overlaps(o Domain) bool {
	switch {
	case d.kind == KindEmpty || o.kind == KindEmpty:
		return false
	case d.kind == KindInterval && o.kind == KindInterval:
		return math.Max(d.min, o.min) <= math.Min(d.max, o.max)
	case d.kind == KindDiscrete && o.kind == KindDiscrete:
		i, j := 0, 0
		for i < len(d.members) && j < len(o.members) {
			switch strings.Compare(d.members[i], o.members[j]) {
			case 0:
				return true
			case -1:
				i++
			default:
				j++
			}
		}
		return false
	default:
		return !d.Intersect(o).IsEmpty()
	}
}

// Union returns the smallest representable domain containing both inputs.
// For two intervals the result is the covering interval (which may include
// values in neither input — callers that need exactness should keep the
// operands separate). Mixed kinds widen to a covering interval when both
// sides are numeric, otherwise the discrete members are merged.
func (d Domain) Union(o Domain) Domain {
	switch {
	case d.kind == KindEmpty:
		return o
	case o.kind == KindEmpty:
		return d
	case d.kind == KindInterval && o.kind == KindInterval:
		return Interval(math.Min(d.min, o.min), math.Max(d.max, o.max))
	case d.kind == KindDiscrete && o.kind == KindDiscrete:
		return Discrete(append(d.Members(), o.members...)...)
	default:
		// Mixed: try numeric covering interval.
		var disc Domain
		var iv Domain
		if d.kind == KindDiscrete {
			disc, iv = d, o
		} else {
			disc, iv = o, d
		}
		lo, hi := iv.min, iv.max
		for _, m := range disc.members {
			v, err := strconv.ParseFloat(m, 64)
			if err != nil {
				// Non-numeric member: fall back to discretizing is not
				// possible; return the discrete side merged with interval
				// endpoints rendered as members. This keeps Union total.
				ms := disc.Members()
				ms = append(ms, formatFloat(iv.min), formatFloat(iv.max))
				return Discrete(ms...)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return Interval(lo, hi)
	}
}

// SubsetOf reports whether every value of d lies in o. The paper's view
// definition (§3.2) describes a view's working data as "a subset of the
// data defined by the original component"; this is the check for it.
func (d Domain) SubsetOf(o Domain) bool {
	switch {
	case d.kind == KindEmpty:
		return true
	case o.kind == KindEmpty:
		return false
	case d.kind == KindInterval && o.kind == KindInterval:
		return d.min >= o.min && d.max <= o.max
	case d.kind == KindDiscrete:
		for _, m := range d.members {
			switch o.kind {
			case KindDiscrete:
				if !o.ContainsMember(m) {
					return false
				}
			default:
				v, err := strconv.ParseFloat(m, 64)
				if err != nil || !o.ContainsValue(v) {
					return false
				}
			}
		}
		return true
	default:
		// A non-degenerate interval has uncountably many values; it can
		// only be a subset of another interval (handled above) or equal a
		// discrete rendering when degenerate.
		if d.min == d.max {
			return o.ContainsValue(d.min)
		}
		return false
	}
}

// Equal reports structural equality of the two domains.
func (d Domain) Equal(o Domain) bool {
	if d.kind != o.kind {
		return false
	}
	switch d.kind {
	case KindEmpty:
		return true
	case KindInterval:
		return d.min == o.min && d.max == o.max
	default:
		if len(d.members) != len(o.members) {
			return false
		}
		for i := range d.members {
			if d.members[i] != o.members[i] {
				return false
			}
		}
		return true
	}
}

// String renders the domain in the textual syntax accepted by ParseDomain:
// "[lo,hi]" for intervals, "{a,b,c}" for discrete sets, "{}" when empty.
func (d Domain) String() string {
	switch d.kind {
	case KindEmpty:
		return "{}"
	case KindInterval:
		return "[" + formatFloat(d.min) + "," + formatFloat(d.max) + "]"
	default:
		return "{" + strings.Join(d.members, ",") + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func intersectSorted(a, b []string) Domain {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch strings.Compare(a[i], b[j]) {
		case 0:
			out = append(out, a[i])
			i++
			j++
		case -1:
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return Domain{}
	}
	return Domain{kind: KindDiscrete, members: out}
}

func filterByInterval(members []string, lo, hi float64) Domain {
	var out []string
	for _, m := range members {
		v, err := strconv.ParseFloat(m, 64)
		if err != nil {
			continue
		}
		if v >= lo && v <= hi {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return Domain{}
	}
	return Domain{kind: KindDiscrete, members: out}
}
