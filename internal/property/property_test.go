package property

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPropertyIntersectNameMismatch(t *testing.T) {
	p := New("Flights", DiscreteInts(1, 2))
	q := New("Seats", DiscreteInts(1, 2))
	if !p.Intersect(q).IsEmpty() {
		t.Fatal("different names must not intersect (Definition 3)")
	}
	if p.Overlaps(q) {
		t.Fatal("different names must not overlap")
	}
}

func TestPropertyIntersectSameName(t *testing.T) {
	p := New("Flights", DiscreteInts(1, 2, 3))
	q := New("Flights", DiscreteInts(3, 4))
	r := p.Intersect(q)
	if r.Name != "Flights" || !r.Domain.Equal(DiscreteInts(3)) {
		t.Fatalf("got %v, want Flights={3}", r)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(
		New("Flights", DiscreteInts(1, 2)),
		New("Seats", Interval(0, 100)),
	)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"Flights", "Seats"}) {
		t.Fatalf("names = %v", got)
	}
	p, ok := s.Get("Seats")
	if !ok || !p.Domain.Equal(Interval(0, 100)) {
		t.Fatalf("Get(Seats) = %v, %v", p, ok)
	}
	s.Remove("Seats")
	if _, ok := s.Get("Seats"); ok {
		t.Fatal("Seats should be removed")
	}
}

func TestSetPutReplacesAndRemovesEmpty(t *testing.T) {
	var s Set
	s.Put(New("A", DiscreteInts(1)))
	s.Put(New("A", DiscreteInts(2)))
	p, _ := s.Get("A")
	if !p.Domain.Equal(DiscreteInts(2)) {
		t.Fatalf("Put should replace; got %v", p)
	}
	s.Put(New("A", Empty()))
	if s.Len() != 0 {
		t.Fatal("putting empty property should remove the entry")
	}
}

func TestSetDuplicateNameLastWins(t *testing.T) {
	s := NewSet(New("A", DiscreteInts(1)), New("A", DiscreteInts(9)))
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	p, _ := s.Get("A")
	if !p.Domain.Equal(DiscreteInts(9)) {
		t.Fatalf("last writer should win, got %v", p)
	}
}

// TestPaperExample reproduces the worked example from §4.2: V1 has P={x,y},
// V2 has P={x,z}, original has P={x,y,z}. Both views conflict with the
// original and with each other through the shared member x.
func TestPaperExample(t *testing.T) {
	v1 := NewSet(New("P", Discrete("x", "y")))
	v2 := NewSet(New("P", Discrete("x", "z")))
	orig := NewSet(New("P", Discrete("x", "y", "z")))

	if DynConfl(v1, v2) != 1 {
		t.Fatal("V1 and V2 must conflict (share x)")
	}
	if DynConfl(v1, orig) != 1 || DynConfl(v2, orig) != 1 {
		t.Fatal("views must conflict with the original")
	}
	inter := v1.Intersect(v2)
	p, ok := inter.Get("P")
	if !ok || !p.Domain.Equal(Discrete("x")) {
		t.Fatalf("V1 ∩ V2 = %v, want P={x}", inter)
	}
}

func TestSetIntersectDisjoint(t *testing.T) {
	a := MustSet("Flights={100..109}")
	b := MustSet("Flights={200..209}")
	if DynConfl(a, b) != 0 {
		t.Fatal("disjoint flight ranges must not conflict")
	}
	if !a.Intersect(b).IsEmpty() {
		t.Fatal("intersection should be empty")
	}
}

func TestSetClone(t *testing.T) {
	a := MustSet("A={1,2}")
	b := a.Clone()
	b.Put(New("B", DiscreteInts(3)))
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone not independent: a=%v b=%v", a, b)
	}
}

func TestSetEqual(t *testing.T) {
	a := MustSet("A={1,2}; B=[0,5]")
	b := MustSet("B=[0,5]; A={2,1}")
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := MustSet("A={1,2}; B=[0,6]")
	if a.Equal(c) {
		t.Fatal("different bounds should not be equal")
	}
}

func TestSetTextRoundTrip(t *testing.T) {
	a := MustSet("Flights={100..104}; Seats=[0,400]")
	text, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Fatalf("round trip: %v != %v", back, a)
	}
}

func TestSetSubsetOf(t *testing.T) {
	view := MustSet("Flights={100..104}")
	comp := MustSet("Flights={100..199}; Seats=[0,400]")
	if !view.SubsetOf(comp) {
		t.Fatal("view data should be a subset of the component's")
	}
	if comp.SubsetOf(view) {
		t.Fatal("superset direction must fail")
	}
	// A property the component lacks breaks the subset relation.
	other := MustSet("Flights={100..104}; Gates={A1}")
	if other.SubsetOf(comp) {
		t.Fatal("unknown property should break the subset relation")
	}
	if !NewSet().SubsetOf(comp) {
		t.Fatal("empty set is a subset of everything")
	}
}

func genSet(r *rand.Rand) Set {
	n := r.Intn(4)
	props := make([]Property, 0, n)
	names := []string{"A", "B", "C", "Flights"}
	for i := 0; i < n; i++ {
		props = append(props, New(names[r.Intn(len(names))], genDomain(r)))
	}
	return NewSet(props...)
}

func TestQuickDynConflSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := func() bool {
		p, q := genSet(r), genSet(r)
		return DynConfl(p, q) == DynConfl(q, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetIntersectSubset(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		p, q := genSet(r), genSet(r)
		inter := p.Intersect(q)
		// Every property in the intersection must overlap the corresponding
		// property in both operands.
		for _, ip := range inter.Properties() {
			pp, ok1 := p.Get(ip.Name)
			qp, ok2 := q.Get(ip.Name)
			if !ok1 || !ok2 || !ip.Overlaps(pp) || !ip.Overlaps(qp) {
				return false
			}
		}
		// dynConfl consistency.
		return (DynConfl(p, q) == 1) == !inter.IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		s := genSet(r)
		back, err := ParseSet(s.String())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
