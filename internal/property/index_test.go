package property

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// bruteOverlapKeys is the reference answer: a pairwise scan.
func bruteOverlapKeys(sets map[string]Set, q Set) []string {
	var out []string
	for k, s := range sets {
		if s.Overlaps(q) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func TestIndexBasics(t *testing.T) {
	x := NewIndex()
	x.Insert("a", MustSet("F={1..5}"))
	x.Insert("b", MustSet("F={5..9}"))
	x.Insert("c", MustSet("F={100}"))
	x.Insert("d", MustSet("S=[0,10]"))
	if x.Len() != 4 || !x.Has("a") || x.Has("zz") {
		t.Fatal("Len/Has")
	}
	if got := x.OverlapKeys(MustSet("F={4..6}")); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("overlap = %v", got)
	}
	if got := x.OverlapKeys(MustSet("S=[9,20]")); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("overlap = %v", got)
	}
	if got := x.OverlapKeys(NewSet()); got != nil {
		t.Fatalf("empty query should match nothing, got %v", got)
	}
	// Replacement re-indexes.
	x.Insert("c", MustSet("F={5}"))
	if got := x.OverlapKeys(MustSet("F={5}")); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("after update, overlap = %v", got)
	}
	x.Remove("b")
	x.Remove("b") // idempotent
	if got := x.OverlapKeys(MustSet("F={5..9}")); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("after remove, overlap = %v", got)
	}
}

func TestIndexVerifiesCandidates(t *testing.T) {
	x := NewIndex()
	// Covering segment [1,100] overlaps [50,50] but the discrete domain
	// does not contain 50 — the index must not report it.
	x.Insert("gap", MustSet("F={1,100}"))
	if got := x.OverlapKeys(MustSet("F={50}")); got != nil {
		t.Fatalf("covering-segment false positive leaked: %v", got)
	}
	if got := x.OverlapKeys(MustSet("F={100}")); !reflect.DeepEqual(got, []string{"gap"}) {
		t.Fatalf("exact member missed: %v", got)
	}
}

func TestIndexNonNumericMembers(t *testing.T) {
	x := NewIndex()
	x.Insert("tags", NewSet(New("T", Discrete("red", "green"))))
	x.Insert("nums", NewSet(New("T", Discrete("3", "4"))))
	if got := x.OverlapKeys(NewSet(New("T", Discrete("green")))); !reflect.DeepEqual(got, []string{"tags"}) {
		t.Fatalf("non-numeric member lookup = %v", got)
	}
	// Interval queries only see numeric members.
	if got := x.OverlapKeys(NewSet(New("T", Interval(0, 10)))); !reflect.DeepEqual(got, []string{"nums"}) {
		t.Fatalf("interval vs discrete = %v", got)
	}
	// Mixed domain: numeric members in the treap, the rest inverted.
	x.Insert("mix", NewSet(New("T", Discrete("blue", "7"))))
	if got := x.OverlapKeys(NewSet(New("T", Point(7)))); !reflect.DeepEqual(got, []string{"mix"}) {
		t.Fatalf("mixed numeric member = %v", got)
	}
	if got := x.OverlapKeys(NewSet(New("T", Discrete("blue")))); !reflect.DeepEqual(got, []string{"mix"}) {
		t.Fatalf("mixed non-numeric member = %v", got)
	}
}

func TestIndexOverlappingStops(t *testing.T) {
	x := NewIndex()
	for i := 0; i < 16; i++ {
		x.Insert(fmt.Sprintf("v%02d", i), NewSet(New("F", Interval(0, 100))))
	}
	calls := 0
	x.Overlapping(NewSet(New("F", Point(50))), func(string) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("enumeration did not stop: %d calls", calls)
	}
}

// randDomain draws an interval, a numeric discrete run, a sparse discrete
// set (sometimes with non-numeric members), or an empty domain.
func randDomain(rng *rand.Rand) Domain {
	switch rng.Intn(5) {
	case 0:
		lo := rng.Float64() * 100
		return Interval(lo, lo+rng.Float64()*20)
	case 1:
		lo := rng.Intn(100)
		return DiscreteRange(lo, lo+rng.Intn(6))
	case 2:
		var ms []string
		for i := 0; i < 1+rng.Intn(4); i++ {
			ms = append(ms, fmt.Sprint(rng.Intn(120)))
		}
		if rng.Intn(3) == 0 {
			ms = append(ms, string(rune('x'+rng.Intn(3))))
		}
		return Discrete(ms...)
	case 3:
		return Discrete(string(rune('x' + rng.Intn(3))))
	default:
		return Empty()
	}
}

func randSet(rng *rand.Rand) Set {
	names := []string{"F", "S", "T"}
	s := NewSet()
	for _, n := range names {
		if rng.Intn(2) == 0 {
			s.Put(New(n, randDomain(rng)))
		}
	}
	return s
}

func TestIndexMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := NewIndex()
	sets := map[string]Set{}
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("v%02d", i)
	}
	for step := 0; step < 4000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			s := randSet(rng)
			x.Insert(k, s)
			sets[k] = s
		case 1:
			x.Remove(k)
			delete(sets, k)
		default:
			q := randSet(rng)
			got := x.OverlapKeys(q)
			want := bruteOverlapKeys(sets, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: query %v\n got %v\nwant %v", step, q, got, want)
			}
		}
	}
}
