package property

import (
	"fmt"
	"sort"
	"strings"
)

// Property is the paper's tuple p = (name_p, D_p): a unique name plus a
// value domain. Properties are value types; the zero value has an empty
// name and empty domain and intersects with nothing.
type Property struct {
	Name   string
	Domain Domain
}

// New constructs a property.
func New(name string, d Domain) Property { return Property{Name: name, Domain: d} }

// Intersect implements Definition 3: the intersection of p and q is empty
// unless the names match, in which case it is (name, D_p ∩ D_q).
func (p Property) Intersect(q Property) Property {
	if p.Name != q.Name {
		return Property{}
	}
	return Property{Name: p.Name, Domain: p.Domain.Intersect(q.Domain)}
}

// Overlaps reports whether p ∩ q is non-empty.
func (p Property) Overlaps(q Property) bool {
	return p.Name == q.Name && p.Domain.Overlaps(q.Domain)
}

// IsEmpty reports whether the property carries no values (empty domain or
// empty name).
func (p Property) IsEmpty() bool { return p.Name == "" || p.Domain.IsEmpty() }

// Equal reports structural equality.
func (p Property) Equal(q Property) bool {
	return p.Name == q.Name && p.Domain.Equal(q.Domain)
}

// String renders "name=domain", e.g. `Flights={10,11,12}` or `Seats=[0,100]`.
func (p Property) String() string { return p.Name + "=" + p.Domain.String() }

// Set is a set of properties. The paper assumes no two properties in a set
// share a name, so Set is keyed by name. The zero value is an empty,
// ready-to-use set — but note Set has map semantics (mutations are shared);
// use Clone for an independent copy.
type Set struct {
	byName map[string]Property
}

// NewSet builds a set from the given properties. Later duplicates of a name
// replace earlier ones (last writer wins), mirroring "a set of properties
// does not contain two properties with the same name".
func NewSet(props ...Property) Set {
	s := Set{byName: make(map[string]Property, len(props))}
	for _, p := range props {
		if p.IsEmpty() {
			continue
		}
		s.byName[p.Name] = p
	}
	return s
}

// Len returns the number of (non-empty) properties in the set.
func (s Set) Len() int { return len(s.byName) }

// IsEmpty reports whether the set has no properties.
func (s Set) IsEmpty() bool { return len(s.byName) == 0 }

// Get returns the property with the given name and whether it exists.
func (s Set) Get(name string) (Property, bool) {
	p, ok := s.byName[name]
	return p, ok
}

// Put inserts or replaces a property in the set (mutating). Empty
// properties are removals.
func (s *Set) Put(p Property) {
	if s.byName == nil {
		s.byName = make(map[string]Property)
	}
	if p.IsEmpty() {
		delete(s.byName, p.Name)
		return
	}
	s.byName[p.Name] = p
}

// Remove deletes the named property, if present.
func (s *Set) Remove(name string) { delete(s.byName, name) }

// Names returns the sorted property names.
func (s Set) Names() []string {
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Properties returns the properties sorted by name.
func (s Set) Properties() []Property {
	out := make([]Property, 0, len(s.byName))
	for _, n := range s.Names() {
		out = append(out, s.byName[n])
	}
	return out
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{byName: make(map[string]Property, len(s.byName))}
	for k, v := range s.byName {
		c.byName[k] = v
	}
	return c
}

// Intersect implements Definition 2: P ∩ Q = { p_i ∩ q_j | non-empty }.
// Because names are unique within a set, only same-named pairs can produce
// non-empty intersections, so the computation is a map join.
func (s Set) Intersect(o Set) Set {
	small, big := s, o
	if len(big.byName) < len(small.byName) {
		small, big = big, small
	}
	out := Set{byName: make(map[string]Property)}
	for name, p := range small.byName {
		if q, ok := big.byName[name]; ok {
			r := p.Intersect(q)
			if !r.IsEmpty() {
				out.byName[name] = r
			}
		}
	}
	return out
}

// Overlaps implements Definition 1 (dynConfl): it reports whether P ∩ Q is
// non-empty, i.e. whether the two views potentially share data.
func (s Set) Overlaps(o Set) bool {
	small, big := s, o
	if len(big.byName) < len(small.byName) {
		small, big = big, small
	}
	for name, p := range small.byName {
		if q, ok := big.byName[name]; ok && p.Overlaps(q) {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every property of s is covered by a same-named
// property of o with a superset domain — the §3.2 "view data is a subset
// of the component's data" relation at set level.
func (s Set) SubsetOf(o Set) bool {
	for name, p := range s.byName {
		q, ok := o.byName[name]
		if !ok || !p.Domain.SubsetOf(q.Domain) {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets contain structurally equal properties.
func (s Set) Equal(o Set) bool {
	if len(s.byName) != len(o.byName) {
		return false
	}
	for name, p := range s.byName {
		q, ok := o.byName[name]
		if !ok || !p.Equal(q) {
			return false
		}
	}
	return true
}

// String renders the set as "name1=dom1; name2=dom2" in name order.
func (s Set) String() string {
	parts := make([]string, 0, len(s.byName))
	for _, p := range s.Properties() {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, "; ")
}

// DynConfl is the paper's dynConfl function (Definition 1) as a standalone
// helper: it returns 1 when the property sets of two views intersect and 0
// otherwise.
func DynConfl(p, q Set) int {
	if p.Overlaps(q) {
		return 1
	}
	return 0
}

// MarshalText renders the set in the ParseSet syntax, making Set usable
// with encoding-aware code.
func (s Set) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the ParseSet syntax in place.
func (s *Set) UnmarshalText(b []byte) error {
	parsed, err := ParseSet(string(b))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// GobEncode makes Set usable with encoding/gob (the directory manager's
// fail-over snapshots); the payload is the textual form.
func (s Set) GobEncode() ([]byte, error) { return s.MarshalText() }

// GobDecode implements gob.GobDecoder.
func (s *Set) GobDecode(b []byte) error { return s.UnmarshalText(b) }

var _ fmt.Stringer = Set{}
