package property

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// segNode is one covering segment in a per-property-name interval treap:
// a BST over (lo, hi, key) with heap-ordered deterministic priorities and
// a subtree-max-endpoint augmentation, giving O(log n) expected insert
// and remove and O(log n + matches) stabbing queries regardless of
// insertion order (the priority depends only on the node's contents, so
// the same segment population always settles into the same shape).
type segNode struct {
	lo, hi float64
	key    string
	dom    Domain // the exact indexed domain behind the covering segment
	prio   uint64
	maxHi  float64 // max hi across this subtree
	left   *segNode
	right  *segNode
}

// segPrio derives a node's heap priority from its identity, keeping the
// treap shape deterministic for a given population.
func segPrio(key, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	// fmix64 finalizer: FNV alone is weak in the high bits heap order uses.
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

// segLess orders nodes by (lo, hi, key) — a total order so removals find
// exactly the node they target.
func segLess(a, b *segNode) bool {
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.key < b.key
}

func (n *segNode) refresh() {
	n.maxHi = n.hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
}

func segRotateRight(n *segNode) *segNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.refresh()
	l.refresh()
	return l
}

func segRotateLeft(n *segNode) *segNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.refresh()
	r.refresh()
	return r
}

// segInsert adds nn (a fresh, detached node) and returns the new root.
func segInsert(n, nn *segNode) *segNode {
	if n == nil {
		nn.refresh()
		return nn
	}
	if segLess(nn, n) {
		n.left = segInsert(n.left, nn)
		if n.left.prio > n.prio {
			return segRotateRight(n)
		}
	} else {
		n.right = segInsert(n.right, nn)
		if n.right.prio > n.prio {
			return segRotateLeft(n)
		}
	}
	n.refresh()
	return n
}

// segRemove deletes the node matching (lo, hi, key) exactly, if present,
// and returns the new root.
func segRemove(n *segNode, lo, hi float64, key string) *segNode {
	if n == nil {
		return nil
	}
	probe := segNode{lo: lo, hi: hi, key: key}
	switch {
	case segLess(&probe, n):
		n.left = segRemove(n.left, lo, hi, key)
	case segLess(n, &probe):
		n.right = segRemove(n.right, lo, hi, key)
	default:
		// Found: rotate the higher-priority child up until the node is a
		// leaf, then drop it.
		switch {
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		case n.left.prio > n.right.prio:
			n = segRotateRight(n)
			n.right = segRemove(n.right, lo, hi, key)
		default:
			n = segRotateLeft(n)
			n.left = segRemove(n.left, lo, hi, key)
		}
	}
	n.refresh()
	return n
}

// segQuery visits every segment overlapping [lo, hi], pruning subtrees
// whose max endpoint ends before lo and right subtrees once the node's
// own start passes hi. fn returning false stops the walk.
func segQuery(n *segNode, lo, hi float64, fn func(n *segNode) bool) bool {
	if n == nil || n.maxHi < lo {
		return true
	}
	if !segQuery(n.left, lo, hi, fn) {
		return false
	}
	if n.lo <= hi {
		if n.hi >= lo && !fn(n) {
			return false
		}
		return segQuery(n.right, lo, hi, fn)
	}
	// n.lo > hi: every right-subtree segment starts even later.
	return true
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func sortStrings(s []string) { sort.Strings(s) }
