package property

import (
	"strings"
	"testing"
)

func TestParseDomainInterval(t *testing.T) {
	d, err := ParseDomain("[1, 5]")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(Interval(1, 5)) {
		t.Fatalf("got %v", d)
	}
}

func TestParseDomainDiscrete(t *testing.T) {
	d, err := ParseDomain(`{ "a", b , c}`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(Discrete("a", "b", "c")) {
		t.Fatalf("got %v", d)
	}
}

func TestParseDomainRangeSugar(t *testing.T) {
	d, err := ParseDomain("{3..5}")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(DiscreteInts(3, 4, 5)) {
		t.Fatalf("got %v", d)
	}
}

func TestParseDomainEmpty(t *testing.T) {
	for _, s := range []string{"{}", "", "  "} {
		d, err := ParseDomain(s)
		if err != nil || !d.IsEmpty() {
			t.Fatalf("ParseDomain(%q) = %v, %v", s, d, err)
		}
	}
}

func TestParseDomainErrors(t *testing.T) {
	bad := []string{
		"[1]", "[1,2,3]", "[a,b]", "[1,b]", "[5,1]",
		"{5..1}", "{a,,b}", "(1,2)", "junk",
	}
	for _, s := range bad {
		if _, err := ParseDomain(s); err == nil {
			t.Errorf("ParseDomain(%q) should fail", s)
		}
	}
}

func TestParseProperty(t *testing.T) {
	p, err := ParseProperty(" Flights = {100..102} ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Flights" || !p.Domain.Equal(DiscreteInts(100, 101, 102)) {
		t.Fatalf("got %v", p)
	}
	for _, s := range []string{"noequals", "=dom", " =x"} {
		if _, err := ParseProperty(s); err == nil {
			t.Errorf("ParseProperty(%q) should fail", s)
		}
	}
}

func TestParseSetMulti(t *testing.T) {
	s, err := ParseSet("Flights={1,2}; Seats=[0,10];")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestParseSetError(t *testing.T) {
	if _, err := ParseSet("Flights={1,2}; bogus"); err == nil {
		t.Fatal("want error for bogus clause")
	}
}

func TestMustSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSet should panic on bad input")
		}
	}()
	MustSet("!!!")
}

func TestParseErrorMessagesMentionInput(t *testing.T) {
	_, err := ParseDomain("[x,2]")
	if err == nil || !strings.Contains(err.Error(), "[x,2]") {
		t.Fatalf("error should mention offending input, got %v", err)
	}
}
