package property

import "sort"

// Index is an incrementally maintained posting index over property sets:
// "which keys have a set that overlaps this set?" in O(log n + matches)
// instead of a pairwise scan. It is the data structure behind the
// registry's dynamic conflict engine and the shard router's
// conflict-affinity placement.
//
// Per property name the index keeps two postings:
//
//   - a numeric segment treap: every indexed domain with a numeric
//     footprint contributes one covering segment — an interval domain
//     contributes [min,max], a discrete domain the covering segment of
//     its numeric members. The treap is an augmented BST (subtree max
//     endpoint) with deterministic hash-derived priorities, so insert,
//     remove, and stabbing queries are O(log n) expected and independent
//     of insertion order. Each node carries its exact domain, so a
//     covering-segment hit is verified with one Domain.Overlaps — no
//     false positives escape, and no per-candidate set walk is needed.
//   - an inverted member map: every discrete member points at the keys
//     whose domain contains it, covering the non-numeric members the
//     segment treap cannot see. A member hit is exact by construction
//     (both domains contain the member), so it needs no verification.
//
// Queries report precisely the keys whose sets overlap the query set —
// the same answer a pairwise Set.Overlaps scan gives, at posting-lookup
// cost.
//
// Index is not safe for concurrent use; callers guard it with the same
// lock that guards the table it mirrors.
type Index struct {
	names map[string]*nameIndex
	sets  map[string]Set // key -> currently indexed set
}

// nameIndex is the per-property-name posting pair.
type nameIndex struct {
	segs    *segNode                       // covering-segment treap
	members map[string]map[string]struct{} // discrete member -> keys
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{names: map[string]*nameIndex{}, sets: map[string]Set{}}
}

// Len returns the number of indexed keys.
func (x *Index) Len() int { return len(x.sets) }

// Has reports whether a key is indexed.
func (x *Index) Has(key string) bool {
	_, ok := x.sets[key]
	return ok
}

// Insert indexes a set under a key, replacing any previous set for the
// key. The index retains the set (domains are immutable; callers that
// mutate their Set in place must pass a clone).
func (x *Index) Insert(key string, s Set) {
	if _, ok := x.sets[key]; ok {
		x.Remove(key)
	}
	x.sets[key] = s
	for _, p := range s.byName {
		ni := x.names[p.Name]
		if ni == nil {
			ni = &nameIndex{members: map[string]map[string]struct{}{}}
			x.names[p.Name] = ni
		}
		if lo, hi, ok := numericFootprint(p.Domain); ok {
			ni.segs = segInsert(ni.segs, &segNode{
				lo: lo, hi: hi, key: key, dom: p.Domain, prio: segPrio(key, p.Name),
			})
		}
		if p.Domain.Kind() == KindDiscrete {
			for _, m := range p.Domain.members {
				keys := ni.members[m]
				if keys == nil {
					keys = map[string]struct{}{}
					ni.members[m] = keys
				}
				keys[key] = struct{}{}
			}
		}
	}
}

// Remove drops a key's postings (idempotent).
func (x *Index) Remove(key string) {
	s, ok := x.sets[key]
	if !ok {
		return
	}
	delete(x.sets, key)
	for _, p := range s.byName {
		ni := x.names[p.Name]
		if ni == nil {
			continue
		}
		if lo, hi, ok := numericFootprint(p.Domain); ok {
			ni.segs = segRemove(ni.segs, lo, hi, key)
		}
		if p.Domain.Kind() == KindDiscrete {
			for _, m := range p.Domain.members {
				if keys := ni.members[m]; keys != nil {
					delete(keys, key)
					if len(keys) == 0 {
						delete(ni.members, m)
					}
				}
			}
		}
		if ni.segs == nil && len(ni.members) == 0 {
			delete(x.names, p.Name)
		}
	}
}

// Update re-indexes a key under a new set (Insert replaces, so Update is
// an alias that reads as intent at call sites).
func (x *Index) Update(key string, s Set) { x.Insert(key, s) }

// Stored returns the set currently indexed under key.
func (x *Index) Stored(key string) (Set, bool) {
	s, ok := x.sets[key]
	return s, ok
}

// Overlapping calls fn once per indexed key whose set overlaps q, in
// unspecified order. fn returning false stops the enumeration. The query
// set's own key, if indexed, is reported like any other; callers exclude
// self. Empty query sets overlap nothing.
//
// The common query — one interval-domain property — runs allocation-free
// through the segment treap: each key posts at most one segment per name,
// so no dedup set is needed. Discrete query domains and multi-property
// sets can surface a key through several postings; those paths dedup
// through a visited set.
func (x *Index) Overlapping(q Set, fn func(key string) bool) {
	// A key must be reported once even when several postings surface it:
	// dedup is needed unless exactly one property contributes and its
	// postings are key-unique (the treap; member lists can repeat a key).
	sources := 0
	needSeen := false
	for _, p := range q.byName {
		if x.names[p.Name] == nil {
			continue
		}
		sources++
		if p.Domain.Kind() == KindDiscrete {
			needSeen = true
		}
	}
	if sources == 0 {
		return
	}
	var seen map[string]struct{}
	if needSeen || sources > 1 {
		seen = make(map[string]struct{})
	}
	stopped := false
	for _, p := range q.byName {
		ni := x.names[p.Name]
		if ni == nil {
			continue
		}
		dom := p.Domain
		emit := func(key string) bool {
			if seen != nil {
				if _, dup := seen[key]; dup {
					return true
				}
				seen[key] = struct{}{}
			}
			if !fn(key) {
				stopped = true
				return false
			}
			return true
		}
		if lo, hi, ok := numericFootprint(dom); ok {
			segQuery(ni.segs, lo, hi, func(n *segNode) bool {
				// The covering segments overlap; confirm the domains do
				// (exact for interval/interval, where the segment is the
				// domain; a discrete side can have gaps the segment hides).
				if !dom.Overlaps(n.dom) {
					return true
				}
				return emit(n.key)
			})
		}
		if stopped {
			return
		}
		if dom.Kind() == KindDiscrete {
			for _, m := range dom.members {
				for key := range ni.members[m] {
					// Exact: both domains contain member m.
					if !emit(key) {
						return
					}
				}
			}
		}
	}
}

// OverlapKeys is the slice-returning form of Overlapping, sorted for
// deterministic output.
func (x *Index) OverlapKeys(q Set) []string {
	var out []string
	x.Overlapping(q, func(key string) bool {
		out = append(out, key)
		return true
	})
	sort.Strings(out)
	return out
}

// numericFootprint returns the smallest interval covering a domain's
// numeric values: the bounds of an interval domain, the min/max parseable
// member of a discrete domain. ok is false when the domain has no numeric
// values (empty, or discrete with only non-numeric members).
func numericFootprint(d Domain) (lo, hi float64, ok bool) {
	switch d.kind {
	case KindInterval:
		return d.min, d.max, true
	case KindDiscrete:
		for _, m := range d.members {
			v, err := parseFloat(m)
			if err != nil {
				continue
			}
			if !ok {
				lo, hi, ok = v, v, true
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi, ok
	default:
		return 0, 0, false
	}
}
