package vclock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Current() != 0 {
		t.Fatal("fresh counter should be 0")
	}
	if c.Next() != 1 || c.Next() != 2 {
		t.Fatal("Next should count 1,2")
	}
	if c.Current() != 2 {
		t.Fatal("Current should be 2")
	}
}

func TestCounterAdvanceTo(t *testing.T) {
	var c Counter
	c.AdvanceTo(1_000_000)
	if c.Current() != 1_000_000 {
		t.Fatalf("AdvanceTo(1e6): Current = %d", c.Current())
	}
	// Monotonic: advancing backwards is a no-op.
	c.AdvanceTo(5)
	if c.Current() != 1_000_000 {
		t.Fatalf("backward AdvanceTo moved the counter to %d", c.Current())
	}
	// Next continues from the adopted position.
	if v := c.Next(); v != 1_000_001 {
		t.Fatalf("Next after AdvanceTo = %d", v)
	}
}

func TestCounterAdvanceToConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				c.AdvanceTo(Version(i * 100))
			} else {
				c.Next()
			}
		}(i)
	}
	wg.Wait()
	// 48*100 is the highest adopted position; the interleaved Nexts can
	// only have pushed past it, never below.
	if c.Current() < 4800 {
		t.Fatalf("Current = %d, want >= 4800", c.Current())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const n = 50
	seen := make([]Version, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seen[i] = c.Next()
		}(i)
	}
	wg.Wait()
	uniq := map[Version]bool{}
	for _, v := range seen {
		if uniq[v] {
			t.Fatalf("duplicate version %d", v)
		}
		uniq[v] = true
	}
	if c.Current() != n {
		t.Fatalf("Current = %d, want %d", c.Current(), n)
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector()
	if v.Tick("a") != 1 || v.Tick("a") != 2 || v.Tick("b") != 1 {
		t.Fatal("tick sequence wrong")
	}
	if v.Get("a") != 2 || v.Get("c") != 0 {
		t.Fatal("get wrong")
	}
	if v.String() != "{a:2, b:1}" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestVectorCompare(t *testing.T) {
	a := Vector{"x": 1, "y": 2}
	b := Vector{"x": 1, "y": 2}
	if a.Compare(b) != Equal {
		t.Fatal("equal vectors")
	}
	b = Vector{"x": 2, "y": 2}
	if a.Compare(b) != Before || b.Compare(a) != After {
		t.Fatal("dominance wrong")
	}
	c := Vector{"x": 0, "y": 3}
	if a.Compare(c) != Concurrent || c.Compare(a) != Concurrent {
		t.Fatal("concurrency wrong")
	}
	// Missing components count as zero.
	d := Vector{"x": 1}
	if d.Compare(a) != Before {
		t.Fatalf("missing component: %v", d.Compare(a))
	}
}

func TestVectorMergeAndDominates(t *testing.T) {
	a := Vector{"x": 1, "y": 5}
	b := Vector{"x": 3, "z": 2}
	a.Merge(b)
	want := Vector{"x": 3, "y": 5, "z": 2}
	if a.Compare(want) != Equal {
		t.Fatalf("merge = %v", a)
	}
	if !a.Dominates(b) {
		t.Fatal("merged vector must dominate operand")
	}
}

func TestVectorClone(t *testing.T) {
	a := Vector{"x": 1}
	b := a.Clone()
	b.Tick("x")
	if a.Get("x") != 1 {
		t.Fatal("clone not independent")
	}
}

func genVector(r *rand.Rand) Vector {
	v := NewVector()
	for _, id := range []string{"a", "b", "c"} {
		for i := r.Intn(4); i > 0; i-- {
			v.Tick(id)
		}
	}
	return v
}

// Merge is a join: the result dominates both operands, and merging is
// commutative and idempotent.
func TestQuickMergeIsJoin(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	f := func() bool {
		a, b := genVector(r), genVector(r)
		m1 := a.Clone()
		m1.Merge(b)
		m2 := b.Clone()
		m2.Merge(a)
		if m1.Compare(m2) != Equal {
			return false
		}
		if !m1.Dominates(a) || !m1.Dominates(b) {
			return false
		}
		m3 := m1.Clone()
		m3.Merge(m1)
		return m3.Compare(m1) == Equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Compare is antisymmetric: Before/After swap, Equal/Concurrent invariant.
func TestQuickCompareAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		a, b := genVector(r), genVector(r)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ba == Concurrent
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}
