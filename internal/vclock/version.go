package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Version is a monotonically increasing update counter. The directory
// manager stamps every committed update to the primary copy with the next
// Version; a view's data quality at any instant is the difference between
// the primary's Version and the Version the view last observed — i.e. the
// paper's "number of remote unseen updates".
type Version uint64

// Counter is a concurrency-safe Version generator.
type Counter struct {
	mu sync.Mutex
	v  Version
}

// Next increments and returns the new version.
func (c *Counter) Next() Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
	return c.v
}

// Current returns the latest issued version (0 if none).
func (c *Counter) Current() Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// AdvanceTo fast-forwards the counter to v in a single step. It is
// monotonic: a v at or below the current value is a no-op, so concurrent
// advances and Next calls can interleave safely. Snapshot restore and
// handover absorption use it to adopt another counter's position without
// issuing (and discarding) every intermediate version.
func (c *Counter) AdvanceTo(v Version) {
	c.mu.Lock()
	if v > c.v {
		c.v = v
	}
	c.mu.Unlock()
}

// Vector is a version vector mapping replica IDs to the highest update
// counter observed from that replica. Flecc's centralized protocol only
// needs scalar versions, but the decentralized extension (internal/peer,
// paper §6 future work) uses vectors for causality tracking.
type Vector map[string]uint64

// NewVector returns an empty vector.
func NewVector() Vector { return Vector{} }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// Tick increments the component for id and returns the new value.
func (v Vector) Tick(id string) uint64 {
	v[id]++
	return v[id]
}

// Get returns the component for id (0 if absent).
func (v Vector) Get(id string) uint64 { return v[id] }

// Merge folds o into v component-wise (max), the standard join.
func (v Vector) Merge(o Vector) {
	for k, n := range o {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Ordering relates two vectors.
type Ordering int8

const (
	// Equal: identical vectors.
	Equal Ordering = iota
	// Before: v happened-before o (v ≤ o, v ≠ o).
	Before
	// After: o happened-before v.
	After
	// Concurrent: neither dominates — a real conflict.
	Concurrent
)

func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// Compare returns the causal ordering between v and o.
func (v Vector) Compare(o Vector) Ordering {
	vLess, oLess := false, false
	for k, n := range v {
		if m := o[k]; n < m {
			vLess = true
		} else if n > m {
			oLess = true
		}
	}
	for k, m := range o {
		if n := v[k]; n < m {
			vLess = true
		} else if n > m {
			oLess = true
		}
	}
	switch {
	case vLess && oLess:
		return Concurrent
	case vLess:
		return Before
	case oLess:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether v ≥ o component-wise.
func (v Vector) Dominates(o Vector) bool {
	ord := v.Compare(o)
	return ord == Equal || ord == After
}

// String renders the vector deterministically, e.g. "{a:1, b:3}".
func (v Vector) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, v[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
