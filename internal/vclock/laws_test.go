package vclock

import (
	"math/rand"
	"testing"
)

// The version-vector algebra must satisfy the standard laws for causality
// tracking to be sound: Compare is a partial order (antisymmetric and
// transitive on the comparable pairs), and Merge is the component-wise
// join (commutative, associative, idempotent, and dominating both
// inputs). These tests check the laws over an exhaustive small domain and
// a seeded random sample of larger vectors.

// lawVectors enumerates every vector over the given ids with components in
// [0, max] — an exhaustive small domain.
func lawVectors(ids []string, max uint64) []Vector {
	out := []Vector{{}}
	for _, id := range ids {
		var next []Vector
		for _, v := range out {
			for n := uint64(0); n <= max; n++ {
				c := v.Clone()
				if n > 0 {
					c[id] = n
				}
				next = append(next, c)
			}
		}
		out = next
	}
	return out
}

// randomVectors draws vectors with components in [0, 8] over up to 4 ids
// from a fixed seed, mixing sparse and dense shapes.
func randomVectors(n int) []Vector {
	rng := rand.New(rand.NewSource(42))
	ids := []string{"a", "b", "c", "d"}
	out := make([]Vector, n)
	for i := range out {
		v := NewVector()
		for _, id := range ids {
			if rng.Intn(3) > 0 {
				v[id] = uint64(rng.Intn(9))
			}
		}
		out[i] = v
	}
	return out
}

func flip(o Ordering) Ordering {
	switch o {
	case Before:
		return After
	case After:
		return Before
	default:
		return o
	}
}

// TestCompareAntisymmetry: v.Compare(o) is always the mirror of
// o.Compare(v), and Equal holds exactly for value-identical vectors
// (absent components equal to explicit zeros).
func TestCompareAntisymmetry(t *testing.T) {
	vs := lawVectors([]string{"a", "b"}, 2)
	vs = append(vs, randomVectors(80)...)
	for _, v := range vs {
		for _, o := range vs {
			got, mirror := v.Compare(o), o.Compare(v)
			if got != flip(mirror) {
				t.Fatalf("Compare not antisymmetric: %s vs %s = %s, mirror %s", v, o, got, mirror)
			}
			same := true
			for _, id := range []string{"a", "b", "c", "d"} {
				if v.Get(id) != o.Get(id) {
					same = false
					break
				}
			}
			if (got == Equal) != same {
				t.Fatalf("Compare(%s, %s) = %s but value-equality is %t", v, o, got, same)
			}
		}
	}
}

// TestCompareTransitivity: Before is transitive (and with it After, by
// antisymmetry), including through Equal links.
func TestCompareTransitivity(t *testing.T) {
	vs := lawVectors([]string{"a", "b"}, 2)
	for _, x := range vs {
		for _, y := range vs {
			xy := x.Compare(y)
			if xy != Before && xy != Equal {
				continue
			}
			for _, z := range vs {
				yz := y.Compare(z)
				if yz != Before && yz != Equal {
					continue
				}
				xz := x.Compare(z)
				want := Before
				if xy == Equal && yz == Equal {
					want = Equal
				}
				if xz != want {
					t.Fatalf("transitivity broken: %s ≤ %s ≤ %s but Compare(x,z) = %s", x, y, z, xz)
				}
			}
		}
	}
}

// TestMergeLaws: Merge is commutative, associative, idempotent, and its
// result dominates both inputs (least upper bound behavior).
func TestMergeLaws(t *testing.T) {
	vs := lawVectors([]string{"a", "b"}, 2)
	vs = append(vs, randomVectors(40)...)
	merge := func(a, b Vector) Vector {
		m := a.Clone()
		m.Merge(b)
		return m
	}
	for _, a := range vs {
		if got := merge(a, a); got.Compare(a) != Equal {
			t.Fatalf("Merge not idempotent: %s ∨ %s = %s", a, a, got)
		}
		for _, b := range vs {
			ab, ba := merge(a, b), merge(b, a)
			if ab.Compare(ba) != Equal {
				t.Fatalf("Merge not commutative: %s ∨ %s = %s but %s ∨ %s = %s", a, b, ab, b, a, ba)
			}
			if !ab.Dominates(a) || !ab.Dominates(b) {
				t.Fatalf("Merge result %s does not dominate both inputs %s, %s", ab, a, b)
			}
			for _, c := range vs[:min(len(vs), 12)] {
				left := merge(merge(a, b), c)
				right := merge(a, merge(b, c))
				if left.Compare(right) != Equal {
					t.Fatalf("Merge not associative: (%s ∨ %s) ∨ %s = %s ≠ %s", a, b, c, left, right)
				}
			}
		}
	}
}

// TestTickOrders: ticking any component strictly advances the vector in
// causal order, and merging the ticked vector back is absorbing.
func TestTickOrders(t *testing.T) {
	for _, v := range randomVectors(50) {
		before := v.Clone()
		v.Tick("a")
		if before.Compare(v) != Before {
			t.Fatalf("Tick did not advance: %s then %s = %s", before, v, before.Compare(v))
		}
		m := before.Clone()
		m.Merge(v)
		if m.Compare(v) != Equal {
			t.Fatalf("merging a ticked successor should absorb: %s ∨ %s = %s", before, v, m)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
