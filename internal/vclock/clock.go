// Package vclock provides Flecc's discrete representation of time T
// (paper §4.1), plus the version bookkeeping the protocol uses to measure
// data quality ("number of remote unseen updates").
//
// Two clock implementations exist: Real (wall time in milliseconds, for the
// TCP daemon) and Sim (a manually advanced virtual clock with an embedded
// deterministic event scheduler, used by all experiments so that figures
// are exactly reproducible).
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Time is a discrete timestamp in virtual milliseconds.
type Time int64

// String renders the time as "1500ms".
func (t Time) String() string { return fmt.Sprintf("%dms", int64(t)) }

// Duration is a span of virtual milliseconds.
type Duration = Time

// Clock supplies the current discrete time.
type Clock interface {
	// Now returns the current time.
	Now() Time
}

// Real is a Clock backed by wall time, in milliseconds since construction.
type Real struct {
	start time.Time
}

// NewReal returns a wall-clock whose epoch is "now".
func NewReal() *Real { return &Real{start: time.Now()} }

// Now implements Clock.
func (r *Real) Now() Time { return Time(time.Since(r.start) / time.Millisecond) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events, for determinism
	fn   func()
	heap int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap, h[j].heap = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.heap = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a deterministic simulated clock with an event queue. Events
// scheduled for the same instant fire in scheduling order. Sim is safe for
// concurrent use, but the experiments drive it single-threaded for
// reproducibility.
type Sim struct {
	mu     sync.Mutex
	now    Time
	seq    uint64
	events eventHeap
}

// NewSim returns a simulated clock starting at time 0.
func NewSim() *Sim { return &Sim{} }

// Now implements Clock.
func (s *Sim) Now() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn to run when the clock reaches t. Scheduling in the past
// (t < Now) runs the event at the current time on the next step. It returns
// a cancel function; cancelling an already-fired event is a no-op.
func (s *Sim) At(t Time, fn func()) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if e.fn == nil {
			return
		}
		e.fn = nil // mark cancelled; leave in heap, skipped on pop
	}
}

// After schedules fn to run d milliseconds from now.
func (s *Sim) After(d Duration, fn func()) (cancel func()) {
	s.mu.Lock()
	at := s.now + d
	s.mu.Unlock()
	return s.At(at, fn)
}

// Step fires the earliest pending event (advancing the clock to its time)
// and reports whether an event was fired.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		if len(s.events) == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.events).(*event)
		if e.at > s.now {
			s.now = e.at
		}
		fn := e.fn
		s.mu.Unlock()
		if fn == nil {
			continue // cancelled
		}
		fn()
		return true
	}
}

// RunUntil fires events in order until the next event would be after t (or
// the queue empties), then advances the clock to exactly t. It returns the
// number of events fired.
func (s *Sim) RunUntil(t Time) int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].at > t {
			if s.now < t {
				s.now = t
			}
			s.mu.Unlock()
			return fired
		}
		s.mu.Unlock()
		if s.Step() {
			fired++
		}
	}
}

// Drain fires all pending events in order and returns how many fired.
// Events may schedule further events; Drain keeps going until the queue is
// empty. maxEvents guards against runaway self-rescheduling loops: Drain
// panics if it fires more than maxEvents events (0 means no limit).
func (s *Sim) Drain(maxEvents int) int {
	fired := 0
	for s.Step() {
		fired++
		if maxEvents > 0 && fired > maxEvents {
			panic("vclock: Drain exceeded maxEvents; runaway event loop?")
		}
	}
	return fired
}

// Pending returns the number of events in the queue (including cancelled
// placeholders not yet popped).
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Advance moves the clock forward by d without firing events scheduled in
// the skipped window; it is meant for tests that need a bare time bump.
// Most callers want RunUntil instead.
func (s *Sim) Advance(d Duration) {
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
}
