package vclock

import (
	"testing"
	"time"
)

func TestSimStartsAtZero(t *testing.T) {
	s := NewSim()
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
}

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	n := s.Drain(0)
	if n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimStepAdvancesClock(t *testing.T) {
	s := NewSim()
	s.At(100, func() {})
	if !s.Step() {
		t.Fatal("Step should fire")
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
	if s.Step() {
		t.Fatal("no more events")
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	fired := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired[at] = true })
	}
	n := s.RunUntil(25)
	if n != 2 || !fired[10] || !fired[20] || fired[30] {
		t.Fatalf("RunUntil(25): n=%d fired=%v", n, fired)
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
	// An event exactly at the boundary fires.
	n = s.RunUntil(30)
	if n != 1 || !fired[30] {
		t.Fatalf("boundary event: n=%d fired=%v", n, fired)
	}
}

func TestSimCancel(t *testing.T) {
	s := NewSim()
	fired := false
	cancel := s.At(10, func() { fired = true })
	cancel()
	cancel() // double-cancel is a no-op
	s.Drain(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSimAfter(t *testing.T) {
	s := NewSim()
	s.RunUntil(100)
	var at Time
	s.After(50, func() { at = s.Now() })
	s.Drain(0)
	if at != 150 {
		t.Fatalf("After(50) fired at %v, want 150", at)
	}
}

func TestSimPastSchedulingClamped(t *testing.T) {
	s := NewSim()
	s.RunUntil(100)
	var at Time
	s.At(10, func() { at = s.Now() })
	s.Drain(0)
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", at)
	}
}

func TestSimEventsScheduleEvents(t *testing.T) {
	s := NewSim()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 5 {
			s.After(10, recur)
		}
	}
	s.After(10, recur)
	s.Drain(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if s.Now() != 50 {
		t.Fatalf("Now = %v, want 50", s.Now())
	}
}

func TestSimDrainGuard(t *testing.T) {
	s := NewSim()
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain should panic on runaway loop")
		}
	}()
	s.Drain(100)
}

func TestSimAdvance(t *testing.T) {
	s := NewSim()
	s.Advance(42)
	if s.Now() != 42 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRealClockMonotonic(t *testing.T) {
	r := NewReal()
	a := r.Now()
	time.Sleep(2 * time.Millisecond)
	b := r.Now()
	if b < a {
		t.Fatalf("real clock went backwards: %v -> %v", a, b)
	}
}

func TestTimeString(t *testing.T) {
	if Time(1500).String() != "1500ms" {
		t.Fatalf("got %q", Time(1500).String())
	}
}
