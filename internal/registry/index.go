package registry

import (
	"sort"

	"flecc/internal/property"
)

// This file is the registry's indexed conflict engine: the dynamic
// property-posting index (property.Index) combined with the static
// conflict matrix as a short-circuit overlay. All functions here run
// under r.mu (read or write as noted) — one coherent snapshot per query,
// never the lock-per-candidate churn of the old pairwise scan.
//
// Index invariant: r.idx contains exactly the registered views that are
// not lost, keyed by view name, each under its current property set.
// Register/SetProps/Unregister/SetLost maintain it incrementally; lost
// views leave the index (they never appear in a conflict set) and
// re-enter with their retained property set when found again.
//
// Query plan for ConflictingWith(v):
//
//  1. defaultRel == Dynamic (the default): union the candidate postings
//     for v's property names from the index (each candidate verified with
//     the exact Set.Overlaps — no false positives), drop candidates whose
//     static entry overrides to Conflict or NoConflict, then add every
//     static-Conflict partner from the per-view adjacency. O(log n +
//     matches + deg_static(v)).
//  2. defaultRel == NoConflict: pairs without a static entry never
//     conflict, so the dynamic index is not consulted at all — only v's
//     static adjacency (Conflict partners, plus Dynamic partners checked
//     pairwise). O(deg_static(v)).
//  3. defaultRel == Conflict (the worst-case "everyone conflicts"
//     baseline): the answer is inherently O(n) — every registered view
//     minus static-NoConflict and failing static-Dynamic pairs.
//
// Lost views are filtered structurally (they are not in the index); the
// active filter is applied per candidate, since activeOnly is a per-query
// flag.

// indexInsertLocked adds a view's postings. Caller holds r.mu (write).
func (r *Registry) indexInsertLocked(v *ViewInfo) {
	if r.noIndex || v.Lost {
		return
	}
	r.idx.Insert(v.Name, v.Props)
}

// indexRemoveLocked drops a view's postings. Caller holds r.mu (write).
func (r *Registry) indexRemoveLocked(name string) {
	if r.noIndex {
		return
	}
	r.idx.Remove(name)
}

// disableIndex switches the registry to the retained brute-force
// reference implementation (a single-snapshot pairwise scan). Unexported:
// it exists for the equivalence tests and benchmarks in this package and
// for RegisterBruteForce-style harness hooks, not for production callers.
func (r *Registry) disableIndex() {
	r.mu.Lock()
	r.noIndex = true
	r.idx = nil
	r.mu.Unlock()
}

// cachedStructuralLocked returns the view's sorted structural conflict
// set (activeOnly=false), from the epoch-keyed cache when it is still
// valid and recomputing it otherwise. Caller holds r.mu (read), which
// pins r.epoch for the duration; the cache itself is guarded by r.cmu so
// a read-locked query can publish its result. Per-query active filtering
// happens in ConflictingWith — activity flips do not bump the epoch, so
// the structural set survives them.
func (r *Registry) cachedStructuralLocked(name string) []string {
	r.cmu.Lock()
	if c, ok := r.confCache[name]; ok && c.epoch == r.epoch {
		r.cmu.Unlock()
		return c.names
	}
	r.cmu.Unlock()
	names := r.conflictingWithLocked(name, false)
	r.cmu.Lock()
	r.confCache[name] = &cachedConflicts{epoch: r.epoch, names: names}
	r.cmu.Unlock()
	return names
}

// staticRelationLocked resolves the static matrix for a pair in one map
// read: entries are stored under the canonical (min,max) key only, so
// both directions land on the same cell. Caller holds r.mu (read).
func (r *Registry) staticRelationLocked(a, b string) Relation {
	if a == b {
		return Conflict
	}
	if b < a {
		a, b = b, a
	}
	if rel, ok := r.static[[2]string{a, b}]; ok {
		return rel
	}
	return r.defaultRel
}

// conflictsLocked is Conflicts under one coherent snapshot. Caller holds
// r.mu (read).
func (r *Registry) conflictsLocked(a, b string) bool {
	va, okA := r.views[a]
	vb, okB := r.views[b]
	switch r.staticRelationLocked(a, b) {
	case Conflict:
		return okA && okB
	case NoConflict:
		return false
	default:
		return okA && okB && va.Props.Overlaps(vb.Props)
	}
}

// admissible reports whether a candidate may appear in a conflict set:
// registered, not the querying view, not a lost tombstone, and active
// when the query demands it.
func admissible(v *ViewInfo, self string, activeOnly bool) bool {
	return v != nil && v.Name != self && !v.Lost && (!activeOnly || v.Active)
}

// conflictingWithLocked computes ConflictingWith under one coherent
// snapshot. Caller holds r.mu (read).
func (r *Registry) conflictingWithLocked(name string, activeOnly bool) []string {
	self, ok := r.views[name]
	if !ok {
		return nil
	}
	if r.noIndex || r.defaultRel == Conflict {
		// Brute-force reference, and the only possible plan when every
		// unlisted pair conflicts by default.
		return r.bruteConflictingWithLocked(self, activeOnly)
	}

	// The two sources below are disjoint — the index path keeps only
	// pairs whose static relation is Dynamic, the adjacency path only
	// non-Dynamic ones — so a plain slice collects without dedup.
	var out []string
	if r.defaultRel == Dynamic {
		// Dynamic candidates from the posting index, minus static
		// overrides (Conflict partners are re-added below so the static
		// matrix — not the property overlap — decides them).
		noStatic := len(r.static) == 0
		r.idx.Overlapping(self.Props, func(n string) bool {
			if !admissible(r.views[n], name, activeOnly) {
				return true
			}
			if noStatic || r.staticRelationLocked(name, n) == Dynamic {
				out = append(out, n)
			}
			return true
		})
	}
	// Static overlay via the per-view adjacency: Conflict partners join
	// unconditionally; under a NoConflict default, Dynamic partners are
	// the only pairs that still need a property check.
	for n, rel := range r.staticBy[name] {
		v := r.views[n]
		if !admissible(v, name, activeOnly) {
			continue
		}
		switch rel {
		case Conflict:
			out = append(out, n)
		case Dynamic:
			if r.defaultRel == NoConflict && self.Props.Overlaps(v.Props) {
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// bruteConflictingWithLocked is the retained reference implementation: a
// pairwise scan over the whole view table under the same single snapshot.
// The equivalence tests pit it against the indexed plan; it also serves
// the defaultRel == Conflict mode, where the answer is inherently O(n).
func (r *Registry) bruteConflictingWithLocked(self *ViewInfo, activeOnly bool) []string {
	var out []string
	for n, v := range r.views {
		if !admissible(v, self.Name, activeOnly) {
			continue
		}
		if r.conflictsLocked(self.Name, n) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// othersLocked lists every registered view except self, optionally
// filtered to active ones — the GatherAll ("everyone conflicts") set.
// Caller holds r.mu (read).
func (r *Registry) othersLocked(self string, activeOnly bool) []string {
	var out []string
	for n, v := range r.views {
		if n == self {
			continue
		}
		if activeOnly && !v.Active {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sharedInterestLocked computes SharedInterest under one snapshot.
// Caller holds r.mu (read).
func (r *Registry) sharedInterestLocked(a, b string) property.Set {
	va, okA := r.views[a]
	vb, okB := r.views[b]
	if !okA || !okB {
		return property.NewSet()
	}
	return va.Props.Intersect(vb.Props)
}
