package registry

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"flecc/internal/property"
)

// The equivalence suite drives an indexed registry and a brute-force
// reference registry (disableIndex: the retained pairwise scan) through
// identical random operation sequences and demands identical answers from
// every query — the index must be an invisible optimization.

func randDomain(rng *rand.Rand) property.Domain {
	switch rng.Intn(6) {
	case 0:
		lo := rng.Float64() * 100
		return property.Interval(lo, lo+rng.Float64()*15)
	case 1:
		return property.Point(float64(rng.Intn(50)))
	case 2:
		lo := rng.Intn(80)
		return property.DiscreteRange(lo, lo+rng.Intn(8))
	case 3:
		var ms []string
		for i := 0; i < 1+rng.Intn(4); i++ {
			ms = append(ms, fmt.Sprint(rng.Intn(100)))
		}
		return property.Discrete(ms...)
	case 4:
		// Non-numeric members mixed with numeric ones.
		ms := []string{string(rune('p' + rng.Intn(4)))}
		if rng.Intn(2) == 0 {
			ms = append(ms, fmt.Sprint(rng.Intn(100)))
		}
		return property.Discrete(ms...)
	default:
		return property.Empty()
	}
}

func randPropSet(rng *rand.Rand) property.Set {
	s := property.NewSet()
	for _, n := range []string{"F", "S", "T"} {
		if rng.Intn(2) == 0 {
			s.Put(property.New(n, randDomain(rng)))
		}
	}
	return s
}

func applyBoth(a, b *Registry, op func(r *Registry)) {
	op(a)
	op(b)
}

func TestIndexEquivalenceRandomOps(t *testing.T) {
	names := make([]string, 14)
	for i := range names {
		names[i] = fmt.Sprintf("v%02d", i)
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		indexed, brute := New(), New()
		brute.disableIndex()
		// Exercise every defaultRel regime.
		rel := []Relation{Dynamic, NoConflict, Conflict}[seed%3]
		applyBoth(indexed, brute, func(r *Registry) { r.SetDefaultRelation(rel) })
		// A sprinkle of static entries, set up front and mid-sequence.
		static := func() {
			a, b := names[rng.Intn(len(names))], names[rng.Intn(len(names))]
			sr := []Relation{Conflict, NoConflict, Dynamic}[rng.Intn(3)]
			applyBoth(indexed, brute, func(r *Registry) { r.SetStatic(a, b, sr) })
		}
		for i := 0; i < 4; i++ {
			static()
		}
		for step := 0; step < 400; step++ {
			n := names[rng.Intn(len(names))]
			switch rng.Intn(8) {
			case 0, 1:
				ps := randPropSet(rng)
				applyBoth(indexed, brute, func(r *Registry) { r.Register(n, ps) })
			case 2:
				ps := randPropSet(rng)
				applyBoth(indexed, brute, func(r *Registry) { r.SetProps(n, ps) })
			case 3:
				applyBoth(indexed, brute, func(r *Registry) { r.Unregister(n) })
			case 4:
				lost := rng.Intn(2) == 0
				applyBoth(indexed, brute, func(r *Registry) { r.SetLost(n, lost) })
			case 5:
				active := rng.Intn(2) == 0
				applyBoth(indexed, brute, func(r *Registry) { r.SetActive(n, active) })
			case 6:
				static()
			default:
				// no structural change this step; just query below
			}
			q := names[rng.Intn(len(names))]
			for _, activeOnly := range []bool{false, true} {
				got := indexed.ConflictingWith(q, activeOnly)
				want := brute.ConflictingWith(q, activeOnly)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d step %d: ConflictingWith(%s, active=%v)\n got %v\nwant %v\nprops=%v",
						seed, step, q, activeOnly, got, want, propsOf(indexed))
				}
			}
			o := names[rng.Intn(len(names))]
			if gi, gb := indexed.Conflicts(q, o), brute.Conflicts(q, o); gi != gb {
				t.Fatalf("seed %d step %d: Conflicts(%s,%s) indexed=%v brute=%v", seed, step, q, o, gi, gb)
			}
			if gi, gb := indexed.SharedInterest(q, o), brute.SharedInterest(q, o); !gi.Equal(gb) {
				t.Fatalf("seed %d step %d: SharedInterest(%s,%s) indexed=%v brute=%v", seed, step, q, o, gi, gb)
			}
		}
	}
}

func propsOf(r *Registry) map[string]string {
	out := map[string]string{}
	for _, n := range r.Views() {
		ps, _ := r.Props(n)
		out[n] = ps.String()
	}
	return out
}

// TestConflictingWithSetPropsRace hammers SetProps against ConflictingWith
// under the race detector and asserts every query observes one coherent
// snapshot: the writer atomically flips one view between two property
// sets — one overlapping the querier, one disjoint — so a torn scan could
// only manifest as an impossible result (the view present in the result
// while its other properties say disjoint is fine; what must never happen
// is a crash or a race report, and with a two-property flip, a half-old
// half-new set would make the result disagree with both valid answers).
func TestConflictingWithSetPropsRace(t *testing.T) {
	r := New()
	if err := r.Register("q", property.MustSet("F={1..5}; S=[0,10]")); err != nil {
		t.Fatal(err)
	}
	// Both properties overlap q, or neither does: any coherent snapshot
	// yields exactly [] or [w].
	overlap := property.MustSet("F={3}; S=[5,6]")
	disjoint := property.MustSet("F={50}; S=[90,95]")
	if err := r.Register("w", overlap); err != nil {
		t.Fatal(err)
	}
	// Background noise: register/unregister churn on other names.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.SetProps("w", disjoint)
			} else {
				r.SetProps("w", overlap)
			}
			n := fmt.Sprintf("churn%d", i%4)
			if i%3 == 0 {
				r.Register(n, overlap)
			} else {
				r.Unregister(n)
			}
			r.SetLost("w", i%7 == 0)
			r.SetLost("w", false)
			r.SetActive("w", true)
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				got := r.ConflictingWith("q", false)
				for _, n := range got {
					if n == "q" {
						t.Error("query view leaked into its own conflict set")
						return
					}
				}
				r.Conflicts("q", "w")
				r.SharedInterest("q", "w")
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
