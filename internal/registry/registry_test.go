package registry

import (
	"reflect"
	"sync"
	"testing"

	"flecc/internal/property"
)

func TestRegisterUnregister(t *testing.T) {
	r := New()
	if err := r.Register("v1", property.MustSet("A={1}")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("v1", property.NewSet()); err == nil {
		t.Fatal("duplicate register should fail")
	}
	if !r.Has("v1") || r.Len() != 1 {
		t.Fatal("v1 should be registered")
	}
	r.Unregister("v1")
	r.Unregister("v1") // idempotent
	if r.Has("v1") {
		t.Fatal("v1 should be gone")
	}
}

func TestStaticMatrixSymmetric(t *testing.T) {
	r := New()
	r.SetStatic("a", "b", Conflict)
	if r.StaticRelation("a", "b") != Conflict || r.StaticRelation("b", "a") != Conflict {
		t.Fatal("static matrix must be symmetric")
	}
	if r.StaticRelation("a", "a") != Conflict {
		t.Fatal("diagonal must be Conflict")
	}
	if r.StaticRelation("a", "zz") != Dynamic {
		t.Fatal("default must be Dynamic")
	}
}

func TestConflictsStaticOne(t *testing.T) {
	r := New()
	// Static 1 but disjoint properties: static wins.
	r.Register("a", property.MustSet("P={1}"))
	r.Register("b", property.MustSet("P={2}"))
	r.SetStatic("a", "b", Conflict)
	if !r.Conflicts("a", "b") {
		t.Fatal("static 1 should force conflict")
	}
}

func TestConflictsStaticZero(t *testing.T) {
	r := New()
	// Static 0 but overlapping properties: static wins.
	r.Register("a", property.MustSet("P={1}"))
	r.Register("b", property.MustSet("P={1}"))
	r.SetStatic("a", "b", NoConflict)
	if r.Conflicts("a", "b") {
		t.Fatal("static 0 should suppress conflict")
	}
}

func TestConflictsDynamic(t *testing.T) {
	r := New()
	r.Register("a", property.MustSet("Flights={100..104}"))
	r.Register("b", property.MustSet("Flights={104..108}"))
	r.Register("c", property.MustSet("Flights={200..204}"))
	if !r.Conflicts("a", "b") {
		t.Fatal("overlapping flights should conflict")
	}
	if r.Conflicts("a", "c") {
		t.Fatal("disjoint flights should not conflict")
	}
	// Property update changes the answer at run time.
	if err := r.SetProps("c", property.MustSet("Flights={104}")); err != nil {
		t.Fatal(err)
	}
	if !r.Conflicts("a", "c") {
		t.Fatal("after SetProps, a and c should conflict")
	}
}

func TestConflictsUnregistered(t *testing.T) {
	r := New()
	r.Register("a", property.MustSet("P={1}"))
	if r.Conflicts("a", "ghost") || r.Conflicts("ghost", "a") {
		t.Fatal("unregistered views never conflict")
	}
	r.SetStatic("a", "ghost", Conflict)
	if r.Conflicts("a", "ghost") {
		t.Fatal("static conflict with unregistered view must not fire")
	}
}

func TestSetPropsUnregistered(t *testing.T) {
	r := New()
	if err := r.SetProps("nope", property.NewSet()); err == nil {
		t.Fatal("SetProps on unknown view should fail")
	}
}

func TestPropsClonedBothWays(t *testing.T) {
	r := New()
	in := property.MustSet("P={1}")
	r.Register("a", in)
	in.Put(property.New("Q", property.DiscreteInts(9)))
	got, ok := r.Props("a")
	if !ok || got.Len() != 1 {
		t.Fatal("registry should have cloned the input set")
	}
	got.Put(property.New("R", property.DiscreteInts(3)))
	again, _ := r.Props("a")
	if again.Len() != 1 {
		t.Fatal("Props should return a clone")
	}
	if _, ok := r.Props("ghost"); ok {
		t.Fatal("Props of unknown view should report !ok")
	}
}

func TestActiveTracking(t *testing.T) {
	r := New()
	r.Register("a", property.NewSet())
	if r.Active("a") {
		t.Fatal("fresh view should be inactive")
	}
	r.SetActive("a", true)
	if !r.Active("a") {
		t.Fatal("should be active")
	}
	r.SetActive("ghost", true) // no-op
	if r.Active("ghost") {
		t.Fatal("ghost should not be active")
	}
}

func TestConflictingWith(t *testing.T) {
	r := New()
	r.Register("me", property.MustSet("F={1..5}"))
	r.Register("overlap1", property.MustSet("F={5..9}"))
	r.Register("overlap2", property.MustSet("F={1}"))
	r.Register("disjoint", property.MustSet("F={100}"))
	r.SetActive("overlap1", true)

	all := r.ConflictingWith("me", false)
	if !reflect.DeepEqual(all, []string{"overlap1", "overlap2"}) {
		t.Fatalf("all conflicts = %v", all)
	}
	active := r.ConflictingWith("me", true)
	if !reflect.DeepEqual(active, []string{"overlap1"}) {
		t.Fatalf("active conflicts = %v", active)
	}
}

func TestDefaultRelationWorstCase(t *testing.T) {
	r := New()
	r.SetDefaultRelation(Conflict)
	r.Register("a", property.MustSet("F={1}"))
	r.Register("b", property.MustSet("F={99}"))
	if !r.Conflicts("a", "b") {
		t.Fatal("worst-case default should make everyone conflict")
	}
}

func TestSharedInterest(t *testing.T) {
	r := New()
	r.Register("a", property.MustSet("F={1..5}; S=[0,10]"))
	r.Register("b", property.MustSet("F={4..8}"))
	got := r.SharedInterest("a", "b")
	p, ok := got.Get("F")
	if !ok || !p.Domain.Equal(property.DiscreteInts(4, 5)) {
		t.Fatalf("shared interest = %v", got)
	}
	if !r.SharedInterest("a", "ghost").IsEmpty() {
		t.Fatal("interest with unknown view should be empty")
	}
}

func TestViewsSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"c", "a", "b"} {
		r.Register(n, property.NewSet())
	}
	if got := r.Views(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("views = %v", got)
	}
}

func TestRelationString(t *testing.T) {
	for rel, want := range map[Relation]string{
		NoConflict: "no-conflict", Conflict: "conflict", Dynamic: "dynamic",
	} {
		if rel.String() != want {
			t.Fatalf("%d.String() = %q", rel, rel.String())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			r.Register(name, property.MustSet("F={1..3}"))
			for j := 0; j < 50; j++ {
				r.Conflicts(name, "a")
				r.ConflictingWith(name, false)
				r.SetActive(name, j%2 == 0)
			}
		}(i)
	}
	wg.Wait()
}
