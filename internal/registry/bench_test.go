package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flecc/internal/property"
)

func nowNano() int64 { return time.Now().UnixNano() }

// The conflict-engine benchmarks (E16): ConflictingWith served by the
// posting index vs the retained brute-force pairwise scan, at 1k/10k/100k
// registered views. The uniform workload places each view on a narrow
// interval drawn uniformly from the property space, tuned so a query
// matches ~1% of the table; the skewed workload gives a slice of the
// views one shared hot property. `fleccbench -exp conflict -json` runs
// the same shapes into BENCH_conflict.json.

// uniformProps returns view i's property set for the uniform workload:
// one interval of width 0.5 on a [0,100] space — pairwise overlap
// probability ≈ 1%.
func uniformProps(rng *rand.Rand) property.Set {
	lo := rng.Float64() * 100
	return property.NewSet(property.New("K", property.Interval(lo, lo+0.5)))
}

// skewProps gives every 20th view a shared hot interval (all of them
// mutually conflicting) and the rest disjoint cold points.
func skewProps(rng *rand.Rand, i int) property.Set {
	if i%20 == 0 {
		return property.NewSet(property.New("H", property.Interval(0, 1)))
	}
	return property.NewSet(property.New("K", property.Point(float64(i))))
}

func fillRegistry(b *testing.B, r *Registry, n int, skewed bool) []string {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("view-%06d", i)
		var ps property.Set
		if skewed {
			ps = skewProps(rng, i)
		} else {
			ps = uniformProps(rng)
		}
		if err := r.Register(names[i], ps); err != nil {
			b.Fatal(err)
		}
		r.SetActive(names[i], true)
	}
	return names
}

func BenchmarkConflictQuery(b *testing.B) {
	for _, tc := range []struct {
		label  string
		skewed bool
	}{{"uniform", false}, {"skew", true}} {
		for _, n := range []int{1000, 10000, 100000} {
			for _, mode := range []string{"indexed", "brute"} {
				b.Run(fmt.Sprintf("%s/n%d/%s", tc.label, n, mode), func(b *testing.B) {
					r := New()
					if mode == "brute" {
						r.disableIndex()
					}
					names := fillRegistry(b, r, n, tc.skewed)
					b.ReportAllocs()
					b.ResetTimer()
					matches := 0
					for i := 0; i < b.N; i++ {
						matches += len(r.ConflictingWith(names[i%len(names)], true))
					}
					b.StopTimer()
					b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
				})
			}
		}
	}
}

func BenchmarkRegister(b *testing.B) {
	for _, mode := range []string{"indexed", "brute"} {
		b.Run(mode, func(b *testing.B) {
			r := New()
			if mode == "brute" {
				r.disableIndex()
			}
			rng := rand.New(rand.NewSource(42))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.Register(fmt.Sprintf("view-%09d", i), uniformProps(rng)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSpeedupAtTenK is the acceptance pin behind the benchmark: at 10k
// uniformly distributed views (~1% match rate) the indexed query must
// beat the brute-force scan by at least 20x. Run with a generous margin
// check so CI noise does not flake it; the committed BENCH_conflict.json
// rows carry the measured numbers.
func TestSpeedupAtTenK(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	const n = 10000
	indexed, brute := New(), New()
	brute.disableIndex()
	names := fillRegistryT(t, indexed, n)
	fillRegistryT(t, brute, n)

	q := func(r *Registry, iters int) float64 {
		t0 := nowNano()
		for i := 0; i < iters; i++ {
			r.ConflictingWith(names[i%len(names)], true)
		}
		return float64(nowNano()-t0) / float64(iters)
	}
	// Warm both paths, then measure.
	q(indexed, 50)
	q(brute, 5)
	ni := q(indexed, 2000)
	nb := q(brute, 50)
	speedup := nb / ni
	t.Logf("10k views uniform: indexed %.0f ns/op, brute %.0f ns/op, speedup %.1fx", ni, nb, speedup)
	if speedup < 20 {
		t.Fatalf("indexed ConflictingWith only %.1fx faster than brute force at 10k views (need >= 20x)", speedup)
	}
}

func fillRegistryT(t *testing.T, r *Registry, n int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("view-%06d", i)
		if err := r.Register(names[i], uniformProps(rng)); err != nil {
			t.Fatal(err)
		}
		r.SetActive(names[i], true)
	}
	return names
}
