// Package registry implements Flecc's view-sharing bookkeeping: the static
// conflict map and the dynamic property-based conflict computation
// (paper §4.1, "Data properties").
//
// The static map is a symmetric matrix over views. Entry values:
//
//	 1  the two views statically share data;
//	 0  the two views statically never share data;
//	-1  the relationship is dynamic — consult dynConfl over the views'
//	    current property sets.
//
// The matrix is created once when Flecc initializes; views registered
// later default to -1 (dynamic) against everyone, which is always safe.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"flecc/internal/property"
)

// Relation is a static-matrix cell value.
type Relation int8

const (
	// NoConflict (0): the views never share data.
	NoConflict Relation = 0
	// Conflict (1): the views statically share data.
	Conflict Relation = 1
	// Dynamic (-1): decide at run time from property sets.
	Dynamic Relation = -1
)

func (r Relation) String() string {
	switch r {
	case NoConflict:
		return "no-conflict"
	case Conflict:
		return "conflict"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Relation(%d)", int8(r))
	}
}

// ViewInfo is what the registry tracks per registered view.
type ViewInfo struct {
	// Name is the view's unique identifier.
	Name string
	// Props is the view's current dynamic property set.
	Props property.Set
	// Active reports whether the view currently works on the shared data
	// (between startUse and endUse in strong mode; from init to kill in
	// weak mode).
	Active bool
	// Lost marks a view the directory manager evicted after its cache
	// manager became unreachable. A lost view is a tombstone: it keeps its
	// registration (so an idempotent re-register can resume with the same
	// seen/mode) but is excluded from conflict sets until it reappears.
	Lost bool
}

// Registry tracks registered views, their property sets, and the static
// conflict matrix. It is safe for concurrent use.
//
// Conflict queries are served by an incrementally maintained posting
// index over the views' property sets (see index.go): ConflictingWith is
// O(log n + matches) instead of a pairwise O(n) scan, with the static
// matrix applied as a short-circuit overlay so static pairs never touch
// the dynamic index.
type Registry struct {
	mu    sync.RWMutex
	views map[string]*ViewInfo
	// static holds the matrix under canonical (min,max) pair keys only,
	// so either direction resolves in one map read.
	static map[[2]string]Relation
	// staticBy is the per-view adjacency of the static matrix — the
	// overlay ConflictingWith walks instead of scanning all pairs.
	staticBy map[string]map[string]Relation
	// defaultRel applies to pairs without a static entry.
	defaultRel Relation
	// idx is the dynamic conflict index over non-lost registered views.
	// nil when noIndex is set (brute-force reference mode, tests only).
	idx     *property.Index
	noIndex bool
	// epoch counts structural mutations: anything that can change a
	// conflict set (register, unregister, property changes, lost
	// transitions, static-matrix and default-relation edits). Activity
	// flips do NOT bump it — they are per-query filters, not structure.
	// Cached conflict sets and the directory's lane map are keyed by it:
	// an unchanged epoch proves a cached answer is still exact.
	epoch uint64
	// cmu guards confCache independently of r.mu so a read-locked query
	// can still fill the cache.
	cmu sync.Mutex
	// confCache holds per view the sorted structural conflict set
	// (activeOnly=false) computed at a given epoch (see index.go).
	confCache map[string]*cachedConflicts
}

// cachedConflicts is one memoized structural conflict set.
type cachedConflicts struct {
	epoch uint64
	names []string
}

// New returns an empty registry whose unspecified pairs are Dynamic —
// the safe default for views that may change their properties at run time.
func New() *Registry {
	return &Registry{
		views:      map[string]*ViewInfo{},
		static:     map[[2]string]Relation{},
		staticBy:   map[string]map[string]Relation{},
		defaultRel: Dynamic,
		idx:        property.NewIndex(),
		confCache:  map[string]*cachedConflicts{},
	}
}

// Epoch returns the structural-mutation epoch. Callers that cache
// anything derived from conflict sets (the directory's lane map, the
// per-view conflict-set cache) revalidate against it.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// SetDefaultRelation changes the relation assumed for pairs with no static
// entry. Setting it to Conflict reproduces the worst-case
// application-oblivious behaviour ("all views conflict and the updates
// should be sent to all views").
func (r *Registry) SetDefaultRelation(rel Relation) {
	r.mu.Lock()
	r.defaultRel = rel
	r.epoch++
	r.mu.Unlock()
}

// SetStatic records a symmetric static-matrix entry for a view pair. The
// entry is stored once under the canonical pair key and mirrored into the
// per-view adjacency that ConflictingWith overlays on the dynamic index.
func (r *Registry) SetStatic(a, b string, rel Relation) {
	if a == b {
		return // the diagonal is fixed at Conflict
	}
	r.mu.Lock()
	ca, cb := a, b
	if cb < ca {
		ca, cb = cb, ca
	}
	r.static[[2]string{ca, cb}] = rel
	for _, e := range [2][2]string{{a, b}, {b, a}} {
		adj := r.staticBy[e[0]]
		if adj == nil {
			adj = map[string]Relation{}
			r.staticBy[e[0]] = adj
		}
		adj[e[1]] = rel
	}
	r.epoch++
	r.mu.Unlock()
}

// StaticRelation returns the static-matrix entry for a pair (the default
// relation when unset), resolving both directions in one locked map read.
// The diagonal is always Conflict — a view trivially shares data with
// itself.
func (r *Registry) StaticRelation(a, b string) Relation {
	if a == b {
		return Conflict
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.staticRelationLocked(a, b)
}

// Register adds a view with its initial property set. Registering an
// existing name fails.
func (r *Registry) Register(name string, props property.Set) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.views[name]; dup {
		return fmt.Errorf("registry: view %q already registered", name)
	}
	v := &ViewInfo{Name: name, Props: props.Clone()}
	r.views[name] = v
	r.indexInsertLocked(v)
	r.epoch++
	return nil
}

// Unregister removes a view (idempotent).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	if _, ok := r.views[name]; ok {
		delete(r.views, name)
		r.indexRemoveLocked(name)
		r.epoch++
		r.cmu.Lock()
		delete(r.confCache, name)
		r.cmu.Unlock()
	}
	r.mu.Unlock()
}

// Has reports whether a view is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.views[name]
	return ok
}

// SetProps replaces a view's dynamic property set.
func (r *Registry) SetProps(name string, props property.Set) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.views[name]
	if !ok {
		return fmt.Errorf("registry: view %q not registered", name)
	}
	v.Props = props.Clone()
	// Re-index under the new set; a lost view stays out of the index and
	// re-enters with the updated set when found again.
	if !v.Lost {
		r.indexInsertLocked(v)
	}
	r.epoch++
	return nil
}

// Props returns a view's current property set.
func (r *Registry) Props(name string) (property.Set, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[name]
	if !ok {
		return property.Set{}, false
	}
	return v.Props.Clone(), true
}

// SetActive marks a view active or inactive.
func (r *Registry) SetActive(name string, active bool) {
	r.mu.Lock()
	if v, ok := r.views[name]; ok {
		v.Active = active
	}
	r.mu.Unlock()
}

// Active reports whether a view is currently active.
func (r *Registry) Active(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[name]
	return ok && v.Active
}

// SetLost marks a view lost (evicted for unreachability) or found again.
// Marking lost also deactivates. Unknown names are ignored.
func (r *Registry) SetLost(name string, lost bool) {
	r.mu.Lock()
	if v, ok := r.views[name]; ok && v.Lost != lost {
		v.Lost = lost
		if lost {
			v.Active = false
			// A tombstone never appears in a conflict set; drop its
			// postings so queries skip it structurally.
			r.indexRemoveLocked(name)
		} else {
			r.indexInsertLocked(v)
		}
		r.epoch++
	}
	r.mu.Unlock()
}

// Lost reports whether a view is currently a lost tombstone.
func (r *Registry) Lost(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.views[name]
	return ok && v.Lost
}

// LostViews returns the sorted names of lost views.
func (r *Registry) LostViews() []string {
	r.mu.RLock()
	var out []string
	for n, v := range r.views {
		if v.Lost {
			out = append(out, n)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Views returns the sorted names of all registered views.
func (r *Registry) Views() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.views))
	for n := range r.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered views.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.views)
}

// Conflicts decides whether two registered views share data, combining the
// static matrix with the dynamic property intersection:
//
//   - static 1 → true,
//   - static 0 → false,
//   - static -1 → dynConfl over the views' current property sets.
//
// Unregistered views never conflict. The static relation, registration
// checks, and property comparison all happen under one coherent read lock.
func (r *Registry) Conflicts(a, b string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.conflictsLocked(a, b)
}

// ConflictingWith returns the sorted names of registered views that share
// data with the given view (excluding itself). If activeOnly is set, only
// currently active views are returned — the set the directory manager must
// invalidate (strong mode) or update (weak mode). Lost views are
// unreachable tombstones and never appear in the set.
//
// The whole query runs under one read lock — one coherent snapshot, no
// set-props interleaving mid-scan — and is served by the conflict index
// in O(log n + matches) (see index.go for the per-defaultRel plans).
// Repeated queries between structural mutations are served from a cached
// per-view structural set keyed by the mutation epoch, with only the
// active filter re-applied per call.
func (r *Registry) ConflictingWith(name string, activeOnly bool) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.noIndex {
		// Brute-force reference mode stays uncached so the equivalence
		// suite measures the scan itself.
		return r.conflictingWithLocked(name, activeOnly)
	}
	structural := r.cachedStructuralLocked(name)
	out := make([]string, 0, len(structural))
	for _, n := range structural {
		if admissible(r.views[n], name, activeOnly) {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Others returns the sorted names of every registered view except the
// given one, optionally restricted to active views — the conflict set of
// a GatherAll ("application-oblivious") deployment, computed under one
// read lock instead of a Views+Active lock round-trip per candidate.
func (r *Registry) Others(name string, activeOnly bool) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.othersLocked(name, activeOnly)
}

// SharedInterest returns the intersection of the two views' current
// property sets (empty when their relationship is static). The directory
// manager uses it to restrict update payloads to the overlapping data.
func (r *Registry) SharedInterest(a, b string) property.Set {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sharedInterestLocked(a, b)
}
