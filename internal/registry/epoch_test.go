package registry

import (
	"reflect"
	"testing"

	"flecc/internal/property"
)

// TestEpochBumps pins which mutations are structural (bump the epoch,
// invalidating cached conflict sets and the directory's lane map) and
// which are not.
func TestEpochBumps(t *testing.T) {
	r := New()
	e := r.Epoch()
	step := func(name string, fn func(), wantBump bool) {
		t.Helper()
		fn()
		got := r.Epoch()
		if wantBump && got <= e {
			t.Fatalf("%s: epoch %d did not advance past %d", name, got, e)
		}
		if !wantBump && got != e {
			t.Fatalf("%s: epoch moved %d -> %d for a non-structural change", name, e, got)
		}
		e = got
	}

	step("register a", func() { r.Register("a", property.MustSet("P={0..9}")) }, true)
	step("register b", func() { r.Register("b", property.MustSet("P={5..14}")) }, true)
	step("set-active", func() { r.SetActive("a", true) }, false)
	step("set-active off", func() { r.SetActive("a", false) }, false)
	step("set-props", func() { r.SetProps("b", property.MustSet("Q={0..9}")) }, true)
	step("set-lost", func() { r.SetLost("b", true) }, true)
	step("set-lost same", func() { r.SetLost("b", true) }, false)
	step("revive", func() { r.SetLost("b", false) }, true)
	step("set-static", func() { r.SetStatic("a", "b", Conflict) }, true)
	step("default-relation", func() { r.SetDefaultRelation(NoConflict) }, true)
	step("unregister", func() { r.Unregister("b") }, true)
}

// TestConflictCacheExact checks that the epoch-keyed conflict-set cache
// always answers exactly what a fresh computation would: across property
// changes, static overlays, lost transitions, and the per-query active
// filter (which must not be baked into the cached structural set).
func TestConflictCacheExact(t *testing.T) {
	r := New()
	fresh := func(name string, activeOnly bool) []string {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.conflictingWithLocked(name, activeOnly)
	}
	check := func(when string) {
		t.Helper()
		for _, n := range r.Views() {
			for _, activeOnly := range []bool{false, true} {
				got := r.ConflictingWith(n, activeOnly)
				want := fresh(n, activeOnly)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: ConflictingWith(%s, activeOnly=%v) = %v, fresh scan = %v",
						when, n, activeOnly, got, want)
				}
			}
		}
	}

	r.Register("a", property.MustSet("P={0..9}"))
	r.Register("b", property.MustSet("P={5..14}"))
	r.Register("c", property.MustSet("Q={0..9}"))
	check("initial")
	// Hit the cache twice in a row (second query is served memoized).
	check("repeat")

	r.SetActive("b", true)
	check("after activate (no epoch bump, active filter per query)")

	r.SetProps("c", property.MustSet("P={0..4}"))
	check("after set-props")

	r.SetStatic("a", "c", NoConflict)
	check("after static override")

	r.SetLost("b", true)
	check("after eviction")
	r.SetLost("b", false)
	check("after revival")

	r.Unregister("c")
	check("after unregister")
}
