package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// countingWriter records every Write call (the syscall proxy) and the
// bytes, optionally gating writes so a test can force frames to pile up
// behind one in-flight flush.
type countingWriter struct {
	mu     sync.Mutex
	writes int
	buf    bytes.Buffer
	gate   chan struct{} // non-nil: each Write blocks until a tick
	fail   error         // non-nil: every Write fails
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.gate != nil {
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return 0, w.fail
	}
	w.writes++
	w.buf.Write(p)
	return len(p), nil
}

func (w *countingWriter) snapshot() (int, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, bytes.Clone(w.buf.Bytes())
}

func decodeAll(t *testing.T, stream []byte) []*wire.Message {
	t.Helper()
	fr := wire.NewFrameReader(bytes.NewReader(stream))
	var out []*wire.Message
	for {
		m, err := fr.Read()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		out = append(out, m)
	}
}

// Concurrent senders must produce a valid, complete frame stream: every
// frame exactly once, each intact, regardless of how sends interleave.
func TestWriteQueueConcurrentFraming(t *testing.T) {
	w := &countingWriter{}
	q := newWriteQueue(w, nil)
	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				m := &wire.Message{Type: wire.TAck, Seq: uint64(s*perSender + i), From: fmt.Sprintf("s%d", s)}
				if err := q.send(m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	_, stream := w.snapshot()
	got := decodeAll(t, stream)
	if len(got) != senders*perSender {
		t.Fatalf("decoded %d frames, want %d", len(got), senders*perSender)
	}
	seen := map[uint64]bool{}
	for _, m := range got {
		if seen[m.Seq] {
			t.Fatalf("frame seq %d written twice", m.Seq)
		}
		seen[m.Seq] = true
	}
}

// A single sender's frames must appear on the stream in send order (the
// write-order guarantee the reply-matching protocol relies on).
func TestWriteQueuePreservesOrder(t *testing.T) {
	w := &countingWriter{}
	q := newWriteQueue(w, nil)
	const n = 200
	for i := 0; i < n; i++ {
		if err := q.send(&wire.Message{Type: wire.TAck, Seq: uint64(i), From: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	_, stream := w.snapshot()
	got := decodeAll(t, stream)
	if len(got) != n {
		t.Fatalf("decoded %d frames, want %d", len(got), n)
	}
	for i, m := range got {
		if m.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d: order not preserved", i, m.Seq)
		}
	}
}

// Frames queued behind a blocked flush must coalesce: with the first write
// gated, N-1 more senders enqueue, and releasing the gate lets the whole
// backlog go out in one more write.
func TestWriteQueueCoalesces(t *testing.T) {
	w := &countingWriter{gate: make(chan struct{}, 64)}
	q := newWriteQueue(w, nil)
	const backlog = 15

	var wg sync.WaitGroup
	var started sync.WaitGroup
	errs := make([]error, backlog+1)
	started.Add(1)
	wg.Add(1)
	go func() { // becomes the flusher, blocks in Write on the gate
		defer wg.Done()
		started.Done()
		errs[0] = q.send(&wire.Message{Type: wire.TAck, Seq: 0, From: "a"})
	}()
	started.Wait()
	waitFor(t, func() bool { return queuePending(q) == 0 && queueFlushing(q) })
	for i := 1; i <= backlog; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = q.send(&wire.Message{Type: wire.TAck, Seq: uint64(i), From: "a"})
		}(i)
	}
	waitFor(t, func() bool { return queuePending(q) == backlog })
	w.gate <- struct{}{} // release the first flush
	w.gate <- struct{}{} // release the batched flush
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	writes, stream := w.snapshot()
	if writes != 2 {
		t.Fatalf("writes = %d, want 2 (first frame + coalesced backlog)", writes)
	}
	if got := decodeAll(t, stream); len(got) != backlog+1 {
		t.Fatalf("decoded %d frames, want %d", len(got), backlog+1)
	}
}

// A write failure must reach every sender whose frame was lost — the one
// mid-flush and everyone queued behind it — and poison future sends.
func TestWriteQueueFailWakesSenders(t *testing.T) {
	boom := errors.New("boom")
	w := &countingWriter{gate: make(chan struct{}, 64), fail: boom}
	q := newWriteQueue(w, nil)

	const waiters = 5
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := q.send(&wire.Message{Type: wire.TAck, Seq: uint64(i), From: "a"}); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	waitFor(t, func() bool { return queueFlushing(q) })
	for i := 0; i < waiters; i++ {
		w.gate <- struct{}{}
	}
	wg.Wait()
	if got := failed.Load(); got != waiters {
		t.Fatalf("%d senders saw the failure, want %d", got, waiters)
	}
	if err := q.send(&wire.Message{Type: wire.TAck}); !errors.Is(err, boom) {
		t.Fatalf("poisoned queue accepted a send: %v", err)
	}
}

// fail() must wake senders whose frames are queued but unwritten.
func TestWriteQueueFailReleasesPending(t *testing.T) {
	w := &countingWriter{gate: make(chan struct{}, 64)}
	q := newWriteQueue(w, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // flusher, parked on the gate
		defer wg.Done()
		_ = q.send(&wire.Message{Type: wire.TAck, Seq: 0, From: "a"})
	}()
	waitFor(t, func() bool { return queueFlushing(q) })
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() { // queued behind the in-flight flush
		defer wg.Done()
		errCh <- q.send(&wire.Message{Type: wire.TAck, Seq: 1, From: "a"})
	}()
	waitFor(t, func() bool { return queuePending(q) == 1 })
	q.fail(ErrClosed)
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending sender got %v, want ErrClosed", err)
	}
	w.gate <- struct{}{} // let the parked flusher finish
	wg.Wait()
}

// Wire stats must account every frame and flush.
func TestWriteQueueStats(t *testing.T) {
	var stats WireStats
	w := &countingWriter{}
	q := newWriteQueue(w, &stats)
	const n = 20
	for i := 0; i < n; i++ {
		if err := q.send(&wire.Message{Type: wire.TAck, Seq: uint64(i), From: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := stats.Snapshot()
	_, stream := w.snapshot()
	if snap.Frames != n {
		t.Fatalf("Frames = %d, want %d", snap.Frames, n)
	}
	if snap.Flushes != n { // serial sends: one flush each
		t.Fatalf("Flushes = %d, want %d", snap.Flushes, n)
	}
	if snap.Bytes != int64(len(stream)) {
		t.Fatalf("Bytes = %d, stream has %d", snap.Bytes, len(stream))
	}
	if (*WireStats)(nil).Snapshot() != (WireStatsSnapshot{}) {
		t.Fatal("nil WireStats should snapshot to zero")
	}
}

// Large shared bodies ride as a second writev segment; the stream must
// still carry intact frames.
func TestWriteQueueLargeSharedBody(t *testing.T) {
	w := &countingWriter{}
	q := newWriteQueue(w, nil)
	base := benchImageMessage(t, 600)
	base.Pre = wire.Preencode(base)
	const n = 4
	for i := 0; i < n; i++ {
		m := *base
		m.Seq = uint64(i)
		m.View = fmt.Sprintf("v%d", i)
		if err := q.send(&m); err != nil {
			t.Fatal(err)
		}
	}
	_, stream := w.snapshot()
	got := decodeAll(t, stream)
	if len(got) != n {
		t.Fatalf("decoded %d frames, want %d", len(got), n)
	}
	for i, m := range got {
		if m.View != fmt.Sprintf("v%d", i) || m.Img == nil || m.Img.Len() != base.Img.Len() {
			t.Fatalf("frame %d corrupted: %s", i, m)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// benchImageMessage builds a TUpdate whose encoded body exceeds the inline
// threshold, exercising the two-segment write path.
func benchImageMessage(t testing.TB, entries int) *wire.Message {
	t.Helper()
	img := image.New(property.MustSet("Flights={100..139}"))
	for i := 0; i < entries; i++ {
		img.Put(image.Entry{
			Key:     fmt.Sprintf("flight/%04d", i),
			Value:   []byte("NYC|SFO|200|57|19900"),
			Version: vclock.Version(i),
			Writer:  "agent-042",
		})
	}
	img.Version = vclock.Version(entries)
	return &wire.Message{Type: wire.TUpdate, From: "dm", Img: img, Version: img.Version}
}

func queuePending(q *writeQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

func queueFlushing(q *writeQueue) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.flushing
}
