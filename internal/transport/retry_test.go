package transport

import (
	"testing"
	"time"

	"flecc/internal/wire"
)

// TestBackoffScheduleSeeded pins the jittered backoff schedule for a
// fixed seed. math/rand's (v1) generator stream is frozen by the Go
// compatibility promise, so these literals are stable; the test
// regresses the bug where jitter drew from the process-global
// math/rand and identically configured runs produced different
// schedules.
func TestBackoffScheduleSeeded(t *testing.T) {
	pol := RetryPolicy{
		Attempts: 5,
		Base:     2 * time.Millisecond,
		Max:      16 * time.Millisecond,
		Jitter:   0.25,
		Rand:     NewRand(42),
	}
	want := []time.Duration{1873028, 3132000, 8416375, 13670549}
	for i, w := range want {
		if got := pol.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// TestBackoffSeededStreamsIdentical: two policies built with the same
// seed replay the same schedule; a different seed diverges.
func TestBackoffSeededStreamsIdentical(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		pol := RetryPolicy{
			Attempts: 6,
			Base:     time.Millisecond,
			Max:      32 * time.Millisecond,
			Jitter:   0.2,
			Rand:     NewRand(seed),
		}
		out := make([]time.Duration, 0, 5)
		for a := 1; a <= 5; a++ {
			out = append(out, pol.backoff(a))
		}
		return out
	}
	a, b, c := mk(7), mk(7), mk(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i+1, a[i], b[i])
		}
	}
	var differs bool
	for i := range a {
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffJitterBounds: every jittered backoff stays within ±Jitter
// of the unjittered value and respects Max as the pre-jitter cap.
func TestBackoffJitterBounds(t *testing.T) {
	pol := RetryPolicy{
		Attempts: 4,
		Base:     4 * time.Millisecond,
		Max:      20 * time.Millisecond,
		Jitter:   0.3,
		Rand:     NewRand(1),
	}
	bases := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for round := 0; round < 50; round++ {
		for i, base := range bases {
			d := pol.backoff(i + 1)
			lo := time.Duration(float64(base) * 0.7)
			hi := time.Duration(float64(base) * 1.3)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", i+1, d, lo, hi)
			}
		}
	}
}

// TestCallRetrySleepsUseSeededJitter: the pauses CallRetry actually
// takes come from the policy's Rand, observed through the Sleep hook,
// and replay identically for identical seeds.
func TestCallRetrySleepsUseSeededJitter(t *testing.T) {
	run := func(seed int64) []time.Duration {
		f := NewFaulty(NewInproc(), seed)
		if _, err := f.Attach("dm", func(req *wire.Message) *wire.Message {
			return &wire.Message{Type: wire.TAck}
		}); err != nil {
			t.Fatal(err)
		}
		fcm, err := f.Attach("cm", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		f.DisconnectNext("cm", "dm", 2)
		var slept []time.Duration
		pol := RetryPolicy{
			Attempts: 4,
			Base:     time.Millisecond,
			Max:      8 * time.Millisecond,
			Jitter:   0.2,
			Rand:     NewRand(seed),
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		}
		if _, err := CallRetry(fcm, "dm", &wire.Message{Type: wire.TPull}, pol); err != nil {
			t.Fatalf("CallRetry: %v", err)
		}
		return slept
	}
	a, b := run(11), run(11)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("expected 2 pauses per run, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pause %d: %v vs %v across identically seeded runs", i, a[i], b[i])
		}
	}
}
