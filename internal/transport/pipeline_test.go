package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// One connection must carry W concurrent requests: the handler refuses to
// answer anyone until all W have arrived, so the test only passes if the
// client really pipelines (a one-outstanding-call client would deadlock).
func TestCallAsyncPipelinesOnOneConnection(t *testing.T) {
	const w = 8
	var mu sync.Mutex
	arrived := 0
	all := make(chan struct{})
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		mu.Lock()
		arrived++
		if arrived == w {
			close(all)
		}
		mu.Unlock()
		<-all
		return &wire.Message{Type: wire.TAck, Version: req.Since}
	})
	c := dialTest(t, s, "cm1", echoHandler)

	calls := make([]*Call, w)
	for i := range calls {
		calls[i] = c.CallAsync("dm", &wire.Message{Type: wire.TPull, Since: vclock.Version(i)})
	}
	for i, call := range calls {
		reply, err := call.WaitTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.Version != vclock.Version(i) {
			t.Fatalf("call %d got reply for Since=%d: demux cross-wired", i, reply.Version)
		}
	}
}

// SetWindow must bound in-flight concurrency: with window W and far more
// issued calls, the server-side peak concurrency never exceeds W.
func TestWindowBoundsInFlight(t *testing.T) {
	const window, total = 4, 64
	var inflight, peak atomic.Int64
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inflight.Add(-1)
		return &wire.Message{Type: wire.TAck}
	})
	c := dialTest(t, s, "cm1", echoHandler)
	c.SetWindow(window)

	calls := make(chan *Call, total)
	go func() {
		for i := 0; i < total; i++ {
			calls <- c.CallAsync("dm", &wire.Message{Type: wire.TPull})
		}
		close(calls)
	}()
	for call := range calls {
		if _, err := call.WaitTimeout(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > window {
		t.Fatalf("peak in-flight = %d, window = %d", p, window)
	}
}

// A reply that arrives after the caller timed out must be dropped (counted
// as late), never delivered to a recycled Seq, and must not wedge the read
// loop: the connection stays usable for subsequent calls.
func TestLateReplyDroppedAndCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	delay := time.Duration(50+rng.Intn(50)) * time.Millisecond
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		if req.Type == wire.TPush {
			time.Sleep(delay) // reply arrives after the caller gave up
		}
		return &wire.Message{Type: wire.TAck, Version: req.Since}
	})
	c := dialTest(t, s, "cm1", echoHandler)

	call := c.CallAsync("dm", &wire.Message{Type: wire.TPush, Since: 1})
	if _, err := call.WaitTimeout(5 * time.Millisecond); err == nil {
		t.Fatal("want timeout")
	}
	// A second wait on the abandoned call reports the same resolution.
	if _, err := call.Wait(); err == nil {
		t.Fatal("abandoned call must stay failed")
	}

	// The late reply must be absorbed and counted, not delivered.
	waitFor(t, func() bool { return c.WireStats().LateReplies == 1 })

	// The connection survives: a fresh call round-trips with its own Seq.
	reply, err := c.Call("dm", &wire.Message{Type: wire.TPull, Since: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Version != 7 {
		t.Fatalf("fresh call got stale reply: %+v", reply)
	}
}

// Shutting down the peer must resolve every in-flight async call with an
// error instead of leaving futures hanging.
func TestShutdownFailsInFlightAsyncCalls(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		<-block
		return &wire.Message{Type: wire.TAck}
	})
	defer close(block)
	c := dialTest(t, s, "cm1", echoHandler)

	const n = 6
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = c.CallAsync("dm", &wire.Message{Type: wire.TPush})
	}
	go c.Close()
	for i, call := range calls {
		if _, err := call.WaitTimeout(5 * time.Second); err == nil {
			t.Fatalf("call %d resolved cleanly across shutdown", i)
		} else if !errors.Is(err, ErrClosed) {
			t.Fatalf("call %d: err = %v, want ErrClosed in chain", i, err)
		}
	}
}

// A full window must not deadlock shutdown: issuers blocked waiting for a
// slot observe the close and fail instead of sleeping forever.
func TestWindowBlockedIssuerUnblocksOnClose(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		<-block
		return &wire.Message{Type: wire.TAck}
	})
	defer close(block)
	c := dialTest(t, s, "cm1", echoHandler)
	c.SetWindow(1)

	first := c.CallAsync("dm", &wire.Message{Type: wire.TPush}) // fills the window
	errCh := make(chan error, 1)
	go func() {
		_, err := c.CallAsync("dm", &wire.Message{Type: wire.TPush}).Wait()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the issuer park on the window
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("blocked issuer should fail on close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("issuer still blocked on the window after close")
	}
	if _, err := first.Wait(); err == nil {
		t.Fatal("in-flight call should fail on close")
	}
}

// Poisoning the write queue mid-flush must wake all concurrent senders
// with the sticky error — including frames enqueued after the poison.
func TestWriteQueuePoisonDrainEightSenders(t *testing.T) {
	boom := errors.New("flush failed")
	w := &countingWriter{gate: make(chan struct{}, 64), fail: boom}
	q := newWriteQueue(w, nil)

	const senders = 8
	var wg sync.WaitGroup
	errs := make([]error, senders)
	wg.Add(1)
	go func() { // flusher, parked in Write on the gate
		defer wg.Done()
		errs[0] = q.send(&wire.Message{Type: wire.TAck, Seq: 0, From: "a"})
	}()
	waitFor(t, func() bool { return queueFlushing(q) })
	for i := 1; i < senders; i++ {
		wg.Add(1)
		go func(i int) { // queued behind the in-flight flush
			defer wg.Done()
			errs[i] = q.send(&wire.Message{Type: wire.TAck, Seq: uint64(i), From: "a"})
		}(i)
	}
	waitFor(t, func() bool { return queuePending(q) == senders-1 })

	w.gate <- struct{}{} // release the parked flusher; its Write fails with boom
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("sender %d got %v, want the sticky poison error", i, err)
		}
	}
	// A frame enqueued after poisoning must fail fast with the same error.
	if err := q.send(&wire.Message{Type: wire.TAck, Seq: 99, From: "a"}); !errors.Is(err, boom) {
		t.Fatalf("post-poison send got %v, want sticky error", err)
	}
}

// Inproc CallAsync must resolve synchronously (no goroutines), keeping
// deterministic harnesses deterministic.
func TestInprocCallAsyncResolvesSynchronously(t *testing.T) {
	n := NewInproc()
	if _, err := n.Attach("dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: 9}
	}); err != nil {
		t.Fatal(err)
	}
	cm, err := n.Attach("cm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := cm.(AsyncCaller)
	if !ok {
		t.Fatal("inproc endpoint should implement AsyncCaller")
	}
	call := ac.CallAsync("dm", &wire.Message{Type: wire.TPull})
	select {
	case <-call.Done():
	default:
		t.Fatal("inproc async call should already be resolved")
	}
	reply, err := call.Wait()
	if err != nil || reply.Version != 9 {
		t.Fatalf("reply = %+v, err = %v", reply, err)
	}
}

// BenchmarkPipelineWindow measures single-connection throughput at
// increasing windows; the window-64 series should approach wire
// saturation (many times the window-1 ops/sec).
func BenchmarkPipelineWindow(b *testing.B) {
	for _, window := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("w%d", window), func(b *testing.B) {
			s := newBenchServer(b)
			c, err := Dial(s.Addr().String(), "cm1", echoHandler, 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.SetWindow(window)
			b.ReportAllocs()
			b.ResetTimer()
			calls := make(chan *Call, 2*window)
			done := make(chan error, 1)
			go func() {
				var first error
				for call := range calls {
					if _, err := call.Wait(); err != nil && first == nil {
						first = err
					}
				}
				done <- first
			}()
			for i := 0; i < b.N; i++ {
				calls <- c.CallAsync("dm", &wire.Message{Type: wire.TPush, Since: vclock.Version(i)})
			}
			close(calls)
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := Serve(ln, "dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: req.Since}
	}, 30*time.Second)
	b.Cleanup(func() { s.Close() })
	return s
}
