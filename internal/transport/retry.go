package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"flecc/internal/wire"
)

// Rand is a seeded, concurrency-safe source of jitter randomness. One
// Rand threads through every RetryPolicy of a deployment (the directory
// manager's Options.Retry, the shard router's SetRetryPolicy), so fault
// soaks with jittered retries consume a single reproducible stream
// instead of the process-global math/rand — which is what used to make
// identically seeded runs diverge.
type Rand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRand returns a jitter source with a fixed seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 draws the next value in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Float64()
}

// defaultJitter backs policies that enable Jitter without threading
// their own Rand. It is seeded (not the global math/rand), so a
// single-threaded run is reproducible out of the box; concurrent
// retriers share the stream, so runs needing exact cross-run
// reproducibility should set RetryPolicy.Rand explicitly.
var defaultJitter = NewRand(1)

// IsTransportError reports whether err is a transport-level failure — the
// destination was unreachable, closed, timed out, or a fault was injected —
// as opposed to a protocol error returned by the remote handler
// (wire.RemoteError). The distinction drives the failure semantics: a
// remote error means the peer is alive and answered, so retrying repeats
// work; a transport error means the request may never have arrived, so the
// caller may retry, reconnect, or evict the peer.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	var re *wire.RemoteError
	return !errors.As(err, &re)
}

// Default retry-policy knobs (see RetryPolicy).
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 2 * time.Millisecond
	DefaultRetryMax      = 50 * time.Millisecond
)

// RetryPolicy bounds retry-with-backoff around transport-level call
// failures. The zero value uses the defaults above; Attempts = 1 disables
// retrying.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first.
	Attempts int
	// Base is the backoff before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the backoff.
	Max time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// value (0.2 = ±20%), so synchronized retriers decorrelate.
	Jitter float64
	// Rand supplies the jitter randomness. Nil falls back to a seeded
	// process-wide source; deployments that need reproducible fault runs
	// thread one NewRand(seed) through every policy they build.
	Rand *Rand
	// Sleep replaces time.Sleep between attempts; tests use it to avoid
	// real waiting. Nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Max <= 0 {
		p.Max = DefaultRetryMax
	}
	return p
}

// backoff returns the pause after the attempt-th failed try (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		src := p.Rand
		if src == nil {
			src = defaultJitter
		}
		f := 1 + p.Jitter*(2*src.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

func (p RetryPolicy) pause(attempt int) {
	d := p.backoff(attempt)
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// CallRetry issues ep.Call(to, req), retrying transport-level failures
// under the policy. Remote protocol errors are returned immediately.
// Endpoints stamp Seq/From on a clone, never on req itself, so re-sending
// the same message value is safe.
func CallRetry(ep Endpoint, to string, req *wire.Message, pol RetryPolicy) (*wire.Message, error) {
	pol = pol.withDefaults()
	for attempt := 1; ; attempt++ {
		reply, err := ep.Call(to, req)
		if err == nil || !IsTransportError(err) || attempt >= pol.Attempts {
			return reply, err
		}
		pol.pause(attempt)
	}
}
