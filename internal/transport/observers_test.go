package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"flecc/internal/wire"
)

// appendObserver records "<id>:<type>:<from>-><to>" lines into a shared
// log, for ordering assertions.
type appendObserver struct {
	id  string
	mu  *sync.Mutex
	log *[]string
}

func (a appendObserver) OnMessage(from, to string, m *wire.Message) {
	a.mu.Lock()
	*a.log = append(*a.log, fmt.Sprintf("%s:%s:%s->%s", a.id, m.Type, from, to))
	a.mu.Unlock()
}

// TestObserversFanOutOrder: multiple observers on one Inproc network
// each see every message, in registration order, request before reply.
func TestObserversFanOutOrder(t *testing.T) {
	net := NewInproc()
	var mu sync.Mutex
	var log []string
	net.AddObserver(appendObserver{"a", &mu, &log})
	net.AddObserver(appendObserver{"b", &mu, &log})
	net.AddObserver(appendObserver{"c", &mu, &log})

	if _, err := net.Attach("dm", echoHandler); err != nil {
		t.Fatal(err)
	}
	cm, err := net.Attach("cm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a:pull:cm->dm", "b:pull:cm->dm", "c:pull:cm->dm",
		"a:ack:dm->cm", "b:ack:dm->cm", "c:ack:dm->cm",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i, w := range want {
		if log[i] != w {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], w, log)
		}
	}
}

// TestObserversSetReplacesAndClears: SetObserver keeps its historical
// single-slot semantics on top of the fan-out.
func TestObserversSetReplacesAndClears(t *testing.T) {
	net := NewInproc()
	var mu sync.Mutex
	var log []string
	net.AddObserver(appendObserver{"a", &mu, &log})
	net.AddObserver(appendObserver{"b", &mu, &log})
	net.SetObserver(appendObserver{"c", &mu, &log}) // replaces a and b

	if _, err := net.Attach("dm", echoHandler); err != nil {
		t.Fatal(err)
	}
	cm, err := net.Attach("cm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0] != "c:pull:cm->dm" || log[1] != "c:ack:dm->cm" {
		t.Fatalf("log = %v, want only observer c", log)
	}

	net.SetObserver(nil)
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPush}); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("cleared fan-out still observed: %v", log)
	}
}

// TestObserversConcurrentMutation: Add/Set racing with traffic must not
// corrupt the fan-out (exercised under -race by CI).
func TestObserversConcurrentMutation(t *testing.T) {
	net := NewInproc()
	if _, err := net.Attach("dm", echoHandler); err != nil {
		t.Fatal(err)
	}
	cm, err := net.Attach("cm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			net.AddObserver(ObserverFunc(func(string, string, *wire.Message) {}))
			net.SetObserver(ObserverFunc(func(string, string, *wire.Message) {}))
		}
	}()
	for i := 0; i < 500; i++ {
		if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTCPObserversSeeFrames: on a TCP link each side observes the
// frames crossing its own wire — the server sees the inbound request
// and its outbound reply; the client sees the outbound request and the
// inbound reply.
func TestTCPObserversSeeFrames(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck}
	})
	var smu sync.Mutex
	var slog []string
	s.AddObserver(appendObserver{"s", &smu, &slog})

	c := dialTest(t, s, "cm1", echoHandler)
	var cmu sync.Mutex
	var clog []string
	c.AddObserver(appendObserver{"c", &cmu, &clog})

	if _, err := c.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		smu.Lock()
		sn := len(slog)
		smu.Unlock()
		if sn >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cmu.Lock()
	defer cmu.Unlock()
	if len(clog) != 2 || clog[0] != "c:pull:cm1->dm" || clog[1] != "c:ack:dm->cm1" {
		t.Fatalf("client log = %v", clog)
	}
	smu.Lock()
	defer smu.Unlock()
	var sawReq, sawReply bool
	for _, l := range slog {
		if l == "s:pull:cm1->dm" {
			sawReq = true
		}
		if l == "s:ack:dm->cm1" {
			sawReply = true
		}
	}
	if !sawReq || !sawReply {
		t.Fatalf("server log = %v, want inbound pull and outbound ack", slog)
	}
}

// TestFaultyOneShotRetryDeterministic: a CallRetry through a one-shot
// edge fault succeeds with exactly one retry (the handler runs once),
// and two identically seeded runs inject identical fault counts — the
// acceptance shape for seeded-determinism with retry jitter enabled.
func TestFaultyOneShotRetryDeterministic(t *testing.T) {
	run := func(seed int64) (handlerCalls int, injected int64, slept []time.Duration) {
		f := NewFaulty(NewInproc(), seed)
		if _, err := f.Attach("dm", func(req *wire.Message) *wire.Message {
			handlerCalls++
			return &wire.Message{Type: wire.TAck}
		}); err != nil {
			t.Fatal(err)
		}
		cm, err := f.Attach("cm", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		// Background drops plus the armed one-shot, so the injected count
		// reflects the seeded stream, not just the single armed fault.
		f.SetDropRate(0.25)
		f.DisconnectNext("cm", "dm", 1)
		pol := RetryPolicy{
			Attempts: 10,
			Base:     time.Microsecond,
			Jitter:   0.2,
			Rand:     NewRand(seed),
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		}
		for i := 0; i < 50; i++ {
			if _, err := CallRetry(cm, "dm", &wire.Message{Type: wire.TPull}, pol); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
		return handlerCalls, f.Injected(), slept
	}

	// One-shot in isolation: exactly one retry, handler runs once.
	{
		f := NewFaulty(NewInproc(), 1)
		handlerCalls := 0
		if _, err := f.Attach("dm", func(req *wire.Message) *wire.Message {
			handlerCalls++
			return &wire.Message{Type: wire.TAck}
		}); err != nil {
			t.Fatal(err)
		}
		cm, err := f.Attach("cm", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		f.DisconnectNext("cm", "dm", 1)
		attempts := 0
		pol := RetryPolicy{
			Attempts: 5, Base: time.Microsecond, Jitter: 0.2, Rand: NewRand(1),
			Sleep: func(time.Duration) { attempts++ },
		}
		if _, err := CallRetry(cm, "dm", &wire.Message{Type: wire.TPull}, pol); err != nil {
			t.Fatal(err)
		}
		if attempts != 1 {
			t.Fatalf("paused %d times, want exactly one retry", attempts)
		}
		if handlerCalls != 1 {
			t.Fatalf("handler ran %d times, want 1 (first attempt was dropped)", handlerCalls)
		}
		if f.Injected() != 1 {
			t.Fatalf("Injected() = %d, want 1", f.Injected())
		}
	}

	c1, i1, s1 := run(99)
	c2, i2, s2 := run(99)
	if i1 != i2 {
		t.Fatalf("injected counts diverged across identically seeded runs: %d vs %d", i1, i2)
	}
	if c1 != c2 {
		t.Fatalf("handler call counts diverged: %d vs %d", c1, c2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("retry pause counts diverged: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("pause %d diverged: %v vs %v", i, s1[i], s2[i])
		}
	}
	if i1 == 0 {
		t.Fatal("run injected no faults; drop rate not exercised")
	}
}
