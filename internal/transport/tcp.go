package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flecc/internal/wire"
)

// peer manages one full-duplex framed connection. Both sides can initiate
// requests; the read loop demultiplexes replies (matched by Seq to a
// pending call) from incoming requests (dispatched to the handler on a
// fresh goroutine so that a handler may itself issue nested calls over the
// same connection without deadlocking).
type peer struct {
	name    string // local node name
	conn    net.Conn
	handler Handler
	// obs observes every frame crossing this connection — incoming
	// requests and replies as they are read, outgoing requests and
	// replies as they are written — giving the process a complete local
	// wire view. Nil disables observation.
	obs *Observers

	// fr is the buffered, scratch-reusing frame reader over conn: only the
	// read loop touches it. wq is the group-commit outbound path: any
	// goroutine sends through it, and concurrent frames coalesce into
	// batched writes while preserving enqueue order. stats is the shared
	// counter set wq reports to (also counts late replies).
	fr    *wire.FrameReader
	wq    *writeQueue
	stats *WireStats

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
	err     error
	// window bounds concurrent outbound requests (0 = unlimited);
	// inWindow is the current count, winWait wakes blocked issuers when a
	// slot frees, the window widens, or the peer closes.
	window   int
	inWindow int
	winWait  *sync.Cond

	seq atomic.Uint64

	// onFirstMessage, if set, is invoked once with the first message
	// received; the TCP server uses it to learn the remote node's name. A
	// non-nil error rejects the connection: the peer answers with a TErr
	// frame and shuts down (the name-collision guard).
	onFirstMessage func(from string, p *peer) error
	firstOnce      sync.Once

	onClose func(p *peer)
	wg      sync.WaitGroup
}

func newPeer(name string, conn net.Conn, h Handler, stats *WireStats) *peer {
	p := &peer{
		name:    name,
		conn:    conn,
		handler: h,
		fr:      wire.NewFrameReader(conn),
		wq:      newWriteQueue(conn, stats),
		stats:   stats,
		pending: map[uint64]*Call{},
	}
	p.winWait = sync.NewCond(&p.mu)
	// Async frames have no blocked sender to carry a write error back, so
	// the drainer reports poisoning here; shutdown is idempotent.
	p.wq.onFail = func(err error) { p.shutdown(err) }
	return p
}

func (p *peer) start() {
	p.wg.Add(1)
	go p.readLoop()
}

func (p *peer) readLoop() {
	defer p.wg.Done()
	corked := false
	for {
		m, err := p.fr.Read()
		if err != nil {
			p.shutdown(err)
			return
		}
		// Burst batching: while more input is already buffered, hold the
		// async write drain so replies (and piggybacked requests) gather
		// into one flush; release just before the next Read would block,
		// which bounds every cork to the burst being drained.
		if nowCorked := p.fr.Buffered() > 0; nowCorked != corked {
			corked = nowCorked
			if corked {
				p.wq.cork()
			} else {
				p.wq.uncork()
			}
		}
		var rejected error
		p.firstOnce.Do(func() {
			if p.onFirstMessage != nil {
				rejected = p.onFirstMessage(m.From, p)
			}
		})
		if rejected != nil {
			// Best-effort courtesy reply; if even that write fails, the
			// failure joins the rejection reason so shutdown (and the
			// eviction metrics behind onClose) see the full story.
			if werr := p.wq.send(&wire.Message{Type: wire.TErr, Seq: m.Seq, From: p.name, Err: rejected.Error()}); werr != nil {
				rejected = errors.Join(rejected, werr)
			}
			p.shutdown(rejected)
			return
		}
		if p.obs != nil {
			p.obs.OnMessage(m.From, p.name, m)
		}
		if m.Type == wire.THello {
			// Connection handshake: answered here, never dispatched to the
			// handler. The ack tells the dialer it reached a live peer (a
			// dead process behind a live listener socket would leave the
			// hello unanswered and trip the dialer's deadline).
			ack := &wire.Message{Type: wire.THelloAck, Seq: m.Seq, From: p.name}
			if p.obs != nil {
				p.obs.OnMessage(p.name, m.From, ack)
			}
			if err := p.wq.send(ack); err != nil {
				p.shutdown(err)
				return
			}
			continue
		}
		if m.IsReply() {
			p.mu.Lock()
			c, ok := p.pending[m.Seq]
			if ok {
				p.finishLocked(c, m, nil)
			}
			p.mu.Unlock()
			// Unmatched replies (caller timed out or abandoned the call)
			// are dropped here, never delivered to a recycled Seq; the
			// counter makes the drop observable.
			if !ok && p.stats != nil {
				p.stats.late.Add(1)
			}
			continue
		}
		// Request: serve on its own goroutine so nested calls work. The
		// reply rides the async write path: with W pipelined requests in
		// flight, W handler goroutines would otherwise all park in a sync
		// send and be broadcast-woken on every flush; enqueueing lets
		// concurrent replies coalesce into shared flushes instead.
		p.wg.Add(1)
		go func(req *wire.Message) {
			defer p.wg.Done()
			reply := p.serve(req)
			reply.Seq = req.Seq
			reply.From = p.name
			if p.obs != nil {
				p.obs.OnMessage(p.name, req.From, reply)
			}
			if err := p.wq.sendAsync(reply); err != nil {
				p.shutdown(err)
			}
		}(m)
	}
}

func (p *peer) serve(req *wire.Message) (reply *wire.Message) {
	defer func() {
		if r := recover(); r != nil {
			reply = &wire.Message{Type: wire.TErr, Err: fmt.Sprintf("handler panic: %v", r)}
		}
	}()
	if p.handler == nil {
		return &wire.Message{Type: wire.TErr, Err: "no handler"}
	}
	reply = p.handler(req)
	if reply == nil {
		reply = &wire.Message{Type: wire.TAck}
	}
	return reply
}

func (p *peer) call(to string, req *wire.Message, timeout time.Duration) (*wire.Message, error) {
	return p.callAsync(to, req).wait(timeout)
}

// callAsync issues a request without waiting for its reply. It blocks only
// while the in-flight window is full; the returned Call resolves when the
// reply arrives, the caller abandons it, or the peer shuts down. Errors
// (closed peer, failed write) come back as an already-resolved Call so the
// issue path and the wait path report failures identically.
func (p *peer) callAsync(to string, req *wire.Message) *Call {
	// Stamp a shallow clone: the caller may retry the same message after a
	// timeout or failure and must not observe this peer's Seq/From writes.
	r := *req
	req = &r

	p.mu.Lock()
	for !p.closed && p.window > 0 && p.inWindow >= p.window {
		p.winWait.Wait()
	}
	if p.closed {
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return resolvedCall(nil, fmt.Errorf("transport: call on closed peer: %w", err))
	}
	seq := p.seq.Add(1)
	c := &Call{p: p, seq: seq, done: make(chan struct{})}
	p.pending[seq] = c
	p.inWindow++
	p.mu.Unlock()

	req.Seq = seq
	req.From = p.name
	if p.obs != nil {
		p.obs.OnMessage(p.name, to, req)
	}
	// Async enqueue: adjacent pipelined calls coalesce into shared
	// flushes instead of paying one write syscall each.
	if err := p.wq.sendAsync(req); err != nil {
		p.finish(c, nil, err)
		p.shutdown(err)
	}
	return c
}

// finish resolves c exactly once. Racing resolvers (reply vs timeout vs
// shutdown) serialize on p.mu; only the one that still finds c registered
// wins, the rest are no-ops.
func (p *peer) finish(c *Call, reply *wire.Message, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finishLocked(c, reply, err)
}

func (p *peer) finishLocked(c *Call, reply *wire.Message, err error) {
	if p.pending[c.seq] != c {
		return
	}
	delete(p.pending, c.seq)
	p.inWindow--
	p.winWait.Signal()
	c.reply = reply
	c.err = err
	close(c.done)
}

// setWindow bounds the number of unresolved outbound requests (0 = no
// bound). Shrinking does not cancel in-flight calls; new issuers block
// until the count drains below the new bound.
func (p *peer) setWindow(n int) {
	p.mu.Lock()
	p.window = n
	p.winWait.Broadcast()
	p.mu.Unlock()
}

func (p *peer) shutdown(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if err == nil {
		err = ErrClosed
	}
	p.err = err
	// Resolve every in-flight call with the shutdown cause and wake
	// issuers blocked on a full window so they observe closed.
	callErr := fmt.Errorf("transport: call on closed peer: %w", err)
	pend := p.pending
	p.pending = map[uint64]*Call{}
	for _, c := range pend {
		c.reply = nil
		c.err = callErr
		close(c.done)
	}
	p.inWindow = 0
	p.winWait.Broadcast()
	p.mu.Unlock()
	// Poison the write queue first so new senders fail fast, then close
	// the conn so an in-flight flusher's blocked write returns too.
	p.wq.fail(err)
	p.conn.Close()
	if p.onClose != nil {
		p.onClose(p)
	}
}

func (p *peer) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// wait blocks until the peer's read loop and in-flight serve goroutines
// have drained; callers shut the peer down first.
func (p *peer) wait() { p.wg.Wait() }

// Server is the TCP listener side: it accepts cache-manager connections,
// routes their requests to the handler, and can initiate calls (e.g.
// invalidations) to any connected client by node name.
type Server struct {
	name    string
	ln      net.Listener
	handler Handler
	timeout time.Duration
	obs     *Observers // shared with every accepted peer

	// stats aggregates wire counters across every accepted connection.
	stats WireStats

	mu      sync.Mutex
	clients map[string]*peer
	peers   map[*peer]struct{} // every live connection, named or not yet
	closed  bool
	wg      sync.WaitGroup
}

// Serve starts a server named name on ln. The handler serves client
// requests. timeout bounds server-initiated calls (0 = no timeout).
func Serve(ln net.Listener, name string, h Handler, timeout time.Duration) *Server {
	return serveWith(ln, name, h, timeout, &Observers{})
}

// serveWith starts a server whose peers report to the given fan-out —
// the hook ServerNetwork uses so observers registered before Attach see
// the very first connection.
func serveWith(ln net.Listener, name string, h Handler, timeout time.Duration, obs *Observers) *Server {
	s := &Server{
		name: name, ln: ln, handler: h, timeout: timeout, obs: obs,
		clients: map[string]*peer{},
		peers:   map[*peer]struct{}{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// AddObserver appends an observer that sees every frame crossing any of
// the server's connections. Safe to call concurrently with traffic.
func (s *Server) AddObserver(o Observer) { s.obs.Add(o) }

// SetObserver replaces the server's observer fan-out (nil clears).
func (s *Server) SetObserver(o Observer) { s.obs.Set(o) }

// Name returns the server's node name.
func (s *Server) Name() string { return s.name }

// WireStats snapshots the outbound wire counters aggregated across all of
// the server's connections (frames written, flushes issued, bytes sent).
func (s *Server) WireStats() WireStatsSnapshot { return s.stats.Snapshot() }

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p := newPeer(s.name, conn, s.handler, &s.stats)
		p.obs = s.obs
		p.onFirstMessage = func(from string, pr *peer) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed {
				return ErrClosed
			}
			// A second connection claiming a live client's name must not
			// hijack it: the existing peer's CM still believes it is
			// attached, and rerouting its server-initiated traffic to the
			// impostor would silently orphan it. Only a closed (stale)
			// entry may be replaced — that is the reconnect path.
			if old, ok := s.clients[from]; ok && old != pr && !old.isClosed() {
				return fmt.Errorf("transport: node name %q is already connected", from)
			}
			s.clients[from] = pr
			return nil
		}
		p.onClose = func(pr *peer) {
			s.mu.Lock()
			for n, q := range s.clients {
				if q == pr {
					delete(s.clients, n)
				}
			}
			delete(s.peers, pr)
			s.mu.Unlock()
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.peers[p] = struct{}{}
		s.mu.Unlock()
		p.start()
	}
}

// Call sends a request to the named connected client and waits for the
// reply. It implements the Endpoint Call shape so the directory manager
// can treat the server as its endpoint.
func (s *Server) Call(to string, req *wire.Message) (*wire.Message, error) {
	s.mu.Lock()
	p, ok := s.clients[to]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (not connected)", ErrUnknownNode, to)
	}
	return p.call(to, req, s.timeout)
}

// CallAsync issues a request to the named connected client without
// waiting for the reply; the returned Call resolves when the reply
// arrives or the connection dies. Implements AsyncCaller.
func (s *Server) CallAsync(to string, req *wire.Message) *Call {
	s.mu.Lock()
	p, ok := s.clients[to]
	s.mu.Unlock()
	if !ok {
		return resolvedCall(nil, fmt.Errorf("%w: %q (not connected)", ErrUnknownNode, to))
	}
	return p.callAsync(to, req)
}

// Clients returns the names of currently connected clients.
func (s *Server) Clients() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.clients))
	for n := range s.clients {
		out = append(out, n)
	}
	return out
}

// Close stops accepting, closes all client connections, and waits for the
// accept loop and every peer's read/serve goroutines to drain, so state
// observed after Close is final (no in-flight handler can still mutate it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	peers := make([]*peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, p := range peers {
		p.shutdown(ErrClosed)
	}
	for _, p := range peers {
		p.wait()
	}
	s.wg.Wait()
	return err
}

// ServerNetwork adapts a TCP listener into a Network with exactly one
// attachable node: the server itself. It lets the directory manager run
// unmodified over TCP (fleccd).
type ServerNetwork struct {
	ln      net.Listener
	timeout time.Duration
	obs     Observers // handed to the server on Attach

	mu  sync.Mutex
	srv *Server
}

// NewServerNetwork wraps a listener. timeout bounds server-initiated calls.
func NewServerNetwork(ln net.Listener, timeout time.Duration) *ServerNetwork {
	return &ServerNetwork{ln: ln, timeout: timeout}
}

// AddObserver appends an observer that sees every frame crossing the
// server's wire; observers registered before Attach see the first
// connection too.
func (n *ServerNetwork) AddObserver(o Observer) { n.obs.Add(o) }

// SetObserver replaces the observer fan-out (nil clears).
func (n *ServerNetwork) SetObserver(o Observer) { n.obs.Set(o) }

// Attach implements Network; only the first attachment succeeds.
func (n *ServerNetwork) Attach(name string, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		return nil, fmt.Errorf("transport: server network already has node %q", n.srv.Name())
	}
	n.srv = serveWith(n.ln, name, h, n.timeout, &n.obs)
	return serverEndpoint{n.srv}, nil
}

// Server returns the underlying server (nil before Attach).
func (n *ServerNetwork) Server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// WireStats snapshots the server's wire counters (zero before Attach).
func (n *ServerNetwork) WireStats() WireStatsSnapshot {
	n.mu.Lock()
	srv := n.srv
	n.mu.Unlock()
	if srv == nil {
		return WireStatsSnapshot{}
	}
	return srv.WireStats()
}

type serverEndpoint struct{ s *Server }

func (e serverEndpoint) Name() string { return e.s.Name() }
func (e serverEndpoint) Call(to string, req *wire.Message) (*wire.Message, error) {
	// peer.call stamps From (on a clone); nothing to do here.
	return e.s.Call(to, req)
}
func (e serverEndpoint) CallAsync(to string, req *wire.Message) *Call {
	return e.s.CallAsync(to, req)
}
func (e serverEndpoint) Close() error { return e.s.Close() }

var _ AsyncCaller = serverEndpoint{}

// DialNetwork adapts a server address into a Network: each attachment
// dials a fresh connection as the named node. It lets cache managers run
// unmodified over TCP (fleccview).
type DialNetwork struct {
	addr    string
	timeout time.Duration
	obs     Observers // joined into every dialed client's fan-out
	// DialFn, if non-nil, replaces the plain TCP dial — e.g. with a
	// secure.Dial through an encryptor/decryptor pair.
	DialFn func(addr string) (net.Conn, error)
	// Window, if > 0, bounds concurrent in-flight requests on every
	// connection this network dials (applied on Attach, and therefore
	// re-applied to each connection a reconnecting CM redials).
	Window int
}

// NewDialNetwork returns a dialing network for the given server address.
func NewDialNetwork(addr string, timeout time.Duration) *DialNetwork {
	return &DialNetwork{addr: addr, timeout: timeout}
}

// AddObserver appends an observer that sees every frame crossing any
// connection this network dials — including connections dialed before
// the observer was registered (the network's fan-out is a member of
// each client's).
func (n *DialNetwork) AddObserver(o Observer) { n.obs.Add(o) }

// SetObserver replaces the network-level observer fan-out (nil clears).
func (n *DialNetwork) SetObserver(o Observer) { n.obs.Set(o) }

// Attach implements Network by dialing the server.
func (n *DialNetwork) Attach(name string, h Handler) (Endpoint, error) {
	var c *Client
	var err error
	if n.DialFn != nil {
		var conn net.Conn
		conn, err = n.DialFn(n.addr)
		if err != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", n.addr, err)
		}
		c, err = DialConn(conn, name, h, n.timeout)
	} else {
		c, err = Dial(n.addr, name, h, n.timeout)
	}
	if err != nil {
		return nil, err
	}
	// The network-level fan-out is itself an Observer: make it a member
	// of the client's, so observers added to the network later still see
	// this connection's traffic.
	c.AddObserver(&n.obs)
	if n.Window > 0 {
		c.SetWindow(n.Window)
	}
	return c, nil
}

var _ Network = (*ServerNetwork)(nil)
var _ Network = (*DialNetwork)(nil)
var _ Endpoint = (*Client)(nil)

// Client is the dialing side: a cache manager connected to the directory
// server. Calls always go to the server regardless of the to argument
// (the star topology has a single hub); the handler serves server-initiated
// requests such as invalidations.
type Client struct {
	p       *peer
	timeout time.Duration
	stats   WireStats
}

// Dial connects to a Server at addr as node name. The handler serves
// server-initiated requests. timeout bounds calls as well as connection
// establishment — both the TCP dial and the hello handshake (0 = no
// timeout). The handshake matters: a listener whose process is wedged (or
// a backlogged socket nobody accepts on) completes the TCP connect just
// fine, so only an application-level ack proves there is a live peer.
func Dial(addr, name string, h Handler, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return DialConn(conn, name, h, timeout)
}

// handshake announces the dialer's node name with THello and waits for
// the peer's THelloAck, bounded by timeout. It runs before the client's
// read loop starts, so the frames are exchanged synchronously on conn.
func handshake(conn net.Conn, name string, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("transport: handshake deadline: %w", err)
		}
		defer conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(conn, &wire.Message{Type: wire.THello, From: name}); err != nil {
		return fmt.Errorf("transport: handshake with %s: %w", conn.RemoteAddr(), err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("transport: handshake with %s: %w", conn.RemoteAddr(), err)
	}
	if reply.Type == wire.TErr {
		// The server rejected the connection (e.g. the node name is
		// already in use by a live peer).
		return fmt.Errorf("transport: handshake with %s: %w", conn.RemoteAddr(), &wire.RemoteError{Msg: reply.Err})
	}
	if reply.Type != wire.THelloAck {
		return fmt.Errorf("transport: handshake with %s: unexpected %s", conn.RemoteAddr(), reply.Type)
	}
	return nil
}

// DialConn builds a client over an already-established connection — e.g.
// one protected by an encryptor/decryptor pair (internal/secure) when the
// PSF plan calls for privacy over an insecure link. It performs the same
// THello handshake as Dial (it used to skip it, so the server only learned
// the client's name from its first request and an early server-initiated
// invalidate got ErrUnknownNode); the connection is closed on failure.
func DialConn(conn net.Conn, name string, h Handler, timeout time.Duration) (*Client, error) {
	if err := handshake(conn, name, timeout); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{timeout: timeout}
	c.p = newPeer(name, conn, h, &c.stats)
	c.p.obs = &Observers{}
	c.p.start()
	return c, nil
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.p.name }

// AddObserver appends an observer that sees every frame crossing this
// client's connection.
func (c *Client) AddObserver(o Observer) { c.p.obs.Add(o) }

// WireStats snapshots the client connection's outbound wire counters.
func (c *Client) WireStats() WireStatsSnapshot { return c.stats.Snapshot() }

// Call implements Endpoint; the destination name is informational only
// (the star topology has a single hub), and is reported to observers.
func (c *Client) Call(to string, req *wire.Message) (*wire.Message, error) {
	return c.p.call(to, req, c.timeout)
}

// CallAsync implements AsyncCaller: it issues the request and returns a
// Call that resolves when the reply arrives. It blocks only while the
// in-flight window (SetWindow) is full. Note the client's call timeout
// does NOT apply to async calls — bound the wait with WaitTimeout.
func (c *Client) CallAsync(to string, req *wire.Message) *Call {
	return c.p.callAsync(to, req)
}

// SetWindow implements WindowSetter, bounding concurrent in-flight
// requests on this connection (0 = unlimited).
func (c *Client) SetWindow(n int) { c.p.setWindow(n) }

var _ AsyncCaller = (*Client)(nil)
var _ WindowSetter = (*Client)(nil)

// Close implements Endpoint. It waits for the client's read loop and any
// in-flight server-initiated handlers to drain.
func (c *Client) Close() error {
	c.p.shutdown(ErrClosed)
	c.p.wait()
	return nil
}
