package transport

import (
	"fmt"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// sampleBigImage builds an image with n entries for payload-size tests.
func sampleBigImage(n int) *image.Image {
	im := image.New(property.MustSet("Flights={1..10}"))
	for i := 0; i < n; i++ {
		im.Put(image.Entry{
			Key:     fmt.Sprintf("k%06d", i),
			Value:   []byte(fmt.Sprintf("payload-%d", i)),
			Version: vclock.Version(i),
			Writer:  "w",
		})
	}
	im.Version = vclock.Version(n)
	return im
}
