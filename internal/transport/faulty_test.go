package transport

import (
	"errors"
	"testing"
	"time"

	"flecc/internal/wire"
)

// faultyPair builds a Faulty-wrapped Inproc with two attached nodes and
// returns the wrapper plus the "cm" endpoint (its peer "dm" echoes).
func faultyPair(t *testing.T, seed int64) (*Faulty, Endpoint) {
	t.Helper()
	f := NewFaulty(NewInproc(), seed)
	if _, err := f.Attach("dm", echoHandler); err != nil {
		t.Fatal(err)
	}
	cm, err := f.Attach("cm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	return f, cm
}

func TestFaultyPassthrough(t *testing.T) {
	_, cm := faultyPair(t, 1)
	reply, err := cm.Call("dm", &wire.Message{Type: wire.TPull, View: "cm"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TAck || reply.View != "cm" {
		t.Fatalf("reply = %+v", reply)
	}
}

// TestFaultyDropDeterminism: the same seed and call sequence must produce
// the same drop pattern — that is what makes fault soaks reproducible.
func TestFaultyDropDeterminism(t *testing.T) {
	pattern := func() []bool {
		f, cm := faultyPair(t, 42)
		f.SetDropRate(0.3)
		out := make([]bool, 0, 50)
		for i := 0; i < 50; i++ {
			_, err := cm.Call("dm", &wire.Message{Type: wire.TPull})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A dropped=%v, run B dropped=%v", i, a[i], b[i])
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("30%% drop rate produced %d/%d drops", drops, len(a))
	}
}

func TestFaultyDropIsTransportError(t *testing.T) {
	f, cm := faultyPair(t, 1)
	f.SetDropRate(1)
	_, err := cm.Call("dm", &wire.Message{Type: wire.TPull})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !IsTransportError(err) {
		t.Fatal("injected drop must classify as a transport error")
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	f, cm := faultyPair(t, 1)
	f.Partition("dm", "cm")
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned call: %v", err)
	}
	f.Heal("cm", "dm") // either argument order heals
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestFaultyIsolateRestore(t *testing.T) {
	f, cm := faultyPair(t, 1)
	dm, _ := f.Attach("dm2", echoHandler)

	f.Isolate("cm")
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); !errors.Is(err, ErrInjected) {
		t.Fatalf("outbound from isolated node: %v", err)
	}
	if _, err := dm.Call("cm", &wire.Message{Type: wire.TInvalidate}); !errors.Is(err, ErrInjected) {
		t.Fatalf("inbound to isolated node: %v", err)
	}
	// Unrelated edges keep working.
	if _, err := dm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("unrelated edge: %v", err)
	}
	f.Restore("cm")
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("restored call: %v", err)
	}
}

func TestFaultyDisconnectNext(t *testing.T) {
	f, cm := faultyPair(t, 1)
	f.DisconnectNext("cm", "dm", 2)
	for i := 0; i < 2; i++ {
		if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); !errors.Is(err, ErrInjected) {
			t.Fatalf("shot %d: %v", i, err)
		}
	}
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("after shots exhausted: %v", err)
	}
	if got := f.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
	// The directed edge is one-way: dm->cm was never armed.
	f.DisconnectNext("cm", "dm", 1)
	dm, _ := f.Attach("dm3", echoHandler)
	if _, err := dm.Call("cm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("reverse direction must be unaffected: %v", err)
	}
}

func TestFaultyDelay(t *testing.T) {
	f, cm := faultyPair(t, 1)
	var slept time.Duration
	f.SetSleep(func(d time.Duration) { slept += d })
	f.SetDelay(7 * time.Millisecond)
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	if slept != 7*time.Millisecond {
		t.Fatalf("slept %v, want 7ms", slept)
	}
}

// TestFaultyRetryRecovers: CallRetry over a Faulty edge armed with a
// one-shot disconnect succeeds on the second attempt — the exact shape of
// a transient blip that must NOT evict a view.
func TestFaultyRetryRecovers(t *testing.T) {
	f, cm := faultyPair(t, 1)
	f.DisconnectNext("cm", "dm", 1)
	reply, err := CallRetry(cm, "dm", &wire.Message{Type: wire.TPull}, RetryPolicy{
		Attempts: 3, Base: time.Microsecond, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("retry should absorb a one-shot disconnect: %v", err)
	}
	if reply.Type != wire.TAck {
		t.Fatalf("reply = %+v", reply)
	}
}
