package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"flecc/internal/wire"
)

// benchSink counts Write calls — the syscall proxy for comparing the wire
// paths. Each Write yields to the scheduler, the way a real write syscall
// parks the goroutine in the kernel: that is exactly the window in which
// concurrent senders pile up behind the flush and coalescing pays off.
type benchSink struct {
	writes atomic.Int64
	bytes  atomic.Int64
}

func (w *benchSink) Write(p []byte) (int, error) {
	w.writes.Add(1)
	w.bytes.Add(int64(len(p)))
	runtime.Gosched()
	return len(p), nil
}

// BenchmarkCoalescedWrites compares the pre-change outbound path (every
// sender takes the write lock and issues its own Write — "direct") against
// the group-commit queue ("coalesced") with 8 concurrent senders sharing
// one link. writes/frame is the syscall ratio: 1.0 means every frame paid
// its own syscall; the coalesced path should sit well under 0.5 at this
// concurrency.
func BenchmarkCoalescedWrites(b *testing.B) {
	const senders = 8
	msg := func(i int) *wire.Message {
		return &wire.Message{Type: wire.TAck, Seq: uint64(i), From: "bench", Version: 9}
	}
	run := func(b *testing.B, send func(m *wire.Message) error, sink *benchSink) {
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/senders + 1
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := send(msg(s*per + i)); err != nil {
						b.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		b.StopTimer()
		frames := int64(senders * per)
		b.ReportMetric(float64(sink.writes.Load())/float64(frames), "writes/frame")
	}

	b.Run("direct", func(b *testing.B) {
		sink := &benchSink{}
		var mu sync.Mutex
		run(b, func(m *wire.Message) error {
			mu.Lock()
			defer mu.Unlock()
			return wire.WriteFrame(sink, m)
		}, sink)
	})
	b.Run("coalesced", func(b *testing.B) {
		sink := &benchSink{}
		q := newWriteQueue(sink, nil)
		run(b, q.send, sink)
	})
}
