package transport

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"flecc/internal/wire"
)

// WireStats counts the frames and write syscalls a connection (or a whole
// server's connection set) has issued, so deployments can observe how well
// the group-commit write path is coalescing: frames/flushes is the mean
// batch size, 1.0 meaning no concurrency to exploit.
type WireStats struct {
	frames  atomic.Int64
	flushes atomic.Int64
	bytes   atomic.Int64
	late    atomic.Int64
}

// Snapshot returns the current counter values.
func (s *WireStats) Snapshot() WireStatsSnapshot {
	if s == nil {
		return WireStatsSnapshot{}
	}
	return WireStatsSnapshot{
		Frames:      s.frames.Load(),
		Flushes:     s.flushes.Load(),
		Bytes:       s.bytes.Load(),
		LateReplies: s.late.Load(),
	}
}

// WireStatsSnapshot is a point-in-time copy of a WireStats.
type WireStatsSnapshot struct {
	// Frames is the number of frames written.
	Frames int64
	// Flushes is the number of write batches issued to the socket; each
	// batch is one write/writev syscall for all but oversized payloads.
	Flushes int64
	// Bytes is the total framed bytes written.
	Bytes int64
	// LateReplies is the number of inbound replies whose Seq matched no
	// pending call — the caller had already timed out or abandoned it —
	// and which the read loop therefore dropped.
	LateReplies int64
}

// coalesceLimit bounds the batch size the flusher memcopies into its
// scratch buffer for a single Write. Larger batches go out as one writev
// (net.Buffers) instead — copying megabytes to save iovec bookkeeping is
// a losing trade.
const coalesceLimit = 64 << 10

// maxFlushScratch caps the scratch kept between flushes, so one large
// batch does not pin its buffer for the connection's lifetime.
const maxFlushScratch = 128 << 10

// writeQueue is the group-commit outbound path of one connection. Senders
// encode their frame, append it to the queue, and wait; whichever sender
// finds no flush in progress becomes the flusher and drains everything
// queued behind it into a single write (memcpy + one Write for small
// batches, one writev for large ones). N concurrent senders therefore
// collapse into ~1 syscall instead of N, and frames go out in exactly the
// order they were enqueued.
//
// Ownership: enqueueing transfers the frame to the queue, which releases
// it after the write attempt (or on failure). A sender returns when its
// frame has been written, or with the sticky error once the queue fails.
type writeQueue struct {
	w     io.Writer
	stats *WireStats // nil disables accounting

	// onFail, if set, is invoked (without mu) when the background drainer
	// observes the queue poisoned: async frames have no blocked sender to
	// return the error to, so the owner (the peer) learns this way.
	onFail func(error)

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*wire.EncodedFrame
	enqueued uint64 // frames ever enqueued
	written  uint64 // frames flushed successfully
	flushing bool
	draining bool // a background drainer owns leftover async frames
	// corked holds the background drainer (async frames only — sync
	// senders still flush) so replies to a request burst accumulate into
	// one batch; the read loop uncorks before it blocks on input.
	corked  bool
	err     error  // sticky: first write failure or fail() reason
	scratch []byte // flush coalescing buffer; only the flusher touches it
}

func newWriteQueue(w io.Writer, stats *WireStats) *writeQueue {
	q := &writeQueue{w: w, stats: stats}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// send encodes m and writes it to the stream, possibly batched with other
// senders' frames. It returns once the frame has hit the writer (order
// preserved: frames are written in enqueue order) or the queue has failed.
func (q *writeQueue) send(m *wire.Message) error {
	f, err := wire.EncodeFrame(m)
	if err != nil {
		return err
	}
	q.mu.Lock()
	if q.err != nil {
		err := q.err
		q.mu.Unlock()
		f.Release()
		return err
	}
	q.pending = append(q.pending, f)
	my := q.enqueued
	q.enqueued++
	for {
		if q.written > my {
			q.mu.Unlock()
			return nil
		}
		if q.err != nil {
			err := q.err
			q.mu.Unlock()
			return err
		}
		if !q.flushing {
			q.flushLocked()
			continue // re-check: our frame was in the batch we just flushed
		}
		q.cond.Wait()
	}
}

// sendAsync encodes m, enqueues it, and returns without waiting for the
// write — the pipelined-call fast path. Frames enqueued while a flush is
// in flight coalesce into the next batch, so a single issuer streaming
// async calls batches its frames automatically instead of paying one
// syscall each. Because no sender blocks on an async frame, a background
// drainer is kept alive while any remain; enqueue order is still globally
// preserved across send and sendAsync. A write failure poisons the queue
// and is reported through onFail (async senders have already returned).
func (q *writeQueue) sendAsync(m *wire.Message) error {
	f, err := wire.EncodeFrame(m)
	if err != nil {
		return err
	}
	q.mu.Lock()
	if q.err != nil {
		err := q.err
		q.mu.Unlock()
		f.Release()
		return err
	}
	q.pending = append(q.pending, f)
	q.enqueued++
	if !q.draining {
		q.draining = true
		go q.drainLoop()
	}
	q.mu.Unlock()
	return nil
}

// drainSmallBatch is the batch size below which the drainer yields the
// processor once before flushing: concurrent producers that are already
// runnable (a burst of reply handlers, a pipelining issuer) get to
// enqueue, and their frames ride the same flush instead of paying one
// write syscall each. One bounded yield, not a wait — an idle connection
// still flushes its lone frame immediately after.
const drainSmallBatch = 8

// drainLoop flushes until no async frames remain, yielding to sync
// senders' in-flight flushes (their batches carry our frames too) and
// holding while the queue is corked.
func (q *writeQueue) drainLoop() {
	yielded := false
	q.mu.Lock()
	for q.err == nil && len(q.pending) > 0 {
		if q.flushing || q.corked {
			q.cond.Wait()
			continue
		}
		if !yielded && len(q.pending) < drainSmallBatch {
			yielded = true
			q.mu.Unlock()
			runtime.Gosched()
			q.mu.Lock()
			continue
		}
		yielded = false
		q.flushLocked()
	}
	q.draining = false
	err := q.err
	q.mu.Unlock()
	if err != nil && q.onFail != nil {
		q.onFail(err)
	}
}

// cork holds async flushes so frames accumulate into one batch. Sync
// sends are unaffected (they flush corked frames along with their own),
// so corking can never deadlock a sender — it only defers the drainer.
func (q *writeQueue) cork() {
	q.mu.Lock()
	q.corked = true
	q.mu.Unlock()
}

// uncork releases held frames to the drainer. The read loop calls it
// before blocking on input, bounding how long a cork can last.
func (q *writeQueue) uncork() {
	q.mu.Lock()
	q.corked = false
	q.cond.Broadcast()
	q.mu.Unlock()
}

// flushLocked takes the whole pending queue and writes it as one batch.
// Called with mu held; temporarily releases it around the write so other
// senders keep queueing behind the in-flight flush. Every pending frame
// has a sender blocked in send, so after this flush completes there is
// always another sender awake to flush whatever queued meanwhile.
func (q *writeQueue) flushLocked() {
	batch := q.pending
	q.pending = nil
	q.flushing = true
	q.mu.Unlock()

	err := q.writeBatch(batch)
	for _, f := range batch {
		f.Release()
	}

	q.mu.Lock()
	q.flushing = false
	if err != nil {
		q.failLocked(err)
	} else {
		q.written += uint64(len(batch))
	}
	q.cond.Broadcast()
}

// writeBatch issues one batch to the writer: a single Write of the
// coalesced bytes when the batch is small, a single writev (net.Buffers)
// when it is large, and the frame's own WriteTo when it stands alone.
func (q *writeQueue) writeBatch(batch []*wire.EncodedFrame) error {
	total := 0
	for _, f := range batch {
		total += f.Len()
	}
	if q.stats != nil {
		q.stats.frames.Add(int64(len(batch)))
		q.stats.flushes.Add(1)
		q.stats.bytes.Add(int64(total))
	}
	if len(batch) == 1 {
		_, err := batch[0].WriteTo(q.w)
		return err
	}
	if total <= coalesceLimit {
		buf := q.scratch[:0]
		for _, f := range batch {
			for _, seg := range f.Segments() {
				buf = append(buf, seg...)
			}
		}
		if cap(buf) <= maxFlushScratch {
			q.scratch = buf
		}
		_, err := q.w.Write(buf)
		return err
	}
	var bufs net.Buffers
	for _, f := range batch {
		bufs = append(bufs, f.Segments()...)
	}
	_, err := bufs.WriteTo(q.w)
	return err
}

// Coalescer exposes the group-commit write path over an arbitrary writer,
// for tools and benchmarks that want TCP-peer write semantics (order
// preserved, concurrent sends batched into single writes) without a peer:
// fleccbench drives it to measure the coalescing ratio.
type Coalescer struct{ q *writeQueue }

// NewCoalescer wraps w with a group-commit queue. stats may be nil.
func NewCoalescer(w io.Writer, stats *WireStats) *Coalescer {
	return &Coalescer{q: newWriteQueue(w, stats)}
}

// Send writes m, possibly batched with concurrent senders' frames; it
// returns once the frame has been written or the coalescer has failed.
func (c *Coalescer) Send(m *wire.Message) error { return c.q.send(m) }

// Fail poisons the coalescer: pending and future sends return err.
func (c *Coalescer) Fail(err error) { c.q.fail(err) }

// fail poisons the queue: queued-but-unwritten senders (and all future
// ones) get err, and their frames are released. The peer's shutdown path
// calls it so no sender blocks on a dead connection.
func (q *writeQueue) fail(err error) {
	q.mu.Lock()
	q.failLocked(err)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// failLocked records the sticky error and releases undelivered frames.
// Caller holds mu.
func (q *writeQueue) failLocked(err error) {
	if q.err == nil {
		q.err = err
	}
	for _, f := range q.pending {
		f.Release()
	}
	q.pending = nil
}
