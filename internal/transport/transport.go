// Package transport moves wire messages between named nodes.
//
// The Flecc deployment topology is a star: every cache manager exchanges
// request/reply pairs with the directory manager, and the directory manager
// initiates invalidations and updates toward cache managers. All experiments
// in the paper count these messages, so the transport layer exposes an
// Observer hook that sees every message exactly once.
//
// Three implementations share the Endpoint/Network contract:
//
//   - Inproc: synchronous in-process delivery (deterministic, used with the
//     simulated clock for all experiments);
//   - netsim (separate package): Inproc wrapped with a latency model and
//     per-link statistics;
//   - TCP (tcp.go): framed messages over stdlib net connections, for the
//     fleccd daemon and real multi-process deployments.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"flecc/internal/wire"
)

// Handler serves one incoming request and returns the reply. Handlers must
// not retain req or the returned message after returning; endpoints may
// reuse them. A nil reply is converted to a bare TAck.
type Handler func(req *wire.Message) *wire.Message

// Endpoint is a named node attached to a network.
type Endpoint interface {
	// Name returns the node name used as the message From field.
	Name() string
	// Call sends req to the named node and waits for its reply. The
	// endpoint assigns req.Seq and req.From.
	Call(to string, req *wire.Message) (*wire.Message, error)
	// Close detaches the endpoint; subsequent Calls fail, and calls to the
	// endpoint fail at the caller.
	Close() error
}

// Network attaches named endpoints.
type Network interface {
	// Attach registers a node. The handler serves requests addressed to
	// name. Attach fails if the name is taken.
	Attach(name string, h Handler) (Endpoint, error)
}

// Observer sees every delivered message: requests as they arrive at the
// callee, replies as they return to the caller. On an in-process network
// that is exactly once per message system-wide; on TCP each process
// observes every frame crossing its own wire once (sent and received),
// which is the complete local view a daemon's stats and tracer need.
// Implementations must be safe for concurrent use when the network is
// used concurrently. Networks carry an Observers fan-out, so several
// observers can watch the same traffic; see Observers for ordering.
type Observer interface {
	// OnMessage is invoked once per message with the sending and receiving
	// node names.
	OnMessage(from, to string, m *wire.Message)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(from, to string, m *wire.Message)

// OnMessage implements Observer.
func (f ObserverFunc) OnMessage(from, to string, m *wire.Message) { f(from, to, m) }

// Errors returned by transports.
var (
	// ErrClosed indicates the endpoint (or its peer) has been closed.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnknownNode indicates the destination name is not attached.
	ErrUnknownNode = errors.New("transport: unknown destination node")
	// ErrNameTaken indicates Attach was called with a duplicate name.
	ErrNameTaken = errors.New("transport: node name already attached")
)

// Inproc is a synchronous in-process Network. A Call runs the callee's
// handler on the caller's goroutine, which makes protocol runs fully
// deterministic when driven single-threaded — the property the experiment
// harness relies on. Inproc is nevertheless safe for concurrent use.
type Inproc struct {
	mu    sync.RWMutex
	nodes map[string]*inprocEndpoint
	seq   atomic.Uint64
	obs   Observers
	// BeforeDeliver, if set, runs before each message is delivered (both
	// requests and replies). The netsim package uses it to charge latency
	// to the virtual clock.
	beforeDeliver func(from, to string, m *wire.Message)
	// faults, if set, may reject a request before delivery.
	faults func(from, to string, m *wire.Message) error
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{nodes: map[string]*inprocEndpoint{}}
}

// SetObserver replaces the observer fan-out with the single observer o
// (nil disables). Safe to call concurrently with traffic.
func (n *Inproc) SetObserver(o Observer) { n.obs.Set(o) }

// AddObserver appends an observer to the fan-out, so stats, tracing, and
// user hooks coexist. Safe to call concurrently with traffic.
func (n *Inproc) AddObserver(o Observer) { n.obs.Add(o) }

// SetBeforeDeliver installs a pre-delivery hook (nil disables). Not safe to
// call concurrently with traffic.
func (n *Inproc) SetBeforeDeliver(fn func(from, to string, m *wire.Message)) {
	n.beforeDeliver = fn
}

// SetFaultInjector installs a hook that may reject requests with an error
// before they reach the callee (nil disables). Used by failure-injection
// tests.
func (n *Inproc) SetFaultInjector(fn func(from, to string, m *wire.Message) error) {
	n.faults = fn
}

// Attach implements Network.
func (n *Inproc) Attach(name string, h Handler) (Endpoint, error) {
	if name == "" {
		return nil, fmt.Errorf("transport: empty node name")
	}
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	ep := &inprocEndpoint{net: n, name: name, handler: h}
	n.nodes[name] = ep
	return ep, nil
}

// Detach removes a node by name (idempotent).
func (n *Inproc) Detach(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, name)
}

// Nodes returns the currently attached node names (unordered).
func (n *Inproc) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	return out
}

func (n *Inproc) lookup(name string) (*inprocEndpoint, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.nodes[name]
	return ep, ok
}

type inprocEndpoint struct {
	net     *Inproc
	name    string
	handler Handler
	closed  atomic.Bool
}

func (e *inprocEndpoint) Name() string { return e.name }

func (e *inprocEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		e.net.Detach(e.name)
	}
	return nil
}

func (e *inprocEndpoint) Call(to string, req *wire.Message) (*wire.Message, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("%w: %s", ErrClosed, e.name)
	}
	callee, ok := e.net.lookup(to)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	// Stamp a shallow clone: the caller may retry the same message after a
	// failure, or hand it to another endpoint, and must not observe the
	// transport's Seq/From writes.
	r := *req
	req = &r
	req.Seq = e.net.seq.Add(1)
	req.From = e.name
	if f := e.net.faults; f != nil {
		if err := f(e.name, to, req); err != nil {
			return nil, err
		}
	}
	if bd := e.net.beforeDeliver; bd != nil {
		bd(e.name, to, req)
	}
	e.net.obs.OnMessage(e.name, to, req)
	if callee.closed.Load() {
		return nil, fmt.Errorf("%w: %s", ErrClosed, to)
	}
	reply := callee.handler(req)
	if reply == nil {
		reply = &wire.Message{Type: wire.TAck}
	}
	reply.Seq = req.Seq
	reply.From = to
	if bd := e.net.beforeDeliver; bd != nil {
		bd(to, e.name, reply)
	}
	e.net.obs.OnMessage(to, e.name, reply)
	if err := wire.ErrorOf(reply); err != nil {
		return reply, err
	}
	return reply, nil
}
