package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flecc/internal/wire"
)

func newTestServer(t *testing.T, h Handler) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, "dm", h, 5*time.Second)
	t.Cleanup(func() { s.Close() })
	return s
}

func dialTest(t *testing.T, s *Server, name string, h Handler) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), name, h, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTCPRequestReply(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: req.Since + 1}
	})
	c := dialTest(t, s, "cm1", echoHandler)
	reply, err := c.Call("dm", &wire.Message{Type: wire.TPull, Since: 41})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Version != 42 || reply.From != "dm" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestTCPServerLearnsClientNames(t *testing.T) {
	s := newTestServer(t, echoHandler)
	c := dialTest(t, s, "agent-7", echoHandler)
	if _, err := c.Call("dm", &wire.Message{Type: wire.TRegister, View: "agent-7"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		names := s.Clients()
		if len(names) == 1 && names[0] == "agent-7" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients = %v", names)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPServerInitiatedCall(t *testing.T) {
	s := newTestServer(t, echoHandler)
	invalidated := make(chan string, 1)
	c := dialTest(t, s, "cm1", func(req *wire.Message) *wire.Message {
		if req.Type == wire.TInvalidate {
			invalidated <- req.View
			return &wire.Message{Type: wire.TImage}
		}
		return nil
	})
	// Client must speak first so the server learns its name.
	if _, err := c.Call("dm", &wire.Message{Type: wire.TRegister}); err != nil {
		t.Fatal(err)
	}
	var reply *wire.Message
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		reply, err = s.Call("cm1", &wire.Message{Type: wire.TInvalidate, View: "cm1"})
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TImage {
		t.Fatalf("reply = %+v", reply)
	}
	select {
	case v := <-invalidated:
		if v != "cm1" {
			t.Fatalf("invalidated view = %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("invalidate handler never ran")
	}
}

func TestTCPNestedCallDuringServe(t *testing.T) {
	// Server handler calls back to the requesting client mid-request —
	// exactly what the DM does when a pull triggers an invalidation of
	// another view; here the "other view" is the same client for
	// simplicity of plumbing.
	var s *Server
	s = newTestServer(t, func(req *wire.Message) *wire.Message {
		if req.Type == wire.TPull {
			reply, err := s.Call(req.From, &wire.Message{Type: wire.TInvalidate})
			if err != nil || reply.Type != wire.TImage {
				return &wire.Message{Type: wire.TErr, Err: "nested call failed"}
			}
		}
		return &wire.Message{Type: wire.TAck}
	})
	c := dialTest(t, s, "cm1", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage}
	})
	// Prime the name mapping.
	if _, err := c.Call("dm", &wire.Message{Type: wire.TRegister}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Call("dm", &wire.Message{Type: wire.TPull})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TAck {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestTCPCallToUnknownClient(t *testing.T) {
	s := newTestServer(t, echoHandler)
	if _, err := s.Call("ghost", &wire.Message{Type: wire.TUpdate}); err == nil {
		t.Fatal("call to unconnected client should fail")
	}
}

func TestTCPErrReply(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TErr, Err: "denied"}
	})
	c := dialTest(t, s, "cm1", echoHandler)
	_, err := c.Call("dm", &wire.Message{Type: wire.TAcquire})
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPHandlerPanicBecomesErr(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		panic("kaboom")
	})
	c := dialTest(t, s, "cm1", echoHandler)
	_, err := c.Call("dm", &wire.Message{Type: wire.TInit})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPClientCloseFailsCalls(t *testing.T) {
	s := newTestServer(t, echoHandler)
	c := dialTest(t, s, "cm1", echoHandler)
	c.Close()
	if _, err := c.Call("dm", &wire.Message{Type: wire.TInit}); err == nil {
		t.Fatal("call after close should fail")
	}
}

func TestTCPServerCloseDisconnectsClients(t *testing.T) {
	s := newTestServer(t, echoHandler)
	c := dialTest(t, s, "cm1", echoHandler)
	if _, err := c.Call("dm", &wire.Message{Type: wire.TRegister}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client calls should fail after server close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, View: req.View}
	})
	const clients, calls = 6, 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		name := "cm" + string(rune('a'+i))
		c := dialTest(t, s, name, echoHandler)
		wg.Add(1)
		go func(c *Client, name string) {
			defer wg.Done()
			for j := 0; j < calls; j++ {
				reply, err := c.Call("dm", &wire.Message{Type: wire.TPull, View: name})
				if err != nil {
					t.Error(err)
					return
				}
				if reply.View != name {
					t.Errorf("cross-wired reply: got %q want %q", reply.View, name)
					return
				}
			}
		}(c, name)
	}
	wg.Wait()
}

func TestTCPLargePayload(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage, Img: req.Img}
	})
	c := dialTest(t, s, "cm1", echoHandler)
	img := sampleBigImage(2000)
	reply, err := c.Call("dm", &wire.Message{Type: wire.TPush, Img: img})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Img == nil || reply.Img.Len() != img.Len() {
		t.Fatalf("image did not round trip: %v", reply.Img)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "cm", echoHandler, time.Second); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

// TestDialTimeoutAgainstNonAcceptingListener covers the failure mode the
// hello handshake exists for: a listening socket whose owner never
// accepts. The kernel completes the TCP connect (backlog), so only the
// unanswered hello reveals that nothing is serving — Dial must give up
// within its timeout instead of hanging.
func TestDialTimeoutAgainstNonAcceptingListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Deliberately never ln.Accept().

	start := time.Now()
	c, err := Dial(ln.Addr().String(), "v1", nil, 200*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Fatal("Dial should fail against a non-accepting listener")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Dial took %v; the timeout did not bound the handshake", elapsed)
	}
}

// TestDialHandshake checks the happy path: the hello is answered by the
// peer read loop and teaches the server the client's name before any
// protocol message flows, so server-initiated calls work immediately.
func TestDialHandshake(t *testing.T) {
	s := newTestServer(t, func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck}
	})
	got := make(chan *wire.Message, 1)
	c, err := Dial(s.Addr().String(), "v1", func(req *wire.Message) *wire.Message {
		got <- req
		return &wire.Message{Type: wire.TAck}
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The handshake alone must register the client with the server.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if names := s.Clients(); len(names) == 1 && names[0] == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server clients = %v, want [v1]", s.Clients())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Call("v1", &wire.Message{Type: wire.TInvalidate, View: "v1"}); err != nil {
		t.Fatal(err)
	}
	req := <-got
	if req.Type != wire.TInvalidate {
		t.Fatalf("client saw %s", req.Type)
	}
}
