package transport

import (
	"net"
	"testing"
	"time"

	"flecc/internal/secure"
	"flecc/internal/wire"
)

// TestProtocolOverSecureLink runs the framed transport through an
// encryptor/decryptor pair (the PSF privacy deployment): request/reply and
// server-initiated calls both traverse the sealed link, and a client with
// the wrong key cannot talk at all.
func TestProtocolOverSecureLink(t *testing.T) {
	pair := secure.NewPair([]byte("insecure-link-hub-edge1"))
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := secure.NewListener(raw, pair)
	srv := Serve(ln, "dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: req.Since + 1}
	}, 5*time.Second)
	defer srv.Close()

	conn, err := secure.Dial(raw.Addr().String(), pair)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialConn(conn, "cm1", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage}
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.Call("dm", &wire.Message{Type: wire.TPull, Since: 9})
	if err != nil || reply.Version != 10 {
		t.Fatalf("reply = %+v, err = %v", reply, err)
	}
	// Server-initiated call through the sealed link: DialConn's handshake
	// registered "cm1" with the server before any request traffic, so the
	// very first server-initiated call resolves the name.
	reply, err = srv.Call("cm1", &wire.Message{Type: wire.TInvalidate})
	if err != nil || reply.Type != wire.TImage {
		t.Fatalf("server call: %+v, %v", reply, err)
	}

	// A client with the wrong key cannot even complete the handshake.
	wrong, err := secure.Dial(raw.Addr().String(), secure.NewPair([]byte("wrong")))
	if err != nil {
		t.Fatal(err)
	}
	if bad, err := DialConn(wrong, "mallory", echoHandler, 500*time.Millisecond); err == nil {
		bad.Close()
		t.Fatal("wrong-key client should not complete the handshake")
	}
}
