package transport

import (
	"fmt"
	"time"

	"flecc/internal/wire"
)

// Call is one pipelined request in flight on a peer connection: the
// future half of a Seq-correlated request/reply pair. A Call resolves
// exactly once — when the matching reply arrives, when the caller
// abandons it (timeout), or when the peer shuts down — and every
// resolution path routes through the peer's pending map under its mutex,
// so a reply racing a timeout is never delivered twice and a reply
// arriving after abandonment is counted and dropped by the read loop.
type Call struct {
	p   *peer // nil for calls resolved at construction
	seq uint64

	// done is closed at resolution; reply/err are written before the
	// close and must only be read after it.
	done  chan struct{}
	reply *wire.Message
	err   error
}

// resolvedCall builds an already-resolved Call (immediate failures, and
// synchronous transports whose delivery completes before CallAsync
// returns).
func resolvedCall(reply *wire.Message, err error) *Call {
	c := &Call{done: make(chan struct{}), reply: reply, err: err}
	close(c.done)
	return c
}

// Done returns a channel closed when the call has resolved.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks until the call resolves and returns its reply. Like
// Endpoint.Call, a TErr reply comes back as the reply plus a
// wire.RemoteError.
func (c *Call) Wait() (*wire.Message, error) { return c.wait(0) }

// WaitTimeout is Wait bounded by d (0 = no bound). On timeout the call
// is abandoned: its window slot is released and a reply arriving later
// is dropped by the read loop as unmatched.
func (c *Call) WaitTimeout(d time.Duration) (*wire.Message, error) { return c.wait(d) }

func (c *Call) wait(timeout time.Duration) (*wire.Message, error) {
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-c.done:
		case <-t.C:
			// Resolve-or-lose: if the reply won the race, finish is a
			// no-op and the real reply below is returned.
			if c.p != nil {
				c.p.finish(c, nil, fmt.Errorf("transport: call to peer timed out after %v", timeout))
			}
			<-c.done
		}
	} else {
		<-c.done
	}
	if c.err != nil {
		return c.reply, c.err
	}
	if err := wire.ErrorOf(c.reply); err != nil {
		return c.reply, err
	}
	return c.reply, nil
}

// AsyncCaller is implemented by endpoints that support windowed
// pipelining: CallAsync issues a request without waiting for its reply,
// so one connection carries many concurrent requests. On synchronous
// transports (Inproc, netsim) the returned Call is already resolved —
// code written against the async API runs there deterministically, it
// just does not overlap requests.
type AsyncCaller interface {
	CallAsync(to string, req *wire.Message) *Call
}

// WindowSetter is implemented by endpoints whose in-flight request
// window can be bounded.
type WindowSetter interface {
	// SetWindow bounds the number of unresolved outbound requests
	// (0 = unlimited). When the window is full, Call and CallAsync block
	// until a slot frees.
	SetWindow(n int)
}

// CallAsync implements AsyncCaller; delivery on Inproc is synchronous
// (the callee's handler runs on the caller's goroutine), so the returned
// Call is already resolved.
func (e *inprocEndpoint) CallAsync(to string, req *wire.Message) *Call {
	reply, err := e.Call(to, req)
	return resolvedCall(reply, err)
}

var _ AsyncCaller = (*inprocEndpoint)(nil)
