package transport

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"flecc/internal/wire"
)

// TestTCPDuplicateNameRejected: a second connection claiming a live name
// must be refused at the handshake instead of hijacking the registration,
// and the original peer keeps working.
func TestTCPDuplicateNameRejected(t *testing.T) {
	s := newTestServer(t, echoHandler)
	c1 := dialTest(t, s, "cm1", echoHandler)

	if _, err := Dial(s.Addr().String(), "cm1", echoHandler, 5*time.Second); err == nil {
		t.Fatal("second dial under a live name must fail")
	} else if !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("rejection reason: %v", err)
	}

	// The original holder is unaffected.
	if _, err := c1.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("original client broken by impostor: %v", err)
	}

	// Once the holder goes away, the name is reusable — that is what a
	// reconnecting cache manager does after its old link died.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c2, err := Dial(s.Addr().String(), "cm1", echoHandler, 5*time.Second)
		if err == nil {
			defer c2.Close()
			if _, err := c2.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
				t.Fatalf("reconnected client: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("name never became reusable: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPServerCloseDrainsGoroutines: Close must wait for the accept loop
// and every peer's read/serve goroutines, not strand them.
func TestTCPServerCloseDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, "dm", echoHandler, 5*time.Second)
	var clients []*Client
	for _, name := range []string{"cm1", "cm2", "cm3"} {
		c, err := Dial(s.Addr().String(), name, echoHandler, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if _, err := c.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		c.Close()
	}
	s.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCallDoesNotMutateCallerMessage: transports stamp Seq/From on a clone,
// so a caller can safely reuse one request across retries (and the race
// detector stays quiet when a retry overlaps a slow first attempt).
func TestCallDoesNotMutateCallerMessage(t *testing.T) {
	t.Run("inproc", func(t *testing.T) {
		n := NewInproc()
		n.Attach("dm", echoHandler)
		cm, _ := n.Attach("cm1", echoHandler)
		req := &wire.Message{Type: wire.TPull, Since: 7}
		if _, err := cm.Call("dm", req); err != nil {
			t.Fatal(err)
		}
		if req.Seq != 0 || req.From != "" {
			t.Fatalf("caller's message mutated: Seq=%d From=%q", req.Seq, req.From)
		}
	})
	t.Run("tcp", func(t *testing.T) {
		s := newTestServer(t, echoHandler)
		c := dialTest(t, s, "cm1", echoHandler)
		req := &wire.Message{Type: wire.TPull, Since: 7}
		if _, err := c.Call("dm", req); err != nil {
			t.Fatal(err)
		}
		if req.Seq != 0 || req.From != "" {
			t.Fatalf("caller's message mutated: Seq=%d From=%q", req.Seq, req.From)
		}
	})
}
