package transport

import (
	"net"
	"testing"
	"time"

	"flecc/internal/wire"
)

func TestServerAndDialNetworks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snet := NewServerNetwork(ln, 5*time.Second)
	dmEp, err := snet.Attach("dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: 7}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dmEp.Close()
	if dmEp.Name() != "dm" || snet.Server() == nil {
		t.Fatal("server attachment")
	}
	// Second attach fails.
	if _, err := snet.Attach("dm2", echoHandler); err == nil {
		t.Fatal("second attach should fail")
	}

	dnet := NewDialNetwork(ln.Addr().String(), 5*time.Second)
	cmEp, err := dnet.Attach("cm1", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cmEp.Close()
	reply, err := cmEp.Call("dm", &wire.Message{Type: wire.TPull})
	if err != nil || reply.Version != 7 {
		t.Fatalf("reply = %+v, err = %v", reply, err)
	}
	// Server-initiated call back to the client works through the adapter.
	deadline := time.Now().Add(2 * time.Second)
	for {
		reply, err = dmEp.Call("cm1", &wire.Message{Type: wire.TInvalidate})
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil || reply.Type != wire.TImage {
		t.Fatalf("server->client call: %+v, %v", reply, err)
	}
}
