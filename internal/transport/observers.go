package transport

import (
	"sync"
	"sync/atomic"

	"flecc/internal/wire"
)

// Observers is a composable observer fan-out: it is itself an Observer
// that forwards every message to each registered observer, in
// registration order. Every transport in this repository (Inproc, the
// TCP server/dial networks, Faulty, and the shard bridge) carries one,
// so message statistics, tracing, span correlation, and user hooks can
// coexist instead of displacing each other through a single SetObserver
// slot.
//
// Ordering guarantees: for any one delivered message, observers fire
// sequentially in registration order, on the delivering goroutine,
// before the next protocol step runs. Observers therefore see messages
// in the same order the transport delivers them; they must not block,
// and must be safe for concurrent use when the network is.
//
// Add and Set are safe to call concurrently with traffic: the observer
// list is swapped atomically, and in-flight deliveries finish against
// the snapshot they started with. The zero value is an empty fan-out.
type Observers struct {
	mu   sync.Mutex // serializes mutation; reads go through list
	list atomic.Pointer[[]Observer]
}

// Add appends an observer to the fan-out (nil is ignored).
func (s *Observers) Add(o Observer) {
	if o == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snapshot()
	next := make([]Observer, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = o
	s.list.Store(&next)
}

// Set replaces the whole fan-out with the single observer o (nil clears
// it). It preserves the semantics of the historical single-slot
// SetObserver methods, which now delegate here.
func (s *Observers) Set(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.list.Store(nil)
		return
	}
	next := []Observer{o}
	s.list.Store(&next)
}

// Len returns the number of registered observers.
func (s *Observers) Len() int { return len(s.snapshot()) }

// OnMessage implements Observer by fanning the message out in
// registration order.
func (s *Observers) OnMessage(from, to string, m *wire.Message) {
	for _, o := range s.snapshot() {
		o.OnMessage(from, to, m)
	}
}

func (s *Observers) snapshot() []Observer {
	if p := s.list.Load(); p != nil {
		return *p
	}
	return nil
}

// ObservableNetwork is a Network that carries an observer fan-out.
// Inproc, ServerNetwork, DialNetwork, Faulty, and the shard bridge all
// implement it, so deployment code can attach stats and tracers without
// knowing which transport it holds.
type ObservableNetwork interface {
	Network
	// AddObserver appends an observer to the network's fan-out.
	AddObserver(Observer)
	// SetObserver replaces the fan-out with the single observer (nil
	// clears). Kept for compatibility with the old single-slot API.
	SetObserver(Observer)
}
