package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"flecc/internal/wire"
)

func echoHandler(req *wire.Message) *wire.Message {
	return &wire.Message{Type: wire.TAck, View: req.View}
}

func TestInprocCall(t *testing.T) {
	n := NewInproc()
	_, err := n.Attach("dm", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := n.Attach("cm1", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := cm.Call("dm", &wire.Message{Type: wire.TPull, View: "cm1"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TAck || reply.View != "cm1" || reply.From != "dm" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestInprocSeqAndFromAssigned(t *testing.T) {
	n := NewInproc()
	var seen *wire.Message
	n.Attach("dm", func(req *wire.Message) *wire.Message {
		seen = &wire.Message{Seq: req.Seq, From: req.From}
		return nil
	})
	cm, _ := n.Attach("cm1", echoHandler)
	reply, err := cm.Call("dm", &wire.Message{Type: wire.TInit})
	if err != nil {
		t.Fatal(err)
	}
	if seen.Seq == 0 || seen.From != "cm1" {
		t.Fatalf("request metadata: %+v", seen)
	}
	if reply.Seq != seen.Seq {
		t.Fatal("reply seq should echo request seq")
	}
}

func TestInprocNilReplyBecomesAck(t *testing.T) {
	n := NewInproc()
	n.Attach("dm", func(req *wire.Message) *wire.Message { return nil })
	cm, _ := n.Attach("cm1", echoHandler)
	reply, err := cm.Call("dm", &wire.Message{Type: wire.TRelease})
	if err != nil || reply.Type != wire.TAck {
		t.Fatalf("reply = %+v, err = %v", reply, err)
	}
}

func TestInprocUnknownNode(t *testing.T) {
	n := NewInproc()
	cm, _ := n.Attach("cm1", echoHandler)
	_, err := cm.Call("nobody", &wire.Message{Type: wire.TInit})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocDuplicateName(t *testing.T) {
	n := NewInproc()
	n.Attach("x", echoHandler)
	if _, err := n.Attach("x", echoHandler); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocAttachValidation(t *testing.T) {
	n := NewInproc()
	if _, err := n.Attach("", echoHandler); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := n.Attach("y", nil); err == nil {
		t.Fatal("nil handler should fail")
	}
}

func TestInprocClose(t *testing.T) {
	n := NewInproc()
	dm, _ := n.Attach("dm", echoHandler)
	cm, _ := n.Attach("cm1", echoHandler)
	dm.Close()
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TInit}); err == nil {
		t.Fatal("call to detached node should fail")
	}
	cm.Close()
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TInit}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if len(n.Nodes()) != 0 {
		t.Fatalf("nodes = %v", n.Nodes())
	}
}

func TestInprocErrReplyBecomesError(t *testing.T) {
	n := NewInproc()
	n.Attach("dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TErr, Err: "nope"}
	})
	cm, _ := n.Attach("cm1", echoHandler)
	reply, err := cm.Call("dm", &wire.Message{Type: wire.TInit})
	if err == nil {
		t.Fatal("TErr should surface as error")
	}
	if reply == nil || reply.Type != wire.TErr {
		t.Fatal("reply should still carry the TErr message")
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err type = %T", err)
	}
}

func TestInprocObserverSeesBothDirections(t *testing.T) {
	n := NewInproc()
	var mu sync.Mutex
	var log []string
	n.SetObserver(ObserverFunc(func(from, to string, m *wire.Message) {
		mu.Lock()
		log = append(log, from+"->"+to+":"+m.Type.String())
		mu.Unlock()
	}))
	n.Attach("dm", echoHandler)
	cm, _ := n.Attach("cm1", echoHandler)
	cm.Call("dm", &wire.Message{Type: wire.TPull})
	if len(log) != 2 || log[0] != "cm1->dm:pull" || log[1] != "dm->cm1:ack" {
		t.Fatalf("observer log = %v", log)
	}
}

func TestInprocNestedCall(t *testing.T) {
	// DM's handler calls back into another CM while serving — the pattern
	// used by invalidations. Must not deadlock.
	n := NewInproc()
	var dmEp Endpoint
	n.Attach("cm2", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage}
	})
	dmEp, _ = n.Attach("dm", nil)
	_ = dmEp
	// Re-attach dm with a handler that performs a nested call.
	n.Detach("dm")
	dmEp2, _ := n.Attach("dm", func(req *wire.Message) *wire.Message {
		return nil
	})
	_ = dmEp2
	n.Detach("dm")
	var dm Endpoint
	dm, err := n.Attach("dm", func(req *wire.Message) *wire.Message {
		reply, err := dm.Call("cm2", &wire.Message{Type: wire.TInvalidate, View: "cm2"})
		if err != nil || reply.Type != wire.TImage {
			return &wire.Message{Type: wire.TErr, Err: "nested call failed"}
		}
		return &wire.Message{Type: wire.TAck}
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := n.Attach("cm1", echoHandler)
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
}

func TestInprocFaultInjection(t *testing.T) {
	n := NewInproc()
	n.Attach("dm", echoHandler)
	cm, _ := n.Attach("cm1", echoHandler)
	boom := errors.New("link down")
	n.SetFaultInjector(func(from, to string, m *wire.Message) error {
		if m.Type == wire.TPush {
			return boom
		}
		return nil
	})
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPush}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("pull should pass: %v", err)
	}
}

func TestInprocConcurrentCalls(t *testing.T) {
	n := NewInproc()
	var served atomic.Int64
	n.Attach("dm", func(req *wire.Message) *wire.Message {
		served.Add(1)
		return nil
	})
	const workers, calls = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		name := "cm" + string(rune('0'+w))
		ep, err := n.Attach(name, echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := ep.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	if served.Load() != workers*calls {
		t.Fatalf("served %d, want %d", served.Load(), workers*calls)
	}
}

func TestInprocBeforeDeliverHook(t *testing.T) {
	n := NewInproc()
	var hops atomic.Int64
	n.SetBeforeDeliver(func(from, to string, m *wire.Message) { hops.Add(1) })
	n.Attach("dm", echoHandler)
	cm, _ := n.Attach("cm1", echoHandler)
	cm.Call("dm", &wire.Message{Type: wire.TPull})
	if hops.Load() != 2 {
		t.Fatalf("hops = %d, want 2 (request + reply)", hops.Load())
	}
}
