package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flecc/internal/wire"
)

// ErrInjected marks a failure produced by a Faulty network rather than a
// real transport. It still satisfies IsTransportError, so the protocol's
// retry/reconnect/evict machinery treats it like any other outage.
var ErrInjected = errors.New("transport: injected fault")

// Faulty wraps any Network with deterministic fault injection: seeded
// random drops, fixed delays, one-shot disconnects on a directed edge,
// bidirectional partitions between node pairs, and whole-node isolation
// (a crashed process). It generalizes Inproc.SetFaultInjector to every
// transport — Inproc, TCP dial/server networks, and the shard bridge all
// satisfy Network, so they can all run the protocol suite under faults.
//
// Faults fire before delivery: a dropped request never reaches the callee,
// so at-most-once semantics hold for injected failures and invariant
// checks in fault soaks stay exact. Determinism requires the usual Inproc
// discipline (drive calls from one goroutine); the drop decisions then
// consume the seeded stream in a fixed order.
type Faulty struct {
	inner Network
	// obs is the local observer fan-out, used only when the wrapped
	// network is not itself observable; see AddObserver.
	obs Observers

	mu       sync.Mutex
	rng      *rand.Rand
	drop     float64
	delay    time.Duration
	edges    map[[2]string]time.Duration
	parts    map[[2]string]bool
	isolated map[string]bool
	oneshot  map[[2]string]int
	injected int64
	sleep    func(time.Duration)
}

// NewFaulty wraps inner with a fault injector seeded for reproducible
// drop decisions. A fresh Faulty injects nothing until configured.
func NewFaulty(inner Network, seed int64) *Faulty {
	return &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		edges:    map[[2]string]time.Duration{},
		parts:    map[[2]string]bool{},
		isolated: map[string]bool{},
		oneshot:  map[[2]string]int{},
	}
}

// Attach implements Network: the returned endpoint routes every Call
// through the injector before handing it to the wrapped network.
func (f *Faulty) Attach(name string, h Handler) (Endpoint, error) {
	ep, err := f.inner.Attach(name, h)
	if err != nil {
		return nil, err
	}
	return &faultyEndpoint{net: f, inner: ep}, nil
}

// AddObserver appends a message observer. When the wrapped network is
// itself observable (Inproc, the TCP networks, the shard bridge), the
// observer is registered there, so it sees messages with their final
// Seq/From stamps and injected failures cost nothing extra. Otherwise
// the Faulty endpoints observe locally: requests just before they enter
// the inner network (Seq not yet stamped) and replies as they return.
// Either way, dropped calls are never observed — a dropped request never
// reached the callee.
func (f *Faulty) AddObserver(o Observer) {
	if on, ok := f.inner.(ObservableNetwork); ok {
		on.AddObserver(o)
		return
	}
	f.obs.Add(o)
}

// SetObserver replaces the observer fan-out (nil clears), delegating to
// the wrapped network when it is observable; see AddObserver.
func (f *Faulty) SetObserver(o Observer) {
	if on, ok := f.inner.(ObservableNetwork); ok {
		on.SetObserver(o)
		return
	}
	f.obs.Set(o)
}

// SetDropRate makes each call fail with probability p (clamped to [0,1])
// before delivery.
func (f *Faulty) SetDropRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.mu.Lock()
	f.drop = p
	f.mu.Unlock()
}

// SetDelay adds a fixed latency to every delivered call.
func (f *Faulty) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// SetEdgeDelay adds a latency to every call on the directed edge from→to,
// on top of the global SetDelay — the shape of one slow member in an
// otherwise healthy group. d <= 0 removes the edge delay.
func (f *Faulty) SetEdgeDelay(from, to string, d time.Duration) {
	f.mu.Lock()
	if d <= 0 {
		delete(f.edges, [2]string{from, to})
	} else {
		f.edges[[2]string{from, to}] = d
	}
	f.mu.Unlock()
}

// SetSleep replaces the delay's time.Sleep (tests).
func (f *Faulty) SetSleep(fn func(time.Duration)) {
	f.mu.Lock()
	f.sleep = fn
	f.mu.Unlock()
}

// Partition cuts both directions between two nodes (e.g. one DM↔CM pair)
// until Heal.
func (f *Faulty) Partition(a, b string) {
	f.mu.Lock()
	f.parts[[2]string{a, b}] = true
	f.parts[[2]string{b, a}] = true
	f.mu.Unlock()
}

// Heal removes a partition (idempotent).
func (f *Faulty) Heal(a, b string) {
	f.mu.Lock()
	delete(f.parts, [2]string{a, b})
	delete(f.parts, [2]string{b, a})
	f.mu.Unlock()
}

// HealAll removes every partition and isolation.
func (f *Faulty) HealAll() {
	f.mu.Lock()
	f.parts = map[[2]string]bool{}
	f.isolated = map[string]bool{}
	f.mu.Unlock()
}

// Isolate cuts every edge touching the named node — the observable
// signature of a crashed process whose endpoint is still registered.
func (f *Faulty) Isolate(name string) {
	f.mu.Lock()
	f.isolated[name] = true
	f.mu.Unlock()
}

// Restore undoes Isolate (idempotent).
func (f *Faulty) Restore(name string) {
	f.mu.Lock()
	delete(f.isolated, name)
	f.mu.Unlock()
}

// DisconnectNext fails the next n calls on the directed edge from→to —
// a one-shot (or n-shot) disconnect for exercising retry paths.
func (f *Faulty) DisconnectNext(from, to string, n int) {
	f.mu.Lock()
	if n <= 0 {
		delete(f.oneshot, [2]string{from, to})
	} else {
		f.oneshot[[2]string{from, to}] = n
	}
	f.mu.Unlock()
}

// Injected returns how many calls the injector has failed so far.
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// inject decides one call's fate; a non-nil error means the call fails
// without reaching the callee. It also returns the delay to apply.
func (f *Faulty) inject(from, to string) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case f.isolated[from]:
		f.injected++
		return 0, fmt.Errorf("%w: node %s is isolated", ErrInjected, from)
	case f.isolated[to]:
		f.injected++
		return 0, fmt.Errorf("%w: node %s is isolated", ErrInjected, to)
	case f.parts[[2]string{from, to}]:
		f.injected++
		return 0, fmt.Errorf("%w: %s and %s are partitioned", ErrInjected, from, to)
	}
	if n := f.oneshot[[2]string{from, to}]; n > 0 {
		if n == 1 {
			delete(f.oneshot, [2]string{from, to})
		} else {
			f.oneshot[[2]string{from, to}] = n - 1
		}
		f.injected++
		return 0, fmt.Errorf("%w: connection %s->%s reset", ErrInjected, from, to)
	}
	if f.drop > 0 && f.rng.Float64() < f.drop {
		f.injected++
		return 0, fmt.Errorf("%w: dropped %s->%s", ErrInjected, from, to)
	}
	return f.delay + f.edges[[2]string{from, to}], nil
}

type faultyEndpoint struct {
	net   *Faulty
	inner Endpoint
}

func (e *faultyEndpoint) Name() string { return e.inner.Name() }
func (e *faultyEndpoint) Close() error { return e.inner.Close() }

func (e *faultyEndpoint) Call(to string, req *wire.Message) (*wire.Message, error) {
	delay, err := e.net.inject(e.inner.Name(), to)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		e.net.mu.Lock()
		sleep := e.net.sleep
		e.net.mu.Unlock()
		if sleep != nil {
			sleep(delay)
		} else {
			time.Sleep(delay)
		}
	}
	if e.net.obs.Len() == 0 {
		return e.inner.Call(to, req)
	}
	e.net.obs.OnMessage(e.inner.Name(), to, req)
	reply, err := e.inner.Call(to, req)
	if reply != nil {
		e.net.obs.OnMessage(to, e.inner.Name(), reply)
	}
	return reply, err
}

// CallAsync routes an async call through the injector: an injected fault
// resolves the Call immediately (the request never reached the callee);
// otherwise the call is delegated to the wrapped endpoint's AsyncCaller,
// or — on transports without one — issued synchronously and returned
// already resolved, preserving the no-extra-goroutines determinism
// discipline of Inproc-backed soaks.
func (e *faultyEndpoint) CallAsync(to string, req *wire.Message) *Call {
	delay, err := e.net.inject(e.inner.Name(), to)
	if err != nil {
		return resolvedCall(nil, err)
	}
	if delay > 0 {
		e.net.mu.Lock()
		sleep := e.net.sleep
		e.net.mu.Unlock()
		if sleep != nil {
			sleep(delay)
		} else {
			time.Sleep(delay)
		}
	}
	if e.net.obs.Len() != 0 {
		e.net.obs.OnMessage(e.inner.Name(), to, req)
	}
	if ac, ok := e.inner.(AsyncCaller); ok {
		return ac.CallAsync(to, req)
	}
	reply, err := e.inner.Call(to, req)
	if reply != nil && e.net.obs.Len() != 0 {
		e.net.obs.OnMessage(to, e.inner.Name(), reply)
	}
	return resolvedCall(reply, err)
}

// SetWindow delegates to the wrapped endpoint when it supports windows;
// otherwise it is a no-op (synchronous transports never overlap calls).
func (e *faultyEndpoint) SetWindow(n int) {
	if ws, ok := e.inner.(WindowSetter); ok {
		ws.SetWindow(n)
	}
}

var (
	_ Network           = (*Faulty)(nil)
	_ AsyncCaller       = (*faultyEndpoint)(nil)
	_ WindowSetter      = (*faultyEndpoint)(nil)
	_ ObservableNetwork = (*Faulty)(nil)
	_ ObservableNetwork = (*Inproc)(nil)
	_ ObservableNetwork = (*ServerNetwork)(nil)
	_ ObservableNetwork = (*DialNetwork)(nil)
	_ Observer          = (*Observers)(nil)
)
