package baseline_test

import (
	"sync"
	"testing"

	"flecc/internal/baseline"
	"flecc/internal/cache"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// kv is the shared toy codec for these tests.
type kv struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV() *kv { return &kv{data: map[string]string{}} }

func (v *kv) Set(k, val string) {
	v.mu.Lock()
	v.data[k] = val
	v.mu.Unlock()
}

func (v *kv) Get(k string) string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.data[k]
}

func (v *kv) Extract(props property.Set) (*image.Image, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	img := image.New(props.Clone())
	for k, val := range v.data {
		img.Put(image.Entry{Key: k, Value: []byte(val)})
	}
	return img, nil
}

func (v *kv) Merge(img *image.Image, props property.Set) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(v.data, k)
			continue
		}
		v.data[k] = string(e.Value)
	}
	return nil
}

func mkView(t *testing.T, net transport.Network, clock vclock.Clock, name string, view *kv) *cache.Manager {
	t.Helper()
	cm, err := cache.New(cache.Config{
		Name: name, Directory: "dm", Net: net, View: view,
		Props: property.MustSet("F={1..9}"), Mode: wire.Weak, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.InitImage(); err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestTimeSharingSerialTurns(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)
	prim := newKV()
	ts, err := baseline.NewTimeSharing("dm", prim, clock, net)
	if err != nil {
		t.Fatal(err)
	}
	views := []*kv{newKV(), newKV(), newKV()}
	cms := make([]*cache.Manager, 3)
	for i, v := range views {
		cms[i] = mkView(t, net, clock, string(rune('a'+i)), v)
	}
	stats.Reset()
	// Three serial turns: acquire, pull, work, push, release.
	pulled := make([]string, 3)
	for i, cm := range cms {
		if err := cm.Acquire(); err != nil {
			t.Fatal(err)
		}
		if err := cm.PullImage(); err != nil {
			t.Fatal(err)
		}
		pulled[i] = views[i].Get("k")
		if err := cm.StartUse(); err != nil {
			t.Fatal(err)
		}
		views[i].Set("k", cm.Name())
		cm.EndUse()
		if err := cm.PushImage(); err != nil {
			t.Fatal(err)
		}
		if err := cm.Release(); err != nil {
			t.Fatal(err)
		}
	}
	// Each turn sees the previous turn's committed data.
	if pulled[1] != "a" || pulled[2] != "b" {
		t.Fatalf("serial turns should see prior writes, pulled = %q", pulled)
	}
	if prim.Get("k") != "c" {
		t.Fatalf("primary = %q", prim.Get("k"))
	}
	// 8 messages per turn: acquire(2) + pull(2) + push(2) + release(2),
	// independent of how many agents conflict.
	if got := stats.Total(); got != 24 {
		t.Fatalf("messages = %d, want 24", got)
	}
	if ts.Grants() != 3 {
		t.Fatalf("grants = %d", ts.Grants())
	}
	if ts.Holder() != "" {
		t.Fatalf("token should be free, holder = %q", ts.Holder())
	}
}

func TestTimeSharingBlocksSecondAcquirer(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	ts, err := baseline.NewTimeSharing("dm", newKV(), clock, net)
	if err != nil {
		t.Fatal(err)
	}
	a := mkView(t, net, clock, "a", newKV())
	b := mkView(t, net, clock, "b", newKV())
	if err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	if ts.Holder() != "a" {
		t.Fatalf("holder = %q", ts.Holder())
	}
	acquired := make(chan error, 1)
	go func() { acquired <- b.Acquire() }()
	// b must not acquire while a holds; give it a beat, then release.
	select {
	case <-acquired:
		t.Fatal("b acquired while a held the token")
	default:
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	if ts.Holder() != "b" {
		t.Fatalf("holder = %q", ts.Holder())
	}
	b.Release()
}

func TestTimeSharingReacquireByHolder(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	_, err := baseline.NewTimeSharing("dm", newKV(), clock, net)
	if err != nil {
		t.Fatal(err)
	}
	a := mkView(t, net, clock, "a", newKV())
	if err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring while holding must not deadlock.
	if err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestTimeSharingUnregisterFreesToken(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	ts, err := baseline.NewTimeSharing("dm", newKV(), clock, net)
	if err != nil {
		t.Fatal(err)
	}
	a := mkView(t, net, clock, "a", newKV())
	b := mkView(t, net, clock, "b", newKV())
	a.Acquire()
	if err := a.KillImage(); err != nil {
		t.Fatal(err)
	}
	if ts.Holder() != "" {
		t.Fatal("dead holder should free the token")
	}
	if err := b.Acquire(); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastGathersFromEveryone(t *testing.T) {
	net := transport.NewInproc()
	clock := vclock.NewSim()
	stats := metrics.NewMessageStats(false)
	net.SetObserver(stats)
	_, err := baseline.NewMulticast("dm", newKV(), clock, net)
	if err != nil {
		t.Fatal(err)
	}
	// Five views with pairwise-disjoint properties: Flecc would gather
	// from nobody; multicast fetches from all four peers anyway.
	views := make([]*kv, 5)
	cms := make([]*cache.Manager, 5)
	for i := range views {
		views[i] = newKV()
		cm, err := cache.New(cache.Config{
			Name: string(rune('a' + i)), Directory: "dm", Net: net,
			View: views[i], Props: property.MustSet("F={" + string(rune('0'+i)) + "}"),
			Mode: wire.Weak, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.InitImage(); err != nil {
			t.Fatal(err)
		}
		cms[i] = cm
	}
	stats.Reset()
	if err := cms[0].PullImage(); err != nil {
		t.Fatal(err)
	}
	// 2 (pull) + 2*4 (fetch from each peer).
	if got := stats.Total(); got != 10 {
		t.Fatalf("multicast pull = %d messages, want 10", got)
	}
	// Data still flows even across "disjoint" properties.
	views[1].Set("x", "from-b")
	cms[1].PushImage()
	if err := cms[0].PullImage(); err != nil {
		t.Fatal(err)
	}
	if views[0].Get("x") != "from-b" {
		t.Fatal("multicast should deliver unrelated updates too")
	}
}
