// Package baseline implements the two comparator protocols from the
// paper's efficiency experiment (Figure 4):
//
//   - the time-sharing protocol, which "allows travel agents to execute
//     one after another", keeping control messages to a minimum, and
//   - the multicast-based protocol, which "does not discriminate between
//     cache managers and asks all of them to send updates" — the maximum
//     an application-oblivious protocol would generate.
//
// Both reuse the Flecc runtime machinery (the same store, registry, and
// cache managers) so that the only variable in the experiment is the
// synchronization policy.
package baseline

import (
	"sync"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// NewMulticast builds a directory manager running the multicast baseline:
// every pull gathers pending updates from every active view, regardless of
// data properties.
func NewMulticast(name string, primary image.Codec, clock vclock.Clock, net transport.Network) (*directory.Manager, error) {
	return directory.New(name, primary, clock, net, directory.Options{
		GatherAll:    true,
		AlwaysGather: true,
		// Serial rounds: baseline comparisons run on the deterministic
		// virtual-clock harness.
		FanOut: 1,
	})
}

// TimeSharing is a directory manager running the time-sharing baseline: a
// single token serializes the agents; the holder pulls, works, pushes and
// releases. Because execution is serial, pulls never need to gather or
// invalidate — the primary always holds the latest committed state when
// the token is granted.
type TimeSharing struct {
	*directory.Manager

	mu     sync.Mutex
	cond   *sync.Cond
	holder string
	grants int64
}

// NewTimeSharing builds the time-sharing directory manager.
func NewTimeSharing(name string, primary image.Codec, clock vclock.Clock, net transport.Network) (*TimeSharing, error) {
	ts := &TimeSharing{}
	ts.cond = sync.NewCond(&ts.mu)
	dm, err := directory.New(name, primary, clock, net, directory.Options{
		NeverGather: true,
		Handler:     ts.handle,
		FanOut:      1,
	})
	if err != nil {
		return nil, err
	}
	ts.Manager = dm
	return ts, nil
}

// handle intercepts the token messages; everything else falls through to
// the embedded Flecc dispatch.
func (ts *TimeSharing) handle(req *wire.Message) *wire.Message {
	switch req.Type {
	case wire.TAcquire:
		ts.mu.Lock()
		for ts.holder != "" && ts.holder != req.From {
			ts.cond.Wait()
		}
		ts.holder = req.From
		ts.grants++
		ts.mu.Unlock()
		return &wire.Message{Type: wire.TAck}
	case wire.TRelease:
		ts.mu.Lock()
		if ts.holder == req.From {
			ts.holder = ""
			ts.cond.Broadcast()
		}
		ts.mu.Unlock()
		return &wire.Message{Type: wire.TAck}
	case wire.TUnregister:
		// A dying holder must not wedge the token.
		ts.mu.Lock()
		if ts.holder == req.From {
			ts.holder = ""
			ts.cond.Broadcast()
		}
		ts.mu.Unlock()
		return nil // fall through to the normal unregister
	default:
		return nil
	}
}

// Holder returns the current token holder ("" when free).
func (ts *TimeSharing) Holder() string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.holder
}

// Grants returns the number of token grants issued.
func (ts *TimeSharing) Grants() int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.grants
}
