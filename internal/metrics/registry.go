package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry names and aggregates a deployment's metrics — the per-DM
// latency accumulators, the eviction/reconnect/migration/fault
// counters that previously lived as loose fields on their owning
// subsystems, gauges sampled from live components, and the per-message-
// type wire counters fed by a transport observer. fleccd serves a
// Registry over its /metrics endpoint; tests read it directly.
//
// Registration is idempotent by name: registering an existing name
// replaces the previous entry, so reconnect cycles can re-register
// without leaking. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	lats     map[string]*Latency
	gauges   map[string]func() int64
	stats    *MessageStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		lats:     map[string]*Latency{},
		gauges:   map[string]func() int64{},
	}
}

// RegisterCounter adds (or replaces) a counter under its own name.
func (r *Registry) RegisterCounter(c *Counter) {
	if c == nil {
		return
	}
	r.RegisterCounterAs(c.Name(), c)
}

// RegisterCounterAs adds (or replaces) a counter under an explicit
// name, e.g. to prefix per-shard counters that share a local name.
func (r *Registry) RegisterCounterAs(name string, c *Counter) {
	if c == nil || name == "" {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterLatency adds (or replaces) a latency histogram under its own
// name.
func (r *Registry) RegisterLatency(l *Latency) {
	if l == nil {
		return
	}
	r.RegisterLatencyAs(l.Name(), l)
}

// RegisterLatencyAs adds (or replaces) a latency histogram under an
// explicit name — the per-shard pull/push/fanout accumulators all call
// themselves "pull"/"push"/"fanout", so a sharded deployment prefixes
// them here.
func (r *Registry) RegisterLatencyAs(name string, l *Latency) {
	if l == nil || name == "" {
		return
	}
	r.mu.Lock()
	r.lats[name] = l
	r.mu.Unlock()
}

// RegisterGauge adds (or replaces) a named gauge sampled by fn at
// snapshot time. Gauges adopt values held by live components — the
// fault injector's Injected count, a service's current version — without
// moving their ownership into the registry.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if name == "" || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// SetMessageStats attaches the wire counters (nil detaches).
func (r *Registry) SetMessageStats(s *MessageStats) {
	r.mu.Lock()
	r.stats = s
	r.mu.Unlock()
}

// Counter returns the named counter, or nil.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Latency returns the named latency histogram, or nil.
func (r *Registry) Latency(name string) *Latency {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lats[name]
}

// RegistrySnapshot is a consistent-enough point-in-time view of a
// Registry: each metric is snapshotted atomically, though distinct
// metrics are sampled at slightly different instants.
type RegistrySnapshot struct {
	Counters  map[string]int64    `json:"counters,omitempty"`
	Gauges    map[string]int64    `json:"gauges,omitempty"`
	Latencies map[string]Snapshot `json:"latencies,omitempty"`
	Messages  *MessageSnapshot    `json:"messages,omitempty"`
}

// MessageSnapshot summarizes the wire counters by message type.
type MessageSnapshot struct {
	Total  int64            `json:"total"`
	Bytes  int64            `json:"bytes,omitempty"`
	ByType map[string]int64 `json:"by_type,omitempty"`
}

// Snapshot samples every registered metric.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	lats := make(map[string]*Latency, len(r.lats))
	for k, v := range r.lats {
		lats[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	stats := r.stats
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:  make(map[string]int64, len(counters)),
		Gauges:    make(map[string]int64, len(gauges)),
		Latencies: make(map[string]Snapshot, len(lats)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, fn := range gauges {
		snap.Gauges[name] = fn()
	}
	for name, l := range lats {
		snap.Latencies[name] = l.Snapshot()
	}
	if stats != nil {
		ms := &MessageSnapshot{Total: stats.Total(), Bytes: stats.Bytes(), ByType: map[string]int64{}}
		for t, n := range stats.ByType() {
			ms.ByType[t.String()] = n
		}
		snap.Messages = ms
	}
	return snap
}

// WriteText renders the snapshot as deterministic (sorted) plain text,
// the format served by fleccd's /metrics endpoint.
func (r *Registry) WriteText(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	var b strings.Builder

	names := sortedKeys(snap.Counters)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s %d\n", name, snap.Counters[name])
	}
	names = sortedKeys(snap.Gauges)
	for _, name := range names {
		fmt.Fprintf(&b, "gauge %s %d\n", name, snap.Gauges[name])
	}
	latNames := make([]string, 0, len(snap.Latencies))
	for name := range snap.Latencies {
		latNames = append(latNames, name)
	}
	sort.Strings(latNames)
	for _, name := range latNames {
		s := snap.Latencies[name]
		fmt.Fprintf(&b, "latency %s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			name, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
	}
	if m := snap.Messages; m != nil {
		fmt.Fprintf(&b, "messages total %d\n", m.Total)
		if m.Bytes > 0 {
			fmt.Fprintf(&b, "messages bytes %d\n", m.Bytes)
		}
		for _, t := range sortedKeys(m.ByType) {
			fmt.Fprintf(&b, "messages type %s %d\n", t, m.ByType[t])
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteJSON renders the snapshot as indented JSON (the
// /metrics?format=json view).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the text form.
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot.MarshalJSON renders durations as strings for readability.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Count int64  `json:"count"`
		Mean  string `json:"mean"`
		Max   string `json:"max"`
		P50   string `json:"p50"`
		P95   string `json:"p95"`
		P99   string `json:"p99"`
	}{s.Count, s.Mean.String(), s.Max.String(), s.P50.String(), s.P95.String(), s.P99.String()})
}
