package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Latency accumulates a nanosecond total and an observation count for one
// named operation — the per-DM pull/push/fanout hot-path counters. It is
// safe for concurrent use and cheap enough to sit on every request.
type Latency struct {
	name  string
	count atomic.Int64
	ns    atomic.Int64
}

// NewLatency returns a zeroed latency accumulator with the given name.
func NewLatency(name string) *Latency { return &Latency{name: name} }

// Name returns the accumulator's name.
func (l *Latency) Name() string { return l.name }

// Observe records one operation that took d.
func (l *Latency) Observe(d time.Duration) {
	l.count.Add(1)
	l.ns.Add(int64(d))
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count.Load() }

// TotalNs returns the accumulated nanoseconds.
func (l *Latency) TotalNs() int64 { return l.ns.Load() }

// Mean returns the average observation (0 when empty).
func (l *Latency) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.ns.Load() / n)
}

// String renders "name n=<count> avg=<mean>" for status logs.
func (l *Latency) String() string {
	return fmt.Sprintf("%s n=%d avg=%s", l.name, l.Count(), l.Mean())
}
