package metrics

import (
	"fmt"
	"sync"
	"time"
)

// bucketBounds are the fixed upper bounds (inclusive) of the latency
// histogram, roughly 3 buckets per decade from 1µs to 5s. Observations
// above the last bound land in an overflow bucket. Fixed bounds keep
// Observe allocation-free and make snapshots of different Latency
// values directly comparable.
var bucketBounds = []time.Duration{
	1 * time.Microsecond,
	2 * time.Microsecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	20 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	200 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
}

// numBuckets includes the overflow bucket for observations above the
// last bound.
const numBuckets = 22

// bucketFor returns the histogram slot for one observation.
func bucketFor(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return numBuckets - 1
}

// Latency accumulates a fixed-bucket duration histogram for one named
// operation — the per-DM pull/push/fanout hot-path counters. It is safe
// for concurrent use and cheap enough to sit on every request.
//
// All fields move together under one mutex so that readers (Mean,
// Snapshot, String) see a consistent state: historically count and the
// nanosecond total were two independent atomics, and a reader could
// load a count that included an observation whose nanoseconds had not
// landed yet — under contention Mean could exceed the largest duration
// ever observed.
type Latency struct {
	name string

	mu      sync.Mutex
	count   int64
	ns      int64
	max     time.Duration
	buckets [numBuckets]int64
}

// NewLatency returns a zeroed latency accumulator with the given name.
func NewLatency(name string) *Latency { return &Latency{name: name} }

// Name returns the accumulator's name.
func (l *Latency) Name() string { return l.name }

// Observe records one operation that took d.
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bucketFor(d)
	l.mu.Lock()
	l.count++
	l.ns += int64(d)
	if d > l.max {
		l.max = d
	}
	l.buckets[i]++
	l.mu.Unlock()
}

// Count returns the number of observations.
func (l *Latency) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// TotalNs returns the accumulated nanoseconds.
func (l *Latency) TotalNs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ns
}

// Mean returns the average observation (0 when empty). The count and
// total are read under one lock, so the mean never exceeds Max.
func (l *Latency) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return time.Duration(l.ns / l.count)
}

// Max returns the largest observation so far.
func (l *Latency) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Quantile returns the upper bound of the histogram bucket containing
// the q-th quantile (q in [0,1]), or the max observation for the
// overflow bucket. Empty accumulators return 0.
func (l *Latency) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quantileLocked(q)
}

func (l *Latency) quantileLocked(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: ceil(q * count), at least 1.
	rank := int64(q * float64(l.count))
	if float64(rank) < q*float64(l.count) || rank == 0 {
		rank++
	}
	var cum int64
	for i, n := range l.buckets {
		cum += n
		if cum >= rank {
			if i < len(bucketBounds) {
				// Clamp to max: the bucket's bound can exceed anything
				// actually observed.
				if b := bucketBounds[i]; b < l.max {
					return b
				}
			}
			return l.max
		}
	}
	return l.max
}

// Snapshot is a consistent point-in-time view of one Latency.
type Snapshot struct {
	Name  string
	Count int64
	Mean  time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot returns a consistent view of all derived statistics, taken
// under one lock acquisition.
func (l *Latency) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{Name: l.name, Count: l.count, Max: l.max}
	if l.count > 0 {
		s.Mean = time.Duration(l.ns / l.count)
	}
	s.P50 = l.quantileLocked(0.50)
	s.P95 = l.quantileLocked(0.95)
	s.P99 = l.quantileLocked(0.99)
	return s
}

// String renders "name n=<count> avg=<mean> p50=<..> p95=<..> p99=<..>
// max=<..>" for status logs.
func (l *Latency) String() string {
	s := l.Snapshot()
	return fmt.Sprintf("%s n=%d avg=%s p50=%s p95=%s p99=%s max=%s",
		s.Name, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
