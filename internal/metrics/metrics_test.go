package metrics

import (
	"strings"
	"sync"
	"testing"

	"flecc/internal/wire"
)

func TestMessageStatsCounts(t *testing.T) {
	s := NewMessageStats(false)
	s.OnMessage("cm1", "dm", &wire.Message{Type: wire.TPull})
	s.OnMessage("dm", "cm1", &wire.Message{Type: wire.TAck})
	s.OnMessage("cm2", "dm", &wire.Message{Type: wire.TPull})
	if s.Total() != 3 {
		t.Fatalf("total = %d", s.Total())
	}
	if s.ByType()[wire.TPull] != 2 || s.ByType()[wire.TAck] != 1 {
		t.Fatalf("byType = %v", s.ByType())
	}
	if s.Edge("cm1", "dm") != 1 || s.Edge("dm", "cm2") != 0 {
		t.Fatal("edge counts wrong")
	}
	if s.Bytes() != 0 {
		t.Fatal("bytes should be 0 when not measuring")
	}
}

func TestMessageStatsBytes(t *testing.T) {
	s := NewMessageStats(true)
	s.OnMessage("a", "b", &wire.Message{Type: wire.TPush, Err: "padding"})
	if s.Bytes() <= 0 {
		t.Fatal("bytes should be measured")
	}
}

func TestMessageStatsReset(t *testing.T) {
	s := NewMessageStats(false)
	s.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	s.Reset()
	if s.Total() != 0 || len(s.ByType()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMessageStatsSnapshot(t *testing.T) {
	s := NewMessageStats(false)
	s.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
	s.OnMessage("a", "b", &wire.Message{Type: wire.TAck})
	snap := s.Snapshot()
	if !strings.Contains(snap, "messages: 2") || !strings.Contains(snap, "pull") {
		t.Fatalf("snapshot = %q", snap)
	}
}

func TestMessageStatsConcurrent(t *testing.T) {
	s := NewMessageStats(false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.OnMessage("a", "b", &wire.Message{Type: wire.TPull})
			}
		}()
	}
	wg.Wait()
	if s.Total() != 800 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("quality")
	if s.Name() != "quality" || s.Len() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series invariants")
	}
	s.Add(10, 1)
	s.Add(20, 3)
	s.Add(30, 2)
	if s.Len() != 3 || s.Sum() != 6 || s.Mean() != 2 || s.Max() != 3 {
		t.Fatalf("len=%d sum=%g mean=%g max=%g", s.Len(), s.Sum(), s.Mean(), s.Max())
	}
	samples := s.Samples()
	if samples[1].T != 20 || samples[1].V != 3 {
		t.Fatalf("samples = %v", samples)
	}
	// Samples returns a copy.
	samples[0].V = 99
	if s.Samples()[0].V == 99 {
		t.Fatal("Samples should copy")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 4", "group", "flecc", "multicast")
	tb.AddRow("10", "120", "400")
	tb.AddRowf("", 20, 240, 400)
	out := tb.String()
	for _, want := range []string{"## Figure 4", "group", "flecc", "120", "240", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short row
	tb.AddRow("1", "2", "3") // long row truncated
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell should be dropped:\n%s", out)
	}
}
