package metrics

import (
	"testing"

	"flecc/internal/wire"
)

func TestShardOf(t *testing.T) {
	cases := []struct {
		node string
		ok   bool
	}{
		{"dm!s0", true},
		{"dm!s12", true},
		{"dm", false},
		{"dm!s", false},
		{"dm!sx", false},
		{"dm!s1x", false},
		{"v1", false},
	}
	for _, c := range cases {
		got, ok := ShardOf(c.node)
		if ok != c.ok {
			t.Fatalf("ShardOf(%q) ok = %v, want %v", c.node, ok, c.ok)
		}
		if ok && got != c.node {
			t.Fatalf("ShardOf(%q) = %q", c.node, got)
		}
	}
}

func TestPerShard(t *testing.T) {
	s := NewMessageStats(false)
	msg := &wire.Message{Type: wire.TPull}
	// Client traffic to two shards, in both directions, plus traffic that
	// touches no shard node at all.
	s.OnMessage("v1", "dm!s0", msg) // request to shard 0
	s.OnMessage("dm!s0", "v1", msg) // its reply
	s.OnMessage("v2", "dm!s1", msg)
	s.OnMessage("v2", "dm!s1", msg)
	s.OnMessage("dm!s1", "v2", msg)
	s.OnMessage("v1", "dm", msg) // router edge: no shard involved
	s.OnMessage("dm", "v1", msg)

	per := s.PerShard()
	if len(per) != 2 {
		t.Fatalf("PerShard = %v", per)
	}
	if per["dm!s0"] != 2 {
		t.Fatalf("dm!s0 = %d, want 2", per["dm!s0"])
	}
	if per["dm!s1"] != 3 {
		t.Fatalf("dm!s1 = %d, want 3", per["dm!s1"])
	}
	if got, want := s.PerShardString(), "dm!s0:2 dm!s1:3"; got != want {
		t.Fatalf("PerShardString = %q, want %q", got, want)
	}
	// Shard-to-shard traffic counts once, toward the destination.
	s.OnMessage("dm!s0", "dm!s1", msg)
	if per := s.PerShard(); per["dm!s1"] != 4 || per["dm!s0"] != 2 {
		t.Fatalf("after shard-to-shard edge: %v", per)
	}
}
