// Package metrics collects the measurements the paper's evaluation reports:
// message counts between cache managers and the directory manager
// (Figures 4 and 6), per-operation execution times (Figure 5), and data
// quality — the number of remote updates a view has not yet seen
// (Figures 5 and 6).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// MessageStats is a transport.Observer that tallies messages. It counts
// every message once (requests and replies separately), by type and by
// directed edge.
type MessageStats struct {
	mu      sync.Mutex
	total   int64
	bytes   int64
	byType  map[wire.Type]int64
	byEdge  map[string]int64 // "from->to"
	measure bool             // whether to compute encoded sizes
}

// NewMessageStats returns an empty collector. If measureBytes is true the
// collector also encodes every message to accumulate byte counts (slower;
// the experiments that only need message counts leave it off).
func NewMessageStats(measureBytes bool) *MessageStats {
	return &MessageStats{
		byType:  map[wire.Type]int64{},
		byEdge:  map[string]int64{},
		measure: measureBytes,
	}
}

// OnMessage implements transport.Observer.
func (s *MessageStats) OnMessage(from, to string, m *wire.Message) {
	var size int64
	if s.measure {
		size = int64(len(wire.Encode(m)))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	s.bytes += size
	s.byType[m.Type]++
	s.byEdge[from+"->"+to]++
}

// Total returns the number of messages observed.
func (s *MessageStats) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Bytes returns the total encoded bytes (0 unless measureBytes was set).
func (s *MessageStats) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// ByType returns a copy of the per-type counts.
func (s *MessageStats) ByType() map[wire.Type]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[wire.Type]int64, len(s.byType))
	for k, v := range s.byType {
		out[k] = v
	}
	return out
}

// Edge returns the count for the directed edge from->to.
func (s *MessageStats) Edge(from, to string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byEdge[from+"->"+to]
}

// Reset zeroes all counters.
func (s *MessageStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total, s.bytes = 0, 0
	s.byType = map[wire.Type]int64{}
	s.byEdge = map[string]int64{}
}

// Snapshot renders a deterministic multi-line summary.
func (s *MessageStats) Snapshot() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "messages: %d", s.total)
	if s.measure {
		fmt.Fprintf(&b, " (%d bytes)", s.bytes)
	}
	b.WriteByte('\n')
	types := make([]wire.Type, 0, len(s.byType))
	for t := range s.byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Fprintf(&b, "  %-12s %d\n", t, s.byType[t])
	}
	return b.String()
}

// Sample is one time-stamped measurement.
type Sample struct {
	T vclock.Time
	V float64
}

// Series is an append-only time series with summary statistics. It is what
// the figure harnesses collect and print. Safe for concurrent appends.
type Series struct {
	mu      sync.Mutex
	name    string
	samples []Sample
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample.
func (s *Series) Add(t vclock.Time, v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, Sample{T: t, V: v})
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Samples returns a copy of the samples in insertion order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Sum returns the sum of sample values.
func (s *Series) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for _, sm := range s.samples {
		sum += sm.V
	}
	return sum
}

// Mean returns the average sample value (0 for an empty series).
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, sm := range s.samples {
		sum += sm.V
	}
	return sum / float64(len(s.samples))
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m float64
	for i, sm := range s.samples {
		if i == 0 || sm.V > m {
			m = sm.V
		}
	}
	return m
}

// Table is a simple column-aligned text table used by the benchmark
// harness to print figure data in the same rows/series layout as the
// paper.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		cells = cells[:len(t.headers)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format // format reserved for future per-cell formatting
	t.AddRow(parts...)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "## %s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, wdt := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", wdt, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}
