package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyAccumulates(t *testing.T) {
	l := NewLatency("pull")
	if l.Name() != "pull" {
		t.Fatalf("name = %q", l.Name())
	}
	if l.Count() != 0 || l.TotalNs() != 0 || l.Mean() != 0 {
		t.Fatalf("fresh latency not zero: %s", l)
	}
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if l.Count() != 2 {
		t.Fatalf("count = %d, want 2", l.Count())
	}
	if got := l.TotalNs(); got != int64(40*time.Millisecond) {
		t.Fatalf("total = %d ns", got)
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %s, want 20ms", got)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", l.Count())
	}
	if l.TotalNs() != 8000*int64(time.Microsecond) {
		t.Fatalf("total = %d", l.TotalNs())
	}
}

func TestLatencyQuantiles(t *testing.T) {
	l := NewLatency("pull")
	if s := l.Snapshot(); s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 90 fast observations, 10 slow: p50 lands in the fast bucket, p95
	// and p99 in the slow one, and nothing exceeds Max.
	for i := 0; i < 90; i++ {
		l.Observe(80 * time.Microsecond) // bucket bound 100µs
	}
	for i := 0; i < 10; i++ {
		l.Observe(40 * time.Millisecond) // bucket bound 50ms
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 40*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P50 != 100*time.Microsecond {
		t.Fatalf("p50 = %v, want the 100µs bucket bound", s.P50)
	}
	if s.P95 != 40*time.Millisecond || s.P99 != 40*time.Millisecond {
		t.Fatalf("p95 = %v p99 = %v, want clamped to max 40ms", s.P95, s.P99)
	}
	if s.Mean > s.Max {
		t.Fatalf("mean %v exceeds max %v", s.Mean, s.Max)
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if d := l.Quantile(q); d < 0 || d > s.Max {
			t.Fatalf("Quantile(%v) = %v out of range", q, d)
		}
	}
}

func TestLatencyOverflowBucket(t *testing.T) {
	l := NewLatency("slow")
	l.Observe(30 * time.Second) // above the last bound
	s := l.Snapshot()
	if s.P50 != 30*time.Second || s.Max != 30*time.Second {
		t.Fatalf("overflow snapshot = %+v", s)
	}
}

// TestLatencyNoTearing hammers Observe from several writers while
// readers take means and snapshots, asserting the mean can never
// exceed the largest duration any writer submits. Before the fix the
// count and nanosecond total were two independent atomics, so a reader
// could pair a fresh count with a stale total (or vice versa) and
// report impossible means. Run with -race in CI.
func TestLatencyNoTearing(t *testing.T) {
	l := NewLatency("pull")
	const maxD = 50 * time.Millisecond
	durations := []time.Duration{time.Microsecond, time.Millisecond, maxD}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Observe(durations[(i+w)%len(durations)])
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if m := l.Mean(); m > maxD {
			t.Fatalf("torn mean: %v exceeds max observed %v", m, maxD)
		}
		s := l.Snapshot()
		if s.Mean > s.Max {
			t.Fatalf("torn snapshot: mean %v > max %v", s.Mean, s.Max)
		}
		if s.Count > 0 && s.P99 > s.Max {
			t.Fatalf("p99 %v > max %v", s.P99, s.Max)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLatencyStringIncludesQuantiles(t *testing.T) {
	l := NewLatency("push")
	l.Observe(3 * time.Millisecond)
	out := l.String()
	for _, want := range []string{"push", "n=1", "p50=", "p95=", "p99=", "max=3ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}
