package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyAccumulates(t *testing.T) {
	l := NewLatency("pull")
	if l.Name() != "pull" {
		t.Fatalf("name = %q", l.Name())
	}
	if l.Count() != 0 || l.TotalNs() != 0 || l.Mean() != 0 {
		t.Fatalf("fresh latency not zero: %s", l)
	}
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if l.Count() != 2 {
		t.Fatalf("count = %d, want 2", l.Count())
	}
	if got := l.TotalNs(); got != int64(40*time.Millisecond) {
		t.Fatalf("total = %d ns", got)
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %s, want 20ms", got)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", l.Count())
	}
	if l.TotalNs() != 8000*int64(time.Microsecond) {
		t.Fatalf("total = %d", l.TotalNs())
	}
}
