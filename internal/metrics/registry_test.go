package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flecc/internal/wire"
)

func sampleRegistry() *Registry {
	r := NewRegistry()
	c := NewCounter("db.views_evicted")
	c.Add(3)
	r.RegisterCounter(c)
	r.RegisterGauge("faults_injected", func() int64 { return 12 })
	l := NewLatency("pull")
	l.Observe(2 * time.Millisecond)
	l.Observe(4 * time.Millisecond)
	r.RegisterLatency(l)
	s := NewMessageStats(false)
	s.OnMessage("cm", "dm", &wire.Message{Type: wire.TPull})
	s.OnMessage("dm", "cm", &wire.Message{Type: wire.TAck})
	s.OnMessage("cm", "dm", &wire.Message{Type: wire.TPush})
	r.SetMessageStats(s)
	return r
}

func TestRegistryText(t *testing.T) {
	r := sampleRegistry()
	out := r.String()
	for _, want := range []string{
		"counter db.views_evicted 3",
		"gauge faults_injected 12",
		"latency pull count=2",
		"p50=", "p95=", "p99=", "max=4ms",
		"messages total 3",
		"messages type ack 1",
		"messages type pull 1",
		"messages type push 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Deterministic across renders.
	if again := r.String(); again != out {
		t.Fatalf("non-deterministic text:\n%s\nvs\n%s", out, again)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := sampleRegistry()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters  map[string]int64 `json:"counters"`
		Gauges    map[string]int64 `json:"gauges"`
		Latencies map[string]struct {
			Count int64  `json:"count"`
			P95   string `json:"p95"`
		} `json:"latencies"`
		Messages struct {
			Total  int64            `json:"total"`
			ByType map[string]int64 `json:"by_type"`
		} `json:"messages"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got.Counters["db.views_evicted"] != 3 || got.Gauges["faults_injected"] != 12 {
		t.Fatalf("decoded = %+v", got)
	}
	if got.Latencies["pull"].Count != 2 || got.Latencies["pull"].P95 == "" {
		t.Fatalf("latencies = %+v", got.Latencies)
	}
	if got.Messages.Total != 3 || got.Messages.ByType["pull"] != 1 {
		t.Fatalf("messages = %+v", got.Messages)
	}
}

func TestRegistryReplaceAndPrefix(t *testing.T) {
	r := NewRegistry()
	a := NewLatency("pull")
	b := NewLatency("pull")
	b.Observe(time.Millisecond)
	r.RegisterLatencyAs("s0.pull", a)
	r.RegisterLatencyAs("s1.pull", b)
	if r.Latency("s1.pull").Count() != 1 || r.Latency("s0.pull").Count() != 0 {
		t.Fatal("prefixed registrations collided")
	}
	// Re-registering a name replaces the previous entry.
	r.RegisterLatencyAs("s0.pull", b)
	if r.Latency("s0.pull").Count() != 1 {
		t.Fatal("replacement did not take")
	}
	if r.Latency("missing") != nil || r.Counter("missing") != nil {
		t.Fatal("missing lookups should be nil")
	}
}
