package metrics

import (
	"sort"
	"strconv"
	"strings"
)

// Per-shard traffic breakdown for the sharded directory service
// (internal/shard). Shard directory managers attach under names of the
// form "<base>!s<index>" (shard.Node); every edge that touches such a
// node is attributed to it, which turns the flat edge counts into a
// per-shard load profile — the measurement behind the 1-vs-N shard
// comparisons in EXPERIMENTS.md.

// ShardOf extracts the shard node from a node name following the
// "<base>!s<index>" convention; ok is false for ordinary nodes.
func ShardOf(node string) (string, bool) {
	cut := strings.LastIndex(node, "!s")
	if cut < 0 || cut+2 == len(node) {
		return "", false
	}
	for _, c := range node[cut+2:] {
		if c < '0' || c > '9' {
			return "", false
		}
	}
	return node, true
}

// PerShard aggregates the per-edge counts by shard: each edge whose
// destination is a shard node counts toward that shard, otherwise an edge
// whose source is a shard node counts toward that one. Edges touching no
// shard node (e.g. router→client replies) are ignored. The result maps
// shard node names to message counts.
func (s *MessageStats) PerShard() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int64{}
	for edge, n := range s.byEdge {
		arrow := strings.Index(edge, "->")
		if arrow < 0 {
			continue
		}
		from, to := edge[:arrow], edge[arrow+2:]
		if shard, ok := ShardOf(to); ok {
			out[shard] += n
		} else if shard, ok := ShardOf(from); ok {
			out[shard] += n
		}
	}
	return out
}

// PerShardString renders the PerShard breakdown deterministically, e.g.
// "dm!s0:42 dm!s1:17".
func (s *MessageStats) PerShardString() string {
	per := s.PerShard()
	keys := make([]string, 0, len(per))
	for k := range per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ":" + strconv.FormatInt(per[k], 10)
	}
	return strings.Join(parts, " ")
}
