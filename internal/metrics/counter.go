package metrics

import "sync/atomic"

// Counter is a named monotonic event counter — the shape the failure
// metrics use (e.g. the directory manager's views-evicted count). It is
// safe for concurrent use.
type Counter struct {
	name string
	n    atomic.Int64
}

// NewCounter returns a zeroed counter with the given name.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.n.Add(1) }

// Add adds delta and returns the new value.
func (c *Counter) Add(delta int64) int64 { return c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }
