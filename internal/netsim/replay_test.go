package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/trace"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// mapCodec is a minimal string-map application component for the replay
// scenario.
type mapCodec struct{ data map[string]string }

func (c *mapCodec) Extract(props property.Set) (*image.Image, error) {
	img := image.New(props.Clone())
	for k, v := range c.data {
		img.Put(image.Entry{Key: k, Value: []byte(v)})
	}
	return img, nil
}

func (c *mapCodec) Merge(img *image.Image, props property.Set) error {
	for k, e := range img.Entries {
		if e.Deleted {
			delete(c.data, k)
			continue
		}
		c.data[k] = string(e.Value)
	}
	return nil
}

// runReplayScenario drives one full protocol run — two views, writes,
// pushes, pulls including an invalidation round — over a simulated LAN
// whose delivery hook drops a fixed schedule of request indices (forcing
// retries and failure paths), with every retry policy fed from the given
// seed. It returns the complete observable transcript: the message-flow
// trace, an operation log including error text, traffic statistics, the
// final virtual time, and the primary's committed content.
func runReplayScenario(t *testing.T, seed int64, drops map[int]bool) string {
	t.Helper()
	clock := vclock.NewSim()
	topo := LAN(2)
	for _, n := range []string{"dm", "v1", "v2"} {
		topo.Place(n, "h-"+n)
	}
	net := New(clock, topo)
	rec := trace.NewRecorder(4096)
	net.AddObserver(rec)

	delivered := 0
	net.SetDeliveryHook(func(from, to string, m *wire.Message) error {
		delivered++
		if drops[delivered] {
			return fmt.Errorf("replay: scheduled drop of request %d", delivered)
		}
		return nil
	})

	retry := transport.RetryPolicy{
		Attempts: 3,
		Jitter:   0.2,
		Rand:     transport.NewRand(seed),
		Sleep:    func(time.Duration) {},
	}
	prim := &mapCodec{data: map[string]string{"x": "x0", "y": "y0"}}
	if _, err := directory.New("dm", prim, clock, net, directory.Options{FanOut: 1, Retry: retry}); err != nil {
		t.Fatalf("directory: %v", err)
	}

	props := property.NewSet(property.New("K", property.Discrete("x", "y")))
	var log strings.Builder
	op := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(&log, "%s: ERR %v\n", name, err)
			return
		}
		fmt.Fprintf(&log, "%s: ok\n", name)
	}

	newView := func(name string, mode wire.Mode) (*cache.Manager, *mapCodec) {
		data := &mapCodec{data: map[string]string{}}
		cm, err := cache.New(cache.Config{
			Name: name, Directory: "dm", Net: net, View: data,
			Props: props, Mode: mode, ValidityTrigger: "staleness < 1", Clock: clock,
		})
		if err != nil {
			t.Fatalf("view %s: %v", name, err)
		}
		return cm, data
	}
	v1, d1 := newView("v1", wire.Strong)
	v2, d2 := newView("v2", wire.Weak)
	op("init v1", v1.InitImage())
	op("init v2", v2.InitImage())

	// A fixed interleaving touching every protocol path: weak writes and
	// pushes, a strong pull's invalidation round, an update pull.
	op("use v2", v2.StartUse())
	d2.data["x"] = "x-from-v2"
	v2.EndUse()
	op("push v2", v2.PushImage())
	op("pull v1", v1.PullImage())
	op("use v1", v1.StartUse())
	d1.data["y"] = "y-from-v1"
	v1.EndUse()
	op("push v1", v1.PushImage())
	op("use v2 again", v2.StartUse())
	d2.data["x"] = "x-final"
	v2.EndUse()
	op("pull v1 again", v1.PullImage())
	op("push v2 again", v2.PushImage())
	op("final pull v2", v2.PullImage())
	op("final pull v1", v1.PullImage())

	var b strings.Builder
	b.WriteString("=== ops ===\n")
	b.WriteString(log.String())
	b.WriteString("=== trace ===\n")
	b.WriteString(rec.String())
	fmt.Fprintf(&b, "=== stats ===\nmessages=%d latency=%d dropped=%d clock=%d\n",
		net.Stats().Messages(), net.Stats().Latency(), net.Dropped(), clock.Now())
	for _, from := range []string{"h-dm", "h-v1", "h-v2"} {
		for _, to := range []string{"h-dm", "h-v1", "h-v2"} {
			if from != to {
				fmt.Fprintf(&b, "edge %s->%s = %d\n", from, to, net.Stats().Edge(from, to))
			}
		}
	}
	fmt.Fprintf(&b, "=== state ===\nprimary=%v\nv1=%v v2=%v\n", prim.data, d1.data, d2.data)
	return b.String()
}

// TestReplayDeterminism: two runs with the identical seed and drop
// schedule must produce byte-identical transcripts — operation outcomes,
// message-flow trace, traffic statistics, virtual time, and final state.
// This is the property the model checker's schedule replay and CI's fault
// soaks rest on.
func TestReplayDeterminism(t *testing.T) {
	drops := map[int]bool{7: true, 15: true, 22: true}
	a := runReplayScenario(t, 42, drops)
	b := runReplayScenario(t, 42, drops)
	if a != b {
		t.Fatalf("identical seed+schedule diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if !strings.Contains(a, "scheduled drop") && !strings.Contains(a, "ERR") && drops != nil {
		// The drops must actually have bitten something (retries may have
		// absorbed them, but the dropped counter still shows them).
		if !strings.Contains(a, "dropped=3") {
			t.Fatalf("drop schedule did not engage:\n%s", a)
		}
	}
}

// TestReplayScheduleMatters: a different drop schedule must change the
// transcript (the hook is actually gating deliveries, not just counting).
func TestReplayScheduleMatters(t *testing.T) {
	a := runReplayScenario(t, 42, map[int]bool{7: true, 15: true, 22: true})
	b := runReplayScenario(t, 42, nil)
	if a == b {
		t.Fatalf("drop schedule had no observable effect on the transcript")
	}
	if !strings.Contains(b, "dropped=0") {
		t.Fatalf("clean run still dropped messages:\n%s", b)
	}
}

// TestDeliveryHookCountsDropped: refused deliveries surface in Dropped()
// and fail the send at the caller.
func TestDeliveryHookCountsDropped(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(1)
	topo.Place("a", "h1")
	topo.Place("b", "h2")
	net := New(clock, topo)
	net.Attach("b", ack)
	a, _ := net.Attach("a", ack)

	net.SetDeliveryHook(func(from, to string, m *wire.Message) error {
		return fmt.Errorf("refused")
	})
	if _, err := a.Call("b", &wire.Message{Type: wire.TPull}); err == nil {
		t.Fatal("hook-refused delivery should fail the call")
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", net.Dropped())
	}
	net.SetDeliveryHook(nil)
	if _, err := a.Call("b", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("after removing the hook: %v", err)
	}
}
