package netsim

import (
	"testing"

	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func ack(req *wire.Message) *wire.Message { return &wire.Message{Type: wire.TAck} }

func TestLANLatencyCharged(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(5)
	topo.Place("dm", "h1")
	topo.Place("cm1", "h2")
	net := New(clock, topo)

	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	// Request 5ms + reply 5ms.
	if clock.Now() != 10 {
		t.Fatalf("clock = %v, want 10ms", clock.Now())
	}
	if net.Stats().Messages() != 2 || net.Stats().Latency() != 10 {
		t.Fatalf("stats = %d msgs, %v latency", net.Stats().Messages(), net.Stats().Latency())
	}
	if net.Stats().Edge("h2", "h1") != 1 || net.Stats().Edge("h1", "h2") != 1 {
		t.Fatal("edge counts wrong")
	}
}

func TestSameHostIsFree(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(5)
	topo.Place("dm", "h1")
	topo.Place("cm1", "h1")
	net := New(clock, topo)
	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)
	cm.Call("dm", &wire.Message{Type: wire.TPull})
	if clock.Now() != 0 {
		t.Fatalf("same-host call should be free, clock = %v", clock.Now())
	}
	if net.Stats().Messages() != 2 {
		t.Fatal("messages still counted")
	}
}

func TestExplicitLinkOverridesDefault(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(5)
	topo.SetLink("h1", "h3", Link{Latency: 50})
	topo.Place("dm", "h1")
	topo.Place("far", "h3")
	net := New(clock, topo)
	net.Attach("dm", ack)
	far, _ := net.Attach("far", ack)
	far.Call("dm", &wire.Message{Type: wire.TPull})
	if clock.Now() != 100 {
		t.Fatalf("clock = %v, want 100", clock.Now())
	}
}

func TestLinkSymmetry(t *testing.T) {
	topo := NewTopology(Link{Latency: 1})
	topo.SetLink("a", "b", Link{Latency: 7, Secure: true})
	if topo.LinkBetween("a", "b") != topo.LinkBetween("b", "a") {
		t.Fatal("SetLink should be symmetric")
	}
	if topo.LinkBetween("a", "a").Latency != 0 {
		t.Fatal("self link should be free")
	}
	if topo.LinkBetween("a", "zzz").Latency != 1 {
		t.Fatal("default link should apply")
	}
	if topo.Hosts() != 2 {
		t.Fatalf("hosts = %d", topo.Hosts())
	}
}

func TestUnplacedNodesAreLocal(t *testing.T) {
	clock := vclock.NewSim()
	net := New(clock, LAN(10))
	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)
	cm.Call("dm", &wire.Message{Type: wire.TPull})
	if clock.Now() != 0 {
		t.Fatalf("unplaced nodes should be co-located; clock = %v", clock.Now())
	}
}

func TestNestedCallAccumulatesLatency(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(5)
	topo.Place("dm", "hub")
	topo.Place("cm1", "a")
	topo.Place("cm2", "b")
	net := New(clock, topo)

	var dm transport.Endpoint
	net.Attach("cm2", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TImage}
	})
	dm, err := net.Attach("dm", func(req *wire.Message) *wire.Message {
		// Serving cm1's pull requires invalidating cm2 first.
		if _, err := dm.Call("cm2", &wire.Message{Type: wire.TInvalidate}); err != nil {
			return &wire.Message{Type: wire.TErr, Err: err.Error()}
		}
		return &wire.Message{Type: wire.TImage}
	})
	if err != nil {
		t.Fatal(err)
	}
	cm1, _ := net.Attach("cm1", ack)
	if _, err := cm1.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	// cm1->dm (5) + dm->cm2 (5) + cm2->dm (5) + dm->cm1 (5) = 20.
	if clock.Now() != 20 {
		t.Fatalf("clock = %v, want 20", clock.Now())
	}
	if net.Stats().Messages() != 4 {
		t.Fatalf("messages = %d, want 4", net.Stats().Messages())
	}
}

func TestBandwidthModel(t *testing.T) {
	clock := vclock.NewSim()
	topo := NewTopology(Link{Latency: 2, BytesPerMs: 10})
	topo.Place("dm", "h1")
	topo.Place("cm1", "h2")
	net := New(clock, topo)
	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull, Err: "0123456789"}); err != nil {
		t.Fatal(err)
	}
	// Each hop costs 2ms latency + ceil(size/10)ms transfer; the total
	// must therefore exceed the pure-latency 4ms round trip.
	if clock.Now() <= 4 {
		t.Fatalf("bandwidth cost missing, clock = %v", clock.Now())
	}
	// The transfer term scales with message size.
	small := clock.Now()
	clock2 := vclock.NewSim()
	topo2 := NewTopology(Link{Latency: 2, BytesPerMs: 10})
	topo2.Place("dm", "h1")
	topo2.Place("cm1", "h2")
	net2 := New(clock2, topo2)
	net2.Attach("dm", ack)
	cm2, _ := net2.Attach("cm1", ack)
	big := make([]byte, 1000)
	for i := range big {
		big[i] = 'x'
	}
	if _, err := cm2.Call("dm", &wire.Message{Type: wire.TPull, Err: string(big)}); err != nil {
		t.Fatal(err)
	}
	if clock2.Now() <= small {
		t.Fatalf("bigger message should cost more: %v vs %v", clock2.Now(), small)
	}
}

func TestStatsReset(t *testing.T) {
	clock := vclock.NewSim()
	net := New(clock, LAN(0))
	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)
	cm.Call("dm", &wire.Message{Type: wire.TPull})
	net.Stats().Reset()
	if net.Stats().Messages() != 0 || net.Stats().Latency() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(1)
	topo.Place("dm", "hub")
	topo.Place("cm1", "edge")
	net := New(clock, topo)
	net.Attach("dm", ack)
	cm, _ := net.Attach("cm1", ack)

	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatal(err)
	}
	net.Partition("hub", "edge")
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err == nil {
		t.Fatal("partitioned call should fail")
	}
	// Symmetric cut regardless of argument order.
	net.Heal("edge", "hub")
	if _, err := cm.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("healed call should succeed: %v", err)
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", net.Dropped())
	}
}

func TestPartitionOnlyAffectsCutPair(t *testing.T) {
	clock := vclock.NewSim()
	topo := LAN(1)
	topo.Place("dm", "hub")
	topo.Place("cm1", "edge1")
	topo.Place("cm2", "edge2")
	net := New(clock, topo)
	net.Attach("dm", ack)
	cm1, _ := net.Attach("cm1", ack)
	cm2, _ := net.Attach("cm2", ack)
	net.Partition("hub", "edge1")
	if _, err := cm1.Call("dm", &wire.Message{Type: wire.TPull}); err == nil {
		t.Fatal("cut pair should fail")
	}
	if _, err := cm2.Call("dm", &wire.Message{Type: wire.TPull}); err != nil {
		t.Fatalf("uncut pair should work: %v", err)
	}
}

func TestNetString(t *testing.T) {
	net := New(vclock.NewSim(), LAN(1))
	if net.String() == "" {
		t.Fatal("String should render")
	}
}
