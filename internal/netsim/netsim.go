// Package netsim provides the deterministic simulated LAN/WAN on which all
// experiments run. It composes the in-process transport with (i) a
// topology of hosts and links carrying latency and security attributes,
// (ii) a virtual-clock latency model, and (iii) per-edge traffic
// statistics.
//
// The paper evaluates Flecc on a real LAN; this reproduction substitutes a
// simulated one so the figures are exactly reproducible. The latency model
// is serial: each delivered message (request or reply) advances the shared
// virtual clock by the latency of the link it crosses, so a synchronous
// call between two nodes costs one round trip of virtual time, and nested
// calls (e.g. invalidations issued while serving a pull) accumulate — this
// is the quantity Figure 5 plots as per-operation execution time.
package netsim

import (
	"fmt"
	"sync"

	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Link describes a directed connection between two hosts.
type Link struct {
	// Latency is the one-way delivery delay in virtual ms.
	Latency vclock.Duration
	// BytesPerMs, when positive, models link bandwidth: each message
	// additionally costs ceil(encodedSize/BytesPerMs) virtual ms. Zero
	// means infinite bandwidth (pure latency, the default — encoding
	// messages to measure them costs real CPU, so enable it only where
	// transfer time matters).
	BytesPerMs int
	// Secure marks links that do not require encryptor/decryptor
	// insertion (used by the PSF planning module, not the latency model).
	Secure bool
}

// costOf returns the virtual time to deliver a message over the link.
func (l Link) costOf(m *wire.Message) vclock.Duration {
	d := l.Latency
	if l.BytesPerMs > 0 {
		size := len(wire.Encode(m))
		d += vclock.Duration((size + l.BytesPerMs - 1) / l.BytesPerMs)
	}
	return d
}

// Topology is a set of named hosts and the links between them. Node names
// (views, directory managers) are *placed* onto hosts; traffic between two
// nodes is charged the latency of the link between their hosts. Traffic
// between nodes on the same host is free.
type Topology struct {
	mu        sync.RWMutex
	hosts     map[string]bool
	links     map[[2]string]Link
	placement map[string]string // node -> host
	def       Link              // default link when none is declared
}

// NewTopology returns an empty topology with the given default link, used
// for host pairs without an explicit link.
func NewTopology(def Link) *Topology {
	return &Topology{
		hosts:     map[string]bool{},
		links:     map[[2]string]Link{},
		placement: map[string]string{},
		def:       def,
	}
}

// LAN returns a topology where every pair of distinct hosts is connected
// by a symmetric secure link of the given latency — the paper's
// experimental setting ("deployed into a LAN").
func LAN(latency vclock.Duration) *Topology {
	return NewTopology(Link{Latency: latency, Secure: true})
}

// AddHost declares a host (idempotent).
func (t *Topology) AddHost(name string) {
	t.mu.Lock()
	t.hosts[name] = true
	t.mu.Unlock()
}

// Hosts returns the number of declared hosts.
func (t *Topology) Hosts() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.hosts)
}

// SetLink declares a symmetric link between two hosts (declaring the hosts
// as a side effect).
func (t *Topology) SetLink(a, b string, l Link) {
	t.mu.Lock()
	t.hosts[a], t.hosts[b] = true, true
	t.links[[2]string{a, b}] = l
	t.links[[2]string{b, a}] = l
	t.mu.Unlock()
}

// LinkBetween returns the link attributes between two hosts. Same-host
// traffic is a zero-latency secure link; unspecified pairs get the
// default.
func (t *Topology) LinkBetween(a, b string) Link {
	if a == b {
		return Link{Latency: 0, Secure: true}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if l, ok := t.links[[2]string{a, b}]; ok {
		return l
	}
	return t.def
}

// Place assigns a node name to a host (declaring the host).
func (t *Topology) Place(node, host string) {
	t.mu.Lock()
	t.hosts[host] = true
	t.placement[node] = host
	t.mu.Unlock()
}

// HostOf returns the host a node is placed on. Unplaced nodes live on the
// pseudo-host "" (all mutually local).
func (t *Topology) HostOf(node string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.placement[node]
}

// NodeLink returns the link between the hosts of two nodes.
func (t *Topology) NodeLink(from, to string) Link {
	return t.LinkBetween(t.HostOf(from), t.HostOf(to))
}

// Stats aggregates traffic by directed host edge.
type Stats struct {
	mu       sync.Mutex
	messages int64
	byEdge   map[[2]string]int64
	latency  vclock.Duration // total virtual latency charged
}

// NewStats returns empty statistics.
func NewStats() *Stats { return &Stats{byEdge: map[[2]string]int64{}} }

// Messages returns the number of delivered messages.
func (s *Stats) Messages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.messages
}

// Latency returns the total virtual latency charged to the clock.
func (s *Stats) Latency() vclock.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latency
}

// Edge returns the message count between two hosts (directed).
func (s *Stats) Edge(fromHost, toHost string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byEdge[[2]string{fromHost, toHost}]
}

// Reset zeroes the statistics.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.messages = 0
	s.latency = 0
	s.byEdge = map[[2]string]int64{}
	s.mu.Unlock()
}

func (s *Stats) record(fromHost, toHost string, l vclock.Duration) {
	s.mu.Lock()
	s.messages++
	s.latency += l
	s.byEdge[[2]string{fromHost, toHost}]++
	s.mu.Unlock()
}

// Net is the simulated network: an in-process transport whose deliveries
// advance a virtual clock according to the topology.
type Net struct {
	*transport.Inproc
	clock *vclock.Sim
	topo  *Topology
	stats *Stats

	mu          sync.Mutex
	partitioned map[[2]string]bool // host pair (ordered) -> cut
	dropped     int64
	hook        func(from, to string, m *wire.Message) error
}

// New builds a simulated network over the given clock and topology.
func New(clock *vclock.Sim, topo *Topology) *Net {
	n := &Net{
		Inproc:      transport.NewInproc(),
		clock:       clock,
		topo:        topo,
		stats:       NewStats(),
		partitioned: map[[2]string]bool{},
	}
	n.SetBeforeDeliver(func(from, to string, m *wire.Message) {
		link := topo.NodeLink(from, to)
		cost := link.costOf(m)
		if cost > 0 {
			clock.Advance(cost)
		}
		n.stats.record(topo.HostOf(from), topo.HostOf(to), cost)
	})
	n.SetFaultInjector(func(from, to string, m *wire.Message) error {
		ha, hb := topo.HostOf(from), topo.HostOf(to)
		n.mu.Lock()
		cut := n.partitioned[hostPair(ha, hb)]
		if cut {
			n.dropped++
		}
		hook := n.hook
		n.mu.Unlock()
		if cut {
			return fmt.Errorf("netsim: partition between %q and %q", ha, hb)
		}
		if hook != nil {
			if err := hook(from, to, m); err != nil {
				n.mu.Lock()
				n.dropped++
				n.mu.Unlock()
				return err
			}
		}
		return nil
	})
	return n
}

// SetDeliveryHook installs a schedule-controlled delivery gate: fn runs
// before every request delivery (after the partition check), and a non-nil
// error fails the send at the caller as a dead link would. Deterministic
// drivers — the model checker, fault schedules, replay tests — use it to
// decide per message whether delivery happens, without the randomness of
// transport.Faulty. Refused messages count toward Dropped. A nil fn
// removes the hook. Safe to call between deliveries; not concurrently with
// traffic it must gate.
func (n *Net) SetDeliveryHook(fn func(from, to string, m *wire.Message) error) {
	n.mu.Lock()
	n.hook = fn
	n.mu.Unlock()
}

func hostPair(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition cuts all traffic between two hosts (both directions) until
// Heal. Requests crossing the cut fail at the sender with an error, as a
// dead link would.
func (n *Net) Partition(hostA, hostB string) {
	n.mu.Lock()
	n.partitioned[hostPair(hostA, hostB)] = true
	n.mu.Unlock()
}

// Heal restores traffic between two hosts.
func (n *Net) Heal(hostA, hostB string) {
	n.mu.Lock()
	delete(n.partitioned, hostPair(hostA, hostB))
	n.mu.Unlock()
}

// Dropped returns how many messages the partitions have refused.
func (n *Net) Dropped() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Clock returns the network's virtual clock.
func (n *Net) Clock() *vclock.Sim { return n.clock }

// Topology returns the network's topology.
func (n *Net) Topology() *Topology { return n.topo }

// Stats returns the traffic statistics.
func (n *Net) Stats() *Stats { return n.stats }

// String summarizes the network.
func (n *Net) String() string {
	return fmt.Sprintf("netsim{hosts: %d, msgs: %d, t: %v}",
		n.topo.Hosts(), n.stats.Messages(), n.clock.Now())
}
