package psf

import (
	"io"
	"strings"
	"testing"

	"flecc/internal/property"
)

// airlineSpec is the paper's motivating deployment: a flight database on a
// secure hub, replicable travel agents, viewers and buyers on edge nodes,
// one insecure high-latency link.
const airlineSpec = `
# airline reservation system (paper §5.1)
component flightdb implements FlightDB(Flights={100..199}) methods browse,reserve
component agent implements Reservation(Flights={100..199}) requires FlightDB methods browse,reserve replicable
node hub secure
node edge1
node edge2 capacity=3
link hub edge1 latency=40
link hub edge2 latency=15 secure
link edge1 edge2 latency=30
place flightdb hub
place agent hub
client alice at edge1 requires Reservation maxlatency=10 privacy buying
client bob at edge2 requires Reservation maxlatency=20
`

func mustSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec(airlineSpec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSpec(t *testing.T) {
	s := mustSpec(t)
	if len(s.Components) != 2 || len(s.Nodes) != 3 || len(s.Links) != 3 || len(s.Clients) != 2 {
		t.Fatalf("spec shape: %d comps %d nodes %d links %d clients",
			len(s.Components), len(s.Nodes), len(s.Links), len(s.Clients))
	}
	db := s.Components["flightdb"]
	if !db.ImplementsInterface("FlightDB") || db.Replicable {
		t.Fatalf("flightdb = %+v", db)
	}
	p, ok := db.Implements[0].Props.Get("Flights")
	if !ok || p.Domain.Size() != 100 {
		t.Fatalf("props = %v", db.Implements[0].Props)
	}
	ag := s.Components["agent"]
	if !ag.Replicable || len(ag.Requires) != 1 || ag.Requires[0] != "FlightDB" {
		t.Fatalf("agent = %+v", ag)
	}
	if !s.Nodes["hub"].Secure || s.Nodes["edge2"].Capacity != 3 {
		t.Fatal("node attributes")
	}
	if s.Clients[0].QoS.MaxLatency != 10 || !s.Clients[0].QoS.Privacy || !s.Clients[0].QoS.Buying {
		t.Fatalf("alice QoS = %+v", s.Clients[0].QoS)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"junk directive",
		"component x",                         // missing implements
		"component x implements I(bad?)",      // bad props
		"component x implements I(A={1}",      // unbalanced
		"component x implements I frobnicate", // unknown attr
		"node",                                // missing name
		"node n capacity=x",
		"node n wat",
		"link a b latency=5",         // undeclared endpoints
		"node a\nlink a b latency=5", // one endpoint missing
		"node a\nnode b\nlink a b latency=-1",
		"node a\nnode b\nlink a b nope",
		"node a\nnode b\nlink a b",
		"place x",
		"client c at n requires I", // unknown node+iface caught by Validate
		"client c requires I",      // syntax
		"node n\ncomponent i implements I\nclient c at n requires I maxlatency=x",
		"node n\ncomponent i implements I\nclient c at n requires I wat",
	}
	for _, src := range bad {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) should fail", src)
		}
	}
}

func TestValidate(t *testing.T) {
	s := NewSpec()
	s.AddNode(&Node{Name: "n"})
	s.AddComponent(&Component{Name: "c", Implements: []Interface{{Name: "I"}}, Requires: []string{"Missing"}})
	if err := s.Validate(); err == nil {
		t.Fatal("unsatisfied requires should fail")
	}
	s2 := NewSpec()
	s2.Placements["ghost"] = "n"
	if err := s2.Validate(); err == nil {
		t.Fatal("placement of unknown component should fail")
	}
	s3 := NewSpec()
	s3.AddComponent(&Component{Name: "c"})
	s3.Placements["c"] = "ghost"
	if err := s3.Validate(); err == nil {
		t.Fatal("placement on unknown node should fail")
	}
}

func TestDuplicateDeclarations(t *testing.T) {
	s := NewSpec()
	if err := s.AddComponent(&Component{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddComponent(&Component{Name: "c"}); err == nil {
		t.Fatal("duplicate component")
	}
	if err := s.AddNode(&Node{Name: "n"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(&Node{Name: "n"}); err == nil {
		t.Fatal("duplicate node")
	}
}

func TestIsViewOf(t *testing.T) {
	db := &Component{
		Name:       "db",
		Methods:    []string{"browse", "reserve"},
		Implements: []Interface{{Name: "I", Props: property.MustSet("Flights={1..9}")}},
	}
	agent := &Component{
		Name:       "agent",
		Methods:    []string{"reserve"},
		Implements: []Interface{{Name: "J", Props: property.MustSet("Flights={1..3}")}},
	}
	unrelated := &Component{
		Name:       "logger",
		Methods:    []string{"log"},
		Implements: []Interface{{Name: "K", Props: property.MustSet("Logs={a}")}},
	}
	if !IsViewOf(agent, db) {
		t.Fatal("agent shares methods and data with db")
	}
	if IsViewOf(unrelated, db) {
		t.Fatal("logger is unrelated")
	}
	// Data-only overlap qualifies.
	dataOnly := &Component{
		Name:       "dash",
		Methods:    []string{"render"},
		Implements: []Interface{{Name: "L", Props: property.MustSet("Flights={2}")}},
	}
	if !IsViewOf(dataOnly, db) {
		t.Fatal("data overlap should qualify as a view")
	}
	if IsViewOf(nil, db) || IsViewOf(db, nil) {
		t.Fatal("nil handling")
	}
}

func TestIsStrictViewOf(t *testing.T) {
	db := &Component{
		Name:       "db",
		Methods:    []string{"browse", "reserve"},
		Implements: []Interface{{Name: "I", Props: property.MustSet("Flights={1..9}")}},
	}
	// Customization: fewer methods, narrower data — a strict view.
	custom := &Component{
		Name:       "agent",
		Methods:    []string{"reserve"},
		Implements: []Interface{{Name: "J", Props: property.MustSet("Flights={1..3}")}},
	}
	if !IsStrictViewOf(custom, db) {
		t.Fatal("customization should be a strict view")
	}
	// Extra method breaks strictness but not the loose relation.
	extended := &Component{
		Name:       "agent+",
		Methods:    []string{"reserve", "audit"},
		Implements: custom.Implements,
	}
	if IsStrictViewOf(extended, db) {
		t.Fatal("extra method should break strictness")
	}
	if !IsViewOf(extended, db) {
		t.Fatal("loose view relation should still hold")
	}
	// Wider data breaks strictness.
	wider := &Component{
		Name:       "agent-wide",
		Methods:    []string{"reserve"},
		Implements: []Interface{{Name: "K", Props: property.MustSet("Flights={1..20}")}},
	}
	if IsStrictViewOf(wider, db) {
		t.Fatal("wider data should break strictness")
	}
	if IsStrictViewOf(nil, db) || IsStrictViewOf(db, nil) {
		t.Fatal("nil handling")
	}
}

func TestPlanDeploysViewForFarClient(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	views := plan.ViewInstances()
	if len(views) != 1 {
		t.Fatalf("views = %+v", views)
	}
	v := views[0]
	// Alice is 40ms from the hub with a 10ms budget: a view lands on her
	// node, in strong mode (she is buying).
	if v.Client != "alice" || v.Node != "edge1" || !v.Strong || v.Component != "agent" {
		t.Fatalf("view = %+v", v)
	}
	// Bob (15ms ≤ 20ms budget) is served remotely.
	for _, a := range plan.Actions {
		if a.Client == "bob" && a.Kind != "use-remote" {
			t.Fatalf("bob should be remote: %+v", a)
		}
	}
	if plan.PathLatency["alice"] != 0 {
		t.Fatalf("alice served locally, latency = %d", plan.PathLatency["alice"])
	}
	if plan.PathLatency["bob"] != 15 {
		t.Fatalf("bob latency = %d", plan.PathLatency["bob"])
	}
}

func TestPlanInsertsEncryptors(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	encs := plan.Encryptors()
	// Alice requires privacy; her view syncs to the hub over the insecure
	// hub-edge1 link -> exactly one encryptor pair.
	if len(encs) != 1 {
		t.Fatalf("encryptors = %+v", encs)
	}
	if !strings.Contains(encs[0].Detail, "hub") || !strings.Contains(encs[0].Detail, "edge1") {
		t.Fatalf("encryptor detail = %q", encs[0].Detail)
	}
}

func TestPlanSecurePathNeedsNoEncryptor(t *testing.T) {
	src := `
component db implements I methods m
node a secure
node b
link a b latency=5 secure
place db a
client c at b requires I privacy
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Encryptors()) != 0 {
		t.Fatalf("secure path should need no encryptors: %+v", plan.Encryptors())
	}
}

func TestPlanUnreachableClient(t *testing.T) {
	src := `
component db implements I methods m
node a
node island
place db a
client c at island requires I
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanDeployment(s); err == nil {
		t.Fatal("unreachable client should fail planning")
	}
}

func TestPlanNonReplicableOverBudget(t *testing.T) {
	src := `
component db implements I methods m
node a
node b
link a b latency=100
place db a
client c at b requires I maxlatency=10
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanDeployment(s); err == nil {
		t.Fatal("non-replicable provider over budget should fail")
	}
}

func TestShortestPath(t *testing.T) {
	s := NewSpec()
	for _, n := range []string{"a", "b", "c", "d"} {
		s.AddNode(&Node{Name: n})
	}
	s.AddLink(Link{A: "a", B: "b", Latency: 1})
	s.AddLink(Link{A: "b", B: "c", Latency: 1})
	s.AddLink(Link{A: "a", B: "c", Latency: 5})
	s.AddLink(Link{A: "c", B: "d", Latency: 1})
	g := buildGraph(s)
	dist, prev := g.shortestPath("a")
	if dist["c"] != 2 {
		t.Fatalf("dist[c] = %d, want 2 (via b)", dist["c"])
	}
	path := pathTo(prev, "a", "d")
	want := []string{"a", "b", "c", "d"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if pathTo(prev, "a", "zzz") != nil {
		t.Fatal("unreachable path should be nil")
	}
	if p := pathTo(prev, "a", "a"); len(p) != 1 || p[0] != "a" {
		t.Fatalf("self path = %v", p)
	}
}

func TestMonitorEventsAndReplan(t *testing.T) {
	s := mustSpec(t)
	mon := NewMonitor(s)
	var plans []*Plan
	Replanner(mon, s, func(e Event, p *Plan, err error) {
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	})
	// Initially bob is within budget (15 <= 20): remote.
	// The link degrades to 50ms: replanning must deploy a view for bob.
	if err := mon.ObserveLatency("hub", "edge2", 50); err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("plans = %d", len(plans))
	}
	found := false
	for _, a := range plans[0].ViewInstances() {
		if a.Client == "bob" {
			found = true
		}
	}
	if !found {
		t.Fatal("degraded link should trigger a view for bob")
	}
	// No-change observation emits nothing.
	n := len(mon.Events())
	mon.ObserveLatency("hub", "edge2", 50)
	if len(mon.Events()) != n {
		t.Fatal("no-op observation should not emit")
	}
	// Security flip emits.
	if err := mon.ObserveSecurity("hub", "edge2", false); err != nil {
		t.Fatal(err)
	}
	evs := mon.Events()
	if evs[len(evs)-1].Kind != "link-security" {
		t.Fatalf("last event = %+v", evs[len(evs)-1])
	}
	// Unknown link errors.
	if err := mon.ObserveLatency("x", "y", 1); err == nil {
		t.Fatal("unknown link should fail")
	}
	if err := mon.ObserveSecurity("x", "y", true); err == nil {
		t.Fatal("unknown link should fail")
	}
}

type fakeHandle struct{ closed *int }

func (f fakeHandle) Close() error { *f.closed++; return nil }

func TestDeployPlacesAndCloses(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	topo := BuildTopology(s)
	if topo.LinkBetween("hub", "edge1").Latency != 40 {
		t.Fatal("topology should mirror spec links")
	}
	closed := 0
	dep, err := Deploy(s, plan, topo, func(a Action) (io.Closer, error) {
		return fakeHandle{closed: &closed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One view + one encryptor pair.
	if len(dep.Instances) != 2 {
		t.Fatalf("instances = %+v", dep.Instances)
	}
	onEdge1 := dep.InstancesOn("edge1")
	if len(onEdge1) != 2 {
		t.Fatalf("edge1 instances = %v (view + encryptor at path head)", onEdge1)
	}
	// The view instance is placed on the topology.
	view := plan.ViewInstances()[0]
	if topo.HostOf(view.Instance) != "edge1" {
		t.Fatalf("view placed on %q", topo.HostOf(view.Instance))
	}
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	if closed != 2 {
		t.Fatalf("closed = %d", closed)
	}
}

func TestDeployFactoryFailureTearsDown(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	calls := 0
	_, err = Deploy(s, plan, BuildTopology(s), func(a Action) (io.Closer, error) {
		calls++
		if calls == 2 {
			return nil, io.ErrUnexpectedEOF
		}
		return fakeHandle{closed: &closed}, nil
	})
	if err == nil {
		t.Fatal("factory failure should fail deployment")
	}
	if closed != 1 {
		t.Fatalf("partial deployment should be torn down, closed = %d", closed)
	}
}

func TestDeployCapacityEnforced(t *testing.T) {
	src := `
component db implements I methods m
component agent implements J(F={1}) requires I methods m replicable
node hub secure
node tiny capacity=1
link hub tiny latency=50
place db hub
place agent hub
client c1 at tiny requires J maxlatency=10
client c2 at tiny requires J maxlatency=10
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ViewInstances()) != 2 {
		t.Fatalf("want 2 planned views, got %d", len(plan.ViewInstances()))
	}
	_, err = Deploy(s, plan, BuildTopology(s), func(a Action) (io.Closer, error) {
		return fakeHandle{closed: new(int)}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity should be enforced, err = %v", err)
	}
}

func TestPlanConnectsViewDependencies(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	conns := plan.Connections()
	// Alice's agent view requires FlightDB at the hub.
	if len(conns) != 1 {
		t.Fatalf("connections = %+v", conns)
	}
	c := conns[0]
	if c.Component != "flightdb" || c.Client != "alice" ||
		!strings.Contains(c.Detail, "FlightDB") || !strings.Contains(c.Detail, "hub") {
		t.Fatalf("connect = %+v", c)
	}
}

func TestCheckPlanCatchesMissingConnection(t *testing.T) {
	s := mustSpec(t)
	plan, _ := PlanDeployment(s)
	var stripped []Action
	for _, a := range plan.Actions {
		if a.Kind != "connect" {
			stripped = append(stripped, a)
		}
	}
	bad := &Plan{Actions: stripped, PathLatency: plan.PathLatency}
	if err := CheckPlan(s, bad); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("missing connection should fail: %v", err)
	}
}

func TestCheckPlanAcceptsPlannerOutput(t *testing.T) {
	s := mustSpec(t)
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(s, plan); err != nil {
		t.Fatalf("planner output should pass its own check: %v", err)
	}
}

func TestCheckPlanCatchesMissingClient(t *testing.T) {
	s := mustSpec(t)
	plan, _ := PlanDeployment(s)
	// Drop bob's action.
	var trimmed []Action
	for _, a := range plan.Actions {
		if a.Client != "bob" {
			trimmed = append(trimmed, a)
		}
	}
	bad := &Plan{Actions: trimmed, PathLatency: plan.PathLatency}
	if err := CheckPlan(s, bad); err == nil {
		t.Fatal("unserved client should fail the check")
	}
}

func TestCheckPlanCatchesBudgetViolation(t *testing.T) {
	s := mustSpec(t)
	plan, _ := PlanDeployment(s)
	// Move alice's view to the hub (40ms away, budget 10ms).
	var tampered []Action
	for _, a := range plan.Actions {
		if a.Kind == "deploy-view" && a.Client == "alice" {
			a.Node = "hub"
		}
		tampered = append(tampered, a)
	}
	bad := &Plan{Actions: tampered, PathLatency: plan.PathLatency}
	if err := CheckPlan(s, bad); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget violation should fail: %v", err)
	}
}

func TestCheckPlanCatchesMissingEncryptor(t *testing.T) {
	src := `
component db implements I methods m
node a secure
node b
link a b latency=5
place db a
client c at b requires I privacy
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanDeployment(s)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the encryptors the planner inserted.
	var stripped []Action
	for _, a := range plan.Actions {
		if a.Kind != "insert-encryptor" {
			stripped = append(stripped, a)
		}
	}
	bad := &Plan{Actions: stripped, PathLatency: plan.PathLatency}
	if err := CheckPlan(s, bad); err == nil || !strings.Contains(err.Error(), "unprotected") {
		t.Fatalf("missing encryptor should fail: %v", err)
	}
}

func TestPlanString(t *testing.T) {
	s := mustSpec(t)
	plan, _ := PlanDeployment(s)
	out := plan.String()
	if !strings.Contains(out, "deploy-view") || !strings.Contains(out, "alice") {
		t.Fatalf("plan string = %q", out)
	}
}
