package psf

import (
	"fmt"
	"io"

	"flecc/internal/netsim"
	"flecc/internal/vclock"
)

// BuildTopology converts the spec's environment into a simulated network
// topology: one host per node, one link per declared link (default link
// latency is high and insecure so that undeclared pairs are effectively
// unusable, matching a sparse WAN).
func BuildTopology(spec *Spec) *netsim.Topology {
	topo := netsim.NewTopology(netsim.Link{Latency: vclock.Duration(1000), Secure: false})
	for name := range spec.Nodes {
		topo.AddHost(name)
	}
	for _, l := range spec.Links {
		topo.SetLink(l.A, l.B, netsim.Link{Latency: vclock.Duration(l.Latency), Secure: l.Secure})
	}
	return topo
}

// Instance is one deployed component instance.
type Instance struct {
	// Action is the plan step that produced the instance.
	Action Action
	// Handle is whatever the factory returned (a travel agent, an
	// encryptor, ...); Deployment closes it on teardown.
	Handle io.Closer
}

// Factory instantiates one planned component on its node. The deployment
// module calls it for every deploy-view and insert-encryptor action; the
// factory typically creates a Flecc view (cache manager + replica) and
// returns it.
type Factory func(a Action) (io.Closer, error)

// Deployment is the result of executing a plan: the running instances and
// their placement, ready to be torn down.
type Deployment struct {
	Spec      *Spec
	Plan      *Plan
	Topo      *netsim.Topology
	Instances []Instance
}

// Deploy executes a plan (paper §3.1 element (iv)): it enforces node
// capacities, places each instance's node name onto the simulated
// topology, and instantiates components through the factory. On any
// failure the partial deployment is torn down.
func Deploy(spec *Spec, plan *Plan, topo *netsim.Topology, factory Factory) (*Deployment, error) {
	d := &Deployment{Spec: spec, Plan: plan, Topo: topo}
	used := map[string]int{}
	for comp, node := range spec.Placements {
		used[node]++
		topo.Place(comp, node)
	}
	for _, a := range plan.Actions {
		if a.Kind == "use-remote" || a.Kind == "connect" {
			continue // no instance to create: existing placement / linkage
		}
		if n, ok := spec.Nodes[a.Node]; ok && n.Capacity > 0 && used[a.Node] >= n.Capacity {
			d.Close()
			return nil, fmt.Errorf("psf: node %s capacity %d exhausted deploying %s", a.Node, n.Capacity, a.Instance)
		}
		handle, err := factory(a)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("psf: deploying %s: %w", a.Instance, err)
		}
		used[a.Node]++
		topo.Place(a.Instance, a.Node)
		d.Instances = append(d.Instances, Instance{Action: a, Handle: handle})
	}
	return d, nil
}

// Close tears the deployment down in reverse instantiation order.
func (d *Deployment) Close() error {
	var first error
	for i := len(d.Instances) - 1; i >= 0; i-- {
		if h := d.Instances[i].Handle; h != nil {
			if err := h.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	d.Instances = nil
	return first
}

// InstancesOn returns the instance names deployed on a node.
func (d *Deployment) InstancesOn(node string) []string {
	var out []string
	for _, in := range d.Instances {
		if in.Action.Node == node {
			out = append(out, in.Action.Instance)
		}
	}
	return out
}
