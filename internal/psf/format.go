package psf

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a Spec back into the ParseSpec syntax, deterministically
// (components, nodes and placements sorted by name; links and clients in
// declaration order). ParseSpec(Format(s)) reproduces s — the round trip
// is property-tested — so tools can normalize, diff, and persist specs.
func Format(s *Spec) string {
	var b strings.Builder

	compNames := make([]string, 0, len(s.Components))
	for n := range s.Components {
		compNames = append(compNames, n)
	}
	sort.Strings(compNames)
	for _, n := range compNames {
		c := s.Components[n]
		fmt.Fprintf(&b, "component %s implements %s", c.Name, formatIface(c.Implements[0]))
		if len(c.Requires) > 0 {
			fmt.Fprintf(&b, " requires %s", strings.Join(c.Requires, ","))
		}
		if len(c.Methods) > 0 {
			fmt.Fprintf(&b, " methods %s", strings.Join(c.Methods, ","))
		}
		if c.Replicable {
			b.WriteString(" replicable")
		}
		b.WriteByte('\n')
	}

	nodeNames := make([]string, 0, len(s.Nodes))
	for n := range s.Nodes {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	for _, n := range nodeNames {
		node := s.Nodes[n]
		fmt.Fprintf(&b, "node %s", node.Name)
		if node.Secure {
			b.WriteString(" secure")
		}
		if node.Capacity > 0 {
			fmt.Fprintf(&b, " capacity=%d", node.Capacity)
		}
		b.WriteByte('\n')
	}

	for _, l := range s.Links {
		fmt.Fprintf(&b, "link %s %s latency=%d", l.A, l.B, l.Latency)
		if l.Secure {
			b.WriteString(" secure")
		}
		b.WriteByte('\n')
	}

	placeNames := make([]string, 0, len(s.Placements))
	for c := range s.Placements {
		placeNames = append(placeNames, c)
	}
	sort.Strings(placeNames)
	for _, c := range placeNames {
		fmt.Fprintf(&b, "place %s %s\n", c, s.Placements[c])
	}

	for _, cl := range s.Clients {
		fmt.Fprintf(&b, "client %s at %s requires %s", cl.Name, cl.Node, cl.Requires)
		if cl.QoS.MaxLatency > 0 {
			fmt.Fprintf(&b, " maxlatency=%d", cl.QoS.MaxLatency)
		}
		if cl.QoS.Privacy {
			b.WriteString(" privacy")
		}
		if cl.QoS.Buying {
			b.WriteString(" buying")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatIface renders "Name" or "Name(props)" with no spaces (the parser
// splits on whitespace).
func formatIface(i Interface) string {
	if i.Props.IsEmpty() {
		return i.Name
	}
	props := strings.ReplaceAll(i.Props.String(), " ", "")
	return i.Name + "(" + props + ")"
}
