package psf

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flecc/internal/property"
)

func TestFormatRoundTripAirline(t *testing.T) {
	s := mustSpec(t)
	back, err := ParseSpec(Format(s))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, Format(s))
	}
	assertSpecsEqual(t, s, back)
}

func assertSpecsEqual(t *testing.T, a, b *Spec) {
	t.Helper()
	if len(a.Components) != len(b.Components) {
		t.Fatalf("components: %d vs %d", len(a.Components), len(b.Components))
	}
	for n, ca := range a.Components {
		cb, ok := b.Components[n]
		if !ok {
			t.Fatalf("component %q missing", n)
		}
		if ca.Name != cb.Name || ca.Replicable != cb.Replicable ||
			!reflect.DeepEqual(ca.Requires, cb.Requires) ||
			!reflect.DeepEqual(ca.Methods, cb.Methods) {
			t.Fatalf("component %q differs: %+v vs %+v", n, ca, cb)
		}
		if len(ca.Implements) != len(cb.Implements) ||
			ca.Implements[0].Name != cb.Implements[0].Name ||
			!ca.Implements[0].Props.Equal(cb.Implements[0].Props) {
			t.Fatalf("component %q interfaces differ", n)
		}
	}
	if !reflect.DeepEqual(a.Placements, b.Placements) {
		t.Fatalf("placements: %v vs %v", a.Placements, b.Placements)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("nodes: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for n, na := range a.Nodes {
		nb, ok := b.Nodes[n]
		if !ok || *na != *nb {
			t.Fatalf("node %q differs", n)
		}
	}
	if !reflect.DeepEqual(a.Links, b.Links) {
		t.Fatalf("links: %v vs %v", a.Links, b.Links)
	}
	if !reflect.DeepEqual(a.Clients, b.Clients) {
		t.Fatalf("clients: %v vs %v", a.Clients, b.Clients)
	}
}

// genSpec builds a random valid spec.
func genSpec(r *rand.Rand) *Spec {
	s := NewSpec()
	nNodes := 2 + r.Intn(3)
	for i := 0; i < nNodes; i++ {
		s.AddNode(&Node{
			Name:     fmt.Sprintf("n%d", i),
			Secure:   r.Intn(2) == 0,
			Capacity: r.Intn(3), // 0 = unlimited
		})
	}
	for i := 0; i < nNodes-1; i++ {
		s.AddLink(Link{
			A: fmt.Sprintf("n%d", i), B: fmt.Sprintf("n%d", i+1),
			Latency: 1 + r.Intn(50), Secure: r.Intn(2) == 0,
		})
	}
	nComp := 1 + r.Intn(2)
	for i := 0; i < nComp; i++ {
		c := &Component{
			Name:       fmt.Sprintf("c%d", i),
			Replicable: r.Intn(2) == 0,
			Methods:    []string{"m1", "m2"}[:1+r.Intn(2)],
		}
		iface := Interface{Name: fmt.Sprintf("I%d", i)}
		if r.Intn(2) == 0 {
			iface.Props = mustProps(fmt.Sprintf("F={%d..%d}", i*10, i*10+3))
		}
		c.Implements = []Interface{iface}
		if i > 0 {
			c.Requires = []string{"I0"}
		}
		s.AddComponent(c)
		s.Placements[c.Name] = fmt.Sprintf("n%d", r.Intn(nNodes))
	}
	nClients := r.Intn(3)
	for i := 0; i < nClients; i++ {
		s.Clients = append(s.Clients, ClientReq{
			Name: fmt.Sprintf("cl%d", i), Node: fmt.Sprintf("n%d", r.Intn(nNodes)),
			Requires: fmt.Sprintf("I%d", r.Intn(nComp)),
			QoS: QoS{
				MaxLatency: r.Intn(3) * 20,
				Privacy:    r.Intn(2) == 0,
				Buying:     r.Intn(2) == 0,
			},
		})
	}
	return s
}

func TestQuickFormatRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	f := func() bool {
		s := genSpec(r)
		back, err := ParseSpec(Format(s))
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, Format(s))
			return false
		}
		// Structural equality via the same checks as the airline test.
		ok := len(s.Components) == len(back.Components) &&
			len(s.Nodes) == len(back.Nodes) &&
			reflect.DeepEqual(s.Links, back.Links) &&
			reflect.DeepEqual(s.Clients, back.Clients) &&
			reflect.DeepEqual(s.Placements, back.Placements)
		if !ok {
			return false
		}
		for n, ca := range s.Components {
			cb, okc := back.Components[n]
			if !okc || !ca.Implements[0].Props.Equal(cb.Implements[0].Props) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustProps(s string) property.Set { return property.MustSet(s) }
