package psf

import (
	"fmt"
	"sync"
)

// Event is an environment change noticed by the monitoring module.
type Event struct {
	// Kind is "link-latency", "link-security", "node-up", or "node-down".
	Kind string
	// Subject names the affected node or "a-b" link.
	Subject string
	// Old and New carry the changed value (latency as int, security as
	// bool) rendered as strings for uniformity.
	Old, New string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s: %s -> %s", e.Kind, e.Subject, e.Old, e.New)
}

// Monitor is the PSF monitoring module (paper §3.1 element (ii)): it holds
// the current environment state, accepts observations, and notifies
// subscribers of changes so the planning module can trigger adaptation.
type Monitor struct {
	mu   sync.Mutex
	spec *Spec
	subs []func(Event)
	// events retains history for inspection.
	events []Event
}

// NewMonitor wraps a spec whose environment the monitor tracks. The spec's
// link values are mutated in place as observations arrive, so a replan
// after a change sees the updated environment.
func NewMonitor(spec *Spec) *Monitor { return &Monitor{spec: spec} }

// Subscribe registers a change callback. Callbacks run synchronously on
// the observing goroutine, in subscription order.
func (m *Monitor) Subscribe(fn func(Event)) {
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// Events returns a copy of the observed event history.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

func (m *Monitor) emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	subs := make([]func(Event), len(m.subs))
	copy(subs, m.subs)
	m.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
}

// ObserveLatency records a new measured latency for a link. A change
// emits a "link-latency" event.
func (m *Monitor) ObserveLatency(a, b string, latency int) error {
	m.mu.Lock()
	var changed bool
	var old int
	found := false
	for i := range m.spec.Links {
		l := &m.spec.Links[i]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			found = true
			old = l.Latency
			if l.Latency != latency {
				l.Latency = latency
				changed = true
			}
			break
		}
	}
	m.mu.Unlock()
	if !found {
		return fmt.Errorf("psf: monitor: no link %s-%s", a, b)
	}
	if changed {
		m.emit(Event{
			Kind: "link-latency", Subject: a + "-" + b,
			Old: fmt.Sprint(old), New: fmt.Sprint(latency),
		})
	}
	return nil
}

// ObserveSecurity records a change in a link's security attribute.
func (m *Monitor) ObserveSecurity(a, b string, secure bool) error {
	m.mu.Lock()
	var changed bool
	var old bool
	found := false
	for i := range m.spec.Links {
		l := &m.spec.Links[i]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			found = true
			old = l.Secure
			if l.Secure != secure {
				l.Secure = secure
				changed = true
			}
			break
		}
	}
	m.mu.Unlock()
	if !found {
		return fmt.Errorf("psf: monitor: no link %s-%s", a, b)
	}
	if changed {
		m.emit(Event{
			Kind: "link-security", Subject: a + "-" + b,
			Old: fmt.Sprint(old), New: fmt.Sprint(secure),
		})
	}
	return nil
}

// Replanner glues the monitor to the planning module: any environment
// event triggers a fresh plan, delivered to the callback together with the
// triggering event. This is PSF's adaptation loop.
func Replanner(m *Monitor, spec *Spec, onPlan func(Event, *Plan, error)) {
	m.Subscribe(func(e Event) {
		p, err := PlanDeployment(spec)
		onPlan(e, p, err)
	})
}
