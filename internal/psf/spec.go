package psf

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"flecc/internal/property"
)

// ParseSpec reads the line-oriented declarative specification format:
//
//	# comments and blank lines are ignored
//	component <name> implements <iface>[(props)] [requires <iface>,...] [methods m1,m2] [replicable]
//	node <name> [secure] [capacity=N]
//	link <a> <b> latency=<ms> [secure]
//	place <component> <node>
//	client <name> at <node> requires <iface> [maxlatency=N] [privacy] [buying]
//
// Example:
//
//	component flightdb implements FlightDB(Flights={100..199}) methods browse,reserve
//	component agent implements Reservation requires FlightDB methods browse,reserve replicable
//	node hub secure
//	node edge1
//	link hub edge1 latency=40
//	place flightdb hub
//	client alice at edge1 requires Reservation maxlatency=10 privacy buying
func ParseSpec(text string) (*Spec, error) {
	spec := NewSpec()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "component":
			err = parseComponent(spec, fields[1:])
		case "node":
			err = parseNode(spec, fields[1:])
		case "link":
			err = parseLink(spec, fields[1:])
		case "place":
			err = parsePlace(spec, fields[1:])
		case "client":
			err = parseClient(spec, fields[1:])
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("psf: spec line %d: %w", lineNo, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func parseComponent(spec *Spec, f []string) error {
	if len(f) < 3 || f[1] != "implements" {
		return fmt.Errorf("component syntax: component <name> implements <iface> ...")
	}
	c := &Component{Name: f[0]}
	iface, props, err := parseIfaceDecl(f[2])
	if err != nil {
		return err
	}
	c.Implements = append(c.Implements, Interface{Name: iface, Props: props})
	i := 3
	for i < len(f) {
		switch f[i] {
		case "requires":
			if i+1 >= len(f) {
				return fmt.Errorf("requires needs a value")
			}
			c.Requires = append(c.Requires, strings.Split(f[i+1], ",")...)
			i += 2
		case "methods":
			if i+1 >= len(f) {
				return fmt.Errorf("methods needs a value")
			}
			c.Methods = append(c.Methods, strings.Split(f[i+1], ",")...)
			i += 2
		case "replicable":
			c.Replicable = true
			i++
		default:
			return fmt.Errorf("unknown component attribute %q", f[i])
		}
	}
	return spec.AddComponent(c)
}

// parseIfaceDecl splits "FlightDB(Flights={100..199})" into name + props.
func parseIfaceDecl(s string) (string, property.Set, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		return s, property.NewSet(), nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", property.Set{}, fmt.Errorf("unbalanced interface properties in %q", s)
	}
	props, err := property.ParseSet(s[open+1 : len(s)-1])
	if err != nil {
		return "", property.Set{}, err
	}
	return s[:open], props, nil
}

func parseNode(spec *Spec, f []string) error {
	if len(f) < 1 {
		return fmt.Errorf("node needs a name")
	}
	n := &Node{Name: f[0]}
	for _, attr := range f[1:] {
		switch {
		case attr == "secure":
			n.Secure = true
		case strings.HasPrefix(attr, "capacity="):
			v, err := strconv.Atoi(strings.TrimPrefix(attr, "capacity="))
			if err != nil {
				return fmt.Errorf("bad capacity %q", attr)
			}
			n.Capacity = v
		default:
			return fmt.Errorf("unknown node attribute %q", attr)
		}
	}
	return spec.AddNode(n)
}

func parseLink(spec *Spec, f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("link syntax: link <a> <b> latency=<ms> [secure]")
	}
	l := Link{A: f[0], B: f[1]}
	for _, attr := range f[2:] {
		switch {
		case strings.HasPrefix(attr, "latency="):
			v, err := strconv.Atoi(strings.TrimPrefix(attr, "latency="))
			if err != nil || v < 0 {
				return fmt.Errorf("bad latency %q", attr)
			}
			l.Latency = v
		case attr == "secure":
			l.Secure = true
		default:
			return fmt.Errorf("unknown link attribute %q", attr)
		}
	}
	return spec.AddLink(l)
}

func parsePlace(spec *Spec, f []string) error {
	if len(f) != 2 {
		return fmt.Errorf("place syntax: place <component> <node>")
	}
	spec.Placements[f[0]] = f[1]
	return nil
}

func parseClient(spec *Spec, f []string) error {
	if len(f) < 5 || f[1] != "at" || f[3] != "requires" {
		return fmt.Errorf("client syntax: client <name> at <node> requires <iface> ...")
	}
	cl := ClientReq{Name: f[0], Node: f[2], Requires: f[4]}
	for _, attr := range f[5:] {
		switch {
		case strings.HasPrefix(attr, "maxlatency="):
			v, err := strconv.Atoi(strings.TrimPrefix(attr, "maxlatency="))
			if err != nil || v < 0 {
				return fmt.Errorf("bad maxlatency %q", attr)
			}
			cl.QoS.MaxLatency = v
		case attr == "privacy":
			cl.QoS.Privacy = true
		case attr == "buying":
			cl.QoS.Buying = true
		default:
			return fmt.Errorf("unknown client attribute %q", attr)
		}
	}
	spec.Clients = append(spec.Clients, cl)
	return nil
}
