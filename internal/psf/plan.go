package psf

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Action is one step of a deployment plan.
type Action struct {
	// Kind is "deploy-view", "use-remote", "insert-encryptor", or
	// "connect" (a deployed view's linkage to a provider of one of its
	// required interfaces).
	Kind string
	// Component is the component type involved.
	Component string
	// Instance is the unique instance name (e.g. "agent@edge1").
	Instance string
	// Node is where the instance runs.
	Node string
	// Client is the client this action serves.
	Client string
	// Detail is extra human-readable context (e.g. the protected link).
	Detail string
	// Strong marks views that must run in strong mode (buyers).
	Strong bool
}

func (a Action) String() string {
	return fmt.Sprintf("%s %s (%s) on %s for %s %s", a.Kind, a.Instance, a.Component, a.Node, a.Client, a.Detail)
}

// Plan is a valid component deployment produced by the planning module.
type Plan struct {
	Actions []Action
	// PathLatency records the served one-way latency per client.
	PathLatency map[string]int
}

// viewInstances returns the deploy-view actions.
func (p *Plan) ViewInstances() []Action {
	var out []Action
	for _, a := range p.Actions {
		if a.Kind == "deploy-view" {
			out = append(out, a)
		}
	}
	return out
}

// Encryptors returns the insert-encryptor actions.
func (p *Plan) Encryptors() []Action {
	var out []Action
	for _, a := range p.Actions {
		if a.Kind == "insert-encryptor" {
			out = append(out, a)
		}
	}
	return out
}

// Connections returns the connect actions (deployed views wired to the
// providers of their required interfaces).
func (p *Plan) Connections() []Action {
	var out []Action
	for _, a := range p.Actions {
		if a.Kind == "connect" {
			out = append(out, a)
		}
	}
	return out
}

// String renders the plan deterministically.
func (p *Plan) String() string {
	var b strings.Builder
	for _, a := range p.Actions {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// graph is the adjacency view of the spec's environment.
type graph struct {
	adj map[string][]edgeTo
}

type edgeTo struct {
	to      string
	latency int
	secure  bool
}

func buildGraph(s *Spec) *graph {
	g := &graph{adj: map[string][]edgeTo{}}
	for _, l := range s.Links {
		g.adj[l.A] = append(g.adj[l.A], edgeTo{to: l.B, latency: l.Latency, secure: l.Secure})
		g.adj[l.B] = append(g.adj[l.B], edgeTo{to: l.A, latency: l.Latency, secure: l.Secure})
	}
	for n := range g.adj {
		es := g.adj[n]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		g.adj[n] = es
	}
	return g
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node string
	dist int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	return q[i].dist < q[j].dist || (q[i].dist == q[j].dist && q[i].node < q[j].node)
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// shortestPath runs Dijkstra from src and returns (dist, prev) maps.
// Unreachable nodes are absent from dist.
func (g *graph) shortestPath(src string) (map[string]int, map[string]string) {
	dist := map[string]int{src: 0}
	prev := map[string]string{}
	done := map[string]bool{}
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.latency
			if cur, ok := dist[e.to]; !ok || nd < cur {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, prev
}

// pathTo reconstructs the node sequence src..dst from a prev map.
func pathTo(prev map[string]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	var rev []string
	for at := dst; ; {
		rev = append(rev, at)
		p, ok := prev[at]
		if !ok {
			return nil // unreachable
		}
		if p == src {
			rev = append(rev, src)
			break
		}
		at = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// linkBetween finds the spec link between two adjacent nodes.
func (s *Spec) linkBetween(a, b string) (Link, bool) {
	for _, l := range s.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// PlanDeployment is the planning module (paper §3.1 element (iii)): for
// each client it decides whether to serve the client remotely from the
// provider's placement or to deploy a replicable view close to the client,
// and which insecure links on the service path need encryptor/decryptor
// pairs.
//
// The decision rule mirrors the paper's examples: if the shortest-path
// latency from the client to the provider exceeds the client's
// MaxLatency and the provider (or an intermediary implementing the
// required interface) is replicable, a view is deployed on the client's
// node (or the nearest node within budget); privacy-requiring clients get
// encryptors around every insecure link actually used.
func PlanDeployment(s *Spec) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := buildGraph(s)
	plan := &Plan{PathLatency: map[string]int{}}

	for _, cl := range s.Clients {
		provider, _ := s.Provider(cl.Requires)
		provNode, err := s.providerNode(provider)
		if err != nil {
			return nil, fmt.Errorf("psf: client %s: %w", cl.Name, err)
		}
		dist, prev := g.shortestPath(cl.Node)
		d, reachable := dist[provNode]
		if !reachable && cl.Node != provNode {
			return nil, fmt.Errorf("psf: client %s cannot reach provider node %s", cl.Name, provNode)
		}

		serveNode := provNode
		kind := "use-remote"
		if cl.QoS.MaxLatency > 0 && d > cl.QoS.MaxLatency {
			if !provider.Replicable {
				return nil, fmt.Errorf("psf: client %s latency %d exceeds budget %d and %s is not replicable",
					cl.Name, d, cl.QoS.MaxLatency, provider.Name)
			}
			// Latency budget exceeded: deploy a view at the closest node
			// to the client that fits the budget (prefer the client's own
			// node).
			serveNode = s.bestViewNode(cl, dist)
			kind = "deploy-view"
		}

		instance := provider.Name
		if kind == "deploy-view" {
			instance = fmt.Sprintf("%s@%s/%s", provider.Name, serveNode, cl.Name)
		}
		plan.Actions = append(plan.Actions, Action{
			Kind:      kind,
			Component: provider.Name,
			Instance:  instance,
			Node:      serveNode,
			Client:    cl.Name,
			Strong:    cl.QoS.Buying,
		})
		plan.PathLatency[cl.Name] = dist[serveNode]

		// A deployed view must be wired to a provider of every interface
		// its component requires (the "requires" side of the component
		// model, §3.1) — e.g. a travel-agent view connects back to the
		// flight database for coherence. Record the linkage so the
		// deployment module (and CheckPlan) can verify completeness.
		if kind == "deploy-view" {
			for _, reqIface := range provider.Requires {
				reqProv, ok := s.Provider(reqIface)
				if !ok {
					return nil, fmt.Errorf("psf: view %s requires %s, which nothing implements", instance, reqIface)
				}
				reqNode, err := s.providerNode(reqProv)
				if err != nil {
					return nil, fmt.Errorf("psf: view %s: %w", instance, err)
				}
				plan.Actions = append(plan.Actions, Action{
					Kind:      "connect",
					Component: reqProv.Name,
					Instance:  instance,
					Node:      serveNode,
					Client:    cl.Name,
					Detail:    fmt.Sprintf("requires %s @ %s", reqIface, reqNode),
				})
			}
		}

		// Privacy: protect every insecure link on the client->serveNode
		// path, and — for deployed views — the view's synchronization path
		// back to the provider.
		if cl.QoS.Privacy {
			segs := [][2]string{{cl.Node, serveNode}}
			if kind == "deploy-view" {
				segs = append(segs, [2]string{serveNode, provNode})
			}
			for _, seg := range segs {
				segDist, segPrev := g.shortestPath(seg[0])
				_ = segDist
				path := pathTo(segPrev, seg[0], seg[1])
				for i := 0; i+1 < len(path); i++ {
					l, ok := s.linkBetween(path[i], path[i+1])
					if ok && !l.Secure {
						plan.Actions = append(plan.Actions, Action{
							Kind:      "insert-encryptor",
							Component: "encryptor-pair",
							Instance:  fmt.Sprintf("enc[%s-%s]/%s", path[i], path[i+1], cl.Name),
							Node:      path[i],
							Client:    cl.Name,
							Detail:    fmt.Sprintf("protects link %s-%s", path[i], path[i+1]),
						})
					}
				}
			}
		}
		_ = prev
	}
	return plan, nil
}

// CheckPlan verifies that a plan actually satisfies every client's QoS
// against the spec's current environment: latency budgets are met by the
// serving placement, and privacy-requiring clients have an encryptor for
// every insecure link on their service paths. Deployments call it after
// planning (and after replanning on monitor events) as a safety net.
func CheckPlan(s *Spec, p *Plan) error {
	g := buildGraph(s)
	serveNode := map[string]string{}
	protected := map[string]map[string]bool{} // client -> "a-b" -> true
	connected := map[string]map[string]bool{} // view instance -> provider component
	views := map[string]string{}              // view instance -> component
	for _, a := range p.Actions {
		switch a.Kind {
		case "deploy-view":
			serveNode[a.Client] = a.Node
			views[a.Instance] = a.Component
		case "use-remote":
			serveNode[a.Client] = a.Node
		case "insert-encryptor":
			if protected[a.Client] == nil {
				protected[a.Client] = map[string]bool{}
			}
			protected[a.Client][a.Detail] = true
		case "connect":
			if connected[a.Instance] == nil {
				connected[a.Instance] = map[string]bool{}
			}
			connected[a.Instance][a.Component] = true
		}
	}
	// Every deployed view must be connected to a provider of each of its
	// component's required interfaces.
	for instance, comp := range views {
		c, ok := s.Components[comp]
		if !ok {
			return fmt.Errorf("psf: plan deploys unknown component %q", comp)
		}
		for _, reqIface := range c.Requires {
			reqProv, ok := s.Provider(reqIface)
			if !ok {
				return fmt.Errorf("psf: %s requires %s, which nothing implements", instance, reqIface)
			}
			if !connected[instance][reqProv.Name] {
				return fmt.Errorf("psf: plan leaves view %s disconnected from required %s", instance, reqIface)
			}
		}
	}
	for _, cl := range s.Clients {
		node, ok := serveNode[cl.Name]
		if !ok {
			return fmt.Errorf("psf: plan serves nothing to client %s", cl.Name)
		}
		dist, prev := g.shortestPath(cl.Node)
		d := dist[node]
		if cl.QoS.MaxLatency > 0 && d > cl.QoS.MaxLatency {
			return fmt.Errorf("psf: plan leaves client %s at %dms, budget %dms", cl.Name, d, cl.QoS.MaxLatency)
		}
		if cl.QoS.Privacy {
			path := pathTo(prev, cl.Node, node)
			for i := 0; i+1 < len(path); i++ {
				l, ok := s.linkBetween(path[i], path[i+1])
				if !ok || l.Secure {
					continue
				}
				want := fmt.Sprintf("protects link %s-%s", path[i], path[i+1])
				wantRev := fmt.Sprintf("protects link %s-%s", path[i+1], path[i])
				if !protected[cl.Name][want] && !protected[cl.Name][wantRev] {
					return fmt.Errorf("psf: plan leaves insecure link %s-%s unprotected for client %s",
						path[i], path[i+1], cl.Name)
				}
			}
		}
	}
	return nil
}

// providerNode finds where a provider component is placed.
func (s *Spec) providerNode(c *Component) (string, error) {
	if node, ok := s.Placements[c.Name]; ok {
		return node, nil
	}
	return "", fmt.Errorf("component %q has no placement", c.Name)
}

// bestViewNode picks the node for a deployed view: the client's own node
// if it has capacity, otherwise the closest node (by dist) with room.
func (s *Spec) bestViewNode(cl ClientReq, dist map[string]int) string {
	if s.nodeHasRoom(cl.Node) {
		return cl.Node
	}
	type cand struct {
		name string
		d    int
	}
	var cands []cand
	for n, d := range dist {
		if n != cl.Node && s.nodeHasRoom(n) {
			cands = append(cands, cand{name: n, d: d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > 0 {
		return cands[0].name
	}
	return cl.Node // fall back even without capacity info
}

// nodeHasRoom is a placeholder capacity check (Capacity 0 = unlimited;
// a fuller accounting of already-planned instances lives in Deployment).
func (s *Spec) nodeHasRoom(name string) bool {
	n, ok := s.Nodes[name]
	if !ok {
		return false
	}
	return n.Capacity == 0 || n.Capacity > 0 // capacity enforced at deploy time
}
