package psf_test

import (
	"io"
	"testing"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/netsim"
	"flecc/internal/psf"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// TestPSFDeploysCoherentAgents is the full pipeline: declarative spec →
// plan → deployment of real Flecc-coherent travel agents on the planned
// topology → QoS-visible behaviour (the buyer's strong view is local and
// fast; coherence flows back to the hub database).
func TestPSFDeploysCoherentAgents(t *testing.T) {
	const specText = `
component flightdb implements FlightDB(Flights={100..109}) methods browse,reserve
component agent implements Reservation(Flights={100..109}) requires FlightDB methods browse,reserve replicable
node hub secure
node edge1
node edge2
link hub edge1 latency=40
link hub edge2 latency=8 secure
place flightdb hub
place agent hub
client alice at edge1 requires Reservation maxlatency=10 buying
client bob at edge2 requires Reservation maxlatency=20
`
	spec, err := psf.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := psf.PlanDeployment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := psf.CheckPlan(spec, plan); err != nil {
		t.Fatal(err)
	}

	clock := vclock.NewSim()
	topo := psf.BuildTopology(spec)
	net := netsim.New(clock, topo)
	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, 10, 50)
	topo.Place("flightdb", "hub")
	dm, err := directory.New("flightdb", db, clock, net, directory.Options{
		Resolver: airline.SeatResolver,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	agents := map[string]*airline.TravelAgent{}
	factory := func(a psf.Action) (io.Closer, error) {
		if a.Kind == "insert-encryptor" {
			return nopClose{}, nil
		}
		mode := wire.Weak
		if a.Strong {
			mode = wire.Strong
		}
		topo.Place(a.Instance, a.Node)
		ag, err := airline.NewTravelAgent(airline.AgentConfig{
			Name: a.Instance, Directory: "flightdb", Net: net, Clock: clock,
			FlightsFrom: 100, FlightsTo: 109, Mode: mode,
		})
		if err != nil {
			return nil, err
		}
		agents[a.Client] = ag
		return closeFn(func() error { return ag.Close() }), nil
	}
	dep, err := psf.Deploy(spec, plan, topo, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	alice, ok := agents["alice"]
	if !ok {
		t.Fatal("alice should have a deployed view")
	}
	if alice.CM.Mode() != wire.Strong {
		t.Fatal("buying client's agent must be strong")
	}
	// Alice's view runs on her own node, so her *service access* is
	// local; only the coherence pull crosses the 40ms WAN link to the hub
	// — exactly one round trip (80ms), not one per method of a remote
	// interaction.
	t0 := clock.Now()
	if err := alice.ReserveTickets(2, 100); err != nil {
		t.Fatal(err)
	}
	cost := clock.Now() - t0
	if cost != 80 {
		t.Fatalf("reservation coherence cost %v, want exactly one hub round trip (80ms)", cost)
	}
	// Between pulls, reads against the local replica are free.
	t1 := clock.Now()
	alice.ARS.Browse("", "")
	if clock.Now() != t1 {
		t.Fatal("local replica reads must cost no network time")
	}
	if err := alice.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	f, _ := db.Flight(100)
	if f.Reserved != 2 {
		t.Fatalf("db reserved = %d", f.Reserved)
	}
	// Bob is served remotely (no deployed view).
	if _, ok := agents["bob"]; ok {
		t.Fatal("bob (within budget) should not get a deployed view")
	}
}

type nopClose struct{}

func (nopClose) Close() error { return nil }

type closeFn func() error

func (f closeFn) Close() error { return f() }
