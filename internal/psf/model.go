// Package psf implements the Partitionable Services Framework substrate
// the paper builds Flecc inside (§3): a dynamic component-based framework
// that assembles and deploys application components into a network based
// on a declarative specification, a monitoring module, a planning module,
// and a deployment module.
//
// PSF models components as entities that implement and require interfaces
// (the CORBA Component Model style); the environment is a set of nodes and
// links with properties (latency, security). The planning module finds a
// component deployment that satisfies the application conditions and the
// client QoS requirements — inserting encryptor/decryptor pairs around
// insecure links and placing cache components (views, e.g. travel agents)
// close to clients to offset high latency. Deployed views of the same
// component are then kept coherent by Flecc.
package psf

import (
	"fmt"
	"sort"

	"flecc/internal/property"
)

// Interface is a named service interface with optional properties
// describing the data behind it.
type Interface struct {
	// Name identifies the interface (e.g. "FlightDB").
	Name string
	// Props characterizes the data the interface exposes.
	Props property.Set
}

// Component is a deployable application component: it implements some
// interfaces and requires others (paper §3.1).
type Component struct {
	// Name identifies the component type (e.g. "travel-agent").
	Name string
	// Implements lists the interfaces the component provides.
	Implements []Interface
	// Requires lists the interfaces the component needs for correct
	// execution.
	Requires []string
	// Methods lists the component's method names (F_c in §3.2); used by
	// the view relationship check.
	Methods []string
	// Replicable marks components PSF may replicate as views (e.g.
	// travel agents); non-replicable components (the main database) are
	// deployed exactly once.
	Replicable bool
}

// ImplementsInterface reports whether the component provides the named
// interface.
func (c *Component) ImplementsInterface(name string) bool {
	for _, i := range c.Implements {
		if i.Name == name {
			return true
		}
	}
	return false
}

// Vars returns the union of the component's interface property sets (V_c
// in §3.2).
func (c *Component) Vars() property.Set {
	out := property.NewSet()
	for _, i := range c.Implements {
		for _, p := range i.Props.Properties() {
			out.Put(p)
		}
	}
	return out
}

// IsViewOf implements the paper's view definition (§3.2): v is a view of c
// if their method sets intersect (F_v ∩ F_c ≠ ∅) or their data sets
// intersect (V_v ∩ V_c ≠ ∅).
func IsViewOf(v, c *Component) bool {
	if v == nil || c == nil {
		return false
	}
	set := map[string]bool{}
	for _, m := range c.Methods {
		set[m] = true
	}
	for _, m := range v.Methods {
		if set[m] {
			return true
		}
	}
	return v.Vars().Overlaps(c.Vars())
}

// IsStrictViewOf strengthens IsViewOf to the customization case the
// paper's Figure 1 illustrates ("their working data is a subset of the
// data defined by the original component"): every method of v is one of
// c's, and v's data properties are a subset of c's.
func IsStrictViewOf(v, c *Component) bool {
	if v == nil || c == nil {
		return false
	}
	set := map[string]bool{}
	for _, m := range c.Methods {
		set[m] = true
	}
	for _, m := range v.Methods {
		if !set[m] {
			return false
		}
	}
	return v.Vars().SubsetOf(c.Vars())
}

// Node is an environment host.
type Node struct {
	// Name identifies the host.
	Name string
	// Secure marks hosts trusted to run sensitive components.
	Secure bool
	// Capacity bounds how many components the planner may place here
	// (0 = unlimited).
	Capacity int
}

// Link is a network connection between two nodes.
type Link struct {
	A, B string
	// Latency in virtual milliseconds, one way.
	Latency int
	// Secure links need no encryptor/decryptor insertion.
	Secure bool
}

// QoS is a client's quality-of-service requirement (§5.1: transaction
// privacy, maximum latency, and operation type).
type QoS struct {
	// MaxLatency is the maximum acceptable one-way path latency to the
	// required service, in ms (0 = unconstrained).
	MaxLatency int
	// Privacy requires encryption across insecure links.
	Privacy bool
	// Buying marks clients that need strong consistency (buyers vs
	// viewers).
	Buying bool
}

// ClientReq is a client attached to a node requiring an interface under a
// QoS.
type ClientReq struct {
	// Name identifies the client.
	Name string
	// Node is where the client lives.
	Node string
	// Requires is the interface the client consumes.
	Requires string
	// QoS is the client's requirement.
	QoS QoS
}

// Spec is a complete declarative specification: the application's
// components plus the environment and clients (paper §3.1 element (i)).
type Spec struct {
	Components map[string]*Component
	Nodes      map[string]*Node
	Links      []Link
	Clients    []ClientReq
	// Placements pins non-replicable components to nodes (e.g. the main
	// database on the server host).
	Placements map[string]string // component -> node
}

// NewSpec returns an empty specification.
func NewSpec() *Spec {
	return &Spec{
		Components: map[string]*Component{},
		Nodes:      map[string]*Node{},
		Placements: map[string]string{},
	}
}

// AddComponent registers a component type.
func (s *Spec) AddComponent(c *Component) error {
	if _, dup := s.Components[c.Name]; dup {
		return fmt.Errorf("psf: duplicate component %q", c.Name)
	}
	s.Components[c.Name] = c
	return nil
}

// AddNode registers a host.
func (s *Spec) AddNode(n *Node) error {
	if _, dup := s.Nodes[n.Name]; dup {
		return fmt.Errorf("psf: duplicate node %q", n.Name)
	}
	s.Nodes[n.Name] = n
	return nil
}

// AddLink registers a connection; both endpoints must exist.
func (s *Spec) AddLink(l Link) error {
	if _, ok := s.Nodes[l.A]; !ok {
		return fmt.Errorf("psf: link endpoint %q not declared", l.A)
	}
	if _, ok := s.Nodes[l.B]; !ok {
		return fmt.Errorf("psf: link endpoint %q not declared", l.B)
	}
	s.Links = append(s.Links, l)
	return nil
}

// Provider returns the component implementing the named interface.
func (s *Spec) Provider(iface string) (*Component, bool) {
	names := make([]string, 0, len(s.Components))
	for n := range s.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if s.Components[n].ImplementsInterface(iface) {
			return s.Components[n], true
		}
	}
	return nil, false
}

// Validate checks referential integrity: placements name real components
// and nodes, client requirements have providers, requires are satisfied.
func (s *Spec) Validate() error {
	for comp, node := range s.Placements {
		if _, ok := s.Components[comp]; !ok {
			return fmt.Errorf("psf: placement of unknown component %q", comp)
		}
		if _, ok := s.Nodes[node]; !ok {
			return fmt.Errorf("psf: placement on unknown node %q", node)
		}
	}
	for _, c := range s.Components {
		for _, req := range c.Requires {
			if _, ok := s.Provider(req); !ok {
				return fmt.Errorf("psf: component %q requires %q, which nothing implements", c.Name, req)
			}
		}
	}
	for _, cl := range s.Clients {
		if _, ok := s.Nodes[cl.Node]; !ok {
			return fmt.Errorf("psf: client %q on unknown node %q", cl.Name, cl.Node)
		}
		if _, ok := s.Provider(cl.Requires); !ok {
			return fmt.Errorf("psf: client %q requires %q, which nothing implements", cl.Name, cl.Requires)
		}
	}
	return nil
}
