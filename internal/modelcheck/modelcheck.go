// Package modelcheck is a deterministic state-space explorer for the Flecc
// protocol under reconfiguration: an in-process model checker that
// exhaustively interleaves protocol steps (write, push, pull) with
// reconfigurations (mode switch, set-props, view crash/revive, directory
// migration) at small bounds, and checks safety invariants after every
// transition.
//
// # How it works
//
// The system under test is the real implementation — directory.Manager and
// cache.Manager over a netsim simulated LAN — not an abstraction of it.
// Because the in-process transport is synchronous (a call runs the callee's
// handler on the caller's goroutine) and the explorer drives everything
// from one goroutine with FanOut=1, an *action* (one whole protocol
// operation or reconfiguration) is atomic and a run is a pure function of
// its action schedule. The explorer therefore searches the space of
// schedules with BFS:
//
//   - a state is reconstructed by replaying its schedule from the initial
//     system (states are not snapshotted — the stateless model-checking
//     discipline);
//   - after each transition the full observable state (directory
//     bookkeeping, store metadata, primary content with version/writer
//     stamps, every cache manager's data, base snapshot, and counters) is
//     folded into a canonical fingerprint; schedules that reach an
//     already-visited fingerprint are pruned, which is sound because the
//     fingerprint covers everything future behavior can depend on (no
//     trigger in the model references wall/virtual time);
//   - invariants are checked on every explored transition, so a violation
//     anywhere in the graph is found on the first schedule that exhibits
//     it, and the shortest such schedule is found first (BFS).
//
// # Invariants
//
//   - bookkeeping: directory.Manager.CheckInvariants (registry/view-state
//     agreement, seen ≤ committed, store shadow/log/index consistency);
//   - per-key safety: primary versions never regress along a schedule, a
//     key's value changes only with a version bump, every committed value
//     is one the stamped writer actually wrote, and successive commits by
//     the same writer never resurrect an older value (write values are
//     unique, so a stale re-push is detected exactly);
//   - push durability: an acknowledged push is immediately readable;
//   - pull freshness: right after a pull, the view agrees with the
//     primary's committed state on every key it did not modify locally;
//   - strong-mode exclusivity: after a pull in strong mode the puller is
//     the only active view among its conflict set and no conflicting peer
//     retains pending updates (one-copy serializability of strong reads);
//     as a state invariant, a strong-activated view never shares active
//     status with a conflicting view;
//   - weak-mode convergence: from every reached state, a quiescence probe
//     (every live view pushes, then every live view pulls) must leave all
//     live views byte-identical to the primary.
//
// A violated invariant is reported as a Counterexample: the action
// schedule, the violation, and the full message flow rendered as a
// trace.Recorder sequence diagram (the same Figure-2 format /trace serves).
//
// # Modeling notes
//
// InitImage activates a view without an invalidation round, so the checker
// treats initialization as weak-grade activation regardless of mode: the
// one-copy claim of a strong view begins at its first pull, which is the
// contract the paper's usage loop (pull before every use) relies on.
// Crashed views lose their un-pushed writes by design; only acknowledged
// commits are covered by the durability invariants.
//
// With Config.Pipeline the asynchronous client session is part of the
// model: push-async buffers a coalesced round without touching the wire
// (views run under cache.Config.ManualFlush) and flush dispatches it, so
// a buffered round interleaves with every reconfiguration — mode
// switches, crashes, migration — and the window-drain rule (synchronous
// operations dispatch the buffer first) is checked on the real code path.
package modelcheck

import (
	"fmt"

	"flecc/internal/wire"
)

// Config bounds the exploration. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Views is the number of cache-manager views (paper: deployed view
	// components), named v1..vN. View v1 starts in strong mode, the rest
	// weak, so both regimes are explored from depth zero.
	Views int
	// Keys is the number of shared keys k0..k{K-1}. Each key is a member
	// of the discrete property "K"; a view's property set decides which
	// keys it may write and which views it conflicts with.
	Keys int
	// Reconfigs is the total reconfiguration budget per schedule: mode
	// switches, set-props, crashes, and migrations draw from it (a revive
	// is recovery, not reconfiguration, and is free).
	Reconfigs int
	// Depth bounds the schedule length (actions per run).
	Depth int
	// WritesPerView bounds how many writes each view performs per
	// schedule.
	WritesPerView int
	// Validity is the validity-trigger source registered by every view;
	// it must not reference time t (that would make dedup unsound). The
	// default "staleness < 1" makes weak pulls gather whenever the view
	// has unseen committed updates.
	Validity string
	// PropagateOnPush switches the directory to push-based update
	// distribution (the E10 ablation's update protocol).
	PropagateOnPush bool
	// Migrate enables the migration reconfiguration: a TMigrateTake /
	// TMigrateApply handover of every view from directory dm!a to dm!b,
	// with the views routed through a TRouted forwarding node exactly as
	// the shard router does.
	Migrate bool
	// Failover enables the hot-standby reconfigurations on the same
	// two-manager rig: dm!a replicates inline to dm!b (every mutating
	// request barriers on the standby, exactly the HA directory's
	// semi-synchronous commit), crash-primary kills dm!a at the network,
	// and promote-standby sends dm!b the promote batch and re-points the
	// forwarder — after which every invariant (including strong-mode
	// exclusivity and per-key durability of acknowledged commits) must
	// still hold against the state dm!b absorbed from replication alone.
	Failover bool
	// Crash enables the crash/revive reconfigurations.
	Crash bool
	// SetModes enables the mode-switch reconfiguration.
	SetModes bool
	// SetProps enables the property-change reconfiguration (view i
	// narrows to the single key k{i mod Keys}).
	SetProps bool
	// Quiesce enables the weak-convergence probe at every newly
	// discovered state.
	Quiesce bool
	// Pipeline enables the asynchronous client-session actions: push-async
	// (buffer a coalesced push round without touching the wire) and flush
	// (dispatch it and wait). Views run under cache.Config.ManualFlush so
	// the explorer — not a background goroutine — decides when the round
	// reaches the directory, keeping actions atomic and replays
	// deterministic while still interleaving a buffered round with every
	// reconfiguration.
	Pipeline bool
	// MaxStates aborts exploration after this many distinct states
	// (0 = unlimited). The explorer reports the abort in Result.Aborted.
	MaxStates int

	// SkipInvalidate seeds a deliberate protocol bug for mutation
	// testing: the directory silently skips the named view when
	// invalidating. A correct checker MUST find a counterexample.
	SkipInvalidate string
	// DropMessage, when > 0, drops the Nth request delivered after system
	// initialization of every replay at the netsim layer (the
	// schedule-controlled delivery hook): the send fails at the caller as
	// a dead link would. Legal protocol behavior — retries, evictions —
	// must keep every invariant intact.
	DropMessage int
}

// DefaultConfig returns the standard small-bound exploration: 2 views,
// 1 key, 1 reconfiguration, every reconfiguration kind enabled.
func DefaultConfig() Config {
	return Config{
		Views:         2,
		Keys:          1,
		Reconfigs:     1,
		Depth:         6,
		WritesPerView: 2,
		Validity:      "staleness < 1",
		Migrate:       true,
		Failover:      true,
		Crash:         true,
		SetModes:      true,
		SetProps:      true,
		Quiesce:       true,
		Pipeline:      true,
	}
}

func (c Config) withDefaults() Config {
	if c.Views <= 0 {
		c.Views = 2
	}
	if c.Keys <= 0 {
		c.Keys = 1
	}
	if c.Depth <= 0 {
		c.Depth = 6
	}
	if c.WritesPerView <= 0 {
		c.WritesPerView = 2
	}
	return c
}

// Kind discriminates actions.
type Kind uint8

const (
	// AWrite mutates one key inside a StartUse/EndUse window.
	AWrite Kind = iota
	// APush pushes the view's pending delta to the directory.
	APush
	// APull pulls the freshest image (invalidating / gathering per mode).
	APull
	// ASetMode flips the view's consistency mode (reconfiguration).
	ASetMode
	// ASetProps narrows the view's property set (reconfiguration).
	ASetProps
	// ACrash kills the view's cache manager; its un-pushed writes are
	// lost and messages to it fail at the network (reconfiguration).
	ACrash
	// ARevive restarts a crashed view: fresh cache manager, re-register,
	// init (recovery; does not consume reconfiguration budget).
	ARevive
	// AMigrate hands every view over from dm!a to dm!b via
	// TMigrateTake/TMigrateApply and re-points the router
	// (reconfiguration).
	AMigrate
	// AQuiesceProbe marks probe-injected pushes/pulls in counterexample
	// schedules; the explorer never enumerates it directly.
	AQuiesceProbe
	// APushAsync buffers an asynchronous push round (PushImageAsync under
	// ManualFlush): nothing reaches the wire until AFlush, a synchronous
	// push, or another draining operation dispatches it.
	APushAsync
	// AFlush dispatches the buffered asynchronous round and waits for it
	// (Flush), exercising the pipelined-session ordering and window-drain
	// rules against every invariant.
	AFlush
	// ACrashPrimary kills the primary directory manager dm!a at the
	// network (reconfiguration). Client calls fail until promote-standby;
	// acknowledged commits must survive on the standby.
	ACrashPrimary
	// APromoteStandby sends dm!b the promote-only replication batch under
	// the next epoch and re-points the forwarder at it — the router's
	// consensus-free failover. Recovery: does not consume the
	// reconfiguration budget.
	APromoteStandby
)

// Action is one atomic transition of the model: a protocol step or a
// reconfiguration by one view (or the deployment, for AMigrate).
type Action struct {
	Kind Kind
	// View is the acting view index (ignored for AMigrate).
	View int
	// Key is the written key index (AWrite only).
	Key int
	// Mode is the target mode (ASetMode only).
	Mode wire.Mode
}

// String renders the action compactly, e.g. "write(v2,k0)" or
// "set-mode(v1,weak)".
func (a Action) String() string {
	v := fmt.Sprintf("v%d", a.View+1)
	switch a.Kind {
	case AWrite:
		return fmt.Sprintf("write(%s,k%d)", v, a.Key)
	case APush:
		return fmt.Sprintf("push(%s)", v)
	case APull:
		return fmt.Sprintf("pull(%s)", v)
	case ASetMode:
		return fmt.Sprintf("set-mode(%s,%s)", v, a.Mode)
	case ASetProps:
		return fmt.Sprintf("set-props(%s)", v)
	case ACrash:
		return fmt.Sprintf("crash(%s)", v)
	case ARevive:
		return fmt.Sprintf("revive(%s)", v)
	case AMigrate:
		return "migrate(dm!a→dm!b)"
	case AQuiesceProbe:
		return fmt.Sprintf("quiesce-probe(%s)", v)
	case APushAsync:
		return fmt.Sprintf("push-async(%s)", v)
	case AFlush:
		return fmt.Sprintf("flush(%s)", v)
	case ACrashPrimary:
		return "crash-primary(dm!a)"
	case APromoteStandby:
		return "promote-standby(dm!b)"
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}
