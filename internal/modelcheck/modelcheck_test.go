package modelcheck

import (
	"strings"
	"testing"

	"flecc/internal/wire"
)

// TestExploreCleanDefault: the default bounds explore clean — every
// invariant holds over every interleaving of protocol steps and one
// reconfiguration between two views on one key.
func TestExploreCleanDefault(t *testing.T) {
	res, err := Explore(DefaultConfig())
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected counterexample:\n%s", res.Violation)
	}
	if res.States < 100 {
		t.Fatalf("suspiciously small state space: %d states", res.States)
	}
	if res.DedupHits == 0 {
		t.Fatalf("no deduplicated transitions — fingerprinting is not collapsing revisits")
	}
	if res.Aborted {
		t.Fatalf("aborted without a MaxStates bound")
	}
	t.Logf("%d states, %d transitions, %d dedup hits, depth %d, %v",
		res.States, res.Transitions, res.DedupHits, res.Depth, res.Elapsed)
}

// TestExploreCleanNoMigration: the single-directory deployment (no routing
// forwarder) explores clean too.
func TestExploreCleanNoMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Migrate = false
	cfg.Depth = 5
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected counterexample:\n%s", res.Violation)
	}
}

// TestExploreCleanPropagateOnPush: the push-based update-distribution
// variant holds the same invariants.
func TestExploreCleanPropagateOnPush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PropagateOnPush = true
	cfg.Depth = 5
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected counterexample:\n%s", res.Violation)
	}
}

// TestExploreCleanUnderDrops: dropping any single early request of every
// replay exercises the failure semantics (failed pulls, evictions) without
// breaking an invariant.
func TestExploreCleanUnderDrops(t *testing.T) {
	for n := 1; n <= 10; n++ {
		cfg := DefaultConfig()
		cfg.Depth = 4
		cfg.DropMessage = n
		res, err := Explore(cfg)
		if err != nil {
			t.Fatalf("explore drop=%d: %v", n, err)
		}
		if res.Violation != nil {
			t.Fatalf("drop=%d: unexpected counterexample:\n%s", n, res.Violation)
		}
	}
}

// TestDeterministicExploration: two explorations of the same bounds visit
// the identical state space (the whole approach rests on replay
// determinism).
func TestDeterministicExploration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 4
	a, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if a.States != b.States || a.Transitions != b.Transitions || a.DedupHits != b.DedupHits || a.Depth != b.Depth {
		t.Fatalf("exploration is not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestMaxStatesAborts: the state bound cuts exploration short and says so.
func TestMaxStatesAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxStates = 50
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if !res.Aborted {
		t.Fatalf("expected Aborted with MaxStates=50, got %d states", res.States)
	}
	if res.States > 50 {
		t.Fatalf("state bound not respected: %d > 50", res.States)
	}
}

// TestReplayDeterminism: the same schedule replayed twice produces
// byte-identical fingerprints — the property BFS-with-dedup is sound on.
func TestReplayDeterminism(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	schedule := []Action{
		{Kind: AWrite, View: 1, Key: 0},
		{Kind: APull, View: 0},
		{Kind: AMigrate},
		{Kind: AWrite, View: 0, Key: 0},
		{Kind: APush, View: 0},
		{Kind: APull, View: 1},
	}
	sysA, bad, err := replay(cfg, schedule, nil)
	if err != nil {
		t.Fatalf("replay A failed at action %d: %v", bad, err)
	}
	sysB, bad, err := replay(cfg, schedule, nil)
	if err != nil {
		t.Fatalf("replay B failed at action %d: %v", bad, err)
	}
	fa, fb := sysA.fingerprint(), sysB.fingerprint()
	if fa != fb {
		t.Fatalf("replay is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", fa, fb)
	}
}

// TestActionString: the schedule rendering the counterexamples rely on.
func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"write(v1,k0)":       {Kind: AWrite, View: 0, Key: 0},
		"push(v2)":           {Kind: APush, View: 1},
		"pull(v3)":           {Kind: APull, View: 2},
		"set-mode(v1,weak)":  {Kind: ASetMode, View: 0, Mode: wire.Weak},
		"set-props(v2)":      {Kind: ASetProps, View: 1},
		"crash(v1)":          {Kind: ACrash, View: 0},
		"revive(v1)":         {Kind: ARevive, View: 0},
		"migrate(dm!a→dm!b)": {Kind: AMigrate},
		"push-async(v1)":     {Kind: APushAsync, View: 0},
		"flush(v2)":          {Kind: AFlush, View: 1},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("Action%+v.String() = %q, want %q", a, got, want)
		}
	}
}

// TestPipelineExpandsStateSpace: enabling the pipelined-session actions
// genuinely grows the explored space (push-async/flush schedules are
// enumerated, and a buffered round is a distinct fingerprinted state),
// and the space stays clean.
func TestPipelineExpandsStateSpace(t *testing.T) {
	off := DefaultConfig()
	off.Pipeline = false
	off.Depth = 5
	on := off
	on.Pipeline = true
	roff, err := Explore(off)
	if err != nil {
		t.Fatalf("explore pipeline=off: %v", err)
	}
	ron, err := Explore(on)
	if err != nil {
		t.Fatalf("explore pipeline=on: %v", err)
	}
	if roff.Violation != nil || ron.Violation != nil {
		t.Fatalf("unexpected counterexample:\noff: %v\non: %v", roff.Violation, ron.Violation)
	}
	if ron.States <= roff.States {
		t.Fatalf("pipeline actions added no states: on=%d off=%d", ron.States, roff.States)
	}
	t.Logf("pipeline off: %d states; on: %d states", roff.States, ron.States)
}

// TestPipelinedReplay: a buffered round is visible in the fingerprint
// (so BFS does not collapse it into the un-buffered state), survives a
// reconfiguration that does not drain it, and flush clears it — all on a
// deterministic replay.
func TestPipelinedReplay(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	buffered := []Action{
		{Kind: AWrite, View: 1, Key: 0},
		{Kind: APushAsync, View: 1},
		{Kind: ACrash, View: 0}, // reconfigure around the buffered round
	}
	sys, bad, err := replay(cfg, buffered, nil)
	if err != nil {
		t.Fatalf("replay failed at action %d: %v", bad, err)
	}
	fp := sys.fingerprint()
	if !strings.Contains(fp, "buffered=true") {
		t.Fatalf("buffered round invisible to the fingerprint:\n%s", fp)
	}
	flushed := append(buffered, Action{Kind: AFlush, View: 1})
	sys2, bad, err := replay(cfg, flushed, nil)
	if err != nil {
		t.Fatalf("flush replay failed at action %d: %v", bad, err)
	}
	if fp2 := sys2.fingerprint(); strings.Contains(fp2, "buffered=true") {
		t.Fatalf("flush left a buffered round behind:\n%s", fp2)
	}
	// Determinism across replays of the pipelined schedule.
	sys3, _, err := replay(cfg, flushed, nil)
	if err != nil {
		t.Fatalf("second flush replay: %v", err)
	}
	if sys2.fingerprint() != sys3.fingerprint() {
		t.Fatal("pipelined replay is not deterministic")
	}
}

// TestMutationCaughtWithPipeline pins the acceptance pairing explicitly:
// the seeded skip-invalidation mutant must still die while the
// pipelined-session actions are part of the explored space.
func TestMutationCaughtWithPipeline(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.Pipeline {
		t.Fatal("default bounds must include the pipelined-session actions")
	}
	cfg.SkipInvalidate = "v2"
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation == nil {
		t.Fatalf("seeded skip-invalidation bug went undetected with pipeline enabled (%d states)", res.States)
	}
}

// TestEnumerateRespectsbudgets: no reconfiguration actions are offered
// once the budget is spent, and no writes beyond the per-view cap.
func TestEnumerateRespectsBudgets(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	m := meta{
		views: []viewMeta{
			{alive: true, valid: true, pending: 1, writes: cfg.WritesPerView, mode: wire.Strong},
			{alive: true, valid: true, writes: 0, mode: wire.Weak},
		},
		reconfigs: cfg.Reconfigs, // budget exhausted
	}
	for _, a := range enumerate(cfg, m) {
		switch a.Kind {
		case ASetMode, ASetProps, ACrash, AMigrate:
			t.Errorf("reconfiguration %s offered with exhausted budget", a)
		case AWrite:
			if a.View == 0 {
				t.Errorf("write offered beyond the per-view cap: %s", a)
			}
		}
	}
}

// TestStrings ensures Result and Counterexample render the pieces the CLI
// and CI logs grep for.
func TestStrings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 2
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	s := res.String()
	for _, want := range []string{"explored", "transitions", "deduplicated", "all invariants hold"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() missing %q:\n%s", want, s)
		}
	}
}
